// The paper's framework on numeric data (§VI future work): K-Means
// accelerated with SimHash banding, compared against exhaustive Lloyd and
// mini-batch K-Means (the paper's ref [16]) on a Gaussian mixture — both
// engine variants driven through the lshclust::Clusterer front door (the
// spec differs only in its accelerator enum).
//
//   $ ./build/examples/numeric_kmeans [--points=20000] [--clusters=500]
//
// The LSH family changes (sign random projections instead of MinHash) but
// the framework is identical: signatures once, banding buckets once,
// per-item candidate clusters dereferenced through the live assignment.

#include <cstdio>

#include "api/clusterer.h"
#include "clustering/kmeans.h"
#include "datagen/gaussian_mixture.h"
#include "metrics/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("numeric_kmeans");
  int64_t points = 20000;
  int64_t clusters = 500;
  int64_t dimensions = 32;
  int64_t seed = 9;
  flags.AddInt64("points", &points, "points to cluster");
  flags.AddInt64("clusters", &clusters, "clusters k");
  flags.AddInt64("dimensions", &dimensions, "dimensionality");
  flags.AddInt64("seed", &seed, "RNG seed");
  const Status flag_status = flags.Parse(argc, argv);
  if (flag_status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(flag_status);

  GaussianMixtureOptions data;
  data.num_items = static_cast<uint32_t>(points);
  data.dimensions = static_cast<uint32_t>(dimensions);
  data.num_clusters = static_cast<uint32_t>(clusters);
  data.center_box = 20.0;
  data.stddev = 1.0;
  data.seed = static_cast<uint64_t>(seed);
  auto dataset = GenerateGaussianMixture(data);
  LSHC_CHECK_OK(dataset.status());
  std::printf("dataset: %u points, %u dims, %lld true components\n",
              dataset->num_items(), dataset->dimensions(),
              static_cast<long long>(clusters));

  ClustererSpec spec;
  spec.modality = Modality::kNumeric;
  spec.engine.num_clusters = static_cast<uint32_t>(clusters);
  spec.engine.seed = static_cast<uint64_t>(seed);
  spec.engine.max_iterations = 30;

  std::printf("\n%-22s %10s %14s %8s %8s\n", "method", "total (s)",
              "inertia", "iters", "purity");
  auto report = [&](const char* name, const ClusteringResult& result) {
    const double purity =
        ComputePurity(result.assignment, dataset->labels()).ValueOrDie();
    std::printf("%-22s %10.3f %14.1f %8zu %8.4f\n", name,
                result.total_seconds, result.final_cost,
                result.iterations.size(), purity);
  };

  spec.accelerator = Accelerator::kExhaustive;
  auto lloyd_clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(lloyd_clusterer.status());
  auto lloyd = lloyd_clusterer->Fit(*dataset);
  LSHC_CHECK_OK(lloyd.status());
  report("K-Means (Lloyd)", lloyd->result);

  // SimHash bits are far weaker than MinHash components (collision
  // probability 0.5 for orthogonal vectors vs Jaccard ~0 for disjoint
  // sets), so bands need many more rows: 10 bits per band keeps random
  // cross-cluster pairs at 12 * 0.5^10 ≈ 1% while same-cluster pairs
  // (tiny angular separation) still collide almost surely.
  spec.accelerator = Accelerator::kSimHash;
  spec.simhash.banding = {12, 10};
  auto lsh_clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(lsh_clusterer.status());
  auto accelerated = lsh_clusterer->Fit(*dataset);
  LSHC_CHECK_OK(accelerated.status());
  report("LSH-K-Means 12b10r", accelerated->result);

  MiniBatchKMeansOptions minibatch;
  minibatch.num_clusters = static_cast<uint32_t>(clusters);
  minibatch.batch_size = 512;
  minibatch.num_batches = 300;
  minibatch.seed = static_cast<uint64_t>(seed);
  auto sketched = RunMiniBatchKMeans(*dataset, minibatch);
  LSHC_CHECK_OK(sketched.status());
  report("Mini-batch K-Means", *sketched);

  std::printf("\nLSH-K-Means mean shortlist (vs k = %lld):",
              static_cast<long long>(clusters));
  for (const auto& iteration : accelerated->result.iterations) {
    std::printf(" %.1f", iteration.mean_shortlist);
  }
  std::printf("\n");
  return 0;
}
