// Topic clustering of question text — the paper's §IV-B scenario end to
// end, from *raw question strings* to purity numbers:
//
//   raw text -> Tokenizer -> per-topic TF-IDF -> vocabulary threshold ->
//   binary word-presence items -> K-Modes vs MH-K-Modes -> purity.
//
// The comparison harness (core/experiment.h) drives both variants through
// the lshclust::Clusterer front door; binarized text is exactly the
// facade's kTextBinarized modality (categorical-shaped items).
//
//   $ ./build/examples/yahoo_topics [--topics=120] [--threshold=0.5]
//
// The corpus is synthetic (the real Yahoo! Answers dump is license-gated;
// see DESIGN.md §6) but flows through the identical pipeline, including
// the feature-name augmentation ("zoo=0"/"zoo=1") and the absent-feature
// filtering that makes MinHash meaningful on sparse vectors.

#include <cstdio>

#include "core/experiment.h"
#include "datagen/yahoo_like_corpus.h"
#include "text/binarizer.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("yahoo_topics");
  int64_t topics = 120;
  int64_t questions_per_topic = 30;
  double threshold = 0.5;
  int64_t seed = 3;
  flags.AddInt64("topics", &topics, "number of ground-truth topics");
  flags.AddInt64("questions-per-topic", &questions_per_topic,
                 "questions generated per topic");
  flags.AddDouble("threshold", &threshold,
                  "TF-IDF vocabulary threshold (paper: 0.7 / 0.3)");
  flags.AddInt64("seed", &seed, "RNG seed");
  const Status flag_status = flags.Parse(argc, argv);
  if (flag_status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(flag_status);

  // 1. Generate the corpus and render each question to raw text, as it
  //    would arrive from a real dump.
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = static_cast<uint32_t>(topics);
  corpus_options.questions_per_topic =
      static_cast<uint32_t>(questions_per_topic);
  corpus_options.seed = static_cast<uint64_t>(seed);
  const TokenizedCorpus generated = GenerateYahooLikeCorpus(corpus_options);
  std::printf("example question: \"%s\"\n",
              RenderQuestionText(generated, 0).c_str());

  // 2. Tokenize the raw text back into a corpus (lower-casing, stopword
  //    removal — the front end a real dataset needs).
  Tokenizer tokenizer;
  TokenizedCorpus corpus;
  for (uint32_t doc = 0; doc < generated.documents.size(); ++doc) {
    tokenizer.AddDocument(RenderQuestionText(generated, doc),
                          generated.documents[doc].topic, &corpus);
  }
  std::printf("tokenized %zu questions over %zu distinct words\n",
              corpus.documents.size(), corpus.vocabulary.size());

  // 3. Per-topic TF-IDF -> vocabulary -> binary presence dataset.
  auto model = TopicTfIdf::Compute(corpus);
  LSHC_CHECK_OK(model.status());
  TfIdfOptions tfidf;
  tfidf.threshold = threshold;
  const auto vocabulary = model->SelectVocabulary(tfidf);
  std::printf("TF-IDF threshold %.2f keeps %zu words as attributes\n",
              threshold, vocabulary.size());

  auto dataset = BinarizeCorpus(corpus, vocabulary);
  LSHC_CHECK_OK(dataset.status());
  std::printf("clustering input: %u items x %u binary attributes\n",
              dataset->num_items(), dataset->num_attributes());

  // 4. Cluster into one cluster per topic, both ways, from shared seeds.
  ComparisonOptions comparison;
  comparison.num_clusters = static_cast<uint32_t>(topics);
  comparison.seed = static_cast<uint64_t>(seed);
  auto runs = RunComparison(*dataset, comparison,
                            {MHKModesSpec(1, 1), KModesSpec()});
  LSHC_CHECK_OK(runs.status());

  std::printf("\n%-18s %10s %10s %8s\n", "method", "total (s)", "purity",
              "iters");
  for (const MethodRun& run : *runs) {
    std::printf("%-18s %10.3f %10.4f %8zu\n", run.spec.label.c_str(),
                run.result.total_seconds, run.purity,
                run.result.iterations.size());
  }
  const double speedup = (*runs)[1].result.total_seconds /
                         (*runs)[0].result.total_seconds;
  std::printf("\nMH-K-Modes clustered the corpus %.1fx faster at %+0.3f "
              "purity difference\n",
              speedup, (*runs)[0].purity - (*runs)[1].purity);
  return 0;
}
