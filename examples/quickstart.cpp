// Quickstart: cluster a small categorical dataset with MH-K-Modes and
// inspect the result. Start here — ~60 lines end to end.
//
//   $ ./build/examples/quickstart
//
// The dataset is the kind of nominal data K-Modes was built for: items
// described by unordered category values ("colour=blue"), where means are
// meaningless and the centroid is the per-attribute mode.

#include <cstdio>

#include "core/mh_kmodes.h"
#include "data/csv.h"

int main() {
  using namespace lshclust;

  // A small product table: attributes are colour / size / material, plus a
  // ground-truth label column for measuring purity.
  const char* kCsv =
      "colour,size,material,label\n"
      "blue,small,wood,0\n"
      "blue,small,metal,0\n"
      "blue,medium,wood,0\n"
      "red,large,metal,1\n"
      "red,large,plastic,1\n"
      "red,medium,metal,1\n"
      "green,small,fabric,2\n"
      "green,small,wool,2\n"
      "green,medium,fabric,2\n"
      "blue,small,wood,0\n"
      "red,large,metal,1\n"
      "green,small,fabric,2\n";

  auto dataset = ParseCategoricalCsv(kCsv);
  if (!dataset.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %u items x %u attributes\n", dataset->num_items(),
              dataset->num_attributes());

  // Configure MH-K-Modes: k clusters, banding b x r. On 12 items the LSH
  // machinery is overkill — the point is that the API is identical at
  // 12 items and 250 000.
  MHKModesOptions options;
  options.engine.num_clusters = 3;
  options.engine.seed = 2;
  options.index.banding = {8, 2};  // 8 bands of 2 rows

  auto run = RunMHKModes(*dataset, options);
  if (!run.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  std::printf("converged after %zu iterations, cost P(W,Q) = %.0f\n",
              run->result.iterations.size(), run->result.final_cost);
  for (uint32_t item = 0; item < dataset->num_items(); ++item) {
    std::printf("  item %2u (%s, %s, %s) -> cluster %u\n", item,
                dataset->ValueToString(item, 0).c_str(),
                dataset->ValueToString(item, 1).c_str(),
                dataset->ValueToString(item, 2).c_str(),
                run->result.assignment[item]);
  }

  // Per-iteration instrumentation: the series the paper's figures plot.
  for (const auto& it : run->result.iterations) {
    std::printf("iteration %u: %.3f ms, %llu moves, mean shortlist %.2f\n",
                it.iteration, it.seconds * 1e3,
                static_cast<unsigned long long>(it.moves),
                it.mean_shortlist);
  }
  return 0;
}
