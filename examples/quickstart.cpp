// Quickstart: cluster a small categorical dataset through the
// lshclust::Clusterer front door and inspect the result. Start here —
// ~60 lines end to end.
//
//   $ ./build/examples/quickstart
//
// The dataset is the kind of nominal data K-Modes was built for: items
// described by unordered category values ("colour=blue"), where means are
// meaningless and the centroid is the per-attribute mode. The same
// ClustererSpec serves every other modality (numeric, mixed, binarized
// text) by flipping its two enums.

#include <cstdio>

#include "api/clusterer.h"
#include "data/csv.h"

int main() {
  using namespace lshclust;

  // A small product table: attributes are colour / size / material, plus a
  // ground-truth label column for measuring purity.
  const char* kCsv =
      "colour,size,material,label\n"
      "blue,small,wood,0\n"
      "blue,small,metal,0\n"
      "blue,medium,wood,0\n"
      "red,large,metal,1\n"
      "red,large,plastic,1\n"
      "red,medium,metal,1\n"
      "green,small,fabric,2\n"
      "green,small,wool,2\n"
      "green,medium,fabric,2\n"
      "blue,small,wood,0\n"
      "red,large,metal,1\n"
      "green,small,fabric,2\n";

  auto dataset = ParseCategoricalCsv(kCsv);
  if (!dataset.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %u items x %u attributes\n", dataset->num_items(),
              dataset->num_attributes());

  // Configure the clusterer: categorical data, MinHash acceleration
  // (MH-K-Modes), k clusters, banding b x r. On 12 items the LSH
  // machinery is overkill — the point is that the API is identical at
  // 12 items and 250 000. Create() validates the whole spec up front.
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine.num_clusters = 3;
  spec.engine.seed = 2;
  spec.minhash.banding = {8, 2};  // 8 bands of 2 rows
  auto clusterer = Clusterer::Create(spec);
  if (!clusterer.ok()) {
    std::fprintf(stderr, "bad spec: %s\n",
                 clusterer.status().ToString().c_str());
    return 1;
  }

  auto report = clusterer->Fit(*dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const ClusteringResult& result = report->result;
  std::printf("converged after %zu iterations, cost P(W,Q) = %.0f\n",
              result.iterations.size(), result.final_cost);
  for (uint32_t item = 0; item < dataset->num_items(); ++item) {
    std::printf("  item %2u (%s, %s, %s) -> cluster %u\n", item,
                dataset->ValueToString(item, 0).c_str(),
                dataset->ValueToString(item, 1).c_str(),
                dataset->ValueToString(item, 2).c_str(),
                result.assignment[item]);
  }

  // Per-iteration instrumentation: the series the paper's figures plot.
  for (const auto& it : result.iterations) {
    std::printf("iteration %u: %.3f ms, %llu moves, mean shortlist %.2f\n",
                it.iteration, it.seconds * 1e3,
                static_cast<unsigned long long>(it.moves),
                it.mean_shortlist);
  }
  return 0;
}
