// Streaming clustering — the paper's §VI "online streaming clustering
// framework" future work, running end to end through the
// lshclust::Clusterer front door:
//
//   $ ./build/examples/streaming_ingest [--warmup=12000] [--stream=8000]
//       [--batch=256] [--threads=4]
//
// A warm-up batch is clustered via Clusterer::MakeStreamingSession
// (batch MH-K-Modes under the hood); after that, items arrive in
// micro-batches (--batch=1 ingests one at a time). Each arrival is
// MinHashed, shortlisted against everything seen so far (warm-up AND
// earlier arrivals, via the growable index), assigned to the nearest
// mode, and folded into its cluster's mode incrementally; micro-batches
// fan the signing and shortlisting out across --threads workers with
// results bit-identical to one-at-a-time ingestion. The demo compares the
// streaming result against a full batch re-clustering of all items
// through the same Clusterer spec.

#include <algorithm>
#include <cstdio>
#include <span>

#include "api/clusterer.h"
#include "data/slicing.h"
#include "datagen/conjunctive_generator.h"
#include "metrics/metrics.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("streaming_ingest");
  int64_t warmup_items = 12000;
  int64_t stream_items = 8000;
  int64_t groups = 1500;
  int64_t seed = 21;
  int64_t batch_size = 256;
  int64_t threads = 1;
  flags.AddInt64("warmup", &warmup_items, "items in the warm-up batch");
  flags.AddInt64("stream", &stream_items, "items arriving afterwards");
  flags.AddInt64("groups", &groups, "clusters k");
  flags.AddInt64("seed", &seed, "RNG seed");
  flags.AddInt64("batch", &batch_size,
                 "arrivals per micro-batch (1 = one at a time)");
  flags.AddInt64("threads", &threads, "ingest worker threads (0 = all cores)");
  const Status flag_status = flags.Parse(argc, argv);
  if (flag_status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(flag_status);

  ConjunctiveDataOptions data;
  data.num_items = static_cast<uint32_t>(warmup_items + stream_items);
  data.num_attributes = 50;
  data.num_clusters = static_cast<uint32_t>(groups);
  data.domain_size = 20000;
  data.seed = static_cast<uint64_t>(seed);
  auto all = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(all.status());
  auto warmup = SliceDataset(*all, 0, static_cast<uint32_t>(warmup_items));
  LSHC_CHECK_OK(warmup.status());

  // One spec serves the streaming session and the batch reference run.
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine.num_clusters = static_cast<uint32_t>(groups);
  spec.engine.seed = static_cast<uint64_t>(seed);
  spec.engine.num_threads = static_cast<uint32_t>(threads);
  spec.minhash.banding = {20, 5};
  auto clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(clusterer.status());

  StreamingSessionOptions session_options;
  session_options.ingest_threads = static_cast<uint32_t>(threads);

  Stopwatch watch;
  auto stream = clusterer->MakeStreamingSession(*warmup, session_options);
  LSHC_CHECK_OK(stream.status());
  std::printf("bootstrap: clustered %lld items into %lld groups in %.2fs "
              "(%zu iterations)\n",
              static_cast<long long>(warmup_items),
              static_cast<long long>(groups), watch.ElapsedSeconds(),
              stream->bootstrap_result().iterations.size());

  watch.Restart();
  if (batch_size <= 1) {
    for (int64_t i = 0; i < stream_items; ++i) {
      const uint32_t item = static_cast<uint32_t>(warmup_items + i);
      LSHC_CHECK_OK(stream->Ingest(all->Row(item)).status());
    }
  } else {
    const uint32_t m = all->num_attributes();
    uint32_t item = static_cast<uint32_t>(warmup_items);
    while (item < all->num_items()) {
      const uint32_t take = std::min(static_cast<uint32_t>(batch_size),
                                     all->num_items() - item);
      const std::span<const uint32_t> rows(
          all->codes().data() + static_cast<size_t>(item) * m,
          static_cast<size_t>(take) * m);
      LSHC_CHECK_OK(stream->IngestBatch(rows).status());
      item += take;
    }
  }
  const double ingest_seconds = watch.ElapsedSeconds();
  const auto& stats = stream->stats();
  std::printf("streamed %lld items in %.2fs (%.0f items/s, %.2f mean "
              "shortlist, %llu exhaustive fallbacks)\n",
              static_cast<long long>(stream_items), ingest_seconds,
              stream_items / ingest_seconds, stats.mean_shortlist(),
              static_cast<unsigned long long>(stats.exhaustive_fallbacks));

  const double streaming_purity =
      ComputePurity(stream->assignment(), all->labels()).ValueOrDie();

  // Reference: re-cluster everything from scratch with the same spec.
  watch.Restart();
  auto batch = clusterer->Fit(*all);
  LSHC_CHECK_OK(batch.status());
  const double batch_seconds = watch.ElapsedSeconds();
  const double batch_purity =
      ComputePurity(batch->result.assignment, all->labels()).ValueOrDie();

  std::printf("\n%-26s %10s %10s\n", "strategy", "time (s)", "purity");
  std::printf("%-26s %10.2f %10.4f\n", "streaming (incremental)",
              ingest_seconds, streaming_purity);
  std::printf("%-26s %10.2f %10.4f\n", "batch re-clustering", batch_seconds,
              batch_purity);
  std::printf("\nincremental ingestion handled the stream %.1fx faster than "
              "re-clustering, at %+.3f purity\n",
              batch_seconds / ingest_seconds,
              streaming_purity - batch_purity);
  return 0;
}
