// Product-catalog grouping with a massive number of clusters — the
// "large k" regime that motivates the paper (§I: clustering into a large
// number of centroid-represented groups is bottlenecked by the item-to-
// centroid comparisons).
//
//   $ ./build/examples/catalog_dedup [--products=20000] [--groups=2000]
//
// Scenario: a marketplace ingests product listings described by
// categorical attributes (brand, category, colour, ...); near-duplicate
// listings must be grouped. The demo clusters the catalog through the
// lshclust::Clusterer front door and then *routes newly arriving
// listings* to candidate groups through a standalone shortlist index —
// the online-assignment pattern the paper's future work (§VI, streaming)
// points at, built from GetCandidatesForTokens.

#include <algorithm>
#include <cstdio>

#include "api/clusterer.h"
#include "clustering/dissimilarity.h"
#include "datagen/conjunctive_generator.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("catalog_dedup");
  int64_t products = 20000;
  int64_t groups = 2000;
  int64_t attributes = 40;
  int64_t arrivals = 1000;
  int64_t seed = 17;
  flags.AddInt64("products", &products, "listings in the catalog");
  flags.AddInt64("groups", &groups, "product groups (clusters)");
  flags.AddInt64("attributes", &attributes, "categorical attributes");
  flags.AddInt64("arrivals", &arrivals, "new listings to route after");
  flags.AddInt64("seed", &seed, "RNG seed");
  const Status flag_status = flags.Parse(argc, argv);
  if (flag_status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(flag_status);

  // The catalog: each group is a conjunctive rule over the attributes
  // (same brand+category+line agree on most fields; the rest vary).
  ConjunctiveDataOptions data;
  data.num_items = static_cast<uint32_t>(products + arrivals);
  data.num_attributes = static_cast<uint32_t>(attributes);
  data.num_clusters = static_cast<uint32_t>(groups);
  data.domain_size = 10000;
  data.min_rule_fraction = 0.6;
  data.max_rule_fraction = 0.9;
  data.seed = static_cast<uint64_t>(seed);
  auto all = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(all.status());

  // Split: the first `products` items are the existing catalog, the rest
  // arrive later.
  auto catalog = CategoricalDataset::FromCodes(
      static_cast<uint32_t>(products), all->num_attributes(),
      all->num_codes(),
      {all->codes().begin(),
       all->codes().begin() + products * all->num_attributes()},
      {all->labels().begin(), all->labels().begin() + products});
  LSHC_CHECK_OK(catalog.status());

  std::printf("catalog: %u listings x %u attributes into %lld groups\n",
              catalog->num_items(), catalog->num_attributes(),
              static_cast<long long>(groups));

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine.num_clusters = static_cast<uint32_t>(groups);
  spec.engine.seed = static_cast<uint64_t>(seed);
  spec.minhash.banding = {20, 5};

  Stopwatch watch;
  auto clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(clusterer.status());
  auto report = clusterer->Fit(*catalog);
  LSHC_CHECK_OK(report.status());
  const ClusteringResult& result = report->result;
  std::printf("clustered in %.2fs (%zu iterations, %s), mean shortlist "
              "%.2f of %lld groups\n",
              watch.ElapsedSeconds(), result.iterations.size(),
              result.converged ? "converged" : "iteration cap",
              result.iterations.back().mean_shortlist,
              static_cast<long long>(groups));

  // Route the new arrivals WITHOUT re-clustering: LSH-shortlist the
  // candidate groups through a standalone index over the catalog (same
  // options and seed as the fit, so buckets match; one extra signing
  // pass is the price of a routing index that outlives the fit), then
  // compare only against those modes.
  ClusterShortlistProvider provider(spec.minhash,
                                    spec.engine.num_clusters);
  LSHC_CHECK_OK(provider.Prepare(*catalog));
  ModeTable modes(static_cast<uint32_t>(groups), catalog->num_attributes());
  Rng rng(static_cast<uint64_t>(seed));
  modes.RecomputeFromAssignment(*catalog, result.assignment,
                                EmptyClusterPolicy::kKeepPreviousMode, rng);

  watch.Restart();
  std::vector<uint32_t> tokens, shortlist;
  uint64_t shortlist_total = 0;
  std::vector<uint32_t> routed(arrivals);
  for (int64_t arrival = 0; arrival < arrivals; ++arrival) {
    const uint32_t item = static_cast<uint32_t>(products + arrival);
    all->PresentTokens(item, &tokens);
    provider.GetCandidatesForTokens(tokens, result.assignment, &shortlist);
    shortlist_total += shortlist.size();

    uint32_t best_group = 0;
    uint32_t best_distance = ~0u;
    for (const uint32_t group : shortlist) {
      const uint32_t d = MismatchDistance(all->Row(item), modes.Mode(group));
      if (d < best_distance) {
        best_distance = d;
        best_group = group;
      }
    }
    routed[arrival] = best_group;
  }
  const double routing_seconds = watch.ElapsedSeconds();

  // Reference: exhaustive nearest-mode routing over all groups.
  watch.Restart();
  uint32_t agree = 0;
  for (int64_t arrival = 0; arrival < arrivals; ++arrival) {
    const uint32_t item = static_cast<uint32_t>(products + arrival);
    uint32_t best_distance = ~0u;
    for (int64_t group = 0; group < groups; ++group) {
      const uint32_t d = BoundedMismatchDistance(
          all->Row(item).data(), modes.ModeData(static_cast<uint32_t>(group)),
          all->num_attributes(), best_distance);
      if (d < best_distance) {
        best_distance = d;
      }
    }
    // The shortlist route agrees when it reaches the same distance (ties
    // between equally-near groups count as agreement).
    agree += MismatchDistance(all->Row(item), modes.Mode(routed[arrival])) ==
                     best_distance
                 ? 1
                 : 0;
  }
  const double exhaustive_seconds = watch.ElapsedSeconds();

  std::printf("routed %lld arrivals in %.3fs via LSH shortlists (mean size "
              "%.1f) vs %.3fs exhaustively (%.1fx); %.1f%% routed to an "
              "equally-near group\n",
              static_cast<long long>(arrivals), routing_seconds,
              static_cast<double>(shortlist_total) / arrivals,
              exhaustive_seconds, exhaustive_seconds / routing_seconds,
              100.0 * agree / arrivals);
  return 0;
}
