// Product-catalog grouping with a massive number of clusters — the
// "large k" regime that motivates the paper (§I: clustering into a large
// number of centroid-represented groups is bottlenecked by the item-to-
// centroid comparisons).
//
//   $ ./build/examples/catalog_dedup [--products=20000] [--groups=2000]
//
// Scenario: a marketplace ingests product listings described by
// categorical attributes (brand, category, colour, ...); near-duplicate
// listings must be grouped. The demo clusters the catalog through the
// lshclust::Clusterer front door and then *routes newly arriving
// listings* through the very index the fit built: Fit retains its
// shortlist state (spec.retain_index, on by default), so
// Clusterer::PredictRouted signs each arrival, probes the fit-time
// buckets and compares only against the candidate groups — no second
// signing pass over the catalog, no standalone re-built index (the
// IndexHandle's dataset_sign_passes counter proves it below). The
// handle also enumerates near-duplicate candidates directly, the raw
// material of pairwise dedup.

#include <cstdio>

#include "api/clusterer.h"
#include "datagen/conjunctive_generator.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("catalog_dedup");
  int64_t products = 20000;
  int64_t groups = 2000;
  int64_t attributes = 40;
  int64_t arrivals = 1000;
  int64_t seed = 17;
  flags.AddInt64("products", &products, "listings in the catalog");
  flags.AddInt64("groups", &groups, "product groups (clusters)");
  flags.AddInt64("attributes", &attributes, "categorical attributes");
  flags.AddInt64("arrivals", &arrivals, "new listings to route after");
  flags.AddInt64("seed", &seed, "RNG seed");
  const Status flag_status = flags.Parse(argc, argv);
  if (flag_status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(flag_status);

  // The catalog: each group is a conjunctive rule over the attributes
  // (same brand+category+line agree on most fields; the rest vary).
  ConjunctiveDataOptions data;
  data.num_items = static_cast<uint32_t>(products + arrivals);
  data.num_attributes = static_cast<uint32_t>(attributes);
  data.num_clusters = static_cast<uint32_t>(groups);
  data.domain_size = 10000;
  data.min_rule_fraction = 0.6;
  data.max_rule_fraction = 0.9;
  data.seed = static_cast<uint64_t>(seed);
  auto all = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(all.status());

  // Split: the first `products` items are the existing catalog, the rest
  // arrive later.
  auto catalog = CategoricalDataset::FromCodes(
      static_cast<uint32_t>(products), all->num_attributes(),
      all->num_codes(),
      {all->codes().begin(),
       all->codes().begin() + products * all->num_attributes()},
      {all->labels().begin(), all->labels().begin() + products});
  LSHC_CHECK_OK(catalog.status());
  auto arriving = CategoricalDataset::FromCodes(
      static_cast<uint32_t>(arrivals), all->num_attributes(),
      all->num_codes(),
      {all->codes().begin() + products * all->num_attributes(),
       all->codes().end()});
  LSHC_CHECK_OK(arriving.status());

  std::printf("catalog: %u listings x %u attributes into %lld groups\n",
              catalog->num_items(), catalog->num_attributes(),
              static_cast<long long>(groups));

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine.num_clusters = static_cast<uint32_t>(groups);
  spec.engine.seed = static_cast<uint64_t>(seed);
  spec.minhash.banding = {20, 5};
  // spec.retain_index defaults to true: Fit keeps the index it built,
  // which is what the routed arrivals below run against.

  Stopwatch watch;
  auto clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(clusterer.status());
  auto report = clusterer->Fit(*catalog);
  LSHC_CHECK_OK(report.status());
  const ClusteringResult& result = report->result;
  LSHC_CHECK(report->index_retained)
      << "fit should have retained its shortlist index";
  std::printf("clustered in %.2fs (%zu iterations, %s), mean shortlist "
              "%.2f of %lld groups\n",
              watch.ElapsedSeconds(), result.iterations.size(),
              result.converged ? "converged" : "iteration cap",
              result.iterations.back().mean_shortlist,
              static_cast<long long>(groups));

  // The retained fit-time index, as a live handle: occupancy stats for
  // capacity planning, and direct near-duplicate candidate enumeration —
  // the pairs the banding S-curve considers similar, with zero distance
  // computations.
  auto handle = clusterer->index();
  LSHC_CHECK_OK(handle.status());
  const BandedIndex::Stats occupancy = handle->ComputeStats();
  std::printf("retained index: %llu buckets (largest %llu, mean %.2f), "
              "%.1f MiB\n",
              static_cast<unsigned long long>(occupancy.total_buckets),
              static_cast<unsigned long long>(occupancy.largest_bucket),
              occupancy.mean_bucket_size,
              static_cast<double>(handle->memory_bytes()) / (1024.0 * 1024.0));
  uint64_t duplicate_candidates = 0;
  const uint32_t sampled =
      catalog->num_items() < 100u ? catalog->num_items() : 100u;
  for (uint32_t item = 0; item < sampled; ++item) {
    duplicate_candidates += handle->CandidateItemsOf(item).size() - 1;
  }
  std::printf("dedup candidates: %.1f co-bucketed listings per listing "
              "(first %u sampled)\n",
              static_cast<double>(duplicate_candidates) / sampled, sampled);

  // Route the new arrivals WITHOUT re-clustering and WITHOUT re-signing
  // the catalog: each arrival is signed, probes the fit-time buckets and
  // is compared only against the candidate groups (exhaustive fallback
  // when a probe comes back empty).
  watch.Restart();
  auto routed = clusterer->PredictRouted(*arriving);
  LSHC_CHECK_OK(routed.status());
  const double routing_seconds = watch.ElapsedSeconds();

  // The dedup decisions must come from the retained index alone: the
  // catalog was signed exactly once (by Fit), routing added nothing.
  // (The counter is snapshotted at handle creation, so re-fetch a fresh
  // handle to observe the post-routing value.)
  LSHC_CHECK(clusterer->index()->dataset_sign_passes() == 1)
      << "routing re-signed the fitted catalog";
  // Routing is deterministic: a second pass decides identically.
  auto routed_again = clusterer->PredictRouted(*arriving);
  LSHC_CHECK_OK(routed_again.status());
  LSHC_CHECK(*routed == *routed_again)
      << "routed dedup decisions changed between identical calls";

  // Reference: exhaustive nearest-group routing over all groups.
  watch.Restart();
  auto exhaustive = clusterer->Predict(*arriving);
  LSHC_CHECK_OK(exhaustive.status());
  const double exhaustive_seconds = watch.ElapsedSeconds();

  uint32_t agree = 0;
  for (int64_t arrival = 0; arrival < arrivals; ++arrival) {
    agree += (*routed)[arrival] == (*exhaustive)[arrival] ? 1 : 0;
  }

  std::printf("routed %lld arrivals in %.3fs via the retained fit-time "
              "index vs %.3fs exhaustively (%.1fx); %.1f%% routed to the "
              "exhaustive scan's group\n",
              static_cast<long long>(arrivals), routing_seconds,
              exhaustive_seconds, exhaustive_seconds / routing_seconds,
              100.0 * agree / arrivals);
  return 0;
}
