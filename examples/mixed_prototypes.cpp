// Mixed categorical + numeric clustering — the paper's §VI "combinations
// of both" future work: K-Prototypes accelerated with one LSH family per
// modality (MinHash over the categorical tokens, SimHash over the numeric
// vector; candidate clusters are the union of both indexes), driven
// through the lshclust::Clusterer front door.
//
//   $ ./build/examples/mixed_prototypes [--items=15000] [--clusters=1000]
//
// Scenario: customer records with categorical fields (plan, region,
// device, ...) and numeric usage features; segments are defined by both.

#include <cstdio>

#include "api/clusterer.h"
#include "datagen/mixed_generator.h"
#include "metrics/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("mixed_prototypes");
  int64_t items = 15000;
  int64_t clusters = 1000;
  double gamma = 0.5;
  int64_t seed = 27;
  flags.AddInt64("items", &items, "records to cluster");
  flags.AddInt64("clusters", &clusters, "segments k");
  flags.AddDouble("gamma", &gamma, "numeric-vs-categorical weight");
  flags.AddInt64("seed", &seed, "RNG seed");
  const Status flag_status = flags.Parse(argc, argv);
  if (flag_status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(flag_status);

  MixedDataOptions data;
  data.categorical.num_items = static_cast<uint32_t>(items);
  data.categorical.num_attributes = 24;
  data.categorical.num_clusters = static_cast<uint32_t>(clusters);
  data.categorical.domain_size = 5000;
  data.categorical.seed = static_cast<uint64_t>(seed);
  data.numeric_dimensions = 12;
  data.center_box = 15.0;
  data.stddev = 1.0;
  auto dataset = GenerateMixedData(data);
  LSHC_CHECK_OK(dataset.status());
  std::printf("records: %u (%u categorical + %u numeric attributes), "
              "%lld segments\n",
              dataset->num_items(), dataset->num_categorical(),
              dataset->num_numeric(), static_cast<long long>(clusters));

  ClustererSpec spec;
  spec.modality = Modality::kMixed;
  spec.engine.num_clusters = static_cast<uint32_t>(clusters);
  spec.engine.seed = static_cast<uint64_t>(seed);
  spec.engine.max_iterations = 20;
  spec.gamma = gamma;

  std::printf("\n%-26s %10s %10s %8s %12s\n", "method", "total (s)",
              "purity", "iters", "shortlist");
  auto report = [&](const char* name, const ClusteringResult& result) {
    const double purity =
        ComputePurity(result.assignment, dataset->labels()).ValueOrDie();
    double mean_shortlist = 0;
    for (const auto& it : result.iterations) {
      mean_shortlist += it.mean_shortlist;
    }
    mean_shortlist /= static_cast<double>(result.iterations.size());
    std::printf("%-26s %10.2f %10.4f %8zu %12.1f\n", name,
                result.total_seconds, purity, result.iterations.size(),
                mean_shortlist);
  };

  spec.accelerator = Accelerator::kExhaustive;
  auto baseline_clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(baseline_clusterer.status());
  auto baseline = baseline_clusterer->Fit(*dataset);
  LSHC_CHECK_OK(baseline.status());
  report("K-Prototypes", baseline->result);

  spec.accelerator = Accelerator::kMixedConcat;
  spec.mixed_index.categorical_banding = {20, 5};
  auto accelerated_clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(accelerated_clusterer.status());
  auto accelerated = accelerated_clusterer->Fit(*dataset);
  LSHC_CHECK_OK(accelerated.status());
  report("LSH-K-Prototypes", accelerated->result);

  std::printf("\nspeedup: %.1fx\n",
              baseline->result.total_seconds /
                  accelerated->result.total_seconds);
  return 0;
}
