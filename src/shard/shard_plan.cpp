#include "shard/shard_plan.h"

#include <algorithm>

#include "util/logging.h"

namespace lshclust {

ShardPlan::ShardPlan(uint32_t num_items, uint32_t num_shards,
                     uint32_t chunk_size)
    : num_items_(num_items), num_shards_(num_shards),
      chunk_size_(chunk_size) {
  LSHC_CHECK_GE(num_shards, 1u) << "a plan needs at least one shard";
  LSHC_CHECK_GE(chunk_size, 1u) << "chunk_size must be positive";

  // Sizes and the rounded-up chunk counts are computed in 64 bits: both
  // num_shards and chunk_size may legally be near 2^32, where
  // `num_shards + 1` and `size + chunk_size - 1` wrap in uint32.
  shard_begin_.resize(static_cast<size_t>(num_shards_) + 1);
  chunk_offset_.resize(static_cast<size_t>(num_shards_) + 1);
  const uint32_t base = num_items_ / num_shards_;
  const uint32_t remainder = num_items_ % num_shards_;
  uint32_t item = 0;
  uint32_t chunks = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    shard_begin_[s] = item;
    chunk_offset_[s] = chunks;
    const uint32_t size = base + (s < remainder ? 1u : 0u);
    item += size;
    chunks += static_cast<uint32_t>(
        (static_cast<uint64_t>(size) + chunk_size_ - 1) / chunk_size_);
  }
  shard_begin_[num_shards_] = item;
  chunk_offset_[num_shards_] = chunks;
  total_chunks_ = chunks;
}

ShardPlan ShardPlan::Clamped(uint32_t num_items, uint32_t num_shards,
                             uint32_t chunk_size) {
  LSHC_CHECK_GE(chunk_size, 1u) << "chunk_size must be positive";
  const uint32_t flat_chunks = static_cast<uint32_t>(
      (static_cast<uint64_t>(num_items) + chunk_size - 1) / chunk_size);
  return ShardPlan(num_items, std::min(num_shards, std::max(1u, flat_chunks)),
                   chunk_size);
}

ShardSlice ShardPlan::shard(uint32_t s) const {
  LSHC_DCHECK(s < num_shards_);
  return {shard_begin_[s], shard_begin_[s + 1]};
}

uint32_t ShardPlan::ChunksInShard(uint32_t s) const {
  LSHC_DCHECK(s < num_shards_);
  return chunk_offset_[s + 1] - chunk_offset_[s];
}

uint32_t ShardPlan::ChunkOffsetOfShard(uint32_t s) const {
  LSHC_DCHECK(s < num_shards_);
  return chunk_offset_[s];
}

ShardPlan::Chunk ShardPlan::chunk(uint32_t index) const {
  LSHC_DCHECK(index < total_chunks_);
  // First shard whose chunk range ends beyond `index`. Shard counts are
  // tiny next to item counts, so the binary search is noise.
  const auto it = std::upper_bound(chunk_offset_.begin(),
                                   chunk_offset_.end(), index);
  const uint32_t s =
      static_cast<uint32_t>(it - chunk_offset_.begin()) - 1;
  const uint32_t local = index - chunk_offset_[s];
  // 64-bit again: local * chunk_size and begin + chunk_size can exceed
  // 2^32 when chunk_size is huge (the results, clamped to the shard end,
  // always fit).
  const uint32_t begin = static_cast<uint32_t>(
      shard_begin_[s] + static_cast<uint64_t>(local) * chunk_size_);
  const uint32_t end = static_cast<uint32_t>(
      std::min<uint64_t>(shard_begin_[s + 1],
                         static_cast<uint64_t>(begin) + chunk_size_));
  return {s, begin, end};
}

}  // namespace lshclust
