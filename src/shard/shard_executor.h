#pragma once

/// \file shard_executor.h
/// \brief Dispatches the chunks of a ShardPlan to a worker pool (or runs
/// them in-line), preserving the determinism contract.
///
/// The chunk *decomposition* comes from the plan and never from the pool,
/// so which worker runs which chunk is the only thing thread timing can
/// change — callers that write per-chunk results into
/// ShardedAccumulator slots and keep per-(shard, worker) scratch get
/// bit-identical passes for every pool size, including none.

#include <cstdint>

#include "shard/shard_plan.h"
#include "util/thread_pool.h"

namespace lshclust {

/// Runs `fn(chunk, global_chunk_index, worker_index)` for every chunk of
/// `plan`. With a pool, chunks are dispatched one per work unit across the
/// workers; without one they run in-line in global chunk order with
/// worker_index 0.
template <typename Fn>
void ForEachShardChunk(const ShardPlan& plan, ThreadPool* pool,
                       const Fn& fn) {
  const uint32_t num_chunks = plan.num_chunks();
  if (pool == nullptr) {
    for (uint32_t index = 0; index < num_chunks; ++index) {
      fn(plan.chunk(index), index, 0u);
    }
    return;
  }
  pool->ParallelFor(0, num_chunks, 1,
                    [&](uint32_t begin, uint32_t end, uint32_t worker) {
                      for (uint32_t index = begin; index < end; ++index) {
                        fn(plan.chunk(index), index, worker);
                      }
                    });
}

}  // namespace lshclust
