#pragma once

/// \file shard_plan.h
/// \brief The two-level (shard -> chunk) decomposition of an item range.
///
/// The engine's batch-parallel passes and the streaming micro-batch ingest
/// both cut a flat item range into fixed-size chunks and dispatch them to
/// a worker pool. A ShardPlan inserts one level above that: the range is
/// first partitioned into S contiguous *shards* (each the item slice a
/// future node / NUMA domain would own), and each shard is then cut into
/// chunks exactly like the flat decomposition cut the whole range.
///
/// Two properties make the plan safe to thread through bit-identical
/// pipelines:
///
///  * **Determinism** — every boundary is a pure function of
///    (num_items, num_shards, chunk_size); nothing depends on thread
///    timing or on which worker executes which chunk.
///  * **S=1 degeneracy** — with one shard the chunk decomposition equals
///    the flat one (chunk c covers [c*chunk_size, ...)), so the sharded
///    execution path *is* the historical unsharded path, not a parallel
///    implementation of it.
///
/// Shards split as evenly as possible: the first (num_items % S) shards
/// get one extra item. More shards than items is legal — trailing shards
/// are empty and own zero chunks.
///
/// Chunks are addressed by a single global index in
/// [0, num_chunks()), ordered shard-major (all of shard 0's chunks, then
/// shard 1's, ...). Merging per-chunk accumulators in global chunk order
/// therefore *is* the "merge per-shard results in shard order" rule — see
/// shard/sharded_accumulator.h.

#include <cstdint>
#include <vector>

namespace lshclust {

/// \brief A shard's contiguous item slice (may be empty).
struct ShardSlice {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// \brief Deterministic shard -> chunk decomposition of [0, num_items).
class ShardPlan {
 public:
  /// \brief One schedulable unit: a chunk of consecutive items inside one
  /// shard.
  struct Chunk {
    /// The shard owning this chunk.
    uint32_t shard = 0;
    /// Item range [begin, end) — global item ids, never shard-relative.
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  /// Builds the plan. `num_shards` and `chunk_size` must be >= 1
  /// (checked); `num_items` may be 0 (an empty plan with no chunks).
  /// The constructor takes `num_shards` literally and allocates two
  /// (num_shards + 1)-entry offset vectors — callers holding
  /// user-supplied shard counts should go through Clamped() instead.
  ShardPlan(uint32_t num_items, uint32_t num_shards, uint32_t chunk_size);

  /// Builds a plan with `num_shards` clamped to the flat chunk count
  /// (ceil(num_items / chunk_size), minimum 1): a shard smaller than one
  /// chunk cannot split further, so the clamp is invisible in any
  /// bit-identical pipeline and keeps per-shard bookkeeping proportional
  /// to actual work units instead of the requested shard count. This is
  /// the entry point for user-supplied shard counts (the engine and the
  /// streaming ingest both construct their plans here).
  static ShardPlan Clamped(uint32_t num_items, uint32_t num_shards,
                           uint32_t chunk_size);

  uint32_t num_items() const { return num_items_; }
  uint32_t num_shards() const { return num_shards_; }
  uint32_t chunk_size() const { return chunk_size_; }

  /// Total chunk count over all shards.
  uint32_t num_chunks() const { return total_chunks_; }

  /// The contiguous item slice of shard `s`.
  ShardSlice shard(uint32_t s) const;

  /// Number of chunks shard `s` owns (0 for empty shards).
  uint32_t ChunksInShard(uint32_t s) const;

  /// Global index of shard `s`'s first chunk (== num_chunks() of all
  /// earlier shards summed).
  uint32_t ChunkOffsetOfShard(uint32_t s) const;

  /// Resolves global chunk index -> (shard, item range).
  Chunk chunk(uint32_t index) const;

 private:
  uint32_t num_items_ = 0;
  uint32_t num_shards_ = 1;
  uint32_t chunk_size_ = 1;
  uint32_t total_chunks_ = 0;
  /// shard s owns items [shard_begin_[s], shard_begin_[s + 1]).
  std::vector<uint32_t> shard_begin_;
  /// shard s owns global chunks [chunk_offset_[s], chunk_offset_[s + 1]).
  std::vector<uint32_t> chunk_offset_;
};

}  // namespace lshclust
