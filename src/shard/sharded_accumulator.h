#pragma once

/// \file sharded_accumulator.h
/// \brief Per-chunk accumulator storage for a ShardPlan, merged in shard
/// order.
///
/// A sharded pass gives every chunk its own accumulator slot (workers
/// never share a slot, so the parallel phase needs no locks), then folds
/// the slots *in global chunk order* — shard-major, chunk order within a
/// shard — once the pass completes. Because the slot layout and the merge
/// order are pure functions of the ShardPlan, the folded totals are
/// bit-identical for every (shard count x thread count) combination; with
/// S=1 the merge degenerates to the historical flat per-chunk merge.
///
/// The slot vector is reused across passes (Reset re-initialises in
/// place), so a converging refinement loop stops allocating after its
/// first pass.

#include <cstdint>
#include <vector>

#include "shard/shard_plan.h"
#include "util/logging.h"

namespace lshclust {

/// \brief Owns one `Stats` slot per chunk of a ShardPlan.
template <typename Stats>
class ShardedAccumulator {
 public:
  ShardedAccumulator() = default;

  /// Sizes the accumulator for `plan` and value-initialises every slot.
  /// Reuses the allocation when the plan's chunk count fits the current
  /// capacity.
  explicit ShardedAccumulator(const ShardPlan& plan) { Reset(plan); }

  /// Re-initialises for a (possibly different) plan without shrinking the
  /// underlying allocation.
  void Reset(const ShardPlan& plan) {
    slots_.assign(plan.num_chunks(), Stats{});
  }

  /// The slot of global chunk `index`; each chunk writes only its own.
  Stats* slot(uint32_t index) {
    LSHC_DCHECK(index < slots_.size());
    return &slots_[index];
  }

  uint32_t num_slots() const { return static_cast<uint32_t>(slots_.size()); }

  /// Folds every slot in global chunk order (== shard order, then chunk
  /// order within the shard). `fn` is invoked as fn(const Stats&).
  template <typename Fn>
  void MergeInOrder(Fn&& fn) const {
    for (const Stats& stats : slots_) fn(stats);
  }

 private:
  std::vector<Stats> slots_;
};

}  // namespace lshclust
