#pragma once

/// \file lshclust.h
/// \brief Umbrella header: the whole public API of lshclust.
///
/// **The front door is `api/clusterer.h`** — a runtime-configurable
/// `lshclust::Clusterer` covering every modality (categorical / numeric /
/// mixed / text-binarized) and accelerator (exhaustive / minhash /
/// simhash / mixed-concat / canopy) behind one Fit / Predict / Stream
/// lifecycle with Status-based validation and progress/cancel hooks.
/// Most applications need only:
///   * data/csv.h + api/clusterer.h            — cluster anything
///   * core/experiment.h + core/reporters.h    — baseline comparisons
/// The per-algorithm headers (core/mh_kmodes.h, core/lsh_kmeans.h,
/// core/lsh_kprototypes.h, core/canopy_kmodes.h) are deprecated shims
/// over the Clusterer, kept for compatibility; core/streaming.h is the
/// engine beneath Clusterer::MakeStreamingSession. Include individual
/// headers directly for faster builds; include this one for exploration
/// and prototyping.

// The front door (clusterer.h pulls in index_handle.h — the retained
// fit-time index Fit hands back for routed prediction and dedup probes).
#include "api/clusterer.h"  // IWYU pragma: export
#include "api/index_handle.h"  // IWYU pragma: export

// The serving layer: immutable FrozenModel snapshots (Clusterer::Snapshot
// / StreamingSession::Snapshot) published to lock-free readers through a
// ModelServer.
#include "serving/frozen_model.h"  // IWYU pragma: export
#include "serving/model_server.h"  // IWYU pragma: export
#include "serving/routing.h"       // IWYU pragma: export

// Model persistence: serving::SaveFrozenModel / LoadFrozenModel write and
// read the versioned on-disk format; persist/model_io.h adds the decoded
// view (DecodeModelFile) and the TOC/checksum inspector (InspectModelFile)
// behind Clusterer::FromSnapshot and the model_inspect tool.
#include "persist/model_io.h"  // IWYU pragma: export

// Foundation.
#include "util/flags.h"          // IWYU pragma: export
#include "util/logging.h"        // IWYU pragma: export
#include "util/macros.h"         // IWYU pragma: export
#include "util/result.h"         // IWYU pragma: export
#include "util/rng.h"            // IWYU pragma: export
#include "util/status.h"         // IWYU pragma: export
#include "util/stopwatch.h"      // IWYU pragma: export
#include "util/thread_pool.h"    // IWYU pragma: export
#include "util/string_util.h"    // IWYU pragma: export

// Hashing substrate.
#include "hashing/hash_family.h"              // IWYU pragma: export
#include "hashing/minhash.h"                  // IWYU pragma: export
#include "hashing/one_permutation_minhash.h"  // IWYU pragma: export
#include "hashing/simhash.h"                  // IWYU pragma: export

// LSH machinery.
#include "lsh/banded_index.h"          // IWYU pragma: export
#include "lsh/dynamic_banded_index.h"  // IWYU pragma: export
#include "lsh/flat_hash_table.h"       // IWYU pragma: export
#include "lsh/probability.h"           // IWYU pragma: export
#include "lsh/tuning.h"                // IWYU pragma: export

// Datasets and I/O.
#include "data/categorical_dataset.h"  // IWYU pragma: export
#include "data/csv.h"                  // IWYU pragma: export
#include "data/interner.h"             // IWYU pragma: export
#include "data/mixed_dataset.h"        // IWYU pragma: export
#include "data/serialize.h"            // IWYU pragma: export
#include "data/slicing.h"              // IWYU pragma: export

// Synthetic data generators.
#include "datagen/conjunctive_generator.h"  // IWYU pragma: export
#include "datagen/gaussian_mixture.h"       // IWYU pragma: export
#include "datagen/mixed_generator.h"        // IWYU pragma: export
#include "datagen/yahoo_like_corpus.h"      // IWYU pragma: export

// Text pipeline.
#include "text/binarizer.h"  // IWYU pragma: export
#include "text/corpus.h"     // IWYU pragma: export
#include "text/tfidf.h"      // IWYU pragma: export
#include "text/tokenizer.h"  // IWYU pragma: export

// Clustering substrates.
#include "clustering/canopy.h"         // IWYU pragma: export
#include "clustering/centroid_table.h" // IWYU pragma: export
#include "clustering/dissimilarity.h"  // IWYU pragma: export
#include "clustering/engine.h"         // IWYU pragma: export
#include "clustering/fuzzy_kmodes.h"   // IWYU pragma: export
#include "clustering/initializers.h"   // IWYU pragma: export
#include "clustering/kmeans.h"         // IWYU pragma: export
#include "clustering/kmodes.h"         // IWYU pragma: export
#include "clustering/kprototypes.h"    // IWYU pragma: export
#include "clustering/modes.h"          // IWYU pragma: export
#include "clustering/types.h"          // IWYU pragma: export

// Quality metrics.
#include "metrics/metrics.h"  // IWYU pragma: export

// The paper's contribution and its extensions. The shortlist families /
// providers live in the *_shortlist_index.h headers; the remaining
// core/{mh_kmodes,lsh_kmeans,lsh_kprototypes,canopy_kmodes}.h entry
// points are deprecated shims over api/clusterer.h.
#include "core/canopy_kmodes.h"             // IWYU pragma: export
#include "core/canopy_shortlist_index.h"    // IWYU pragma: export
#include "core/cluster_shortlist_index.h"   // IWYU pragma: export
#include "core/error_bound.h"               // IWYU pragma: export
#include "core/experiment.h"                // IWYU pragma: export
#include "core/lsh_kmeans.h"                // IWYU pragma: export
#include "core/lsh_kprototypes.h"           // IWYU pragma: export
#include "core/mh_kmodes.h"                 // IWYU pragma: export
#include "core/mixed_shortlist_index.h"     // IWYU pragma: export
#include "core/reporters.h"                 // IWYU pragma: export
#include "core/shortlist_provider.h"        // IWYU pragma: export
#include "core/simhash_shortlist_index.h"   // IWYU pragma: export
#include "core/streaming.h"                 // IWYU pragma: export
