#pragma once

/// \file hash_family.h
/// \brief Families of pseudo-random hash functions over 64-bit keys.
///
/// MinHash (Broder 1997) simulates random permutations of the token
/// universe with hash functions, exactly as §III-A2 of the paper describes
/// ("the random permutations of the matrix can be simulated by the use of n
/// randomly chosen hash functions"). This header provides three
/// interchangeable families:
///
///  * MultiplyShiftFamily — fastest; universal in the top bits.
///  * UniversalHashFamily — (a*x + b) mod p with p = 2^61 - 1; the textbook
///    2-universal family matching the paper's example h(x) = 2x+1 mod 5.
///  * TabulationHashFamily — 3-independent, strongest guarantees.
///
/// All families are deterministic given a seed.

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace lshclust {

/// \brief h(x) = (a * x) >> (64 - out_bits) with odd multiplier `a`;
/// multiply-shift hashing (Dietzfelbinger et al.). The full-width product is
/// kept so callers can take the top bits they need.
class MultiplyShiftFamily {
 public:
  /// Draws `count` independent functions from the family.
  MultiplyShiftFamily(uint32_t count, uint64_t seed);

  /// Number of functions in the family.
  uint32_t size() const { return static_cast<uint32_t>(multipliers_.size()); }

  /// Applies function `index` to `key`.
  uint64_t Hash(uint32_t index, uint64_t key) const {
    // Adding the increment first makes the family behave well on small
    // consecutive integer keys (pure multiply-shift maps 0 to 0).
    return (key + increments_[index]) * multipliers_[index];
  }

 private:
  std::vector<uint64_t> multipliers_;  // always odd
  std::vector<uint64_t> increments_;
};

/// \brief h(x) = ((a*x + b) mod p) with p = 2^61 - 1 (Mersenne prime),
/// 1 <= a < p, 0 <= b < p. Exactly 2-universal; this is the family the
/// paper's worked example ("h(x) = 2x + 1 mod 5") comes from.
class UniversalHashFamily {
 public:
  /// The Mersenne prime 2^61 - 1 used as the modulus.
  static constexpr uint64_t kPrime = (1ULL << 61) - 1;

  /// Draws `count` independent (a, b) pairs.
  UniversalHashFamily(uint32_t count, uint64_t seed);

  /// Number of functions in the family.
  uint32_t size() const { return static_cast<uint32_t>(a_.size()); }

  /// Applies function `index` to `key`. Output is in [0, 2^61 - 1).
  uint64_t Hash(uint32_t index, uint64_t key) const {
    return ModMulAdd(a_[index], key % kPrime, b_[index]);
  }

  /// Computes (a*x + b) mod p without overflow via 128-bit arithmetic.
  static uint64_t ModMulAdd(uint64_t a, uint64_t x, uint64_t b) {
    const __uint128_t product = static_cast<__uint128_t>(a) * x + b;
    // Fast reduction modulo 2^61 - 1: fold the high bits onto the low bits.
    uint64_t lo = static_cast<uint64_t>(product & kPrime);
    uint64_t hi = static_cast<uint64_t>(product >> 61);
    uint64_t result = lo + hi;
    if (result >= kPrime) result -= kPrime;
    return result;
  }

 private:
  std::vector<uint64_t> a_;
  std::vector<uint64_t> b_;
};

/// \brief Simple tabulation hashing over the 8 bytes of a 64-bit key:
/// h(x) = T0[x0] ^ T1[x1] ^ ... ^ T7[x7]. 3-independent (Patrascu &
/// Thorup), used where the strongest distribution guarantees are wanted.
class TabulationHashFamily {
 public:
  /// Draws `count` independent table sets.
  TabulationHashFamily(uint32_t count, uint64_t seed);

  /// Number of functions in the family.
  uint32_t size() const { return count_; }

  /// Applies function `index` to `key`.
  uint64_t Hash(uint32_t index, uint64_t key) const {
    const Tables& t = tables_[index];
    uint64_t h = 0;
    for (uint32_t byte = 0; byte < 8; ++byte) {
      h ^= t[byte][static_cast<uint8_t>(key >> (8 * byte))];
    }
    return h;
  }

 private:
  using Tables = std::array<std::array<uint64_t, 256>, 8>;
  uint32_t count_;
  std::vector<Tables> tables_;
};

}  // namespace lshclust
