#pragma once

/// \file minhash.h
/// \brief MinHash signature generation (Algorithm 1 of the paper, "SIGGEN").
///
/// A MinHash signature of a token set S under hash functions h_1..h_n is
/// (min_{x in S} h_1(x), ..., min_{x in S} h_n(x)). The probability that two
/// sets agree in one signature component equals their Jaccard similarity
/// (Broder 1997), which makes the componentwise agreement rate an unbiased
/// Jaccard estimator and — after banding, see lsh/banded_index.h — yields
/// the 1-(1-s^r)^b candidate-pair probability the paper builds on.

#include <cstdint>
#include <span>
#include <vector>

#include "hashing/hash_family.h"
#include "util/logging.h"

namespace lshclust {

/// Sentinel signature component for an empty token set: no token ever hashes
/// to 2^64-1 under the families used here in practice, so empty sets never
/// collide with non-empty ones.
inline constexpr uint64_t kEmptySetSignature = ~0ULL;

/// \brief How the n per-component hash functions are derived.
///
/// Double hashing is the default: one strong hash per token regardless of
/// n, and at the banding shapes the paper uses (b*r <= ~250) its component
/// correlations are negligible. At very large b*r (thousands of
/// components) the correlations measurably inflate band-collision rates —
/// use kIndependent where fidelity to the analytic model matters more
/// than signing speed (the Monte-Carlo validator in core/error_bound.h
/// does).
enum class MinHashMode {
  /// n fully independent Mix64-based functions: h_i(x) = mix(x ^ seed_i).
  /// Slower but each component is an independent permutation simulation.
  kIndependent,
  /// Kirsch-Mitzenmacher double hashing: h_i(x) = g1(x) + i * g2(x) from two
  /// independent base hashes. One mix per token regardless of n; the default.
  kDoubleHashing,
};

/// \brief Computes MinHash signatures over token sets (Algorithm 1).
///
/// Tokens are 32-bit interned codes produced by the data layer (an
/// `attribute=value` pair each). The caller is responsible for *presence
/// filtering* — dropping "feature absent" tokens before signing — which the
/// paper performs in lines 2-4 of Algorithm 2 (data::CategoricalDataset
/// exposes PresentTokens() for this).
class MinHasher {
 public:
  /// \param num_hashes signature length n (= bands * rows when banding)
  /// \param seed seeds the hash family; equal seeds give equal signatures
  /// \param mode see MinHashMode
  MinHasher(uint32_t num_hashes, uint64_t seed,
            MinHashMode mode = MinHashMode::kDoubleHashing);

  /// Signature length.
  uint32_t num_hashes() const { return num_hashes_; }

  /// Computes the signature of `tokens` into `out` (length num_hashes()).
  /// An empty token set produces all kEmptySetSignature components.
  void ComputeSignature(std::span<const uint32_t> tokens, uint64_t* out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<uint64_t> ComputeSignature(
      std::span<const uint32_t> tokens) const;

  /// Fraction of agreeing components between two signatures — the unbiased
  /// MinHash estimate of the Jaccard similarity of the underlying sets.
  static double EstimateJaccard(std::span<const uint64_t> a,
                                std::span<const uint64_t> b);

 private:
  uint32_t num_hashes_;
  MinHashMode mode_;
  uint64_t seed1_;
  uint64_t seed2_;
  std::vector<uint64_t> component_seeds_;  // kIndependent mode only
};

}  // namespace lshclust
