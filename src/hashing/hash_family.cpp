#include "hashing/hash_family.h"

namespace lshclust {

MultiplyShiftFamily::MultiplyShiftFamily(uint32_t count, uint64_t seed) {
  Rng rng(seed);
  multipliers_.reserve(count);
  increments_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    multipliers_.push_back(rng.Next() | 1ULL);  // multiplier must be odd
    increments_.push_back(rng.Next());
  }
}

UniversalHashFamily::UniversalHashFamily(uint32_t count, uint64_t seed) {
  Rng rng(seed);
  a_.reserve(count);
  b_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    a_.push_back(1 + rng.Below(kPrime - 1));  // a in [1, p)
    b_.push_back(rng.Below(kPrime));          // b in [0, p)
  }
}

TabulationHashFamily::TabulationHashFamily(uint32_t count, uint64_t seed)
    : count_(count) {
  Rng rng(seed);
  tables_.resize(count);
  for (auto& tables : tables_) {
    for (auto& table : tables) {
      for (auto& entry : table) entry = rng.Next();
    }
  }
}

}  // namespace lshclust
