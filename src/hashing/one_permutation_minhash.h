#pragma once

/// \file one_permutation_minhash.h
/// \brief One-permutation MinHash with optimal densification (extension).
///
/// Classic MinHash (minhash.h) costs O(|S| * n) per item for n signature
/// components. One-permutation hashing (Li, Owen, Zhang 2012) hashes every
/// token once, partitions the 64-bit hash range into n fixed bins and keeps
/// the minimum per bin — O(|S| + n) per item. Empty bins are filled by
/// "optimal densification" (Shrivastava 2017): bin i borrows from a
/// pseudo-randomly chosen non-empty bin, preserving the collision property
/// P(sig_a[i] == sig_b[i]) ≈ J(A, B).
///
/// This is the signature generator to reach for at paper scale (250 000
/// items × 250 hash functions); the ablation bench quantifies the speedup.

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Drop-in alternative to MinHasher with identical output contract
/// (length-n uint64 signatures, kEmptySetSignature sentinel for empty sets).
class OnePermutationMinHasher {
 public:
  /// \param num_bins signature length n
  /// \param seed seeds the permutation and the densification rotation
  OnePermutationMinHasher(uint32_t num_bins, uint64_t seed);

  /// Signature length.
  uint32_t num_hashes() const { return num_bins_; }

  /// Computes the signature of `tokens` into `out` (length num_hashes()).
  void ComputeSignature(std::span<const uint32_t> tokens, uint64_t* out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<uint64_t> ComputeSignature(
      std::span<const uint32_t> tokens) const;

 private:
  uint32_t num_bins_;
  uint64_t seed_;
  std::vector<uint64_t> rotation_seeds_;
};

}  // namespace lshclust
