#pragma once

/// \file simhash.h
/// \brief Random-hyperplane (sign random projection) LSH for numeric
/// vectors — the hash family behind the LSH-K-Means extension.
///
/// The paper's framework is hash-family agnostic: any LSH whose collision
/// probability rises with similarity can feed the banding index. §VI names
/// numeric data as future work; we realise it with Charikar's SimHash,
/// whose per-bit collision probability for vectors u, v is
/// 1 - theta(u, v) / pi. Each signature component is one sign bit (0/1)
/// stored as uint64 so the banding machinery in lsh/banded_index.h applies
/// unchanged: a band of r bits collides iff all r hyperplane sides agree.

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Computes sign-random-projection signatures for dense float
/// vectors.
class SimHasher {
 public:
  /// \param num_bits signature length (= bands * rows when banding)
  /// \param dimensions input vector dimensionality
  /// \param seed seeds the Gaussian hyperplane matrix
  SimHasher(uint32_t num_bits, uint32_t dimensions, uint64_t seed);

  /// Signature length.
  uint32_t num_hashes() const { return num_bits_; }
  /// Expected input dimensionality.
  uint32_t dimensions() const { return dimensions_; }

  /// Computes the signature of `vec` (length dimensions()) into `out`
  /// (length num_hashes()); each component is 0 or 1.
  void ComputeSignature(std::span<const double> vec, uint64_t* out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<uint64_t> ComputeSignature(std::span<const double> vec) const;

  /// Analytic per-bit collision probability for two vectors at angle
  /// `theta_radians`: 1 - theta/pi.
  static double BitCollisionProbability(double theta_radians);

 private:
  uint32_t num_bits_;
  uint32_t dimensions_;
  std::vector<double> hyperplanes_;  // row-major num_bits x dimensions
};

}  // namespace lshclust
