#include "hashing/minhash.h"

#include <algorithm>

#include "simd/dispatch.h"

namespace lshclust {

namespace {

/// Tokens are base-hashed through the dispatched mix64_batch kernel in
/// fixed-size chunks so signing large token sets never allocates.
constexpr uint32_t kTokenChunk = 128;

}  // namespace

MinHasher::MinHasher(uint32_t num_hashes, uint64_t seed, MinHashMode mode)
    : num_hashes_(num_hashes), mode_(mode) {
  LSHC_CHECK_GE(num_hashes, 1u) << "MinHasher needs at least one hash";
  Rng rng(seed);
  seed1_ = rng.Next();
  seed2_ = rng.Next();
  if (mode_ == MinHashMode::kIndependent) {
    component_seeds_.reserve(num_hashes);
    for (uint32_t i = 0; i < num_hashes; ++i) {
      component_seeds_.push_back(rng.Next());
    }
  }
}

void MinHasher::ComputeSignature(std::span<const uint32_t> tokens,
                                 uint64_t* out) const {
  std::fill(out, out + num_hashes_, kEmptySetSignature);
  if (tokens.empty()) return;

  if (mode_ == MinHashMode::kDoubleHashing) {
    // Two independent base hashes per token; component i derives from
    // h + i*step (Kirsch-Mitzenmacher), so cost per token is O(n) adds.
    // The base hashes are batched through mix64_batch and each token's
    // min-scan runs in the dispatched minhash_scan kernel; both are
    // bit-identical to the scalar per-token loop.
    const simd::KernelTable& kernels = simd::ActiveKernels();
    uint64_t g1[kTokenChunk];
    uint64_t g2[kTokenChunk];
    for (size_t begin = 0; begin < tokens.size(); begin += kTokenChunk) {
      const uint32_t count = static_cast<uint32_t>(
          std::min<size_t>(kTokenChunk, tokens.size() - begin));
      kernels.mix64_batch(tokens.data() + begin, count, seed1_, g1);
      kernels.mix64_batch(tokens.data() + begin, count, seed2_, g2);
      for (uint32_t t = 0; t < count; ++t) {
        const uint64_t step = g1[t] | 1ULL;  // odd step visits all residues
        kernels.minhash_scan(out, num_hashes_, g2[t], step);
      }
    }
  } else {
    for (const uint32_t token : tokens) {
      for (uint32_t i = 0; i < num_hashes_; ++i) {
        const uint64_t h = Mix64(token ^ component_seeds_[i]);
        if (h < out[i]) out[i] = h;
      }
    }
  }
}

std::vector<uint64_t> MinHasher::ComputeSignature(
    std::span<const uint32_t> tokens) const {
  std::vector<uint64_t> signature(num_hashes_);
  ComputeSignature(tokens, signature.data());
  return signature;
}

double MinHasher::EstimateJaccard(std::span<const uint64_t> a,
                                  std::span<const uint64_t> b) {
  LSHC_CHECK_EQ(a.size(), b.size())
      << "signatures must have equal length to compare";
  LSHC_CHECK(!a.empty()) << "cannot estimate Jaccard from empty signatures";
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    agree += (a[i] == b[i]) ? 1u : 0u;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace lshclust
