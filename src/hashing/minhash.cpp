#include "hashing/minhash.h"

#include <algorithm>

namespace lshclust {

MinHasher::MinHasher(uint32_t num_hashes, uint64_t seed, MinHashMode mode)
    : num_hashes_(num_hashes), mode_(mode) {
  LSHC_CHECK_GE(num_hashes, 1u) << "MinHasher needs at least one hash";
  Rng rng(seed);
  seed1_ = rng.Next();
  seed2_ = rng.Next();
  if (mode_ == MinHashMode::kIndependent) {
    component_seeds_.reserve(num_hashes);
    for (uint32_t i = 0; i < num_hashes; ++i) {
      component_seeds_.push_back(rng.Next());
    }
  }
}

void MinHasher::ComputeSignature(std::span<const uint32_t> tokens,
                                 uint64_t* out) const {
  std::fill(out, out + num_hashes_, kEmptySetSignature);
  if (tokens.empty()) return;

  if (mode_ == MinHashMode::kDoubleHashing) {
    for (const uint32_t token : tokens) {
      // Two independent base hashes per token; component i derives from
      // g1 + i*g2 (Kirsch-Mitzenmacher), so cost per token is O(n) adds.
      const uint64_t g1 = Mix64(token ^ seed1_);
      uint64_t h = Mix64(token ^ seed2_);
      const uint64_t step = g1 | 1ULL;  // odd step visits all residues
      for (uint32_t i = 0; i < num_hashes_; ++i) {
        if (h < out[i]) out[i] = h;
        h += step;
      }
    }
  } else {
    for (const uint32_t token : tokens) {
      for (uint32_t i = 0; i < num_hashes_; ++i) {
        const uint64_t h = Mix64(token ^ component_seeds_[i]);
        if (h < out[i]) out[i] = h;
      }
    }
  }
}

std::vector<uint64_t> MinHasher::ComputeSignature(
    std::span<const uint32_t> tokens) const {
  std::vector<uint64_t> signature(num_hashes_);
  ComputeSignature(tokens, signature.data());
  return signature;
}

double MinHasher::EstimateJaccard(std::span<const uint64_t> a,
                                  std::span<const uint64_t> b) {
  LSHC_CHECK_EQ(a.size(), b.size())
      << "signatures must have equal length to compare";
  LSHC_CHECK(!a.empty()) << "cannot estimate Jaccard from empty signatures";
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    agree += (a[i] == b[i]) ? 1 : 0;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace lshclust
