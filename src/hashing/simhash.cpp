#include "hashing/simhash.h"

#include <cmath>

#include "simd/dispatch.h"

namespace lshclust {

SimHasher::SimHasher(uint32_t num_bits, uint32_t dimensions, uint64_t seed)
    : num_bits_(num_bits), dimensions_(dimensions) {
  LSHC_CHECK_GE(num_bits, 1u) << "SimHasher needs at least one bit";
  LSHC_CHECK_GE(dimensions, 1u) << "SimHasher needs at least one dimension";
  Rng rng(seed);
  hyperplanes_.resize(static_cast<size_t>(num_bits) * dimensions);
  for (auto& coefficient : hyperplanes_) {
    coefficient = rng.NextGaussian();
  }
}

void SimHasher::ComputeSignature(std::span<const double> vec,
                                 uint64_t* out) const {
  LSHC_CHECK_EQ(vec.size(), static_cast<size_t>(dimensions_))
      << "input vector dimensionality mismatch";
  // One dispatched dot product per hyperplane. The kernel's fixed blocked
  // reduction order is part of the output contract: the sign of a
  // near-zero dot must not depend on the active SIMD tier.
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (uint32_t bit = 0; bit < num_bits_; ++bit) {
    const double* row = &hyperplanes_[static_cast<size_t>(bit) * dimensions_];
    const double dot = kernels.dot(row, vec.data(), dimensions_);
    out[bit] = dot >= 0.0 ? 1 : 0;
  }
}

std::vector<uint64_t> SimHasher::ComputeSignature(
    std::span<const double> vec) const {
  std::vector<uint64_t> signature(num_bits_);
  ComputeSignature(vec, signature.data());
  return signature;
}

double SimHasher::BitCollisionProbability(double theta_radians) {
  return 1.0 - theta_radians / 3.14159265358979323846;
}

}  // namespace lshclust
