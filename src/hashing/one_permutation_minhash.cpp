#include "hashing/one_permutation_minhash.h"

#include <algorithm>

#include "hashing/minhash.h"
#include "simd/dispatch.h"

namespace lshclust {

OnePermutationMinHasher::OnePermutationMinHasher(uint32_t num_bins,
                                                 uint64_t seed)
    : num_bins_(num_bins), seed_(seed) {
  LSHC_CHECK_GE(num_bins, 1u) << "need at least one bin";
  Rng rng(seed ^ 0x09E3779B97F4A7C1ULL);
  rotation_seeds_.reserve(num_bins);
  for (uint32_t i = 0; i < num_bins; ++i) rotation_seeds_.push_back(rng.Next());
}

void OnePermutationMinHasher::ComputeSignature(
    std::span<const uint32_t> tokens, uint64_t* out) const {
  std::fill(out, out + num_bins_, kEmptySetSignature);
  if (tokens.empty()) return;

  // One strong hash per token; the top bits select the bin, the full value
  // is the candidate minimum within the bin. Hashing is batched through the
  // dispatched mix64_batch kernel in fixed-size chunks (no allocation); the
  // bin scatter stays scalar — its stores are data-dependent.
  const simd::KernelTable& kernels = simd::ActiveKernels();
  constexpr uint32_t kTokenChunk = 128;
  uint64_t hashes[kTokenChunk];
  for (size_t begin = 0; begin < tokens.size(); begin += kTokenChunk) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<size_t>(kTokenChunk, tokens.size() - begin));
    kernels.mix64_batch(tokens.data() + begin, count, seed_, hashes);
    for (uint32_t t = 0; t < count; ++t) {
      const uint64_t h = hashes[t];
      const uint32_t bin = static_cast<uint32_t>(
          (static_cast<__uint128_t>(h) * num_bins_) >> 64);
      if (h < out[bin]) out[bin] = h;
    }
  }

  // Optimal densification: every empty bin borrows the value of a
  // pseudo-randomly chosen *originally* non-empty bin. The probe sequence
  // depends only on (bin, attempt), never on the set contents, so two sets
  // with the same non-empty bins densify identically.
  std::vector<bool> originally_empty(num_bins_);
  for (uint32_t bin = 0; bin < num_bins_; ++bin) {
    originally_empty[bin] = (out[bin] == kEmptySetSignature);
  }
  for (uint32_t bin = 0; bin < num_bins_; ++bin) {
    if (!originally_empty[bin]) continue;
    uint64_t attempt_state = rotation_seeds_[bin];
    while (true) {
      const uint64_t roll = SplitMix64(attempt_state);
      const uint32_t donor = static_cast<uint32_t>(
          (static_cast<__uint128_t>(roll) * num_bins_) >> 64);
      if (!originally_empty[donor]) {
        // Mix in the bin index so distinct empty bins that pick the same
        // donor do not become identical components.
        out[bin] = Mix64(out[donor] ^ (static_cast<uint64_t>(bin) << 32));
        break;
      }
    }
  }
}

std::vector<uint64_t> OnePermutationMinHasher::ComputeSignature(
    std::span<const uint32_t> tokens) const {
  std::vector<uint64_t> signature(num_bins_);
  ComputeSignature(tokens, signature.data());
  return signature;
}

}  // namespace lshclust
