#include "lsh/probability.h"

#include <cmath>

#include "util/logging.h"

namespace lshclust {

double CandidatePairProbability(double s, BandingParams params) {
  LSHC_CHECK(s >= 0.0 && s <= 1.0) << "similarity must be in [0, 1]";
  LSHC_CHECK(params.bands >= 1 && params.rows >= 1)
      << "banding needs at least one band and one row";
  const double per_band = std::pow(s, static_cast<double>(params.rows));
  return 1.0 - std::pow(1.0 - per_band, static_cast<double>(params.bands));
}

double ThresholdSimilarity(BandingParams params) {
  LSHC_CHECK(params.bands >= 1 && params.rows >= 1)
      << "banding needs at least one band and one row";
  return std::pow(1.0 / static_cast<double>(params.bands),
                  1.0 / static_cast<double>(params.rows));
}

double ClusterCandidateProbability(double s, BandingParams params,
                                   uint32_t similar_items) {
  // One collision with any of the c similar items suffices:
  // 1 - (1 - s^r)^(b*c). Computed in log space for numeric stability when
  // b*c is large.
  LSHC_CHECK(s >= 0.0 && s <= 1.0) << "similarity must be in [0, 1]";
  const double per_band = std::pow(s, static_cast<double>(params.rows));
  if (per_band >= 1.0) return 1.0;
  const double log_miss = static_cast<double>(params.bands) *
                          static_cast<double>(similar_items) *
                          std::log1p(-per_band);
  return 1.0 - std::exp(log_miss);
}

double MinJaccardSharedAttribute(uint32_t num_attributes) {
  LSHC_CHECK(num_attributes >= 1) << "need at least one attribute";
  return 1.0 / (2.0 * static_cast<double>(num_attributes) - 1.0);
}

double AssignmentErrorBound(uint32_t num_attributes, BandingParams params,
                            uint32_t cluster_size) {
  const double s = MinJaccardSharedAttribute(num_attributes);
  // (1 - s^r)^(b*|C|) — the complement of ClusterCandidateProbability at
  // the worst-case similarity.
  return 1.0 - ClusterCandidateProbability(s, params, cluster_size);
}

}  // namespace lshclust
