#pragma once

/// \file banded_index.h
/// \brief The banding LSH index over a static set of item signatures.
///
/// Signatures are divided into b bands of r rows; each band's r values are
/// hashed to a bucket key, and each band maintains its own bucket space so
/// "no overlapping between bands can occur" (§III-A2). Two items are
/// *candidates* iff they share a bucket in at least one band, which happens
/// with probability 1 - (1 - s^r)^b for Jaccard similarity s.
///
/// The index is built once over all items (the paper's single pass after
/// centroid initialisation) and is immutable afterwards. Buckets use a CSR
/// layout (offsets + flat item array) per band, so a candidate visit is a
/// contiguous scan.

#include <cstdint>
#include <span>
#include <vector>

#include "lsh/flat_hash_table.h"
#include "lsh/probability.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"

namespace lshclust {

class DynamicBandedIndex;

/// Hashes the `rows` signature components of band `band` into a bucket
/// key. Seeded with the band index so identical row values in different
/// bands never alias ("no overlapping between bands can occur", §III-A2).
/// Shared by the static and dynamic indexes so their bucketing agrees.
inline uint64_t ComputeBandKey(const uint64_t* band_rows, uint32_t band,
                               uint32_t rows) {
  uint64_t key = Mix64(0x9E3779B97F4A7C15ULL ^ band);
  for (uint32_t r = 0; r < rows; ++r) {
    key = Mix64(key ^ band_rows[r]);
  }
  return key;
}

/// \brief Immutable banding index; query by member item id or by external
/// signature.
///
/// Bands are laid out consecutively over the signature but need not all
/// have the same row count: a heterogeneous layout lets one index serve
/// concatenated multi-family signatures (e.g. the mixed MinHash + SimHash
/// signature of LSH-K-Prototypes, whose modalities want very different
/// band shapes). Candidate semantics are unchanged — a pair is a
/// candidate iff it collides in at least one band of the layout, which
/// for a concatenated layout is exactly the union of the per-family
/// candidate sets.
class BandedIndex {
 public:
  /// Builds a uniform index: b bands of r rows.
  /// \param signatures row-major n x (bands*rows) signature matrix
  /// \param num_items n
  /// \param params banding shape; bands*rows must equal the signature width
  BandedIndex(std::span<const uint64_t> signatures, uint32_t num_items,
              BandingParams params);

  /// Builds a heterogeneous index: band i covers band_rows[i] consecutive
  /// signature components, in order.
  /// \param signatures row-major n x sum(band_rows) signature matrix
  /// \param num_items n
  /// \param band_rows rows per band; all entries must be >= 1
  BandedIndex(std::span<const uint64_t> signatures, uint32_t num_items,
              std::span<const uint32_t> band_rows);

  /// Freezes a streaming DynamicBandedIndex into the CSR layout: same
  /// band-key function, same buckets, items stored in ascending id order
  /// within each bucket. The dynamic index keeps no signature matrix, so
  /// this walks its per-band hash maps directly — no re-signing pass.
  /// Used by StreamingSession::Snapshot to hand the serving layer a
  /// scan-friendly immutable copy of the live index.
  explicit BandedIndex(const DynamicBandedIndex& dynamic);

  /// Number of indexed items.
  uint32_t num_items() const { return num_items_; }
  /// Number of bands.
  uint32_t num_bands() const { return static_cast<uint32_t>(bands_.size()); }
  /// Total signature components covered by the layout.
  uint32_t signature_width() const { return signature_width_; }
  /// The banding shape. For a heterogeneous layout `rows` is 0 (there is
  /// no single row count); `bands` is always the band count.
  BandingParams params() const { return params_; }

  /// Invokes `visit(item_id)` for every item sharing a bucket with `item`
  /// in any band. Includes `item` itself (once per band); an item
  /// co-bucketed in several bands is visited several times — deduplication
  /// is the caller's concern (the shortlist builder uses an epoch stamp).
  template <typename Visitor>
  void VisitCandidates(uint32_t item, Visitor&& visit) const {
    LSHC_DCHECK(item < num_items_) << "item index out of range";
    for (const Band& band : bands_) {
      const uint32_t bucket = band.item_bucket[item];
      const uint32_t begin = band.bucket_offsets[bucket];
      const uint32_t end = band.bucket_offsets[bucket + 1];
      for (uint32_t i = begin; i < end; ++i) {
        visit(band.bucket_items[i]);
      }
    }
  }

  /// Invokes `visit(item_id)` for every indexed item sharing a bucket with
  /// the external `signature` (length signature_width()). Bands whose
  /// key was never inserted are skipped.
  template <typename Visitor>
  void VisitCandidatesOfSignature(std::span<const uint64_t> signature,
                                  Visitor&& visit) const {
    LSHC_DCHECK(signature.size() == signature_width_)
        << "signature width mismatch";
    for (uint32_t b = 0; b < num_bands(); ++b) {
      const uint64_t key = BandKey(signature.data(), b);
      const Band& band = bands_[b];
      const uint32_t* bucket = band.key_to_bucket.Find(key);
      if (bucket == nullptr) continue;
      const uint32_t begin = band.bucket_offsets[*bucket];
      const uint32_t end = band.bucket_offsets[*bucket + 1];
      for (uint32_t i = begin; i < end; ++i) {
        visit(band.bucket_items[i]);
      }
    }
  }

  /// The number of items in `item`'s bucket of band `b` (including itself).
  uint32_t BucketSize(uint32_t band, uint32_t item) const {
    LSHC_DCHECK(band < num_bands() && item < num_items_);
    const Band& b = bands_[band];
    const uint32_t bucket = b.item_bucket[item];
    return b.bucket_offsets[bucket + 1] - b.bucket_offsets[bucket];
  }

  /// \brief Aggregate occupancy statistics for diagnostics and tests.
  struct Stats {
    uint64_t total_buckets = 0;   ///< buckets across all bands
    uint64_t largest_bucket = 0;  ///< max items in one bucket
    double mean_bucket_size = 0;  ///< n*b / total_buckets
  };
  /// Computes occupancy statistics over all bands.
  Stats ComputeStats() const;

  /// Approximate heap footprint of the index in bytes.
  uint64_t MemoryUsageBytes() const;

  /// \brief One band's CSR state with the hash map flattened to a dense
  /// `bucket id -> band key` array — the persistence seam. Deterministic:
  /// two indexes with identical buckets dump identical Raw state.
  struct RawBand {
    uint32_t offset = 0;                   ///< first signature component
    uint32_t rows = 0;                     ///< components in this band
    std::vector<uint64_t> bucket_keys;     ///< size buckets
    std::vector<uint32_t> bucket_offsets;  ///< size buckets + 1
    std::vector<uint32_t> bucket_items;    ///< size n
    std::vector<uint32_t> item_bucket;     ///< size n
  };
  /// \brief The whole index as plain arrays (see RawBand).
  struct Raw {
    uint32_t num_items = 0;
    std::vector<RawBand> bands;
  };

  /// Dumps the CSR state as plain arrays, keyed by dense bucket id.
  Raw ToRaw() const;

  /// Rebuilds an index from dumped arrays — re-deriving only the per-band
  /// key->bucket hash maps; signatures are never re-hashed (the dump *is*
  /// the bucket state). Every CSR invariant is validated hard: offsets
  /// monotone and spanning exactly `num_items` entries, items in range and
  /// strictly ascending per bucket, `item_bucket` consistent with the
  /// bucket slices, bands contiguous over the signature, bucket keys
  /// unique per band. Any violation returns kInvalidArgument — corrupt
  /// input can never construct an index that would index out of bounds.
  static Result<BandedIndex> FromRaw(Raw raw);

 private:
  struct Band {
    FlatHashMap64 key_to_bucket;          // band key -> dense bucket id
    std::vector<uint32_t> bucket_offsets; // CSR offsets, size buckets+1
    std::vector<uint32_t> bucket_items;   // CSR payload, size n
    std::vector<uint32_t> item_bucket;    // item -> its bucket id, size n
    uint32_t offset = 0;                  // first signature component
    uint32_t rows = 0;                    // components in this band
  };

  void Build(std::span<const uint64_t> signatures);

  /// Band key of one band of a full signature.
  uint64_t BandKey(const uint64_t* signature, uint32_t band) const {
    return ComputeBandKey(signature + bands_[band].offset, band,
                          bands_[band].rows);
  }

  /// For FromRaw, which fills the members itself.
  BandedIndex() = default;

  uint32_t num_items_ = 0;
  BandingParams params_;
  uint32_t signature_width_ = 0;
  std::vector<Band> bands_;
};

}  // namespace lshclust
