#pragma once

/// \file dynamic_banded_index.h
/// \brief Growable banding index for streaming workloads (§VI of the
/// paper: "adapting our algorithm to develop an online streaming
/// clustering framework").
///
/// The static BandedIndex packs buckets into CSR arrays for scan speed but
/// cannot accept new items. This variant chains bucket members through a
/// per-band `next` array (insertion is O(bands) hash-map operations) while
/// keeping the identical band-key function, so a dynamic index built over
/// the same signatures yields the same buckets as the static one.

#include <cstdint>
#include <span>
#include <vector>

#include "lsh/banded_index.h"
#include "lsh/flat_hash_table.h"
#include "lsh/probability.h"
#include "util/logging.h"

namespace lshclust {

/// \brief Insert-only banding index over growing item ids 0, 1, 2, ...
class DynamicBandedIndex {
 public:
  /// \param params banding shape
  /// \param expected_items sizing hint for the per-band hash maps
  explicit DynamicBandedIndex(BandingParams params,
                              uint32_t expected_items = 0)
      : params_(params) {
    LSHC_CHECK(params.bands >= 1 && params.rows >= 1)
        << "banding needs at least one band and one row";
    bands_.resize(params.bands);
    for (auto& band : bands_) {
      band.key_to_head.Reserve(expected_items);
      band.next.reserve(expected_items);
    }
  }

  /// Number of inserted items.
  uint32_t num_items() const { return num_items_; }
  /// The banding shape.
  BandingParams params() const { return params_; }

  /// Inserts the next item (id = num_items()) with the given signature
  /// (length params().num_hashes()). Returns the assigned id.
  uint32_t Insert(std::span<const uint64_t> signature) {
    bool unused = false;
    return InsertDetectingRecent(signature, ~0u, &unused);
  }

  /// As Insert, but additionally reports through `saw_recent` whether any
  /// of the item's buckets already held an item with id >= `min_item`.
  /// Bucket chains are newest-first, so inspecting each pre-insert head is
  /// exact and free — this is how the streaming micro-batch apply phase
  /// detects that a provisional shortlist computed against a frozen index
  /// missed an in-batch predecessor.
  uint32_t InsertDetectingRecent(std::span<const uint64_t> signature,
                                 uint32_t min_item, bool* saw_recent) {
    LSHC_DCHECK(signature.size() == params_.num_hashes())
        << "signature width mismatch";
    const uint32_t item = num_items_++;
    bool recent = false;
    for (uint32_t b = 0; b < params_.bands; ++b) {
      Band& band = bands_[b];
      const uint64_t key = ComputeBandKey(
          signature.data() + static_cast<size_t>(b) * params_.rows, b,
          params_.rows);
      // Head is stored +1 so 0 can mean "empty bucket".
      uint32_t* head = band.key_to_head.FindOrInsert(key, 0);
      recent |= *head != 0 && *head - 1 >= min_item;
      band.next.push_back(*head);  // next[item] = previous head (or 0)
      *head = item + 1;
    }
    *saw_recent = recent;
    return item;
  }

  /// Bulk-inserts `count` consecutive items whose signatures are packed
  /// row-major (count x num_hashes()) in `signatures` — the layout
  /// ShortlistProvider::signatures() keeps — so warm-up loading is one
  /// pass over an existing matrix instead of re-signing row by row. Runs
  /// band-major to keep each band's hash map cache-resident; the resulting
  /// structure is identical to `count` sequential Insert calls.
  void InsertBatch(std::span<const uint64_t> signatures, uint32_t count) {
    const uint32_t width = params_.num_hashes();
    LSHC_CHECK(signatures.size() == static_cast<size_t>(count) * width)
        << "signature matrix is " << signatures.size()
        << " components, expected " << count << " x " << width;
    const uint32_t first = num_items_;
    for (uint32_t b = 0; b < params_.bands; ++b) {
      Band& band = bands_[b];
      band.key_to_head.Reserve(band.key_to_head.size() + count);
      band.next.reserve(band.next.size() + count);
      const uint64_t* rows =
          signatures.data() + static_cast<size_t>(b) * params_.rows;
      for (uint32_t i = 0; i < count; ++i) {
        const uint64_t key = ComputeBandKey(
            rows + static_cast<size_t>(i) * width, b, params_.rows);
        uint32_t* head = band.key_to_head.FindOrInsert(key, 0);
        band.next.push_back(*head);
        *head = first + i + 1;
      }
    }
    num_items_ = first + count;
  }

  /// Invokes `visit(item_id)` for every inserted item sharing a bucket
  /// with `signature` in any band (repeats across bands possible, like
  /// BandedIndex).
  template <typename Visitor>
  void VisitCandidatesOfSignature(std::span<const uint64_t> signature,
                                  Visitor&& visit) const {
    LSHC_DCHECK(signature.size() == params_.num_hashes())
        << "signature width mismatch";
    for (uint32_t b = 0; b < params_.bands; ++b) {
      const Band& band = bands_[b];
      const uint64_t key = ComputeBandKey(
          signature.data() + static_cast<size_t>(b) * params_.rows, b,
          params_.rows);
      const uint32_t* head = band.key_to_head.Find(key);
      if (head == nullptr) continue;
      for (uint32_t cursor = *head; cursor != 0;
           cursor = band.next[cursor - 1]) {
        visit(cursor - 1);
      }
    }
  }

  /// Approximate heap footprint in bytes.
  uint64_t MemoryUsageBytes() const {
    uint64_t bytes = sizeof(*this);
    for (const Band& band : bands_) {
      bytes += band.key_to_head.capacity() *
               (sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint8_t));
      bytes += band.next.capacity() * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  /// BandedIndex's freezing constructor walks the per-band chains
  /// directly to build its CSR arrays without a signature matrix.
  friend class BandedIndex;

  struct Band {
    FlatHashMap64 key_to_head;  // band key -> 1 + head item id (0 = empty)
    std::vector<uint32_t> next; // item -> 1 + next item in bucket (0 = end)
  };

  BandingParams params_;
  uint32_t num_items_ = 0;
  std::vector<Band> bands_;
};

}  // namespace lshclust
