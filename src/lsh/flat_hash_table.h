#pragma once

/// \file flat_hash_table.h
/// \brief Open-addressing hash map from uint64 keys to uint32 values.
///
/// The banding index maps band keys (64-bit hashes of r signature rows) to
/// dense bucket ids. std::unordered_map's node allocations dominate build
/// time at that fan-in, so this is a flat, linear-probing, power-of-two
/// table in the spirit of the Swiss/F14 tables used across database
/// engines. Insert-only (the index never deletes), which keeps probing
/// tombstone-free.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Insert-only flat hash map: uint64 -> uint32.
class FlatHashMap64 {
 public:
  /// \param expected_entries sizing hint; the table grows automatically
  explicit FlatHashMap64(size_t expected_entries = 0) {
    Rehash(CapacityFor(expected_entries));
  }

  /// Number of stored entries.
  size_t size() const { return size_; }

  /// Current slot count (power of two).
  size_t capacity() const { return keys_.size(); }

  /// Pre-sizes the table for `expected_entries` insertions.
  void Reserve(size_t expected_entries) {
    const size_t needed = CapacityFor(expected_entries);
    if (needed > keys_.size()) Rehash(needed);
  }

  /// Removes all entries, keeping the current capacity.
  void Clear() {
    std::fill(occupied_.begin(), occupied_.end(), 0);
    size_ = 0;
  }

  /// Returns a pointer to the value slot of `key`, inserting it with
  /// `initial` when absent. The pointer is invalidated by the next insert.
  uint32_t* FindOrInsert(uint64_t key, uint32_t initial) {
    if ((size_ + 1) * 10 >= keys_.size() * 7) {  // load factor 0.7
      Rehash(keys_.size() * 2);
    }
    size_t slot = Probe(key);
    if (!occupied_[slot]) {
      occupied_[slot] = 1;
      keys_[slot] = key;
      values_[slot] = initial;
      ++size_;
    }
    return &values_[slot];
  }

  /// Returns a pointer to the value of `key`, or nullptr when absent.
  const uint32_t* Find(uint64_t key) const {
    const size_t slot = Probe(key);
    return occupied_[slot] ? &values_[slot] : nullptr;
  }

  /// Calls `fn(key, value)` for every entry (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t slot = 0; slot < keys_.size(); ++slot) {
      if (occupied_[slot]) fn(keys_[slot], values_[slot]);
    }
  }

 private:
  static size_t CapacityFor(size_t entries) {
    size_t capacity = 16;
    // Keep the load factor under 0.7 after `entries` insertions.
    while (capacity * 7 < entries * 10) capacity *= 2;
    return capacity;
  }

  /// Returns the slot of `key` or the first empty slot of its probe chain.
  size_t Probe(uint64_t key) const {
    const size_t mask = keys_.size() - 1;
    size_t slot = static_cast<size_t>(Mix64(key)) & mask;
    while (occupied_[slot] && keys_[slot] != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void Rehash(size_t new_capacity) {
    LSHC_DCHECK((new_capacity & (new_capacity - 1)) == 0)
        << "capacity must be a power of two";
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    std::vector<uint8_t> old_occupied = std::move(occupied_);
    keys_.assign(new_capacity, 0);
    values_.assign(new_capacity, 0);
    occupied_.assign(new_capacity, 0);
    for (size_t slot = 0; slot < old_keys.size(); ++slot) {
      if (!old_occupied[slot]) continue;
      const size_t target = Probe(old_keys[slot]);
      occupied_[target] = 1;
      keys_[target] = old_keys[slot];
      values_[target] = old_values[slot];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  std::vector<uint8_t> occupied_;
  size_t size_ = 0;
};

}  // namespace lshclust
