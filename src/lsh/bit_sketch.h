#pragma once

/// \file bit_sketch.h
/// \brief Packed per-item bit sketches for popcount-Hamming prescreening of
/// shortlist candidates.
///
/// A sketch is one bit per signature component — the component's low bit —
/// packed into ceil(width/64) words. Because it is derived from the band
/// hashes the index already computed, signing stays a single pass: Prepare
/// packs the sketch table from the same signature matrix it indexes.
///
/// For MinHash components the low bit of the minimum is an unbiased
/// pairwise-independent bit: two sets with Jaccard similarity s agree on a
/// component with probability s and otherwise hold independent uniform
/// bits, so P(bit match) = s + (1-s)/2 = (1+s)/2 and the expected Hamming
/// distance is width * (1-s)/2. For SimHash components the value *is* the
/// hyperplane bit, so the Hamming distance estimates the angle directly.
/// Either way a candidate whose sketch distance exceeds a conservative
/// threshold is almost certainly too dissimilar to win the assignment, and
/// can be dropped before the exact distance kernel runs — the
/// `exact_distances_{evaluated,pruned}` counters quantify the effect.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "simd/dispatch.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace lshclust {

/// \brief Configuration of the shortlist sketch prefilter. Off by default:
/// screening can in principle drop a cluster that would have won the
/// assignment, so enabling it trades exact per-pass argmin fidelity for
/// fewer exact distance evaluations (in practice, at the default threshold,
/// assignments come out identical — tests pin representative workloads).
struct SketchPrefilterOptions {
  /// Master switch. When false no sketch table is built and queries run
  /// unscreened.
  bool enabled = false;

  /// A candidate survives iff its sketch Hamming distance to the query is
  /// <= floor(max_hamming_fraction * width). At 0.5 an unrelated pair
  /// (expected fraction 0.5) is borderline; the default sits just below
  /// that so only candidates measurably *less* similar than random are
  /// dropped — conservative by construction.
  double max_hamming_fraction = 0.45;
};

/// Validates prefilter options as a returned Status; `what` names the
/// option group in the message (e.g. "minhash.sketch").
[[nodiscard]] inline Status ValidateSketchPrefilter(const SketchPrefilterOptions& options,
                                      const char* what) {
  if (!(options.max_hamming_fraction >= 0.0 &&
        options.max_hamming_fraction <= 1.0)) {
    return Status::InvalidArgument(
        std::string(what) + ".max_hamming_fraction must be in [0, 1], got " +
        std::to_string(options.max_hamming_fraction));
  }
  return Status::OK();
}

/// Packs the low bit of each of `width` signature components into
/// `words` = ceil(width/64) output words (zero-padded tail).
inline void PackSketchBits(const uint64_t* signature, uint32_t width,
                           uint64_t* out) {
  const uint32_t words = (width + 63) / 64;
  std::fill(out, out + words, 0ULL);
  for (uint32_t j = 0; j < width; ++j) {
    out[j / 64] |= (signature[j] & 1ULL) << (j % 64);
  }
}

/// \brief The per-item sketch table: a dense n x words bit matrix packed
/// row-major, built from a signature matrix in one pass and appendable one
/// row at a time (the streaming ingest path).
class BitSketchTable {
 public:
  BitSketchTable() = default;

  /// Resets the table to hold sketches of `width`-component signatures.
  void Reset(uint32_t width) {
    LSHC_DCHECK(width >= 1) << "sketch width must be positive";
    width_ = width;
    words_ = (width + 63) / 64;
    bits_.clear();
    num_items_ = 0;
  }

  /// Resets and packs all rows of a row-major n x width signature matrix.
  void Build(std::span<const uint64_t> signatures, uint32_t num_items,
             uint32_t width) {
    Reset(width);
    LSHC_DCHECK(signatures.size() ==
                static_cast<size_t>(num_items) * width)
        << "signature matrix shape mismatch";
    bits_.resize(static_cast<size_t>(num_items) * words_);
    for (uint32_t i = 0; i < num_items; ++i) {
      PackSketchBits(signatures.data() + static_cast<size_t>(i) * width,
                     width_, bits_.data() + static_cast<size_t>(i) * words_);
    }
    num_items_ = num_items;
  }

  /// Appends one item's sketch from its signature (length width()).
  void Append(std::span<const uint64_t> signature) {
    LSHC_DCHECK(signature.size() == width_) << "signature width mismatch";
    bits_.resize(bits_.size() + words_);
    PackSketchBits(signature.data(), width_,
                   bits_.data() + bits_.size() - words_);
    ++num_items_;
  }

  /// The packed sketch of one item (words() words).
  const uint64_t* Row(uint32_t item) const {
    LSHC_DCHECK(item < num_items_) << "item index out of range";
    return bits_.data() + static_cast<size_t>(item) * words_;
  }

  /// Hamming distance between an external packed sketch (words() words)
  /// and an item's sketch, through the dispatched popcount kernel.
  uint64_t HammingTo(const uint64_t* sketch, uint32_t item) const {
    return simd::ActiveKernels().hamming_words(sketch, Row(item), words_);
  }

  uint32_t width() const { return width_; }
  uint32_t words() const { return words_; }
  uint32_t num_items() const { return num_items_; }
  bool empty() const { return num_items_ == 0; }

  /// The whole packed bit matrix, row-major (num_items() x words() words) —
  /// the persistence seam's dump side.
  std::span<const uint64_t> packed_bits() const { return bits_; }

  /// Rebuilds a table from dumped packed words. The word count is
  /// validated against `num_items x ceil(width/64)` before anything is
  /// adopted, so corrupt dumps fail with a typed Status.
  static Result<BitSketchTable> FromRaw(uint32_t width, uint32_t num_items,
                                        std::vector<uint64_t> bits) {
    if (width < 1) {
      return Status::InvalidArgument("sketch width must be >= 1, got " +
                                     std::to_string(width));
    }
    const size_t words = (width + 63) / 64;
    if (bits.size() != static_cast<size_t>(num_items) * words) {
      return Status::InvalidArgument(
          "sketch table holds " + std::to_string(bits.size()) +
          " words; expected " +
          std::to_string(static_cast<size_t>(num_items) * words) + " (" +
          std::to_string(num_items) + " items x " + std::to_string(words) +
          " words)");
    }
    BitSketchTable table;
    table.width_ = width;
    table.words_ = static_cast<uint32_t>(words);
    table.num_items_ = num_items;
    table.bits_ = std::move(bits);
    return table;
  }

  /// Approximate heap footprint of the packed table in bytes.
  uint64_t MemoryUsageBytes() const {
    return bits_.capacity() * sizeof(uint64_t);
  }

 private:
  uint32_t width_ = 0;
  uint32_t words_ = 0;
  uint32_t num_items_ = 0;
  std::vector<uint64_t> bits_;
};

/// The survival threshold of a sketch screen over `width`-bit sketches.
inline uint64_t SketchHammingThreshold(const SketchPrefilterOptions& options,
                                       uint32_t width) {
  return static_cast<uint64_t>(options.max_hamming_fraction * width);
}

}  // namespace lshclust
