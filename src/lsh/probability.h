#pragma once

/// \file probability.h
/// \brief The analytic collision-probability model of §III (MinHash /
/// banding S-curve, shortlist hit probability, assignment error bound).
///
/// These closed forms generate Tables I and II and back the guaranteed
/// error bound of §III-C; the test suite validates the MinHash + banding
/// implementation against them by Monte Carlo.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace lshclust {

/// \brief Banding configuration: b bands of r rows each (signature length
/// b*r).
struct BandingParams {
  uint32_t bands = 20;
  uint32_t rows = 5;

  /// Total signature components b*r.
  uint32_t num_hashes() const { return bands * rows; }
};

/// Validates a banding shape as a returned Status; `what` names the
/// option in the message (e.g. "MinHash banding"). The one banding
/// invariant every signature family shares — extend here, not per
/// family.
[[nodiscard]] inline Status ValidateBanding(const BandingParams& params,
                              std::string_view what) {
  if (params.bands < 1 || params.rows < 1) {
    return Status::InvalidArgument(
        std::string(what) + " needs at least one band and one row; got " +
        std::to_string(params.bands) + "b " + std::to_string(params.rows) +
        "r");
  }
  return Status::OK();
}

/// Probability that two sets with Jaccard similarity `s` agree in all rows
/// of at least one band: 1 - (1 - s^r)^b (§III-A2).
double CandidatePairProbability(double s, BandingParams params);

/// The similarity at which the probability S-curve is steepest,
/// (1/b)^(1/r); below it pairs are unlikely candidates, above it likely
/// (§III-A2).
double ThresholdSimilarity(BandingParams params);

/// Probability that a cluster containing `similar_items` items of Jaccard
/// similarity >= s with the query enters the shortlist: one collision with
/// any of them suffices, so 1 - (1 - s^r)^(b * c) (§III-D; the paper's
/// footnote example 1 - (1 - 0.1)^50 = 0.99).
double ClusterCandidateProbability(double s, BandingParams params,
                                   uint32_t similar_items);

/// The worst-case Jaccard similarity of two items with m attributes that
/// agree on at least one of them: 1 / (2m - 1) (§III-C).
double MinJaccardSharedAttribute(uint32_t num_attributes);

/// §III-C upper bound on the probability that the true best cluster (size
/// `cluster_size`) is missing from an item's shortlist:
/// (1 - (1/(2m-1))^r)^(b * |C|). The paper's worked example: m=100, r=1,
/// b=25, |C|=20 gives 0.08.
double AssignmentErrorBound(uint32_t num_attributes, BandingParams params,
                            uint32_t cluster_size);

}  // namespace lshclust
