#include "lsh/tuning.h"

#include <cmath>
#include <string>

namespace lshclust {

Result<BandingRecommendation> RecommendBanding(
    uint32_t num_attributes, uint32_t min_cluster_size,
    const BandingConstraints& constraints) {
  if (num_attributes == 0) {
    return Status::InvalidArgument("num_attributes must be positive");
  }
  if (min_cluster_size == 0) {
    return Status::InvalidArgument("min_cluster_size must be positive");
  }
  if (!(constraints.max_error > 0.0 && constraints.max_error < 1.0)) {
    return Status::InvalidArgument("max_error must be in (0, 1)");
  }
  if (constraints.min_rows == 0 ||
      constraints.min_rows > constraints.max_rows) {
    return Status::InvalidArgument("row range is empty");
  }

  const double s = MinJaccardSharedAttribute(num_attributes);
  bool found = false;
  BandingRecommendation best;

  for (uint32_t rows = constraints.min_rows; rows <= constraints.max_rows;
       ++rows) {
    // Error = (1 - s^r)^(b*c) <= max_error
    //   <=>  b >= log(max_error) / (c * log(1 - s^r)).
    const double per_band = std::pow(s, static_cast<double>(rows));
    if (per_band <= 0.0 || per_band >= 1.0) continue;
    const double bands_needed = std::log(constraints.max_error) /
                                (static_cast<double>(min_cluster_size) *
                                 std::log1p(-per_band));
    if (!(bands_needed > 0.0) ||
        bands_needed > static_cast<double>(constraints.max_hashes)) {
      continue;  // not reachable within budget at this row count
    }
    const uint32_t bands =
        std::max<uint32_t>(1, static_cast<uint32_t>(std::ceil(bands_needed)));
    if (static_cast<uint64_t>(bands) * rows > constraints.max_hashes) {
      continue;
    }

    BandingRecommendation candidate;
    candidate.params = BandingParams{bands, rows};
    candidate.error_bound =
        AssignmentErrorBound(num_attributes, candidate.params,
                             min_cluster_size);
    candidate.threshold_similarity = ThresholdSimilarity(candidate.params);
    candidate.num_hashes = bands * rows;

    // Cheapest first; prefer more rows (higher threshold -> fewer false
    // positives) when hash counts tie.
    if (!found || candidate.num_hashes < best.num_hashes ||
        (candidate.num_hashes == best.num_hashes &&
         candidate.params.rows > best.params.rows)) {
      best = candidate;
      found = true;
    }
  }

  if (!found) {
    return Status::OutOfRange(
        "no banding within " + std::to_string(constraints.max_hashes) +
        " hashes meets error " + std::to_string(constraints.max_error) +
        " at m=" + std::to_string(num_attributes) +
        ", |C|=" + std::to_string(min_cluster_size));
  }
  return best;
}

}  // namespace lshclust
