#pragma once

/// \file tuning.h
/// \brief Automated choice of the banding parameters (b, r) — §III-D of
/// the paper, turned into an optimizer.
///
/// Given the dataset width m, a lower bound on cluster size |C| and a
/// tolerated shortlist-miss probability, RecommendBanding finds the
/// cheapest banding (fewest hash functions b*r) whose §III-C error bound
/// (1 - (1/(2m-1))^r)^(b*|C|) stays within the tolerance. Among equal-cost
/// candidates it prefers more rows: a higher similarity threshold
/// (1/b)^(1/r) admits fewer false-positive clusters into shortlists.

#include <cstdint>

#include "lsh/probability.h"
#include "util/result.h"

namespace lshclust {

/// \brief Result of a banding search.
struct BandingRecommendation {
  /// The chosen shape.
  BandingParams params;
  /// Its §III-C assignment error bound at the given m and |C|.
  double error_bound = 0;
  /// The S-curve threshold similarity (1/b)^(1/r).
  double threshold_similarity = 0;
  /// Total hash functions b*r (the per-item signing cost).
  uint32_t num_hashes = 0;
};

/// \brief Search constraints.
struct BandingConstraints {
  /// Tolerated probability that an item's true best cluster is missing
  /// from its shortlist (the paper's worked example achieves 0.08).
  double max_error = 0.05;
  /// Hash-count budget per item (b*r <= max_hashes).
  uint32_t max_hashes = 1024;
  /// Row range to search.
  uint32_t min_rows = 1;
  uint32_t max_rows = 10;
};

/// Finds the cheapest banding meeting `constraints` for items of
/// `num_attributes` attributes and clusters of at least
/// `min_cluster_size` items. Fails when no shape within the budget can
/// meet the error tolerance.
Result<BandingRecommendation> RecommendBanding(uint32_t num_attributes,
                                               uint32_t min_cluster_size,
                                               const BandingConstraints&
                                                   constraints = {});

}  // namespace lshclust
