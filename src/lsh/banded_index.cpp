#include "lsh/banded_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "lsh/dynamic_banded_index.h"

namespace lshclust {

BandedIndex::BandedIndex(std::span<const uint64_t> signatures,
                         uint32_t num_items, BandingParams params)
    : num_items_(num_items), params_(params) {
  LSHC_CHECK(params.bands >= 1 && params.rows >= 1)
      << "banding needs at least one band and one row";
  signature_width_ = params.num_hashes();
  bands_.resize(params.bands);
  for (uint32_t b = 0; b < params.bands; ++b) {
    bands_[b].offset = b * params.rows;
    bands_[b].rows = params.rows;
  }
  Build(signatures);
}

BandedIndex::BandedIndex(std::span<const uint64_t> signatures,
                         uint32_t num_items,
                         std::span<const uint32_t> band_rows)
    : num_items_(num_items) {
  LSHC_CHECK_GE(band_rows.size(), 1u)
      << "banding needs at least one band";
  bands_.resize(band_rows.size());
  uint32_t offset = 0;
  for (size_t b = 0; b < band_rows.size(); ++b) {
    LSHC_CHECK_GE(band_rows[b], 1u) << "every band needs at least one row";
    bands_[b].offset = offset;
    bands_[b].rows = band_rows[b];
    offset += band_rows[b];
  }
  signature_width_ = offset;
  // Summary shape: rows is only meaningful when uniform.
  const bool uniform = std::all_of(
      band_rows.begin(), band_rows.end(),
      [&](uint32_t rows) { return rows == band_rows[0]; });
  params_ = {static_cast<uint32_t>(band_rows.size()),
             uniform ? band_rows[0] : 0};
  Build(signatures);
}

BandedIndex::BandedIndex(const DynamicBandedIndex& dynamic)
    : num_items_(dynamic.num_items_), params_(dynamic.params_) {
  signature_width_ = params_.num_hashes();
  const uint32_t num_items = num_items_;
  bands_.resize(params_.bands);
  for (uint32_t b = 0; b < params_.bands; ++b) {
    Band& band = bands_[b];
    const DynamicBandedIndex::Band& source = dynamic.bands_[b];
    band.offset = b * params_.rows;
    band.rows = params_.rows;
    band.key_to_bucket.Reserve(source.key_to_head.size());
    band.item_bucket.resize(num_items);
    band.bucket_items.resize(num_items);
    band.bucket_offsets.reserve(source.key_to_head.size() + 1);
    band.bucket_offsets.push_back(0);
    // One CSR bucket per dynamic key. The dynamic chains are newest-first
    // (each insert prepends), and ids are insert order, so walking a chain
    // yields strictly descending ids — filling the bucket's CSR slice
    // backwards stores them ascending, matching the static Build's order.
    // Bucket *enumeration* order follows the hash map's slot order rather
    // than first-insert order; candidate visitation order across buckets
    // differs from a signature-built index, which is immaterial because
    // every consumer deduplicates and sorts its shortlist.
    source.key_to_head.ForEach([&](uint64_t key, uint32_t head) {
      const uint32_t bucket =
          static_cast<uint32_t>(band.bucket_offsets.size()) - 1;
      band.key_to_bucket.FindOrInsert(key, bucket);
      uint32_t count = 0;
      for (uint32_t cursor = head; cursor != 0;
           cursor = source.next[cursor - 1]) {
        ++count;
      }
      const uint32_t end = band.bucket_offsets.back() + count;
      band.bucket_offsets.push_back(end);
      uint32_t write = end;
      for (uint32_t cursor = head; cursor != 0;
           cursor = source.next[cursor - 1]) {
        const uint32_t item = cursor - 1;
        band.bucket_items[--write] = item;
        band.item_bucket[item] = bucket;
      }
    });
  }
}

void BandedIndex::Build(std::span<const uint64_t> signatures) {
  LSHC_CHECK_EQ(signatures.size(),
                static_cast<size_t>(num_items_) * signature_width_)
      << "signature matrix size does not match items x hashes";

  const uint32_t num_items = num_items_;
  const uint32_t width = signature_width_;

  for (uint32_t b = 0; b < num_bands(); ++b) {
    Band& band = bands_[b];
    band.key_to_bucket.Reserve(num_items);
    band.item_bucket.resize(num_items);

    // Pass 1: assign dense bucket ids and count occupancy.
    std::vector<uint32_t> bucket_sizes;
    for (uint32_t item = 0; item < num_items; ++item) {
      const uint64_t* signature =
          signatures.data() + static_cast<size_t>(item) * width;
      const uint64_t key = BandKey(signature, b);
      const uint32_t next_id = static_cast<uint32_t>(bucket_sizes.size());
      uint32_t* bucket = band.key_to_bucket.FindOrInsert(key, next_id);
      if (*bucket == next_id && next_id == bucket_sizes.size()) {
        bucket_sizes.push_back(0);
      }
      band.item_bucket[item] = *bucket;
      ++bucket_sizes[*bucket];
    }

    // Pass 2: CSR offsets + fill.
    const uint32_t num_buckets = static_cast<uint32_t>(bucket_sizes.size());
    band.bucket_offsets.resize(num_buckets + 1);
    uint32_t offset = 0;
    for (uint32_t bucket = 0; bucket < num_buckets; ++bucket) {
      band.bucket_offsets[bucket] = offset;
      offset += bucket_sizes[bucket];
    }
    band.bucket_offsets[num_buckets] = offset;

    band.bucket_items.resize(num_items);
    std::vector<uint32_t> cursor(band.bucket_offsets.begin(),
                                 band.bucket_offsets.end() - 1);
    for (uint32_t item = 0; item < num_items; ++item) {
      const uint32_t bucket = band.item_bucket[item];
      band.bucket_items[cursor[bucket]++] = item;
    }
  }
}

BandedIndex::Raw BandedIndex::ToRaw() const {
  Raw raw;
  raw.num_items = num_items_;
  raw.bands.resize(bands_.size());
  for (size_t b = 0; b < bands_.size(); ++b) {
    const Band& band = bands_[b];
    RawBand& out = raw.bands[b];
    out.offset = band.offset;
    out.rows = band.rows;
    out.bucket_offsets = band.bucket_offsets;
    out.bucket_items = band.bucket_items;
    out.item_bucket = band.item_bucket;
    // Flatten the hash map into dense-bucket-id order: the map's slot
    // order is capacity-dependent, bucket ids are not, so the dump is
    // deterministic (save -> load -> save is byte-identical).
    out.bucket_keys.resize(band.bucket_offsets.size() - 1);
    band.key_to_bucket.ForEach([&](uint64_t key, uint32_t bucket) {
      out.bucket_keys[bucket] = key;
    });
  }
  return raw;
}

Result<BandedIndex> BandedIndex::FromRaw(Raw raw) {
  const auto invalid = [](size_t band, const std::string& what) {
    return Status::InvalidArgument("index band " + std::to_string(band) +
                                   " " + what);
  };
  if (raw.num_items < 1) {
    return Status::InvalidArgument("index dump covers no items");
  }
  if (raw.bands.empty()) {
    return Status::InvalidArgument("index dump has no bands");
  }
  const uint32_t n = raw.num_items;
  BandedIndex index;
  index.num_items_ = n;
  index.bands_.resize(raw.bands.size());
  uint32_t expected_offset = 0;
  for (size_t b = 0; b < raw.bands.size(); ++b) {
    RawBand& src = raw.bands[b];
    if (src.rows < 1) return invalid(b, "has zero rows");
    if (src.offset != expected_offset) {
      return invalid(b, "starts at signature component " +
                            std::to_string(src.offset) + ", expected " +
                            std::to_string(expected_offset) +
                            " (bands must tile the signature)");
    }
    expected_offset += src.rows;
    const size_t num_buckets = src.bucket_keys.size();
    if (src.bucket_offsets.size() != num_buckets + 1) {
      return invalid(b, "has " + std::to_string(src.bucket_offsets.size()) +
                            " offsets for " + std::to_string(num_buckets) +
                            " buckets");
    }
    if (src.bucket_offsets.front() != 0) {
      return invalid(b, "offsets do not start at 0");
    }
    for (size_t bucket = 0; bucket < num_buckets; ++bucket) {
      if (src.bucket_offsets[bucket + 1] < src.bucket_offsets[bucket]) {
        return invalid(b, "offsets are not monotone");
      }
    }
    if (src.bucket_offsets.back() != n) {
      return invalid(b, "offsets span " +
                            std::to_string(src.bucket_offsets.back()) +
                            " entries for " + std::to_string(n) + " items");
    }
    if (src.bucket_items.size() != n || src.item_bucket.size() != n) {
      return invalid(b, "CSR arrays are not item-sized");
    }
    // Each bucket slice must hold strictly ascending in-range items that
    // agree with item_bucket. Together with the slices covering exactly n
    // entries this makes bucket membership a bijection over the items, so
    // no item can be dropped or duplicated by a crafted dump.
    for (size_t bucket = 0; bucket < num_buckets; ++bucket) {
      const uint32_t begin = src.bucket_offsets[bucket];
      const uint32_t end = src.bucket_offsets[bucket + 1];
      for (uint32_t i = begin; i < end; ++i) {
        const uint32_t item = src.bucket_items[i];
        if (item >= n) return invalid(b, "references an out-of-range item");
        if (i > begin && src.bucket_items[i - 1] >= item) {
          return invalid(b, "bucket items are not strictly ascending");
        }
        if (src.item_bucket[item] != bucket) {
          return invalid(b, "item_bucket disagrees with the bucket slices");
        }
      }
    }
    Band& band = index.bands_[b];
    band.offset = src.offset;
    band.rows = src.rows;
    band.bucket_offsets = std::move(src.bucket_offsets);
    band.bucket_items = std::move(src.bucket_items);
    band.item_bucket = std::move(src.item_bucket);
    band.key_to_bucket.Reserve(num_buckets);
    for (size_t bucket = 0; bucket < num_buckets; ++bucket) {
      uint32_t* slot = band.key_to_bucket.FindOrInsert(
          src.bucket_keys[bucket], static_cast<uint32_t>(bucket));
      if (*slot != bucket) {
        return invalid(b, "contains duplicate bucket keys");
      }
    }
  }
  index.signature_width_ = expected_offset;
  const bool uniform =
      std::all_of(raw.bands.begin(), raw.bands.end(), [&](const RawBand& rb) {
        return rb.rows == raw.bands[0].rows;
      });
  index.params_ = {static_cast<uint32_t>(raw.bands.size()),
                   uniform ? raw.bands[0].rows : 0};
  return index;
}

BandedIndex::Stats BandedIndex::ComputeStats() const {
  Stats stats;
  uint64_t total_entries = 0;
  for (const Band& band : bands_) {
    const size_t buckets = band.bucket_offsets.size() - 1;
    stats.total_buckets += buckets;
    total_entries += band.bucket_items.size();
    for (size_t bucket = 0; bucket < buckets; ++bucket) {
      const uint64_t size =
          band.bucket_offsets[bucket + 1] - band.bucket_offsets[bucket];
      stats.largest_bucket = std::max(stats.largest_bucket, size);
    }
  }
  stats.mean_bucket_size =
      stats.total_buckets == 0
          ? 0.0
          : static_cast<double>(total_entries) /
                static_cast<double>(stats.total_buckets);
  return stats;
}

uint64_t BandedIndex::MemoryUsageBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const Band& band : bands_) {
    bytes += band.key_to_bucket.capacity() *
             (sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint8_t));
    bytes += band.bucket_offsets.size() * sizeof(uint32_t);
    bytes += band.bucket_items.size() * sizeof(uint32_t);
    bytes += band.item_bucket.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace lshclust
