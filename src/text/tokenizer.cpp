#include "text/tokenizer.h"

#include <cctype>

namespace lshclust {

namespace {

// Compact English stopword list covering the function words that dominate
// question text (the paper's example: "im interested in being a zoologist
// but im not sure what do they really do" reduces to content words).
const char* const kStopwords[] = {
    "a",     "about", "after", "all",   "also",  "am",    "an",    "and",
    "any",   "are",   "as",    "at",    "be",    "been",  "being", "but",
    "by",    "can",   "could", "did",   "do",    "does",  "doing", "dont",
    "for",   "from",  "get",   "had",   "has",   "have",  "he",    "her",
    "here",  "him",   "his",   "how",   "i",     "if",    "im",    "in",
    "into",  "is",    "it",    "its",   "just",  "like",  "me",    "more",
    "most",  "my",    "no",    "not",   "now",   "of",    "on",    "only",
    "or",    "other", "our",   "out",   "over",  "own",   "re",    "really",
    "s",     "same",  "she",   "should","so",    "some",  "such",  "sure",
    "t",     "than",  "that",  "the",   "their", "them",  "then",  "there",
    "these", "they",  "this",  "those", "to",    "too",   "under", "until",
    "up",    "very",  "was",   "we",    "were",  "what",  "when",  "where",
    "which", "while", "who",   "whom",  "why",   "will",  "with",  "would",
    "you",   "your",
};

}  // namespace

Tokenizer::Tokenizer() {
  for (const char* word : kStopwords) stopwords_.insert(word);
}

bool Tokenizer::IsStopword(std::string_view word) const {
  return stopwords_.count(std::string(word)) > 0;
}

std::vector<std::string> Tokenizer::TokenizeToStrings(
    std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.size() > 1 && !IsStopword(current)) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

uint32_t Tokenizer::InternWord(const std::string& word,
                               TokenizedCorpus* corpus) {
  const auto [it, inserted] = word_index_.emplace(
      word, static_cast<uint32_t>(corpus->vocabulary.size()));
  if (inserted) corpus->vocabulary.push_back(word);
  return it->second;
}

void Tokenizer::AddDocument(std::string_view text, uint32_t topic,
                            TokenizedCorpus* corpus) {
  if (bound_corpus_ == nullptr) bound_corpus_ = corpus;
  LSHC_CHECK(bound_corpus_ == corpus)
      << "a Tokenizer instance is bound to one corpus; use a fresh "
         "Tokenizer per corpus";
  Document doc;
  doc.topic = topic;
  for (const std::string& word : TokenizeToStrings(text)) {
    doc.words.push_back(InternWord(word, corpus));
  }
  corpus->documents.push_back(std::move(doc));
  if (topic >= corpus->num_topics) corpus->num_topics = topic + 1;
}

}  // namespace lshclust
