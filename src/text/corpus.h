#pragma once

/// \file corpus.h
/// \brief Tokenized document collection — the interchange type between the
/// corpus sources (datagen, tokenizer) and the TF-IDF / binarization
/// pipeline of §IV-B.

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace lshclust {

/// \brief One tokenized document (a question in the paper's setting).
struct Document {
  /// Ground-truth topic id (the Yahoo! Answers topic).
  uint32_t topic = 0;
  /// Word ids into TokenizedCorpus::vocabulary. Duplicates allowed.
  std::vector<uint32_t> words;
};

/// \brief A corpus of tokenized documents over a shared word vocabulary.
struct TokenizedCorpus {
  /// word id -> surface string.
  std::vector<std::string> vocabulary;
  /// The documents.
  std::vector<Document> documents;
  /// Number of distinct topics (topic ids are < num_topics).
  uint32_t num_topics = 0;

  /// Validates internal consistency (word ids and topic ids in range).
  bool Valid() const {
    for (const auto& doc : documents) {
      if (doc.topic >= num_topics) return false;
      for (const uint32_t word : doc.words) {
        if (word >= vocabulary.size()) return false;
      }
    }
    return true;
  }
};

}  // namespace lshclust
