#pragma once

/// \file binarizer.h
/// \brief Corpus -> binary word-presence categorical dataset (§IV-B).
///
/// Each selected vocabulary word becomes one attribute whose value is the
/// feature-name-augmented presence indicator the paper describes: "the
/// value for the feature 'zoo' will become either 'zoo-0' or 'zoo-1'"
/// (here rendered as the interned token "zoo=0" / "zoo=1"). Absent values
/// ("...=0") are marked with absence semantics so MinHash token sets
/// contain only the present words — Algorithm 2's presence filtering,
/// which makes Jaccard meaningful on sparse vectors.

#include <cstdint>
#include <span>
#include <vector>

#include "data/categorical_dataset.h"
#include "text/corpus.h"
#include "util/result.h"

namespace lshclust {

/// \brief Builds the clustering input: one item per document, one binary
/// attribute per vocabulary word, ground-truth labels = topics.
///
/// \param corpus the tokenized documents
/// \param vocabulary the selected word ids (from TopicTfIdf), ascending
/// \param drop_empty_items skip documents containing no vocabulary word
///        (they carry no signal; the paper's TF-IDF step implicitly drops
///        questions whose words were all filtered)
Result<CategoricalDataset> BinarizeCorpus(const TokenizedCorpus& corpus,
                                          std::span<const uint32_t> vocabulary,
                                          bool drop_empty_items = true);

}  // namespace lshclust
