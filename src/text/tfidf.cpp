#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace lshclust {

Result<TopicTfIdf> TopicTfIdf::Compute(const TokenizedCorpus& corpus) {
  if (corpus.documents.empty()) {
    return Status::InvalidArgument("corpus has no documents");
  }
  if (corpus.num_topics == 0) {
    return Status::InvalidArgument("corpus has no topics");
  }
  if (!corpus.Valid()) {
    return Status::InvalidArgument(
        "corpus is inconsistent (word or topic ids out of range)");
  }

  TopicTfIdf model;
  model.num_topics_ = corpus.num_topics;
  model.vocabulary_size_ = static_cast<uint32_t>(corpus.vocabulary.size());
  model.topic_terms_.resize(corpus.num_topics);
  model.topic_max_count_.assign(corpus.num_topics, 0);
  model.topic_frequency_.assign(corpus.vocabulary.size(), 0);

  // Accumulate term counts per topic.
  std::unordered_map<uint32_t, uint32_t> counts;
  for (uint32_t topic = 0; topic < corpus.num_topics; ++topic) {
    counts.clear();
    for (const auto& doc : corpus.documents) {
      if (doc.topic != topic) continue;
      for (const uint32_t word : doc.words) ++counts[word];
    }
    auto& terms = model.topic_terms_[topic];
    terms.reserve(counts.size());
    // lint:ordered-ok(terms re-sorted by word below; max + int adds commute)
    for (const auto& [word, count] : counts) {
      terms.push_back(TopicTerm{word, count});
      model.topic_max_count_[topic] =
          std::max(model.topic_max_count_[topic], count);
      ++model.topic_frequency_[word];
    }
    std::sort(terms.begin(), terms.end(),
              [](const TopicTerm& a, const TopicTerm& b) {
                return a.word < b.word;
              });
  }
  return model;
}

double TopicTfIdf::NormalizedIdf(uint32_t word) const {
  LSHC_CHECK_LT(word, topic_frequency_.size());
  if (num_topics_ <= 1) return 0.0;
  const uint32_t tf = topic_frequency_[word];
  if (tf == 0) return 0.0;
  return std::log(static_cast<double>(num_topics_) / tf) /
         std::log(static_cast<double>(num_topics_));
}

double TopicTfIdf::Score(uint32_t topic, uint32_t word) const {
  LSHC_CHECK_LT(topic, num_topics_);
  const auto& terms = topic_terms_[topic];
  const auto it = std::lower_bound(
      terms.begin(), terms.end(), word,
      [](const TopicTerm& term, uint32_t w) { return term.word < w; });
  if (it == terms.end() || it->word != word) return 0.0;
  const double augmented_tf =
      0.5 + 0.5 * static_cast<double>(it->count) /
                static_cast<double>(topic_max_count_[topic]);
  return augmented_tf * NormalizedIdf(word);
}

std::vector<uint32_t> TopicTfIdf::SelectVocabulary(
    const TfIdfOptions& options) const {
  std::vector<bool> selected(vocabulary_size_, false);
  std::vector<std::pair<double, uint32_t>> scored;  // (-score, word)
  for (uint32_t topic = 0; topic < num_topics_; ++topic) {
    scored.clear();
    for (const TopicTerm& term : topic_terms_[topic]) {
      const double augmented_tf =
          0.5 + 0.5 * static_cast<double>(term.count) /
                    static_cast<double>(topic_max_count_[topic]);
      const double score = augmented_tf * NormalizedIdf(term.word);
      if (score >= options.threshold) {
        scored.emplace_back(-score, term.word);
      }
    }
    // Cap at max_words_per_topic, best-scoring first.
    if (scored.size() > options.max_words_per_topic) {
      std::nth_element(scored.begin(),
                       scored.begin() + options.max_words_per_topic,
                       scored.end());
      scored.resize(options.max_words_per_topic);
    }
    for (const auto& [neg_score, word] : scored) selected[word] = true;
  }

  std::vector<uint32_t> vocabulary;
  for (uint32_t word = 0; word < vocabulary_size_; ++word) {
    if (selected[word]) vocabulary.push_back(word);
  }
  return vocabulary;
}

}  // namespace lshclust
