#pragma once

/// \file tokenizer.h
/// \brief Word tokenizer for raw question text: lower-cases, splits on
/// non-alphanumeric characters, drops stopwords and one-character tokens.
///
/// This is the front of the §IV-B pipeline when starting from raw text
/// ("im interested in being a zoologist ..." -> {interested, zoologist,
/// ...}); the synthetic corpus generator can bypass it by emitting word
/// ids directly.

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/corpus.h"

namespace lshclust {

/// \brief Stateful tokenizer that interns words into a growing vocabulary.
class Tokenizer {
 public:
  /// Constructs with the built-in English stopword list.
  Tokenizer();

  /// Splits `text` into normalized word strings (no interning).
  std::vector<std::string> TokenizeToStrings(std::string_view text) const;

  /// Tokenizes `text` and appends a document with topic `topic` to
  /// `corpus`, interning unseen words into its vocabulary. A Tokenizer
  /// instance is bound to the first corpus it writes to (its word-id state
  /// lives here); feeding a second corpus is a programming error.
  void AddDocument(std::string_view text, uint32_t topic,
                   TokenizedCorpus* corpus);

  /// True iff `word` (already lower-case) is a stopword.
  bool IsStopword(std::string_view word) const;

 private:
  uint32_t InternWord(const std::string& word, TokenizedCorpus* corpus);

  std::unordered_set<std::string> stopwords_;
  std::unordered_map<std::string, uint32_t> word_index_;
  const TokenizedCorpus* bound_corpus_ = nullptr;
};

}  // namespace lshclust
