#pragma once

/// \file tfidf.h
/// \brief Per-topic TF-IDF scoring and vocabulary selection (§IV-B-1).
///
/// The paper treats each *topic* as one document: term frequency is counted
/// within the concatenation of a topic's questions, and IDF penalises words
/// appearing in many topics (Eq. 7: idf(t) = log(N / n_t)). Words scoring
/// above a threshold (0.7 and 0.3 in the paper, giving 382 and 2881
/// attributes) form the attribute vocabulary of the clustering problem.
///
/// Scores are normalised to [0, 1] so thresholds are scale-free:
///   score(t, topic) = (0.5 + 0.5 * tf / tf_max(topic)) * idf(t) / log(N)
/// — augmented term frequency times normalised IDF. The paper does not
/// spell out its normalisation; this choice is documented in DESIGN.md §6
/// and preserves the property the experiments rely on: lowering the
/// threshold grows the vocabulary by roughly an order of magnitude.

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for vocabulary selection.
struct TfIdfOptions {
  /// Minimum score for a word to enter the vocabulary (paper: 0.7 / 0.3).
  double threshold = 0.7;
  /// Cap on words taken per topic, best-scoring first (paper: 10000).
  uint32_t max_words_per_topic = 10000;
};

/// \brief Per-topic TF-IDF model over a tokenized corpus.
class TopicTfIdf {
 public:
  /// Builds term frequencies per topic and document frequencies.
  /// Fails on an empty corpus or one with unlabeled topics.
  static Result<TopicTfIdf> Compute(const TokenizedCorpus& corpus);

  /// Number of topics N.
  uint32_t num_topics() const { return num_topics_; }

  /// In how many topics word `w` occurs.
  uint32_t TopicFrequency(uint32_t word) const {
    LSHC_CHECK_LT(word, topic_frequency_.size());
    return topic_frequency_[word];
  }

  /// Normalised IDF of `word`: log(N / n_t) / log(N), in [0, 1]; 0 for
  /// words in every topic, approaching 1 for words in a single topic.
  double NormalizedIdf(uint32_t word) const;

  /// The [0, 1] score of `word` within `topic` (0 when absent).
  double Score(uint32_t topic, uint32_t word) const;

  /// Selects the attribute vocabulary: the union over topics of words with
  /// Score >= options.threshold, capped at options.max_words_per_topic per
  /// topic (best first). Returned word ids are sorted ascending.
  std::vector<uint32_t> SelectVocabulary(const TfIdfOptions& options) const;

 private:
  struct TopicTerm {
    uint32_t word;
    uint32_t count;
  };

  uint32_t num_topics_ = 0;
  uint32_t vocabulary_size_ = 0;
  /// Per topic: sparse (word, count) list, sorted by word id.
  std::vector<std::vector<TopicTerm>> topic_terms_;
  /// Per topic: max term count (augmented-TF denominator).
  std::vector<uint32_t> topic_max_count_;
  /// Per word: number of topics containing it.
  std::vector<uint32_t> topic_frequency_;
};

}  // namespace lshclust
