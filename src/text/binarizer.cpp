#include "text/binarizer.h"

#include <algorithm>

namespace lshclust {

Result<CategoricalDataset> BinarizeCorpus(const TokenizedCorpus& corpus,
                                          std::span<const uint32_t> vocabulary,
                                          bool drop_empty_items) {
  if (vocabulary.empty()) {
    return Status::InvalidArgument("vocabulary is empty");
  }
  if (!std::is_sorted(vocabulary.begin(), vocabulary.end())) {
    return Status::InvalidArgument("vocabulary word ids must be ascending");
  }
  if (!corpus.Valid()) {
    return Status::InvalidArgument("corpus is inconsistent");
  }

  const uint32_t m = static_cast<uint32_t>(vocabulary.size());
  // Attribute a uses code 2a for "absent" and 2a+1 for "present"; codes are
  // interned so ValueToString renders the paper's zoo-0 / zoo-1 form.
  const uint32_t num_codes = 2 * m;
  auto interner = std::make_shared<ValueInterner>();
  std::vector<bool> absent_codes(num_codes, false);
  for (uint32_t a = 0; a < m; ++a) {
    const std::string& word = corpus.vocabulary[vocabulary[a]];
    const uint32_t absent = interner->Intern(ValueInterner::MakeToken(word, "0"));
    const uint32_t present =
        interner->Intern(ValueInterner::MakeToken(word, "1"));
    LSHC_CHECK_EQ(absent, 2 * a);
    LSHC_CHECK_EQ(present, 2 * a + 1);
    absent_codes[absent] = true;
  }

  // word id -> attribute index (or kNoAttribute).
  constexpr uint32_t kNoAttribute = ~0u;
  std::vector<uint32_t> word_to_attribute(corpus.vocabulary.size(),
                                          kNoAttribute);
  for (uint32_t a = 0; a < m; ++a) word_to_attribute[vocabulary[a]] = a;

  std::vector<uint32_t> codes;
  std::vector<uint32_t> labels;
  std::vector<uint32_t> row(m);
  uint32_t num_items = 0;
  for (const Document& doc : corpus.documents) {
    for (uint32_t a = 0; a < m; ++a) row[a] = 2 * a;  // all absent
    bool any_present = false;
    for (const uint32_t word : doc.words) {
      const uint32_t attribute = word_to_attribute[word];
      if (attribute != kNoAttribute) {
        row[attribute] = 2 * attribute + 1;
        any_present = true;
      }
    }
    if (drop_empty_items && !any_present) continue;
    codes.insert(codes.end(), row.begin(), row.end());
    labels.push_back(doc.topic);
    ++num_items;
  }
  if (num_items == 0) {
    return Status::InvalidArgument(
        "no document contains any vocabulary word");
  }

  return CategoricalDataset::FromCodes(num_items, m, num_codes,
                                       std::move(codes), std::move(labels),
                                       std::move(absent_codes),
                                       std::move(interner));
}

}  // namespace lshclust
