#pragma once

/// \file dispatch.h
/// \brief Runtime CPU dispatch for the SIMD kernel tiers.
///
/// The active tier is resolved once, on first use: the best tier the host
/// CPU supports, unless the `LSHCLUST_SIMD_TIER` environment variable
/// (values `scalar`, `sse42`, `avx2`, `avx512`) requests a specific one. Tests and
/// benchmarks can also switch tiers programmatically with `ForceSimdTier`.
/// Resolution and forcing are thread-safe; hot paths read the table through
/// one relaxed atomic load, so callers in tight loops should hoist
/// `const KernelTable& k = simd::ActiveKernels();` out of the loop.
///
/// Tier changes are NOT synchronized with concurrent kernel users — force a
/// tier before spawning worker threads (in practice: in test/bench setup).
/// Because every kernel is bit-identical across tiers, a mid-run switch
/// would be a benign race for results, but don't rely on that.

#include <atomic>
#include <string>

#include "simd/kernel_table.h"

namespace lshclust::simd {

/// The dispatch tiers, weakest first. Each tier strictly requires the
/// previous one's ISA plus its own.
enum class SimdTier {
  kScalar = 0,  ///< baseline ISA only; runs anywhere
  kSse42 = 1,   ///< SSE4.2 + POPCNT
  kAvx2 = 2,    ///< AVX2 + POPCNT
  kAvx512 = 3,  ///< AVX-512 F + DQ + VPOPCNTDQ (+ POPCNT)
};

namespace internal {

/// A resolved tier: identity plus its kernel table. The pointed-to entries
/// are immutable statics in dispatch.cpp, so publishing the pointer is all
/// the synchronization a reader needs.
struct TierInfo {
  SimdTier tier;
  const char* name;
  const KernelTable* kernels;
};

extern std::atomic<const TierInfo*> g_active_tier;

/// Detects the best supported tier (honouring LSHCLUST_SIMD_TIER), publishes
/// it, and returns it. Idempotent; safe to race.
const TierInfo& ResolveActiveTier();

inline const TierInfo& ActiveTierInfo() {
  const TierInfo* info = g_active_tier.load(std::memory_order_acquire);
  return info != nullptr ? *info : ResolveActiveTier();
}

}  // namespace internal

/// The kernel table of the active tier.
inline const KernelTable& ActiveKernels() {
  return *internal::ActiveTierInfo().kernels;
}

/// The active tier.
inline SimdTier ActiveTier() { return internal::ActiveTierInfo().tier; }

/// Stable lower-case name of a tier: "scalar", "sse42", "avx2", "avx512".
const char* TierName(SimdTier tier);

/// True iff the host CPU can execute `tier`'s kernels.
bool TierSupported(SimdTier tier);

/// Forces the active tier (test/bench hook; also how the `LSHCLUST_SIMD_TIER`
/// override is applied). Returns false — leaving the active tier unchanged —
/// if the host does not support `tier`. Not synchronized with concurrent
/// kernel users; call before spawning workers.
bool ForceSimdTier(SimdTier tier);

/// Comma-separated list of the kernel-relevant features the host CPU
/// reports (e.g. "sse4.2,popcnt,avx2"), independent of the active tier.
std::string CpuFeatureString();

}  // namespace lshclust::simd
