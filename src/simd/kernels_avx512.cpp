/// \file kernels_avx512.cpp
/// \brief The AVX-512 dispatch tier.
///
/// Compiled with -mavx512f -mavx512dq -mavx512vpopcntdq -mpopcnt (see
/// CMakeLists.txt); only ever called after dispatch.cpp has confirmed the
/// host supports all three subsets. The integer kernels go 512-bit wide:
/// mask-register compares for mismatch counting, `_mm512_min_epu64` for
/// the permutation scan, `_mm512_mullo_epi64` (the DQ requirement) for
/// batched Mix64, and `_mm512_popcnt_epi64` (the VPOPCNTDQ requirement)
/// for sketch Hamming distance. The float kernels are the AVX2 tier's
/// 256-bit implementations verbatim: widening them to one 8-lane __m512d
/// accumulator would change the reduction order and break the cross-tier
/// bit-identity contract, and the early-exit partial checks keep the
/// loops latency-bound anyway. No FMA anywhere — explicit mul+add plus
/// -ffp-contract=off keep every tier's rounding identical.

#include "simd/kernel_table.h"
#include "simd/kernels_common.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

namespace lshclust::simd {
namespace {

/// Number of equal positions among the 16-wide groups of [0, hexes*16).
/// Mask-register compares turn each group into a 16-bit mask; hardware
/// popcnt accumulates them in a scalar counter (integer adds are
/// associative, so the count is tier-identical by construction).
inline uint32_t CountEqualHexes(const uint32_t* a, const uint32_t* b,
                                uint32_t hexes) {
  uint32_t equals = 0;
  for (uint32_t q = 0; q < hexes; ++q) {
    const __m512i va = _mm512_loadu_si512(a + 16 * q);
    const __m512i vb = _mm512_loadu_si512(b + 16 * q);
    equals += static_cast<uint32_t>(__builtin_popcount(
        static_cast<unsigned>(_mm512_cmpeq_epi32_mask(va, vb))));
  }
  return equals;
}

uint32_t Avx512Mismatch(const uint32_t* a, const uint32_t* b, uint32_t m) {
  const uint32_t hexes = m / 16;
  uint32_t mismatches = 16 * hexes - CountEqualHexes(a, b, hexes);
  for (uint32_t j = 16 * hexes; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

uint32_t Avx512BoundedMismatch(const uint32_t* a, const uint32_t* b, uint32_t m,
                               uint32_t bound) {
  uint32_t mismatches = 0;
  uint32_t j = 0;
  // 32-element blocks with a bound check after each block — the same block
  // size as every other tier, so the early-exit partial value matches.
  while (j + 32 <= m) {
    mismatches += 32 - CountEqualHexes(a + j, b + j, 2);
    j += 32;
    if (mismatches >= bound) return mismatches;
  }
  for (; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

/// The canonical (l0+l1)+(l2+l3) lane reduction, in scalar double adds so
/// the rounding matches the scalar tier exactly.
inline double ReduceLanes(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const double l0 = _mm_cvtsd_f64(lo);
  const double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double l2 = _mm_cvtsd_f64(hi);
  const double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (l0 + l1) + (l2 + l3);
}

/// Identical to the AVX2 tier: one 4-lane accumulator, two 4-wide steps
/// per 8-element block. The canonical reduction shape is the contract; a
/// 512-bit rewrite would round differently.
double Avx512BoundedSquaredL2(const double* a, const double* b, uint32_t d,
                              double bound) {
  __m256d acc = _mm256_setzero_pd();
  uint32_t j = 0;
  while (j + 8 <= d) {
    const __m256d x0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x0, x0));
    const __m256d x1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j + 4), _mm256_loadu_pd(b + j + 4));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x1, x1));
    j += 8;
    const double partial = ReduceLanes(acc);
    if (partial >= bound) return partial;
  }
  double sum = ReduceLanes(acc);
  for (; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

double Avx512Dot(const double* a, const double* b, uint32_t d) {
  __m256d acc = _mm256_setzero_pd();
  uint32_t j = 0;
  while (j + 8 <= d) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + j + 4),
                                           _mm256_loadu_pd(b + j + 4)));
    j += 8;
  }
  double sum = ReduceLanes(acc);
  for (; j < d; ++j) {
    sum += a[j] * b[j];
  }
  return sum;
}

void Avx512MinHashScan(uint64_t* out, uint32_t n, uint64_t h0, uint64_t step) {
  const __m512i vstep = _mm512_set1_epi64(static_cast<int64_t>(8 * step));
  __m512i v = _mm512_set_epi64(static_cast<int64_t>(h0 + 7 * step),
                               static_cast<int64_t>(h0 + 6 * step),
                               static_cast<int64_t>(h0 + 5 * step),
                               static_cast<int64_t>(h0 + 4 * step),
                               static_cast<int64_t>(h0 + 3 * step),
                               static_cast<int64_t>(h0 + 2 * step),
                               static_cast<int64_t>(h0 + step),
                               static_cast<int64_t>(h0));
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i cur = _mm512_loadu_si512(out + i);
    _mm512_storeu_si512(out + i, _mm512_min_epu64(cur, v));
    v = _mm512_add_epi64(v, vstep);
  }
  uint64_t h = h0 + static_cast<uint64_t>(i) * step;
  for (; i < n; ++i) {
    if (h < out[i]) out[i] = h;
    h += step;
  }
}

void Avx512Mix64Batch(const uint32_t* tokens, uint32_t count, uint64_t seed,
                      uint64_t* out) {
  constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  constexpr uint64_t kM1 = 0xBF58476D1CE4E5B9ULL;
  constexpr uint64_t kM2 = 0x94D049BB133111EBULL;
  const __m512i vseed = _mm512_set1_epi64(static_cast<int64_t>(seed));
  const __m512i vgolden = _mm512_set1_epi64(static_cast<int64_t>(kGolden));
  const __m512i vm1 = _mm512_set1_epi64(static_cast<int64_t>(kM1));
  const __m512i vm2 = _mm512_set1_epi64(static_cast<int64_t>(kM2));
  uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512i oct = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tokens + i)));
    __m512i z = _mm512_add_epi64(_mm512_xor_si512(oct, vseed), vgolden);
    // _mm512_mullo_epi64 is the AVX512DQ requirement: a true 64x64 -> low
    // 64 lane multiply, replacing the AVX2 tier's three-pmuludq ladder.
    z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)), vm1);
    z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)), vm2);
    z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
    _mm512_storeu_si512(out + i, z);
  }
  for (; i < count; ++i) {
    out[i] = ScalarMix64(static_cast<uint64_t>(tokens[i]) ^ seed);
  }
}

/// The AVX512VPOPCNTDQ requirement: per-lane 64-bit popcount, so sketch
/// Hamming distance runs 8 words per step instead of one popcnt each.
uint64_t Avx512HammingWords(const uint64_t* a, const uint64_t* b,
                            uint32_t words) {
  __m512i acc = _mm512_setzero_si512();
  uint32_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[w] ^ b[w]));
  }
  return total;
}

}  // namespace

const KernelTable kAvx512Kernels = {
    /*mismatch=*/Avx512Mismatch,
    /*bounded_mismatch=*/Avx512BoundedMismatch,
    /*bounded_sql2=*/Avx512BoundedSquaredL2,
    /*dot=*/Avx512Dot,
    /*minhash_scan=*/Avx512MinHashScan,
    /*mix64_batch=*/Avx512Mix64Batch,
    /*hamming_words=*/Avx512HammingWords,
};

}  // namespace lshclust::simd

#else  // !(AVX512F && AVX512DQ && AVX512VPOPCNTDQ)

// Built without AVX-512 codegen (non-x86 host, or flags withheld): the
// table must still exist for link integrity, but dispatch.cpp never
// selects an unsupported tier, so scalar entries are correct and
// unreachable anyway.
namespace lshclust::simd {

const KernelTable kAvx512Kernels = {
    /*mismatch=*/ScalarMismatch,
    /*bounded_mismatch=*/ScalarBoundedMismatch,
    /*bounded_sql2=*/ScalarBoundedSquaredL2,
    /*dot=*/ScalarDot,
    /*minhash_scan=*/ScalarMinHashScan,
    /*mix64_batch=*/ScalarMix64Batch,
    /*hamming_words=*/ScalarHammingWords,
};

}  // namespace lshclust::simd

#endif  // defined(__AVX512F__) && defined(__AVX512DQ__) &&
        // defined(__AVX512VPOPCNTDQ__)
