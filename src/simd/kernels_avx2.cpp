/// \file kernels_avx2.cpp
/// \brief The AVX2 dispatch tier.
///
/// Compiled with -mavx2 -mpopcnt (see CMakeLists.txt); only ever called
/// after dispatch.cpp has confirmed the host supports the tier. The float
/// kernels keep one 4-lane __m256d accumulator and take two 4-wide steps
/// per 8-element block, which reproduces the scalar tier's canonical lane
/// assignment (lane = index % 4) and rounding exactly; the lane reduction
/// is performed in scalar double adds. No FMA anywhere — explicit mul+add
/// plus -ffp-contract=off keep every tier's rounding identical.

#include "simd/kernel_table.h"
#include "simd/kernels_common.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace lshclust::simd {
namespace {

/// Horizontal sum of eight epi32 lanes.
inline uint32_t HorizontalSumEpi32(__m256i v) {
  __m128i sum =
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(sum));
}

/// One 8-lane compare-accumulate step: cmpeq lanes are 0 or -1, so
/// subtracting adds 1 per equal lane.
inline __m256i AccumulateEqualOct(__m256i equals, const uint32_t* a,
                                  const uint32_t* b) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return _mm256_sub_epi32(equals, _mm256_cmpeq_epi32(va, vb));
}

/// Number of equal positions among the 8-wide groups of [0, octs*8).
/// Four independent accumulators break the loop-carried sub dependency so
/// the loop runs at load throughput; integer adds are associative, so the
/// count (and cross-tier bit-identity) is unaffected.
inline uint32_t CountEqualOcts(const uint32_t* a, const uint32_t* b,
                               uint32_t octs) {
  __m256i e0 = _mm256_setzero_si256();
  __m256i e1 = _mm256_setzero_si256();
  __m256i e2 = _mm256_setzero_si256();
  __m256i e3 = _mm256_setzero_si256();
  uint32_t q = 0;
  for (; q + 4 <= octs; q += 4) {
    e0 = AccumulateEqualOct(e0, a + 8 * q, b + 8 * q);
    e1 = AccumulateEqualOct(e1, a + 8 * q + 8, b + 8 * q + 8);
    e2 = AccumulateEqualOct(e2, a + 8 * q + 16, b + 8 * q + 16);
    e3 = AccumulateEqualOct(e3, a + 8 * q + 24, b + 8 * q + 24);
  }
  for (; q < octs; ++q) {
    e0 = AccumulateEqualOct(e0, a + 8 * q, b + 8 * q);
  }
  const __m256i equals =
      _mm256_add_epi32(_mm256_add_epi32(e0, e1), _mm256_add_epi32(e2, e3));
  return HorizontalSumEpi32(equals);
}

uint32_t Avx2Mismatch(const uint32_t* a, const uint32_t* b, uint32_t m) {
  const uint32_t octs = m / 8;
  uint32_t mismatches = 8 * octs - CountEqualOcts(a, b, octs);
  for (uint32_t j = 8 * octs; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

uint32_t Avx2BoundedMismatch(const uint32_t* a, const uint32_t* b, uint32_t m,
                             uint32_t bound) {
  uint32_t mismatches = 0;
  uint32_t j = 0;
  while (j + 32 <= m) {
    mismatches += 32 - CountEqualOcts(a + j, b + j, 4);
    j += 32;
    if (mismatches >= bound) return mismatches;
  }
  for (; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

/// The canonical (l0+l1)+(l2+l3) lane reduction, in scalar double adds so
/// the rounding matches the scalar tier exactly.
inline double ReduceLanes(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const double l0 = _mm_cvtsd_f64(lo);
  const double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double l2 = _mm_cvtsd_f64(hi);
  const double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (l0 + l1) + (l2 + l3);
}

double Avx2BoundedSquaredL2(const double* a, const double* b, uint32_t d,
                            double bound) {
  __m256d acc = _mm256_setzero_pd();
  uint32_t j = 0;
  while (j + 8 <= d) {
    const __m256d x0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x0, x0));
    const __m256d x1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j + 4), _mm256_loadu_pd(b + j + 4));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x1, x1));
    j += 8;
    const double partial = ReduceLanes(acc);
    if (partial >= bound) return partial;
  }
  double sum = ReduceLanes(acc);
  for (; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

double Avx2Dot(const double* a, const double* b, uint32_t d) {
  __m256d acc = _mm256_setzero_pd();
  uint32_t j = 0;
  while (j + 8 <= d) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + j + 4),
                                           _mm256_loadu_pd(b + j + 4)));
    j += 8;
  }
  double sum = ReduceLanes(acc);
  for (; j < d; ++j) {
    sum += a[j] * b[j];
  }
  return sum;
}

void Avx2MinHashScan(uint64_t* out, uint32_t n, uint64_t h0, uint64_t step) {
  const __m256i sign = _mm256_set1_epi64x(static_cast<int64_t>(1ULL << 63));
  const __m256i vstep = _mm256_set1_epi64x(static_cast<int64_t>(4 * step));
  __m256i v = _mm256_set_epi64x(static_cast<int64_t>(h0 + 3 * step),
                                static_cast<int64_t>(h0 + 2 * step),
                                static_cast<int64_t>(h0 + step),
                                static_cast<int64_t>(h0));
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i* slot = reinterpret_cast<__m256i*>(out + i);
    const __m256i cur = _mm256_loadu_si256(slot);
    // Unsigned cur > v via sign-flipped signed compare; where true, v wins.
    const __m256i greater = _mm256_cmpgt_epi64(_mm256_xor_si256(cur, sign),
                                               _mm256_xor_si256(v, sign));
    _mm256_storeu_si256(slot, _mm256_blendv_epi8(cur, v, greater));
    v = _mm256_add_epi64(v, vstep);
  }
  uint64_t h = h0 + static_cast<uint64_t>(i) * step;
  for (; i < n; ++i) {
    if (h < out[i]) out[i] = h;
    h += step;
  }
}

/// 64x64 -> low 64 multiply of each lane by a broadcast constant, from
/// three 32x32 pmuludq partial products.
inline __m256i MulLo64(__m256i a, __m256i b_full, __m256i b_high) {
  const __m256i lo = _mm256_mul_epu32(a, b_full);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_high),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b_full));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

void Avx2Mix64Batch(const uint32_t* tokens, uint32_t count, uint64_t seed,
                    uint64_t* out) {
  constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  constexpr uint64_t kM1 = 0xBF58476D1CE4E5B9ULL;
  constexpr uint64_t kM2 = 0x94D049BB133111EBULL;
  const __m256i vseed = _mm256_set1_epi64x(static_cast<int64_t>(seed));
  const __m256i vgolden = _mm256_set1_epi64x(static_cast<int64_t>(kGolden));
  const __m256i vm1 = _mm256_set1_epi64x(static_cast<int64_t>(kM1));
  const __m256i vm1_hi = _mm256_set1_epi64x(static_cast<int64_t>(kM1 >> 32));
  const __m256i vm2 = _mm256_set1_epi64x(static_cast<int64_t>(kM2));
  const __m256i vm2_hi = _mm256_set1_epi64x(static_cast<int64_t>(kM2 >> 32));
  uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i quad = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tokens + i)));
    __m256i z = _mm256_add_epi64(_mm256_xor_si256(quad, vseed), vgolden);
    z = MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), vm1, vm1_hi);
    z = MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), vm2, vm2_hi);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), z);
  }
  for (; i < count; ++i) {
    out[i] = ScalarMix64(static_cast<uint64_t>(tokens[i]) ^ seed);
  }
}

}  // namespace

const KernelTable kAvx2Kernels = {
    /*mismatch=*/Avx2Mismatch,
    /*bounded_mismatch=*/Avx2BoundedMismatch,
    /*bounded_sql2=*/Avx2BoundedSquaredL2,
    /*dot=*/Avx2Dot,
    /*minhash_scan=*/Avx2MinHashScan,
    /*mix64_batch=*/Avx2Mix64Batch,
    // Sketches are a handful of words; hardware popcnt (this TU is built
    // with -mpopcnt) is already the fast path.
    /*hamming_words=*/ScalarHammingWords,
};

}  // namespace lshclust::simd

#else  // !defined(__AVX2__)

// Built without AVX2 codegen (non-x86 host, or flags withheld): the table
// must still exist for link integrity, but dispatch.cpp never selects an
// unsupported tier, so scalar entries are correct and unreachable anyway.
namespace lshclust::simd {

const KernelTable kAvx2Kernels = {
    /*mismatch=*/ScalarMismatch,
    /*bounded_mismatch=*/ScalarBoundedMismatch,
    /*bounded_sql2=*/ScalarBoundedSquaredL2,
    /*dot=*/ScalarDot,
    /*minhash_scan=*/ScalarMinHashScan,
    /*mix64_batch=*/ScalarMix64Batch,
    /*hamming_words=*/ScalarHammingWords,
};

}  // namespace lshclust::simd

#endif  // defined(__AVX2__)
