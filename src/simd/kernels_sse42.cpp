/// \file kernels_sse42.cpp
/// \brief The SSE4.2 dispatch tier.
///
/// Compiled with -msse4.2 -mpopcnt (see CMakeLists.txt); only ever called
/// after dispatch.cpp has confirmed the host supports the tier. Integer
/// kernels are trivially bit-identical to the scalar tier (same values,
/// different instruction shapes); the float kernels reproduce the scalar
/// tier's canonical 4-lane x 8-element blocked reduction exactly — lanes
/// {0,1} live in acc01, lanes {2,3} in acc23, and the (l0+l1)+(l2+l3)
/// reduction is performed in scalar double adds.

#include "simd/kernel_table.h"
#include "simd/kernels_common.h"

#if defined(__SSE4_2__)

#include <immintrin.h>

namespace lshclust::simd {
namespace {

/// Horizontal sum of four epi32 lanes.
inline uint32_t HorizontalSumEpi32(__m128i v) {
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(v));
}

/// One 4-lane compare-accumulate step: cmpeq lanes are 0 or -1, so
/// subtracting adds 1 per equal lane.
inline __m128i AccumulateEqualQuad(__m128i equals, const uint32_t* a,
                                   const uint32_t* b) {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  return _mm_sub_epi32(equals, _mm_cmpeq_epi32(va, vb));
}

/// Number of equal positions among the 4-wide groups of [0, quads*4).
/// Four independent accumulators break the loop-carried sub dependency so
/// the loop runs at load throughput; integer adds are associative, so the
/// count (and cross-tier bit-identity) is unaffected.
inline uint32_t CountEqualQuads(const uint32_t* a, const uint32_t* b,
                                uint32_t quads) {
  __m128i e0 = _mm_setzero_si128();
  __m128i e1 = _mm_setzero_si128();
  __m128i e2 = _mm_setzero_si128();
  __m128i e3 = _mm_setzero_si128();
  uint32_t q = 0;
  for (; q + 4 <= quads; q += 4) {
    e0 = AccumulateEqualQuad(e0, a + 4 * q, b + 4 * q);
    e1 = AccumulateEqualQuad(e1, a + 4 * q + 4, b + 4 * q + 4);
    e2 = AccumulateEqualQuad(e2, a + 4 * q + 8, b + 4 * q + 8);
    e3 = AccumulateEqualQuad(e3, a + 4 * q + 12, b + 4 * q + 12);
  }
  for (; q < quads; ++q) {
    e0 = AccumulateEqualQuad(e0, a + 4 * q, b + 4 * q);
  }
  const __m128i equals =
      _mm_add_epi32(_mm_add_epi32(e0, e1), _mm_add_epi32(e2, e3));
  return HorizontalSumEpi32(equals);
}

uint32_t Sse42Mismatch(const uint32_t* a, const uint32_t* b, uint32_t m) {
  const uint32_t quads = m / 4;
  uint32_t mismatches = 4 * quads - CountEqualQuads(a, b, quads);
  for (uint32_t j = 4 * quads; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

uint32_t Sse42BoundedMismatch(const uint32_t* a, const uint32_t* b,
                              uint32_t m, uint32_t bound) {
  uint32_t mismatches = 0;
  uint32_t j = 0;
  while (j + 32 <= m) {
    mismatches += 32 - CountEqualQuads(a + j, b + j, 8);
    j += 32;
    if (mismatches >= bound) return mismatches;
  }
  for (; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

/// The canonical (l0+l1)+(l2+l3) lane reduction, in scalar double adds so
/// the rounding matches the scalar tier exactly.
inline double ReduceLanes(__m128d acc01, __m128d acc23) {
  const double l0 = _mm_cvtsd_f64(acc01);
  const double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc01, acc01));
  const double l2 = _mm_cvtsd_f64(acc23);
  const double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc23, acc23));
  return (l0 + l1) + (l2 + l3);
}

double Sse42BoundedSquaredL2(const double* a, const double* b, uint32_t d,
                             double bound) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  uint32_t j = 0;
  while (j + 8 <= d) {
    const __m128d x0 = _mm_sub_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(x0, x0));
    const __m128d x1 =
        _mm_sub_pd(_mm_loadu_pd(a + j + 2), _mm_loadu_pd(b + j + 2));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(x1, x1));
    const __m128d x2 =
        _mm_sub_pd(_mm_loadu_pd(a + j + 4), _mm_loadu_pd(b + j + 4));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(x2, x2));
    const __m128d x3 =
        _mm_sub_pd(_mm_loadu_pd(a + j + 6), _mm_loadu_pd(b + j + 6));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(x3, x3));
    j += 8;
    const double partial = ReduceLanes(acc01, acc23);
    if (partial >= bound) return partial;
  }
  double sum = ReduceLanes(acc01, acc23);
  for (; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

double Sse42Dot(const double* a, const double* b, uint32_t d) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  uint32_t j = 0;
  while (j + 8 <= d) {
    acc01 = _mm_add_pd(acc01,
                       _mm_mul_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + j + 2), _mm_loadu_pd(b + j + 2)));
    acc01 = _mm_add_pd(
        acc01, _mm_mul_pd(_mm_loadu_pd(a + j + 4), _mm_loadu_pd(b + j + 4)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + j + 6), _mm_loadu_pd(b + j + 6)));
    j += 8;
  }
  double sum = ReduceLanes(acc01, acc23);
  for (; j < d; ++j) {
    sum += a[j] * b[j];
  }
  return sum;
}

void Sse42MinHashScan(uint64_t* out, uint32_t n, uint64_t h0, uint64_t step) {
  const __m128i sign = _mm_set1_epi64x(static_cast<int64_t>(1ULL << 63));
  const __m128i vstep =
      _mm_set1_epi64x(static_cast<int64_t>(step + step));
  __m128i v = _mm_set_epi64x(static_cast<int64_t>(h0 + step),
                             static_cast<int64_t>(h0));
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i* slot = reinterpret_cast<__m128i*>(out + i);
    const __m128i cur = _mm_loadu_si128(slot);
    // Unsigned cur > v via sign-flipped signed compare; where true, v wins.
    const __m128i greater = _mm_cmpgt_epi64(_mm_xor_si128(cur, sign),
                                            _mm_xor_si128(v, sign));
    _mm_storeu_si128(slot, _mm_blendv_epi8(cur, v, greater));
    v = _mm_add_epi64(v, vstep);
  }
  uint64_t h = h0 + static_cast<uint64_t>(i) * step;
  for (; i < n; ++i) {
    if (h < out[i]) out[i] = h;
    h += step;
  }
}

/// 64x64 -> low 64 multiply of each lane by a broadcast constant, from
/// three 32x32 pmuludq partial products.
inline __m128i MulLo64(__m128i a, __m128i b_full, __m128i b_high) {
  const __m128i lo = _mm_mul_epu32(a, b_full);
  const __m128i cross = _mm_add_epi64(_mm_mul_epu32(a, b_high),
                                      _mm_mul_epu32(_mm_srli_epi64(a, 32),
                                                    b_full));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

void Sse42Mix64Batch(const uint32_t* tokens, uint32_t count, uint64_t seed,
                     uint64_t* out) {
  constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  constexpr uint64_t kM1 = 0xBF58476D1CE4E5B9ULL;
  constexpr uint64_t kM2 = 0x94D049BB133111EBULL;
  const __m128i vseed = _mm_set1_epi64x(static_cast<int64_t>(seed));
  const __m128i vgolden = _mm_set1_epi64x(static_cast<int64_t>(kGolden));
  const __m128i vm1 = _mm_set1_epi64x(static_cast<int64_t>(kM1));
  const __m128i vm1_hi = _mm_set1_epi64x(static_cast<int64_t>(kM1 >> 32));
  const __m128i vm2 = _mm_set1_epi64x(static_cast<int64_t>(kM2));
  const __m128i vm2_hi = _mm_set1_epi64x(static_cast<int64_t>(kM2 >> 32));
  uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i pair = _mm_cvtepu32_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(tokens + i)));
    __m128i z = _mm_add_epi64(_mm_xor_si128(pair, vseed), vgolden);
    z = MulLo64(_mm_xor_si128(z, _mm_srli_epi64(z, 30)), vm1, vm1_hi);
    z = MulLo64(_mm_xor_si128(z, _mm_srli_epi64(z, 27)), vm2, vm2_hi);
    z = _mm_xor_si128(z, _mm_srli_epi64(z, 31));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), z);
  }
  for (; i < count; ++i) {
    out[i] = ScalarMix64(static_cast<uint64_t>(tokens[i]) ^ seed);
  }
}

}  // namespace

const KernelTable kSse42Kernels = {
    /*mismatch=*/Sse42Mismatch,
    /*bounded_mismatch=*/Sse42BoundedMismatch,
    /*bounded_sql2=*/Sse42BoundedSquaredL2,
    /*dot=*/Sse42Dot,
    /*minhash_scan=*/Sse42MinHashScan,
    /*mix64_batch=*/Sse42Mix64Batch,
    // Sketches are a handful of words; hardware popcnt (this TU is built
    // with -mpopcnt) is already the fast path.
    /*hamming_words=*/ScalarHammingWords,
};

}  // namespace lshclust::simd

#else  // !defined(__SSE4_2__)

// Built without SSE4.2 codegen (non-x86 host, or flags withheld): the table
// must still exist for link integrity, but dispatch.cpp never selects an
// unsupported tier, so scalar entries are correct and unreachable anyway.
namespace lshclust::simd {

const KernelTable kSse42Kernels = {
    /*mismatch=*/ScalarMismatch,
    /*bounded_mismatch=*/ScalarBoundedMismatch,
    /*bounded_sql2=*/ScalarBoundedSquaredL2,
    /*dot=*/ScalarDot,
    /*minhash_scan=*/ScalarMinHashScan,
    /*mix64_batch=*/ScalarMix64Batch,
    /*hamming_words=*/ScalarHammingWords,
};

}  // namespace lshclust::simd

#endif  // defined(__SSE4_2__)
