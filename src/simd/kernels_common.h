#pragma once

/// \file kernels_common.h
/// \brief Internal-linkage scalar reference kernels shared by the tier TUs.
///
/// Every function here is `static`, so each tier translation unit compiles
/// its *own* copy under its own ISA flags — there is no external symbol the
/// linker could deduplicate across TUs, which is what makes it safe to
/// include this header from the -msse4.2 / -mavx2 files (no ODR/ISA leak).
/// The scalar tier's table points at these directly; the vector tiers fall
/// back to them for kernels where vectorization does not pay off (e.g.
/// hamming_words over the handful of sketch words) and override the rest.
///
/// `ScalarMix64` must match util/rng.h `Mix64` bit-for-bit — it is
/// re-implemented here (rather than included) to keep the tier TUs off the
/// project's inline-heavy headers; tests/simd_test.cpp pins the
/// equivalence.
///
/// Float kernels define the canonical 4-lane x 8-element blocked reduction
/// order that the vector tiers reproduce exactly: lane l = index % 4, one
/// bound check per 8-element block on the fixed (l0+l1)+(l2+l3) reduction,
/// sequential tail. Compiled with -ffp-contract=off in every tier so no
/// tier fuses the multiply-add (see CMakeLists.txt).

#include <cstdint>

namespace lshclust::simd {
namespace {

/// Bit-for-bit copy of util/rng.h Mix64 (stateless SplitMix64 finalizer).
[[maybe_unused]] static inline uint64_t ScalarMix64(uint64_t x) {
  uint64_t z = x + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

[[maybe_unused]] static uint32_t ScalarMismatch(const uint32_t* a, const uint32_t* b,
                               uint32_t m) {
  uint32_t mismatches = 0;
  for (uint32_t j = 0; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

[[maybe_unused]] static uint32_t ScalarBoundedMismatch(const uint32_t* a, const uint32_t* b,
                                      uint32_t m, uint32_t bound) {
  uint32_t mismatches = 0;
  uint32_t j = 0;
  while (j + 32 <= m) {
    uint32_t block = 0;
    for (uint32_t t = 0; t < 32; ++t) {
      block += (a[j + t] != b[j + t]) ? 1 : 0;
    }
    mismatches += block;
    j += 32;
    if (mismatches >= bound) return mismatches;
  }
  for (; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

[[maybe_unused]] static double ScalarBoundedSquaredL2(const double* a, const double* b,
                                     uint32_t d, double bound) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  uint32_t j = 0;
  while (j + 8 <= d) {
    {
      const double d0 = a[j + 0] - b[j + 0];
      const double d1 = a[j + 1] - b[j + 1];
      const double d2 = a[j + 2] - b[j + 2];
      const double d3 = a[j + 3] - b[j + 3];
      l0 += d0 * d0;
      l1 += d1 * d1;
      l2 += d2 * d2;
      l3 += d3 * d3;
    }
    {
      const double d0 = a[j + 4] - b[j + 4];
      const double d1 = a[j + 5] - b[j + 5];
      const double d2 = a[j + 6] - b[j + 6];
      const double d3 = a[j + 7] - b[j + 7];
      l0 += d0 * d0;
      l1 += d1 * d1;
      l2 += d2 * d2;
      l3 += d3 * d3;
    }
    j += 8;
    const double partial = (l0 + l1) + (l2 + l3);
    if (partial >= bound) return partial;
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

[[maybe_unused]] static double ScalarDot(const double* a, const double* b, uint32_t d) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  uint32_t j = 0;
  while (j + 8 <= d) {
    l0 += a[j + 0] * b[j + 0];
    l1 += a[j + 1] * b[j + 1];
    l2 += a[j + 2] * b[j + 2];
    l3 += a[j + 3] * b[j + 3];
    l0 += a[j + 4] * b[j + 4];
    l1 += a[j + 5] * b[j + 5];
    l2 += a[j + 6] * b[j + 6];
    l3 += a[j + 7] * b[j + 7];
    j += 8;
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (; j < d; ++j) {
    sum += a[j] * b[j];
  }
  return sum;
}

[[maybe_unused]] static void ScalarMinHashScan(uint64_t* out, uint32_t n, uint64_t h0,
                              uint64_t step) {
  uint64_t h = h0;
  for (uint32_t i = 0; i < n; ++i) {
    if (h < out[i]) out[i] = h;
    h += step;
  }
}

[[maybe_unused]] static void ScalarMix64Batch(const uint32_t* tokens, uint32_t count,
                             uint64_t seed, uint64_t* out) {
  for (uint32_t i = 0; i < count; ++i) {
    out[i] = ScalarMix64(static_cast<uint64_t>(tokens[i]) ^ seed);
  }
}

[[maybe_unused]] static uint64_t ScalarHammingWords(const uint64_t* a, const uint64_t* b,
                                   uint32_t words) {
  uint64_t distance = 0;
  for (uint32_t w = 0; w < words; ++w) {
    distance += static_cast<uint64_t>(__builtin_popcountll(a[w] ^ b[w]));
  }
  return distance;
}

}  // namespace
}  // namespace lshclust::simd
