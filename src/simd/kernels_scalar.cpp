/// \file kernels_scalar.cpp
/// \brief The scalar dispatch tier — the reference implementations.
///
/// Compiled with the project's baseline flags only (plus -ffp-contract=off,
/// like every kernel TU), so this tier runs on any host and defines the
/// values the vector tiers must reproduce bit-for-bit.

#include "simd/kernel_table.h"
#include "simd/kernels_common.h"

namespace lshclust::simd {

const KernelTable kScalarKernels = {
    /*mismatch=*/ScalarMismatch,
    /*bounded_mismatch=*/ScalarBoundedMismatch,
    /*bounded_sql2=*/ScalarBoundedSquaredL2,
    /*dot=*/ScalarDot,
    /*minhash_scan=*/ScalarMinHashScan,
    /*mix64_batch=*/ScalarMix64Batch,
    /*hamming_words=*/ScalarHammingWords,
};

}  // namespace lshclust::simd
