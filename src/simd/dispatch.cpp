#include "simd/dispatch.h"

#include <cstdlib>
#include <cstring>

namespace lshclust::simd {
namespace internal {

namespace {

const TierInfo kTiers[] = {
    {SimdTier::kScalar, "scalar", &kScalarKernels},
    {SimdTier::kSse42, "sse42", &kSse42Kernels},
    {SimdTier::kAvx2, "avx2", &kAvx2Kernels},
    {SimdTier::kAvx512, "avx512", &kAvx512Kernels},
};

const TierInfo& InfoOf(SimdTier tier) {
  return kTiers[static_cast<int>(tier)];
}

/// The tier requested by LSHCLUST_SIMD_TIER, or the best supported tier.
/// An unknown value or an unsupported request falls back to detection, so
/// a stale environment can never select kernels the host cannot run.
const TierInfo& DetectTier() {
  if (const char* env = std::getenv("LSHCLUST_SIMD_TIER")) {
    for (const TierInfo& info : kTiers) {
      if (std::strcmp(env, info.name) == 0 && TierSupported(info.tier)) {
        return info;
      }
    }
  }
  if (TierSupported(SimdTier::kAvx512)) return InfoOf(SimdTier::kAvx512);
  if (TierSupported(SimdTier::kAvx2)) return InfoOf(SimdTier::kAvx2);
  if (TierSupported(SimdTier::kSse42)) return InfoOf(SimdTier::kSse42);
  return InfoOf(SimdTier::kScalar);
}

}  // namespace

std::atomic<const TierInfo*> g_active_tier{nullptr};

const TierInfo& ResolveActiveTier() {
  const TierInfo& detected = DetectTier();
  // Losing a race just re-publishes an identical detection result.
  g_active_tier.store(&detected, std::memory_order_release);
  return detected;
}

}  // namespace internal

const char* TierName(SimdTier tier) {
  return internal::InfoOf(tier).name;
}

bool TierSupported(SimdTier tier) {
#if defined(__x86_64__) || defined(__i386__)
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kSse42:
      return __builtin_cpu_supports("sse4.2") &&
             __builtin_cpu_supports("popcnt");
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("popcnt");
    case SimdTier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vpopcntdq") &&
             __builtin_cpu_supports("popcnt");
  }
  return false;
#else
  return tier == SimdTier::kScalar;
#endif
}

bool ForceSimdTier(SimdTier tier) {
  if (!TierSupported(tier)) return false;
  internal::g_active_tier.store(&internal::InfoOf(tier),
                                std::memory_order_release);
  return true;
}

std::string CpuFeatureString() {
  std::string features;
  const auto append = [&features](const char* name) {
    if (!features.empty()) features += ',';
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
  if (__builtin_cpu_supports("popcnt")) append("popcnt");
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
  if (__builtin_cpu_supports("avx512dq")) append("avx512dq");
  if (__builtin_cpu_supports("avx512vpopcntdq")) append("avx512vpopcntdq");
#endif
  if (features.empty()) features = "baseline";
  return features;
}

}  // namespace lshclust::simd
