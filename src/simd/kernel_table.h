#pragma once

/// \file kernel_table.h
/// \brief Function-pointer table for the per-tier SIMD kernels.
///
/// Deliberately minimal: the tier translation units (kernels_*.cpp) are
/// compiled with per-file ISA flags (-msse4.2 / -mavx2), so any inline
/// function they pulled in from a shared project header could be emitted
/// with instructions the host cannot run and then be chosen by the linker
/// for *every* TU (a classic ODR/ISA leak). This header therefore includes
/// nothing but <cstdint> and declares only the table; the tier TUs include
/// it plus kernels_common.h (internal-linkage scalar references) and the
/// intrinsics header, nothing else.

#include <cstdint>

namespace lshclust::simd {

/// One tier's kernel implementations. All integer kernels are bit-identical
/// across tiers; the float kernels (`bounded_sql2`, `dot`) use a fixed
/// 4-lane x 8-element blocked reduction order so every tier returns the
/// exact same double, preserving the repo's bit-identity contract across
/// threads x shards x dispatch tiers.
struct KernelTable {
  /// Count of positions where a[i] != b[i], i in [0, m).
  uint32_t (*mismatch)(const uint32_t* a, const uint32_t* b, uint32_t m);

  /// Mismatch count with early exit: once the running count reaches
  /// `bound` any value >= bound may be returned. Every tier scans
  /// 32-element blocks with a bound check after each block, so the partial
  /// value returned on early exit is also tier-identical.
  uint32_t (*bounded_mismatch)(const uint32_t* a, const uint32_t* b,
                               uint32_t m, uint32_t bound);

  /// Squared L2 distance with early exit at `bound`, accumulated in the
  /// canonical 4-lane x 8-element blocked order with the reduced partial
  /// checked after every block; the (l0+l1)+(l2+l3) lane reduction and the
  /// sequential tail are fixed so every tier returns the same double. For
  /// d < 8 the result equals the plain sequential sum.
  double (*bounded_sql2)(const double* a, const double* b, uint32_t d,
                         double bound);

  /// Dot product in the same canonical reduction order as bounded_sql2.
  double (*dot)(const double* a, const double* b, uint32_t d);

  /// out[i] = min(out[i], h0 + i*step) for i in [0, n), with wrapping
  /// uint64 arithmetic — the Kirsch-Mitzenmacher permutation scan at the
  /// heart of double-hashing MinHash.
  void (*minhash_scan)(uint64_t* out, uint32_t n, uint64_t h0, uint64_t step);

  /// out[i] = Mix64(uint64(tokens[i]) ^ seed) for i in [0, count) — the
  /// batched token hash of MinHash / one-permutation MinHash signing.
  void (*mix64_batch)(const uint32_t* tokens, uint32_t count, uint64_t seed,
                      uint64_t* out);

  /// Popcount of XOR over `words` 64-bit words: the Hamming distance of two
  /// packed bit sketches, used by the shortlist prefilter.
  uint64_t (*hamming_words)(const uint64_t* a, const uint64_t* b,
                            uint32_t words);
};

/// Per-tier tables, defined in kernels_scalar.cpp / kernels_sse42.cpp /
/// kernels_avx2.cpp / kernels_avx512.cpp. The vector-tier tables must
/// only be *called* on hosts whose CPU supports the tier — dispatch.cpp
/// guarantees this.
extern const KernelTable kScalarKernels;
extern const KernelTable kSse42Kernels;
extern const KernelTable kAvx2Kernels;
extern const KernelTable kAvx512Kernels;

}  // namespace lshclust::simd
