#pragma once

/// \file index_handle.h
/// \brief A read-only handle on the shortlist index a Clusterer::Fit
/// built and retained — the fit-time LSH state (banded buckets over the
/// fitted items' signatures plus the fitted assignment as the
/// cluster-reference store) exposed to callers instead of being thrown
/// away when Fit returns.
///
/// The handle powers two things:
///  * diagnostics of the retained state — bucket occupancy (computed
///    live from the index), plus the memory footprint and the provider's
///    dataset-signing counter (both snapshotted when the handle is
///    created; the counter proves routed prediction never re-signs the
///    fitted dataset — re-fetch a handle after routing to observe it),
///    and
///  * candidate enumeration for dedup-style workloads: the fitted items
///    co-bucketed with a fitted item are exactly the near-duplicate
///    candidates the paper's banding S-curve selects, without any
///    distance computation.
///
/// Lifetime: a handle is a *view* into the Clusterer's retained model. It
/// stays valid until the originating Clusterer is destroyed or its next
/// Fit call begins (a successful Fit replaces the retained index; a
/// rejected one leaves it — and outstanding handles — untouched). Moving
/// the Clusterer keeps handles valid (the model's storage is stable);
/// holding a handle across a Fit is a use-after-free. Each handle carries
/// its fit's generation, so staleness is *observable*: `valid()` flips to
/// false the moment a later Fit commits (destruction of the Clusterer is
/// still the caller's liability — the generation cell dies with it), and
/// debug builds assert validity in every accessor that dereferences the
/// retained state.
///
/// Contrast with the serving layer: a `serving::FrozenModel`
/// (Clusterer::Snapshot) is the opposite trade — a deep *copy* that stays
/// valid through refits and past the Clusterer's destruction, at the cost
/// of duplicating the index. Use handles for cheap same-fit diagnostics
/// and dedup probes; use snapshots for anything that outlives the fit.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "lsh/banded_index.h"
#include "util/logging.h"

namespace lshclust {

namespace internal {
class EngineDispatcher;
}  // namespace internal

/// \brief Read-only view of a Clusterer's retained fit-time shortlist
/// index. Obtained from Clusterer::index(); see the file comment for the
/// lifetime contract. Copyable (it is two pointers and two counters).
class IndexHandle {
 public:
  /// True while the fit this handle was taken from is still the
  /// Clusterer's current one; false as soon as a later Fit commits (the
  /// retained state this handle views has then been replaced and must not
  /// be dereferenced). Safe to call on a stale handle — this is the one
  /// accessor that touches no retained state; it exists so callers can
  /// detect staleness instead of discovering it as a use-after-free.
  bool valid() const { return *generation_ == created_generation_; }

  /// Number of fitted items the index covers (= the fitted dataset size).
  uint32_t num_indexed_items() const {
    LSHC_DCHECK(valid()) << "IndexHandle outlived its fit (see the lifetime "
                            "contract in api/index_handle.h)";
    return index_->num_items();
  }

  /// Number of bands of the banding layout.
  uint32_t num_bands() const {
    LSHC_DCHECK(valid()) << "IndexHandle outlived its fit (see the lifetime "
                            "contract in api/index_handle.h)";
    return index_->num_bands();
  }

  /// Bucket-occupancy statistics, computed from the live retained index.
  BandedIndex::Stats ComputeStats() const {
    LSHC_DCHECK(valid()) << "IndexHandle outlived its fit (see the lifetime "
                            "contract in api/index_handle.h)";
    return index_->ComputeStats();
  }

  /// Approximate heap footprint of the retained shortlist state (banded
  /// index + hashers + any kept signatures + the sketch table), as of
  /// handle creation.
  uint64_t memory_bytes() const { return memory_bytes_; }

  /// Heap footprint of the bit-sketch prefilter table alone (a subset of
  /// memory_bytes()): n x ceil(width/64) packed words when the fit ran
  /// with the sketch prefilter enabled, 0 otherwise. This is the marginal
  /// memory cost of turning the prefilter on.
  uint64_t sketch_memory_bytes() const { return sketch_memory_bytes_; }

  /// Number of completed full-dataset signing passes the retained
  /// provider had executed when this handle was created — 1 after a Fit,
  /// and still 1 on a handle fetched after any number of PredictRouted
  /// calls (each query signs only itself; the fitted dataset is never
  /// re-signed). Snapshotted at creation: to assert routing added no
  /// pass, fetch a fresh handle after routing.
  uint64_t dataset_sign_passes() const { return dataset_sign_passes_; }

  /// The fitted cluster of fitted item `item` (the assignment Fit
  /// returned — the cluster-reference store routed queries dereference).
  uint32_t ClusterOf(uint32_t item) const {
    LSHC_DCHECK(valid()) << "IndexHandle outlived its fit (see the lifetime "
                            "contract in api/index_handle.h)";
    LSHC_DCHECK(item < assignment_.size()) << "item index out of range";
    return assignment_[item];
  }

  /// The deduplicated fitted items co-bucketed with fitted `item` in at
  /// least one band, ascending (always includes `item` itself — an item
  /// shares every one of its buckets with itself). This is the raw
  /// near-duplicate candidate set of dedup workloads: pairs the banding
  /// S-curve considers similar, before any exact distance is computed.
  std::vector<uint32_t> CandidateItemsOf(uint32_t item) const {
    LSHC_DCHECK(valid()) << "IndexHandle outlived its fit (see the lifetime "
                            "contract in api/index_handle.h)";
    std::vector<uint32_t> items;
    index_->VisitCandidates(item,
                            [&](uint32_t other) { items.push_back(other); });
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    return items;
  }

  /// The deduplicated clusters (per the fitted assignment) of the items
  /// CandidateItemsOf enumerates, ascending — the shortlist a fit-time
  /// refinement query for `item` would see against the final assignment.
  std::vector<uint32_t> CandidateClustersOf(uint32_t item) const {
    LSHC_DCHECK(valid()) << "IndexHandle outlived its fit (see the lifetime "
                            "contract in api/index_handle.h)";
    std::vector<uint32_t> clusters;
    clusters.push_back(assignment_[item]);
    index_->VisitCandidates(item, [&](uint32_t other) {
      clusters.push_back(assignment_[other]);
    });
    std::sort(clusters.begin(), clusters.end());
    clusters.erase(std::unique(clusters.begin(), clusters.end()),
                   clusters.end());
    return clusters;
  }

 private:
  friend class internal::EngineDispatcher;

  IndexHandle(const BandedIndex* index, std::span<const uint32_t> assignment,
              uint64_t memory_bytes, uint64_t dataset_sign_passes,
              uint64_t sketch_memory_bytes,
              std::shared_ptr<const uint64_t> generation,
              uint64_t created_generation)
      : index_(index),
        assignment_(assignment),
        memory_bytes_(memory_bytes),
        dataset_sign_passes_(dataset_sign_passes),
        sketch_memory_bytes_(sketch_memory_bytes),
        generation_(std::move(generation)),
        created_generation_(created_generation) {
    LSHC_DCHECK(index != nullptr) << "handle requires a live index";
    LSHC_DCHECK(generation_ != nullptr) << "handle requires a generation";
  }

  const BandedIndex* index_;
  std::span<const uint32_t> assignment_;
  uint64_t memory_bytes_;
  uint64_t dataset_sign_passes_;
  uint64_t sketch_memory_bytes_;
  // The dispatcher's fit-generation cell + its value at handle creation;
  // a later Fit bumps the cell, flipping valid() to false.
  std::shared_ptr<const uint64_t> generation_;
  uint64_t created_generation_ = 0;
};

}  // namespace lshclust
