#include "api/clusterer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>

#include "persist/model_io.h"
#include "serving/frozen_model_impl.h"
#include "serving/routing.h"
#include "shard/shard_executor.h"
#include "shard/shard_plan.h"
#include "util/macros.h"

namespace lshclust {

std::string_view ModalityToString(Modality modality) {
  switch (modality) {
    case Modality::kCategorical:
      return "categorical";
    case Modality::kNumeric:
      return "numeric";
    case Modality::kMixed:
      return "mixed";
    case Modality::kTextBinarized:
      return "text-binarized";
  }
  return "unrecognized modality";
}

std::string_view AcceleratorToString(Accelerator accelerator) {
  switch (accelerator) {
    case Accelerator::kExhaustive:
      return "exhaustive";
    case Accelerator::kMinHash:
      return "minhash";
    case Accelerator::kSimHash:
      return "simhash";
    case Accelerator::kMixedConcat:
      return "mixed-concat";
    case Accelerator::kCanopy:
      return "canopy";
  }
  return "unrecognized accelerator";
}

Result<Modality> ParseModality(std::string_view text) {
  for (const Modality modality :
       {Modality::kCategorical, Modality::kNumeric, Modality::kMixed,
        Modality::kTextBinarized}) {
    if (text == ModalityToString(modality)) return modality;
  }
  return Status::InvalidArgument(
      "unknown modality '" + std::string(text) +
      "' (categorical | numeric | mixed | text-binarized)");
}

Result<Accelerator> ParseAccelerator(std::string_view text) {
  for (const Accelerator accelerator :
       {Accelerator::kExhaustive, Accelerator::kMinHash, Accelerator::kSimHash,
        Accelerator::kMixedConcat, Accelerator::kCanopy}) {
    if (text == AcceleratorToString(accelerator)) return accelerator;
  }
  return Status::InvalidArgument(
      "unknown accelerator '" + std::string(text) +
      "' (exhaustive | minhash | simhash | mixed-concat | canopy)");
}

namespace {

bool IsCategoricalShaped(Modality modality) {
  return modality == Modality::kCategorical ||
         modality == Modality::kTextBinarized;
}

/// The accelerators each modality supports, for validation and messages.
std::string_view SupportedAccelerators(Modality modality) {
  switch (modality) {
    case Modality::kCategorical:
    case Modality::kTextBinarized:
      return "exhaustive | minhash | canopy";
    case Modality::kNumeric:
      return "exhaustive | simhash";
    case Modality::kMixed:
      return "exhaustive | mixed-concat";
  }
  return "";
}

bool AcceleratorSupported(Modality modality, Accelerator accelerator) {
  switch (accelerator) {
    case Accelerator::kExhaustive:
      return true;
    case Accelerator::kMinHash:
    case Accelerator::kCanopy:
      return IsCategoricalShaped(modality);
    case Accelerator::kSimHash:
      return modality == Modality::kNumeric;
    case Accelerator::kMixedConcat:
      return modality == Modality::kMixed;
  }
  return false;
}

}  // namespace

Status ValidateClustererSpec(const ClustererSpec& spec) {
  switch (spec.modality) {
    case Modality::kCategorical:
    case Modality::kNumeric:
    case Modality::kMixed:
    case Modality::kTextBinarized:
      break;
    default:
      return Status::InvalidArgument(
          "spec.modality holds an unrecognized value (" +
          std::to_string(static_cast<int>(spec.modality)) + ")");
  }
  if (!AcceleratorSupported(spec.modality, spec.accelerator)) {
    return Status::InvalidArgument(
        std::string("the ") +
        std::string(AcceleratorToString(spec.accelerator)) +
        " accelerator does not apply to " +
        std::string(ModalityToString(spec.modality)) +
        " data; supported accelerators for this modality: " +
        std::string(SupportedAccelerators(spec.modality)));
  }
  LSHC_RETURN_NOT_OK(ValidateEngineOptions(spec.engine).WithContext(
      "spec.engine"));
  if (!IsCategoricalShaped(spec.modality) &&
      spec.engine.initial_seeds.empty() &&
      spec.engine.init_method != InitMethod::kRandom) {
    return Status::InvalidArgument(
        "Huang/Cao seeding is defined on categorical attribute frequencies; "
        "use InitMethod::kRandom (or explicit initial_seeds) for " +
        std::string(ModalityToString(spec.modality)) + " data");
  }
  if (spec.modality == Modality::kMixed &&
      !(std::isfinite(spec.gamma) && spec.gamma >= 0.0)) {
    return Status::InvalidArgument(
        "spec.gamma weighs the numeric distance and must be a finite "
        "non-negative number; got " + std::to_string(spec.gamma));
  }
  switch (spec.accelerator) {
    case Accelerator::kMinHash:
      LSHC_RETURN_NOT_OK(
          MinHashShortlistFamily::ValidateOptions(spec.minhash)
              .WithContext("spec.minhash"));
      break;
    case Accelerator::kSimHash:
      LSHC_RETURN_NOT_OK(
          SimHashShortlistFamily::ValidateOptions(spec.simhash)
              .WithContext("spec.simhash"));
      break;
    case Accelerator::kMixedConcat:
      LSHC_RETURN_NOT_OK(
          MixedShortlistFamily::ValidateOptions(spec.mixed_index)
              .WithContext("spec.mixed_index"));
      break;
    case Accelerator::kCanopy:
      LSHC_RETURN_NOT_OK(
          ValidateCanopyOptions(spec.canopy).WithContext("spec.canopy"));
      break;
    case Accelerator::kExhaustive:
      break;
  }
  return Status::OK();
}

namespace internal {

namespace {

/// Runs the engine and folds the outcome into a FitReport: cancellation
/// becomes FitReport::status = kCancelled (the partial result stays), and
/// banding-index providers contribute their diagnostics. `retain` mirrors
/// the dispatcher's retention decision: occupancy stats and the memory
/// footprint are reported only for an index that stays alive (the
/// dispatcher commits exactly the providers this marks retained), so the
/// report can never describe freed state.
template <typename Traits, typename Provider>
Result<FitReport> RunToReport(const typename Traits::Dataset& dataset,
                              const typename Traits::Options& options,
                              Provider& provider,
                              typename Traits::Centroids* model,
                              bool retain = false) {
  FitReport report;
  LSHC_ASSIGN_OR_RETURN(report.result,
                        (ClusteringEngine<Traits, Provider>::Run(
                            dataset, options, provider, model)));
  if (report.result.cancelled) {
    report.status = Status::Cancelled(
        "run stopped by the cancellation hook after " +
        std::to_string(report.result.iterations.size()) +
        " completed refinement iteration(s); the report holds that state");
  }
  if constexpr (requires {
                  provider.index();
                  provider.IndexStats();
                }) {
    if (provider.index() != nullptr) {
      report.has_index = true;
      report.signature_seconds = provider.signature_seconds();
      report.index_seconds = provider.index_seconds();
      if (retain) {
        report.index_retained = true;
        report.index_stats = provider.IndexStats();
        report.index_memory_bytes = provider.MemoryUsageBytes();
      }
    }
  }
  return report;
}

/// Nearest fitted centroid for every item of an out-of-sample dataset —
/// literally the engine's exhaustive argmin kernel
/// (BestClusterExhaustive, seed cluster 0), so ties resolve identically
/// to a Fit pass by construction. Chunked across a worker pool when the
/// spec's num_threads asks for one; per-item pure, so bit-identical
/// either way.
template <typename Traits>
std::vector<uint32_t> AssignNearest(const typename Traits::Dataset& dataset,
                                    const typename Traits::Centroids& model,
                                    const typename Traits::Options& options) {
  const uint32_t n = dataset.num_items();
  const uint32_t k = options.num_clusters;
  std::vector<uint32_t> assignment(n, 0);
  const auto assign_range = [&](uint32_t begin, uint32_t end) {
    for (uint32_t item = begin; item < end; ++item) {
      assignment[item] = BestClusterExhaustive<Traits, /*EarlyExit=*/true>(
          dataset, model, options, item, /*seed_cluster=*/0, k);
    }
  };
  // Predict spawns its pool per call (it has no run to borrow one from),
  // so small batches — the per-micro-batch routing pattern — stay
  // sequential rather than paying thread startup per arrival batch.
  const uint32_t num_threads = ResolveThreadCount(options.num_threads);
  if (num_threads <= 1 || n < 4096u) {
    assign_range(0, n);
  } else {
    ThreadPool pool(num_threads);
    pool.ParallelFor(0, n, options.chunk_size,
                     [&](uint32_t begin, uint32_t end, uint32_t) {
                       assign_range(begin, end);
                     });
  }
  return assignment;
}

/// The per-worker scratch and per-item routing kernel live in
/// serving/routing.h, shared with FrozenModel::Route so the serving
/// layer's snapshots are bit-identical to PredictRouted by construction.
using RoutedScratch = serving::RoutedScratch;

/// Routed nearest-centroid assignment through a retained fit-time index:
/// per item, sign the query (`sign_query(dataset, item, scratch)` fills
/// scratch.signature) and hand it to the shared routing kernel — probe
/// the fit-time buckets, sketch-screen, dereference candidate clusters
/// through the fitted assignment, take the nearest candidate, exhaustive
/// fallback on an empty probe (see serving::RouteSignedQuery for the
/// tie-breaking contract). Shard-chunked through the same ShardPlan the
/// engine uses; per-item work is pure, so every (threads x shards)
/// setting is bit-identical, and like AssignNearest the pool is spawned
/// per call so small arrival batches stay sequential.
template <typename Traits, typename Provider, typename SignQueryFn>
std::vector<uint32_t> AssignRouted(const typename Traits::Dataset& dataset,
                                   const typename Traits::Centroids& model,
                                   const typename Traits::Options& options,
                                   const Provider& provider,
                                   std::span<const uint32_t> fit_assignment,
                                   const SignQueryFn& sign_query) {
  const uint32_t n = dataset.num_items();
  const uint32_t k = options.num_clusters;
  const BandedIndex& index = *provider.index();
  // Sketch prefilter (when the retained index was fitted with it on):
  // the kernel screens each candidate peer's packed sketch against the
  // query's before its cluster enters the shortlist. A screened-out
  // shortlist that comes up empty falls through to the exhaustive
  // kernel, so screening never leaves a query unanswered.
  const bool sketch_on = provider.sketch_enabled();
  serving::RoutedStateView view;
  view.index = &index;
  view.fit_assignment = fit_assignment;
  view.sketches = &provider.sketches();
  view.sketch_on = sketch_on;
  view.sketch_max_hamming = provider.sketch_max_hamming();
  std::vector<uint32_t> assignment(n, 0);

  const auto route_range = [&](uint32_t begin, uint32_t end,
                               RoutedScratch& scratch) {
    for (uint32_t item = begin; item < end; ++item) {
      sign_query(dataset, item, scratch);
      assignment[item] = serving::RouteSignedQuery<Traits>(
          dataset, model, options, view, item, scratch);
    }
  };

  const ShardPlan plan =
      ShardPlan::Clamped(n, options.num_shards, options.chunk_size);
  const auto make_scratch = [&] {
    return serving::MakeRoutedScratch(
        k, index.signature_width(),
        sketch_on ? provider.sketches().words() : 0);
  };
  const uint32_t num_threads = ResolveThreadCount(options.num_threads);
  if (num_threads <= 1 || n < 4096u) {
    RoutedScratch scratch = make_scratch();
    ForEachShardChunk(plan, nullptr,
                      [&](const ShardPlan::Chunk& chunk, uint32_t, uint32_t) {
                        route_range(chunk.begin, chunk.end, scratch);
                      });
  } else {
    ThreadPool pool(num_threads);
    // Scratches are materialised lazily on the worker that first runs a
    // chunk; their contents never influence results (every query
    // epoch-resets the dedup and overwrites the signature buffer).
    std::vector<std::optional<RoutedScratch>> scratches(num_threads);
    ForEachShardChunk(
        plan, &pool,
        [&](const ShardPlan::Chunk& chunk, uint32_t, uint32_t worker) {
          std::optional<RoutedScratch>& scratch = scratches[worker];
          if (!scratch.has_value()) scratch.emplace(make_scratch());
          route_range(chunk.begin, chunk.end, *scratch);
        });
  }
  return assignment;
}

}  // namespace

/// \brief The type-erasure seam: one virtual Fit/Predict per dataset
/// shape, overridden by the dispatcher of the spec's modality. The base
/// implementations reject mismatched dataset shapes with an actionable
/// error, so every concrete dispatcher only overrides its own shape.
class EngineDispatcher {
 public:
  explicit EngineDispatcher(const ClustererSpec& spec) : spec_(spec) {}
  virtual ~EngineDispatcher() = default;

  virtual Result<FitReport> Fit(const CategoricalDataset&) {
    return WrongShape("a categorical");
  }
  virtual Result<FitReport> Fit(const NumericDataset&) {
    return WrongShape("a numeric");
  }
  virtual Result<FitReport> Fit(const MixedDataset&) {
    return WrongShape("a mixed");
  }

  virtual Result<std::vector<uint32_t>> Predict(
      const CategoricalDataset&) const {
    return WrongShape("a categorical");
  }
  virtual Result<std::vector<uint32_t>> Predict(
      const NumericDataset&) const {
    return WrongShape("a numeric");
  }
  virtual Result<std::vector<uint32_t>> Predict(const MixedDataset&) const {
    return WrongShape("a mixed");
  }

  virtual Result<std::vector<uint32_t>> PredictRouted(
      const CategoricalDataset&) const {
    return WrongShape("a categorical");
  }
  virtual Result<std::vector<uint32_t>> PredictRouted(
      const NumericDataset&) const {
    return WrongShape("a numeric");
  }
  virtual Result<std::vector<uint32_t>> PredictRouted(
      const MixedDataset&) const {
    return WrongShape("a mixed");
  }

  /// Handle on the retained fit-time index; overridden by dispatchers
  /// that can retain one.
  virtual Result<IndexHandle> RetainedIndex() const {
    return NoRetainedIndex();
  }

  /// Immutable deep-copied snapshot of the fitted state for the serving
  /// layer; overridden by every concrete dispatcher.
  virtual Result<std::shared_ptr<const serving::FrozenModel>> Snapshot()
      const {
    return NotFittedSnapshot();
  }

  virtual bool fitted() const = 0;

  /// The validated spec this dispatcher was built from — the single
  /// stored copy (Clusterer::spec() reads it through here).
  const ClustererSpec& spec() const { return spec_; }

 protected:
  Status WrongShape(std::string_view got) const {
    return Status::InvalidArgument(
        "this Clusterer is configured for " +
        std::string(ModalityToString(spec_.modality)) + " data, but " +
        std::string(got) +
        " dataset was passed; create a Clusterer whose spec.modality "
        "matches the dataset");
  }

  Status NotFitted() const {
    return Status::InvalidArgument(
        "Predict requires a fitted model; call Fit first");
  }

  Status NotFittedSnapshot() const {
    return Status::InvalidArgument(
        "Snapshot requires a fitted model; call Fit first");
  }

  Status NoRetainedIndex() const {
    return Status::InvalidArgument(
        "no retained shortlist index: either no Fit with a banding "
        "accelerator (minhash | simhash | mixed-concat) has succeeded "
        "yet, spec.retain_index is false, or the fit was cancelled "
        "before its index was built");
  }

  /// IndexHandle's constructor is private to this seam; dispatchers that
  /// retain an index build their handles through here. Handles carry the
  /// dispatcher's fit-generation token so they can report (and, in debug
  /// builds, assert) staleness after a refit — see api/index_handle.h.
  IndexHandle MakeHandle(const BandedIndex* index,
                         std::span<const uint32_t> assignment,
                         uint64_t memory_bytes, uint64_t dataset_sign_passes,
                         uint64_t sketch_memory_bytes) const {
    return IndexHandle(index, assignment, memory_bytes, dataset_sign_passes,
                       sketch_memory_bytes, generation_, *generation_);
  }

  /// Called by each dispatcher at the commit point of a successful Fit:
  /// the retained state handles pointed at is being replaced, so every
  /// outstanding IndexHandle flips to !valid(). FrozenModel snapshots are
  /// deep copies and are deliberately unaffected.
  void BumpGeneration() { ++*generation_; }

  Status UnsupportedAccelerator() const {
    // Unreachable after ValidateClustererSpec; kept as a real error (not
    // an abort) so a hand-rolled dispatcher misuse stays debuggable.
    return Status::InvalidArgument(
        std::string("accelerator ") +
        std::string(AcceleratorToString(spec_.accelerator)) +
        " is not implemented for " +
        std::string(ModalityToString(spec_.modality)) + " data");
  }

  ClustererSpec spec_;

 private:
  /// Fit-generation cell shared with every handle this dispatcher makes.
  std::shared_ptr<uint64_t> generation_ = std::make_shared<uint64_t>(0);
};

namespace {

/// K-Modes cell (kCategorical and kTextBinarized): exhaustive, MinHash
/// shortlists, or canopy shortlists over a CategoricalDataset. The
/// MinHash cell retains its prepared provider (spec.retain_index) as the
/// model's routed-query state.
class CategoricalDispatcher final : public EngineDispatcher {
 public:
  using EngineDispatcher::EngineDispatcher;

  Result<FitReport> Fit(const CategoricalDataset& dataset) override {
    // Built into locals and only moved into the members on success: a
    // rejected Fit leaves the previously fitted model — and any retained
    // index with outstanding handles — usable.
    ModeTable modes(spec_.engine.num_clusters, dataset.num_attributes());
    std::unique_ptr<ClusterShortlistProvider> retained;
    FitReport report;
    switch (spec_.accelerator) {
      case Accelerator::kExhaustive: {
        ExhaustiveProvider provider;
        LSHC_ASSIGN_OR_RETURN(
            report, (RunToReport<CategoricalClusteringTraits>(
                        dataset, spec_.engine, provider, &modes)));
        break;
      }
      case Accelerator::kMinHash: {
        auto provider = std::make_unique<ClusterShortlistProvider>(
            spec_.minhash, spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(
            report, (RunToReport<CategoricalClusteringTraits>(
                        dataset, spec_.engine, *provider, &modes,
                        spec_.retain_index)));
        // A cancelled Prepare installs no index; never retain a provider
        // without one.
        if (spec_.retain_index && provider->index() != nullptr) {
          retained = std::move(provider);
        }
        break;
      }
      case Accelerator::kCanopy: {
        CanopyShortlistProvider provider(spec_.canopy,
                                         spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(
            report, (RunToReport<CategoricalClusteringTraits>(
                        dataset, spec_.engine, provider, &modes)));
        break;
      }
      default:
        return UnsupportedAccelerator();
    }
    num_attributes_ = dataset.num_attributes();
    modes_ = std::move(modes);
    retained_ = std::move(retained);
    BumpGeneration();  // outstanding handles now point at replaced state
    // The fitted assignment is the routed queries' cluster-reference
    // store; without a retained index nothing can read it, so don't
    // hold an n-sized copy for the model's lifetime.
    if (retained_ != nullptr) {
      fit_assignment_ = report.result.assignment;
    } else {
      fit_assignment_ = {};
    }
    return report;
  }

  /// Installs a decoded model file as this dispatcher's fitted state
  /// (Clusterer::FromSnapshot): modes rebuilt from the dump, the shortlist
  /// provider reassembled from parts — hashers from persisted options +
  /// seeds, the index adopted verbatim, zero re-signing.
  Status Adopt(persist::DecodedModel&& model) {
    LSHC_ASSIGN_OR_RETURN(ModeTable modes, persist::BuildModeTable(model));
    num_attributes_ = model.shape_primary;
    if (model.family == persist::ModelFamilyKind::kMinHash) {
      LSHC_ASSIGN_OR_RETURN(auto routing,
                            persist::BuildMinHashRouting(std::move(model)));
      fit_assignment_ = std::move(routing.fit_assignment);
      retained_ = std::make_unique<ClusterShortlistProvider>(
          ClusterShortlistProvider::FromParts(
              std::move(routing.family), spec_.engine.num_clusters,
              std::move(routing.index), std::move(routing.sketches),
              routing.sketch_max_hamming));
    } else {
      retained_ = nullptr;
      fit_assignment_ = {};
    }
    modes_ = std::move(modes);
    BumpGeneration();
    return Status::OK();
  }

  Result<std::vector<uint32_t>> Predict(
      const CategoricalDataset& dataset) const override {
    LSHC_RETURN_NOT_OK(CheckPredictable(dataset));
    return AssignNearest<CategoricalClusteringTraits>(dataset, *modes_,
                                                      spec_.engine);
  }

  Result<std::vector<uint32_t>> PredictRouted(
      const CategoricalDataset& dataset) const override {
    LSHC_RETURN_NOT_OK(CheckPredictable(dataset));
    if (retained_ == nullptr) {
      return AssignNearest<CategoricalClusteringTraits>(dataset, *modes_,
                                                        spec_.engine);
    }
    return AssignRouted<CategoricalClusteringTraits>(
        dataset, *modes_, spec_.engine, *retained_, fit_assignment_,
        [this](const CategoricalDataset& queries, uint32_t item,
               RoutedScratch& scratch) {
          queries.PresentTokens(item, &scratch.tokens);
          retained_->family().ComputeQuerySignature(
              scratch.tokens, scratch.signature.data());
        });
  }

  Result<IndexHandle> RetainedIndex() const override {
    if (retained_ == nullptr) return NoRetainedIndex();
    return MakeHandle(retained_->index(), fit_assignment_,
                      retained_->MemoryUsageBytes(),
                      retained_->dataset_sign_passes(),
                      retained_->SketchMemoryUsageBytes());
  }

  Result<std::shared_ptr<const serving::FrozenModel>> Snapshot()
      const override {
    if (!modes_.has_value()) return NotFittedSnapshot();
    if (retained_ == nullptr) {
      return std::shared_ptr<const serving::FrozenModel>(
          std::make_shared<serving::internal::FrozenModelImpl<
              CategoricalClusteringTraits>>(
              spec_.engine, *modes_, std::nullopt, nullptr, BitSketchTable(),
              0, std::vector<uint32_t>(), num_attributes_, 0));
    }
    return std::shared_ptr<const serving::FrozenModel>(
        std::make_shared<serving::internal::FrozenModelImpl<
            CategoricalClusteringTraits, MinHashShortlistFamily>>(
            spec_.engine, *modes_, retained_->family(),
            std::make_unique<BandedIndex>(*retained_->index()),
            retained_->sketch_enabled() ? retained_->sketches()
                                        : BitSketchTable(),
            retained_->sketch_max_hamming(), fit_assignment_,
            num_attributes_, 0));
  }

  bool fitted() const override { return modes_.has_value(); }

 private:
  Status CheckPredictable(const CategoricalDataset& dataset) const {
    if (!modes_.has_value()) return NotFitted();
    if (dataset.num_items() == 0) {
      return Status::InvalidArgument("dataset is empty");
    }
    if (dataset.num_attributes() != num_attributes_) {
      return Status::InvalidArgument(
          "Predict dataset has " + std::to_string(dataset.num_attributes()) +
          " attributes; the fitted model expects " +
          std::to_string(num_attributes_));
    }
    return Status::OK();
  }

  std::optional<ModeTable> modes_;
  uint32_t num_attributes_ = 0;
  // Retained fit-time shortlist state (kMinHash + retain_index): the
  // provider that prepared the index during Fit, plus the fitted
  // assignment as the cluster-reference store routed queries dereference.
  // Heap-allocated so handles and routed queries survive Clusterer moves.
  std::unique_ptr<ClusterShortlistProvider> retained_;
  std::vector<uint32_t> fit_assignment_;
};

/// K-Means cell (kNumeric): exhaustive or SimHash shortlists over a
/// NumericDataset. The SimHash cell retains its prepared provider
/// (spec.retain_index) as the model's routed-query state.
class NumericDispatcher final : public EngineDispatcher {
 public:
  using EngineDispatcher::EngineDispatcher;

  Result<FitReport> Fit(const NumericDataset& dataset) override {
    // The engine writes centroids_ only when it returns a result — and
    // the retained provider is committed only then too — so a rejected
    // Fit leaves the previously fitted model usable.
    const KMeansOptions options = Options();
    std::unique_ptr<SimHashShortlistProvider> retained;
    FitReport report;
    switch (spec_.accelerator) {
      case Accelerator::kExhaustive: {
        ExhaustiveProvider provider;
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<NumericClusteringTraits>(
                                  dataset, options, provider, &centroids_)));
        break;
      }
      case Accelerator::kSimHash: {
        auto provider = std::make_unique<SimHashShortlistProvider>(
            spec_.simhash, spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<NumericClusteringTraits>(
                                  dataset, options, *provider, &centroids_,
                                  spec_.retain_index)));
        if (spec_.retain_index && provider->index() != nullptr) {
          retained = std::move(provider);
        }
        break;
      }
      default:
        return UnsupportedAccelerator();
    }
    dimensions_ = dataset.dimensions();
    fitted_ = true;
    retained_ = std::move(retained);
    BumpGeneration();  // outstanding handles now point at replaced state
    // The fitted assignment is the routed queries' cluster-reference
    // store; without a retained index nothing can read it, so don't
    // hold an n-sized copy for the model's lifetime.
    if (retained_ != nullptr) {
      fit_assignment_ = report.result.assignment;
    } else {
      fit_assignment_ = {};
    }
    return report;
  }

  /// Installs a decoded model file as this dispatcher's fitted state
  /// (Clusterer::FromSnapshot); see CategoricalDispatcher::Adopt.
  Status Adopt(persist::DecodedModel&& model) {
    LSHC_ASSIGN_OR_RETURN(centroids_, persist::BuildCentroidTable(model));
    dimensions_ = model.shape_primary;
    if (model.family == persist::ModelFamilyKind::kSimHash) {
      LSHC_ASSIGN_OR_RETURN(auto routing,
                            persist::BuildSimHashRouting(std::move(model)));
      fit_assignment_ = std::move(routing.fit_assignment);
      retained_ = std::make_unique<SimHashShortlistProvider>(
          SimHashShortlistProvider::FromParts(
              std::move(routing.family), spec_.engine.num_clusters,
              std::move(routing.index), std::move(routing.sketches),
              routing.sketch_max_hamming));
    } else {
      retained_ = nullptr;
      fit_assignment_ = {};
    }
    fitted_ = true;
    BumpGeneration();
    return Status::OK();
  }

  Result<std::vector<uint32_t>> Predict(
      const NumericDataset& dataset) const override {
    LSHC_RETURN_NOT_OK(CheckPredictable(dataset));
    return AssignNearest<NumericClusteringTraits>(dataset, centroids_,
                                                  Options());
  }

  Result<std::vector<uint32_t>> PredictRouted(
      const NumericDataset& dataset) const override {
    LSHC_RETURN_NOT_OK(CheckPredictable(dataset));
    if (retained_ == nullptr) {
      return AssignNearest<NumericClusteringTraits>(dataset, centroids_,
                                                    Options());
    }
    return AssignRouted<NumericClusteringTraits>(
        dataset, centroids_, Options(), *retained_, fit_assignment_,
        [this](const NumericDataset& queries, uint32_t item,
               RoutedScratch& scratch) {
          retained_->family().ComputeQuerySignature(
              queries.Row(item), scratch.signature.data());
        });
  }

  Result<IndexHandle> RetainedIndex() const override {
    if (retained_ == nullptr) return NoRetainedIndex();
    return MakeHandle(retained_->index(), fit_assignment_,
                      retained_->MemoryUsageBytes(),
                      retained_->dataset_sign_passes(),
                      retained_->SketchMemoryUsageBytes());
  }

  Result<std::shared_ptr<const serving::FrozenModel>> Snapshot()
      const override {
    if (!fitted_) return NotFittedSnapshot();
    if (retained_ == nullptr) {
      return std::shared_ptr<const serving::FrozenModel>(
          std::make_shared<
              serving::internal::FrozenModelImpl<NumericClusteringTraits>>(
              Options(), centroids_, std::nullopt, nullptr, BitSketchTable(),
              0, std::vector<uint32_t>(), dimensions_, 0));
    }
    return std::shared_ptr<const serving::FrozenModel>(
        std::make_shared<serving::internal::FrozenModelImpl<
            NumericClusteringTraits, SimHashShortlistFamily>>(
            Options(), centroids_, retained_->family(),
            std::make_unique<BandedIndex>(*retained_->index()),
            retained_->sketch_enabled() ? retained_->sketches()
                                        : BitSketchTable(),
            retained_->sketch_max_hamming(), fit_assignment_, dimensions_,
            0));
  }

  bool fitted() const override { return fitted_; }

 private:
  KMeansOptions Options() const {
    KMeansOptions options;
    static_cast<EngineOptions&>(options) = spec_.engine;
    return options;
  }

  Status CheckPredictable(const NumericDataset& dataset) const {
    if (!fitted_) return NotFitted();
    if (dataset.num_items() == 0) {
      return Status::InvalidArgument("dataset is empty");
    }
    if (dataset.dimensions() != dimensions_) {
      return Status::InvalidArgument(
          "Predict dataset has " + std::to_string(dataset.dimensions()) +
          " dimensions; the fitted model expects " +
          std::to_string(dimensions_));
    }
    return Status::OK();
  }

  CentroidTable centroids_{0, 0};
  uint32_t dimensions_ = 0;
  bool fitted_ = false;
  std::unique_ptr<SimHashShortlistProvider> retained_;
  std::vector<uint32_t> fit_assignment_;
};

/// K-Prototypes cell (kMixed): exhaustive or concatenated MinHash+SimHash
/// shortlists over a MixedDataset. The mixed-concat cell retains its
/// prepared provider (spec.retain_index) as the model's routed-query
/// state.
class MixedDispatcher final : public EngineDispatcher {
 public:
  using EngineDispatcher::EngineDispatcher;

  Result<FitReport> Fit(const MixedDataset& dataset) override {
    // Built into locals and only moved into the members on success: a
    // rejected Fit leaves the previously fitted model usable.
    const KPrototypesOptions options = Options();
    MixedClusteringTraits::Centroids prototypes{
        ModeTable(spec_.engine.num_clusters, dataset.num_categorical()),
        CentroidTable(spec_.engine.num_clusters, dataset.num_numeric())};
    std::unique_ptr<MixedShortlistProvider> retained;
    FitReport report;
    switch (spec_.accelerator) {
      case Accelerator::kExhaustive: {
        ExhaustiveProvider provider;
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<MixedClusteringTraits>(
                                  dataset, options, provider, &prototypes)));
        break;
      }
      case Accelerator::kMixedConcat: {
        auto provider = std::make_unique<MixedShortlistProvider>(
            spec_.mixed_index, spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<MixedClusteringTraits>(
                                  dataset, options, *provider, &prototypes,
                                  spec_.retain_index)));
        if (spec_.retain_index && provider->index() != nullptr) {
          retained = std::move(provider);
        }
        break;
      }
      default:
        return UnsupportedAccelerator();
    }
    num_categorical_ = dataset.num_categorical();
    num_numeric_ = dataset.num_numeric();
    prototypes_ = std::move(prototypes);
    retained_ = std::move(retained);
    BumpGeneration();  // outstanding handles now point at replaced state
    // The fitted assignment is the routed queries' cluster-reference
    // store; without a retained index nothing can read it, so don't
    // hold an n-sized copy for the model's lifetime.
    if (retained_ != nullptr) {
      fit_assignment_ = report.result.assignment;
    } else {
      fit_assignment_ = {};
    }
    return report;
  }

  /// Installs a decoded model file as this dispatcher's fitted state
  /// (Clusterer::FromSnapshot); see CategoricalDispatcher::Adopt.
  Status Adopt(persist::DecodedModel&& model) {
    LSHC_ASSIGN_OR_RETURN(ModeTable modes, persist::BuildModeTable(model));
    LSHC_ASSIGN_OR_RETURN(CentroidTable centroids,
                          persist::BuildCentroidTable(model));
    num_categorical_ = model.shape_primary;
    num_numeric_ = model.shape_secondary;
    if (model.family == persist::ModelFamilyKind::kMixedConcat) {
      LSHC_ASSIGN_OR_RETURN(auto routing,
                            persist::BuildMixedRouting(std::move(model)));
      fit_assignment_ = std::move(routing.fit_assignment);
      retained_ = std::make_unique<MixedShortlistProvider>(
          MixedShortlistProvider::FromParts(
              std::move(routing.family), spec_.engine.num_clusters,
              std::move(routing.index), std::move(routing.sketches),
              routing.sketch_max_hamming));
    } else {
      retained_ = nullptr;
      fit_assignment_ = {};
    }
    prototypes_ = MixedClusteringTraits::Centroids{std::move(modes),
                                                   std::move(centroids)};
    BumpGeneration();
    return Status::OK();
  }

  Result<std::vector<uint32_t>> Predict(
      const MixedDataset& dataset) const override {
    LSHC_RETURN_NOT_OK(CheckPredictable(dataset));
    return AssignNearest<MixedClusteringTraits>(dataset, *prototypes_,
                                                Options());
  }

  Result<std::vector<uint32_t>> PredictRouted(
      const MixedDataset& dataset) const override {
    LSHC_RETURN_NOT_OK(CheckPredictable(dataset));
    if (retained_ == nullptr) {
      return AssignNearest<MixedClusteringTraits>(dataset, *prototypes_,
                                                  Options());
    }
    return AssignRouted<MixedClusteringTraits>(
        dataset, *prototypes_, Options(), *retained_, fit_assignment_,
        [this](const MixedDataset& queries, uint32_t item,
               RoutedScratch& scratch) {
          queries.categorical().PresentTokens(item, &scratch.tokens);
          retained_->family().ComputeQuerySignature(
              scratch.tokens, queries.numeric().Row(item),
              &scratch.centered, scratch.signature.data());
        });
  }

  Result<IndexHandle> RetainedIndex() const override {
    if (retained_ == nullptr) return NoRetainedIndex();
    return MakeHandle(retained_->index(), fit_assignment_,
                      retained_->MemoryUsageBytes(),
                      retained_->dataset_sign_passes(),
                      retained_->SketchMemoryUsageBytes());
  }

  Result<std::shared_ptr<const serving::FrozenModel>> Snapshot()
      const override {
    if (!prototypes_.has_value()) return NotFittedSnapshot();
    if (retained_ == nullptr) {
      return std::shared_ptr<const serving::FrozenModel>(
          std::make_shared<
              serving::internal::FrozenModelImpl<MixedClusteringTraits>>(
              Options(), *prototypes_, std::nullopt, nullptr,
              BitSketchTable(), 0, std::vector<uint32_t>(), num_categorical_,
              num_numeric_));
    }
    return std::shared_ptr<const serving::FrozenModel>(
        std::make_shared<serving::internal::FrozenModelImpl<
            MixedClusteringTraits, MixedShortlistFamily>>(
            Options(), *prototypes_, retained_->family(),
            std::make_unique<BandedIndex>(*retained_->index()),
            retained_->sketch_enabled() ? retained_->sketches()
                                        : BitSketchTable(),
            retained_->sketch_max_hamming(), fit_assignment_,
            num_categorical_, num_numeric_));
  }

  bool fitted() const override { return prototypes_.has_value(); }

 private:
  KPrototypesOptions Options() const {
    KPrototypesOptions options;
    static_cast<EngineOptions&>(options) = spec_.engine;
    options.gamma = spec_.gamma;
    return options;
  }

  Status CheckPredictable(const MixedDataset& dataset) const {
    if (!prototypes_.has_value()) return NotFitted();
    if (dataset.num_items() == 0) {
      return Status::InvalidArgument("dataset is empty");
    }
    if (dataset.num_categorical() != num_categorical_ ||
        dataset.num_numeric() != num_numeric_) {
      return Status::InvalidArgument(
          "Predict dataset has " + std::to_string(dataset.num_categorical()) +
          " categorical + " + std::to_string(dataset.num_numeric()) +
          " numeric attributes; the fitted model expects " +
          std::to_string(num_categorical_) + " + " +
          std::to_string(num_numeric_));
    }
    return Status::OK();
  }

  std::optional<MixedClusteringTraits::Centroids> prototypes_;
  uint32_t num_categorical_ = 0;
  uint32_t num_numeric_ = 0;
  std::unique_ptr<MixedShortlistProvider> retained_;
  std::vector<uint32_t> fit_assignment_;
};

}  // namespace
}  // namespace internal

StreamingSession::StreamingSession(std::unique_ptr<StreamingMHKModes> engine)
    : engine_(std::move(engine)) {}
StreamingSession::~StreamingSession() = default;
StreamingSession::StreamingSession(StreamingSession&&) noexcept = default;
StreamingSession& StreamingSession::operator=(StreamingSession&&) noexcept =
    default;

Result<uint32_t> StreamingSession::Ingest(std::span<const uint32_t> row) {
  LSHC_ASSIGN_OR_RETURN(const uint32_t cluster, engine_->Ingest(row));
  MaybePublish(1);
  return cluster;
}

Result<std::span<const uint32_t>> StreamingSession::IngestBatch(
    std::span<const uint32_t> rows) {
  LSHC_ASSIGN_OR_RETURN(std::span<const uint32_t> view,
                        engine_->IngestBatch(rows));
  MaybePublish(view.size());
  return view;
}

void StreamingSession::MaybePublish(uint64_t ingested) {
  if (publish_to_ == nullptr || publish_every_ == 0) return;
  since_publish_ += ingested;
  if (since_publish_ < publish_every_) return;
  since_publish_ = 0;
  Result<std::shared_ptr<const serving::FrozenModel>> snapshot = Snapshot();
  // Snapshot of a live session cannot fail today; guard anyway so a
  // future failure mode degrades to "no publish" rather than an abort on
  // the ingest path.
  if (snapshot.ok()) publish_to_->Publish(*std::move(snapshot));
}

Result<std::shared_ptr<const serving::FrozenModel>> StreamingSession::Snapshot()
    const {
  const StreamingMHKModes& engine = *engine_;
  EngineOptions options;
  options.num_clusters = engine.num_clusters();
  return std::shared_ptr<const serving::FrozenModel>(
      std::make_shared<serving::internal::FrozenModelImpl<
          CategoricalClusteringTraits, MinHashShortlistFamily>>(
          options, engine.modes(), engine.family(),
          std::make_unique<BandedIndex>(engine.live_index()),
          engine.sketch_enabled() ? engine.sketches() : BitSketchTable(),
          engine.sketch_max_hamming(), engine.assignment(),
          engine.num_attributes(), 0));
}

Clusterer::Clusterer(std::unique_ptr<internal::EngineDispatcher> dispatcher)
    : dispatcher_(std::move(dispatcher)) {}
Clusterer::~Clusterer() = default;
Clusterer::Clusterer(Clusterer&&) noexcept = default;
Clusterer& Clusterer::operator=(Clusterer&&) noexcept = default;

Result<Clusterer> Clusterer::Create(const ClustererSpec& spec) {
  LSHC_RETURN_NOT_OK(ValidateClustererSpec(spec));
  std::unique_ptr<internal::EngineDispatcher> dispatcher;
  switch (spec.modality) {
    case Modality::kCategorical:
    case Modality::kTextBinarized:
      dispatcher = std::make_unique<internal::CategoricalDispatcher>(spec);
      break;
    case Modality::kNumeric:
      dispatcher = std::make_unique<internal::NumericDispatcher>(spec);
      break;
    case Modality::kMixed:
      dispatcher = std::make_unique<internal::MixedDispatcher>(spec);
      break;
  }
  return Clusterer(std::move(dispatcher));
}

Result<Clusterer> Clusterer::FromSnapshot(const std::string& path) {
  LSHC_ASSIGN_OR_RETURN(persist::DecodedModel model,
                        persist::DecodeModelFile(path));
  // Reconstruct the spec the persisted model implies. Only what routing
  // reads matters: modality/accelerator, k, gamma and the index options.
  // Init-method / seeds are fit-time-only knobs a loaded model never
  // touches — pinned to kRandom so the spec validates for every modality.
  ClustererSpec spec;
  spec.engine.num_clusters = model.num_clusters;
  spec.engine.init_method = InitMethod::kRandom;
  spec.retain_index = true;
  switch (model.modality) {
    case persist::ModelModality::kCategorical:
      spec.modality = Modality::kCategorical;
      break;
    case persist::ModelModality::kNumeric:
      spec.modality = Modality::kNumeric;
      break;
    case persist::ModelModality::kMixed:
      spec.modality = Modality::kMixed;
      spec.gamma = model.gamma;
      break;
  }
  switch (model.family) {
    case persist::ModelFamilyKind::kNone:
      spec.accelerator = Accelerator::kExhaustive;
      break;
    case persist::ModelFamilyKind::kMinHash:
      spec.accelerator = Accelerator::kMinHash;
      spec.minhash = model.minhash;
      break;
    case persist::ModelFamilyKind::kSimHash:
      spec.accelerator = Accelerator::kSimHash;
      spec.simhash = model.simhash;
      break;
    case persist::ModelFamilyKind::kMixedConcat:
      spec.accelerator = Accelerator::kMixedConcat;
      spec.mixed_index = model.mixed;
      break;
  }
  LSHC_RETURN_NOT_OK(
      ValidateClustererSpec(spec).WithContext("model file '" + path + "'"));
  std::unique_ptr<internal::EngineDispatcher> dispatcher;
  Status adopted = Status::OK();
  switch (model.modality) {
    case persist::ModelModality::kCategorical: {
      auto d = std::make_unique<internal::CategoricalDispatcher>(spec);
      adopted = d->Adopt(std::move(model));
      dispatcher = std::move(d);
      break;
    }
    case persist::ModelModality::kNumeric: {
      auto d = std::make_unique<internal::NumericDispatcher>(spec);
      adopted = d->Adopt(std::move(model));
      dispatcher = std::move(d);
      break;
    }
    case persist::ModelModality::kMixed: {
      auto d = std::make_unique<internal::MixedDispatcher>(spec);
      adopted = d->Adopt(std::move(model));
      dispatcher = std::move(d);
      break;
    }
  }
  LSHC_RETURN_NOT_OK(adopted.WithContext("model file '" + path + "'"));
  return Clusterer(std::move(dispatcher));
}

const ClustererSpec& Clusterer::spec() const { return dispatcher_->spec(); }

Result<FitReport> Clusterer::Fit(const CategoricalDataset& dataset) {
  return dispatcher_->Fit(dataset);
}
Result<FitReport> Clusterer::Fit(const NumericDataset& dataset) {
  return dispatcher_->Fit(dataset);
}
Result<FitReport> Clusterer::Fit(const MixedDataset& dataset) {
  return dispatcher_->Fit(dataset);
}

Result<std::vector<uint32_t>> Clusterer::Predict(
    const CategoricalDataset& dataset) const {
  return dispatcher_->Predict(dataset);
}
Result<std::vector<uint32_t>> Clusterer::Predict(
    const NumericDataset& dataset) const {
  return dispatcher_->Predict(dataset);
}
Result<std::vector<uint32_t>> Clusterer::Predict(
    const MixedDataset& dataset) const {
  return dispatcher_->Predict(dataset);
}

Result<std::vector<uint32_t>> Clusterer::PredictRouted(
    const CategoricalDataset& dataset) const {
  return dispatcher_->PredictRouted(dataset);
}
Result<std::vector<uint32_t>> Clusterer::PredictRouted(
    const NumericDataset& dataset) const {
  return dispatcher_->PredictRouted(dataset);
}
Result<std::vector<uint32_t>> Clusterer::PredictRouted(
    const MixedDataset& dataset) const {
  return dispatcher_->PredictRouted(dataset);
}

Result<IndexHandle> Clusterer::index() const {
  return dispatcher_->RetainedIndex();
}

Result<std::shared_ptr<const serving::FrozenModel>> Clusterer::Snapshot()
    const {
  return dispatcher_->Snapshot();
}

bool Clusterer::fitted() const { return dispatcher_->fitted(); }

Result<StreamingSession> Clusterer::MakeStreamingSession(
    const CategoricalDataset& warmup,
    const StreamingSessionOptions& options) const {
  const ClustererSpec& spec = this->spec();
  if (!IsCategoricalShaped(spec.modality) ||
      spec.accelerator != Accelerator::kMinHash) {
    return Status::InvalidArgument(
        "streaming sessions require a categorical or text-binarized spec "
        "with the minhash accelerator (the live index is MinHash-based); "
        "this Clusterer is " + std::string(ModalityToString(spec.modality)) +
        " / " + std::string(AcceleratorToString(spec.accelerator)));
  }
  StreamingMHKModesOptions streaming;
  streaming.bootstrap.engine = spec.engine;
  streaming.bootstrap.index = spec.minhash;
  streaming.update_modes = options.update_modes;
  streaming.ingest_threads = options.ingest_threads;
  streaming.ingest_shards = options.ingest_shards;
  streaming.ingest_chunk_size = options.ingest_chunk_size;
  LSHC_RETURN_NOT_OK(ValidateStreamingMHKModesOptions(streaming));
  LSHC_ASSIGN_OR_RETURN(StreamingMHKModes engine,
                        StreamingMHKModes::Bootstrap(warmup, streaming));
  StreamingSession session(
      std::make_unique<StreamingMHKModes>(std::move(engine)));
  session.publish_to_ = options.publish_to;
  session.publish_every_ = options.publish_every;
  return session;
}

}  // namespace lshclust
