#include "api/clusterer.h"

#include <cmath>
#include <optional>
#include <utility>

#include "util/macros.h"

namespace lshclust {

std::string_view ModalityToString(Modality modality) {
  switch (modality) {
    case Modality::kCategorical:
      return "categorical";
    case Modality::kNumeric:
      return "numeric";
    case Modality::kMixed:
      return "mixed";
    case Modality::kTextBinarized:
      return "text-binarized";
  }
  return "unrecognized modality";
}

std::string_view AcceleratorToString(Accelerator accelerator) {
  switch (accelerator) {
    case Accelerator::kExhaustive:
      return "exhaustive";
    case Accelerator::kMinHash:
      return "minhash";
    case Accelerator::kSimHash:
      return "simhash";
    case Accelerator::kMixedConcat:
      return "mixed-concat";
    case Accelerator::kCanopy:
      return "canopy";
  }
  return "unrecognized accelerator";
}

Result<Modality> ParseModality(std::string_view text) {
  for (const Modality modality :
       {Modality::kCategorical, Modality::kNumeric, Modality::kMixed,
        Modality::kTextBinarized}) {
    if (text == ModalityToString(modality)) return modality;
  }
  return Status::InvalidArgument(
      "unknown modality '" + std::string(text) +
      "' (categorical | numeric | mixed | text-binarized)");
}

Result<Accelerator> ParseAccelerator(std::string_view text) {
  for (const Accelerator accelerator :
       {Accelerator::kExhaustive, Accelerator::kMinHash, Accelerator::kSimHash,
        Accelerator::kMixedConcat, Accelerator::kCanopy}) {
    if (text == AcceleratorToString(accelerator)) return accelerator;
  }
  return Status::InvalidArgument(
      "unknown accelerator '" + std::string(text) +
      "' (exhaustive | minhash | simhash | mixed-concat | canopy)");
}

namespace {

bool IsCategoricalShaped(Modality modality) {
  return modality == Modality::kCategorical ||
         modality == Modality::kTextBinarized;
}

/// The accelerators each modality supports, for validation and messages.
std::string_view SupportedAccelerators(Modality modality) {
  switch (modality) {
    case Modality::kCategorical:
    case Modality::kTextBinarized:
      return "exhaustive | minhash | canopy";
    case Modality::kNumeric:
      return "exhaustive | simhash";
    case Modality::kMixed:
      return "exhaustive | mixed-concat";
  }
  return "";
}

bool AcceleratorSupported(Modality modality, Accelerator accelerator) {
  switch (accelerator) {
    case Accelerator::kExhaustive:
      return true;
    case Accelerator::kMinHash:
    case Accelerator::kCanopy:
      return IsCategoricalShaped(modality);
    case Accelerator::kSimHash:
      return modality == Modality::kNumeric;
    case Accelerator::kMixedConcat:
      return modality == Modality::kMixed;
  }
  return false;
}

}  // namespace

Status ValidateClustererSpec(const ClustererSpec& spec) {
  switch (spec.modality) {
    case Modality::kCategorical:
    case Modality::kNumeric:
    case Modality::kMixed:
    case Modality::kTextBinarized:
      break;
    default:
      return Status::InvalidArgument(
          "spec.modality holds an unrecognized value (" +
          std::to_string(static_cast<int>(spec.modality)) + ")");
  }
  if (!AcceleratorSupported(spec.modality, spec.accelerator)) {
    return Status::InvalidArgument(
        std::string("the ") +
        std::string(AcceleratorToString(spec.accelerator)) +
        " accelerator does not apply to " +
        std::string(ModalityToString(spec.modality)) +
        " data; supported accelerators for this modality: " +
        std::string(SupportedAccelerators(spec.modality)));
  }
  LSHC_RETURN_NOT_OK(ValidateEngineOptions(spec.engine).WithContext(
      "spec.engine"));
  if (!IsCategoricalShaped(spec.modality) &&
      spec.engine.initial_seeds.empty() &&
      spec.engine.init_method != InitMethod::kRandom) {
    return Status::InvalidArgument(
        "Huang/Cao seeding is defined on categorical attribute frequencies; "
        "use InitMethod::kRandom (or explicit initial_seeds) for " +
        std::string(ModalityToString(spec.modality)) + " data");
  }
  if (spec.modality == Modality::kMixed &&
      !(std::isfinite(spec.gamma) && spec.gamma >= 0.0)) {
    return Status::InvalidArgument(
        "spec.gamma weighs the numeric distance and must be a finite "
        "non-negative number; got " + std::to_string(spec.gamma));
  }
  switch (spec.accelerator) {
    case Accelerator::kMinHash:
      LSHC_RETURN_NOT_OK(
          MinHashShortlistFamily::ValidateOptions(spec.minhash)
              .WithContext("spec.minhash"));
      break;
    case Accelerator::kSimHash:
      LSHC_RETURN_NOT_OK(
          SimHashShortlistFamily::ValidateOptions(spec.simhash)
              .WithContext("spec.simhash"));
      break;
    case Accelerator::kMixedConcat:
      LSHC_RETURN_NOT_OK(
          MixedShortlistFamily::ValidateOptions(spec.mixed_index)
              .WithContext("spec.mixed_index"));
      break;
    case Accelerator::kCanopy:
      LSHC_RETURN_NOT_OK(
          ValidateCanopyOptions(spec.canopy).WithContext("spec.canopy"));
      break;
    case Accelerator::kExhaustive:
      break;
  }
  return Status::OK();
}

namespace internal {

namespace {

/// Runs the engine and folds the outcome into a FitReport: cancellation
/// becomes FitReport::status = kCancelled (the partial result stays), and
/// banding-index providers contribute their diagnostics.
template <typename Traits, typename Provider>
Result<FitReport> RunToReport(const typename Traits::Dataset& dataset,
                              const typename Traits::Options& options,
                              Provider& provider,
                              typename Traits::Centroids* model) {
  FitReport report;
  LSHC_ASSIGN_OR_RETURN(report.result,
                        (ClusteringEngine<Traits, Provider>::Run(
                            dataset, options, provider, model)));
  if (report.result.cancelled) {
    report.status = Status::Cancelled(
        "run stopped by the cancellation hook after " +
        std::to_string(report.result.iterations.size()) +
        " completed refinement iteration(s); the report holds that state");
  }
  if constexpr (requires {
                  provider.index();
                  provider.IndexStats();
                }) {
    if (provider.index() != nullptr) {
      report.has_index = true;
      report.index_stats = provider.IndexStats();
      report.index_memory_bytes = provider.MemoryUsageBytes();
      report.signature_seconds = provider.signature_seconds();
      report.index_seconds = provider.index_seconds();
    }
  }
  return report;
}

/// Nearest fitted centroid for every item of an out-of-sample dataset —
/// literally the engine's exhaustive argmin kernel
/// (BestClusterExhaustive, seed cluster 0), so ties resolve identically
/// to a Fit pass by construction. Chunked across a worker pool when the
/// spec's num_threads asks for one; per-item pure, so bit-identical
/// either way.
template <typename Traits>
std::vector<uint32_t> AssignNearest(const typename Traits::Dataset& dataset,
                                    const typename Traits::Centroids& model,
                                    const typename Traits::Options& options) {
  const uint32_t n = dataset.num_items();
  const uint32_t k = options.num_clusters;
  std::vector<uint32_t> assignment(n, 0);
  const auto assign_range = [&](uint32_t begin, uint32_t end) {
    for (uint32_t item = begin; item < end; ++item) {
      assignment[item] = BestClusterExhaustive<Traits, /*EarlyExit=*/true>(
          dataset, model, options, item, /*seed_cluster=*/0, k);
    }
  };
  // Predict spawns its pool per call (it has no run to borrow one from),
  // so small batches — the per-micro-batch routing pattern — stay
  // sequential rather than paying thread startup per arrival batch.
  const uint32_t num_threads = ResolveThreadCount(options.num_threads);
  if (num_threads <= 1 || n < 4096u) {
    assign_range(0, n);
  } else {
    ThreadPool pool(num_threads);
    pool.ParallelFor(0, n, options.chunk_size,
                     [&](uint32_t begin, uint32_t end, uint32_t) {
                       assign_range(begin, end);
                     });
  }
  return assignment;
}

}  // namespace

/// \brief The type-erasure seam: one virtual Fit/Predict per dataset
/// shape, overridden by the dispatcher of the spec's modality. The base
/// implementations reject mismatched dataset shapes with an actionable
/// error, so every concrete dispatcher only overrides its own shape.
class EngineDispatcher {
 public:
  explicit EngineDispatcher(const ClustererSpec& spec) : spec_(spec) {}
  virtual ~EngineDispatcher() = default;

  virtual Result<FitReport> Fit(const CategoricalDataset&) {
    return WrongShape("a categorical");
  }
  virtual Result<FitReport> Fit(const NumericDataset&) {
    return WrongShape("a numeric");
  }
  virtual Result<FitReport> Fit(const MixedDataset&) {
    return WrongShape("a mixed");
  }

  virtual Result<std::vector<uint32_t>> Predict(
      const CategoricalDataset&) const {
    return WrongShape("a categorical");
  }
  virtual Result<std::vector<uint32_t>> Predict(
      const NumericDataset&) const {
    return WrongShape("a numeric");
  }
  virtual Result<std::vector<uint32_t>> Predict(const MixedDataset&) const {
    return WrongShape("a mixed");
  }

  virtual bool fitted() const = 0;

  /// The validated spec this dispatcher was built from — the single
  /// stored copy (Clusterer::spec() reads it through here).
  const ClustererSpec& spec() const { return spec_; }

 protected:
  Status WrongShape(std::string_view got) const {
    return Status::InvalidArgument(
        "this Clusterer is configured for " +
        std::string(ModalityToString(spec_.modality)) + " data, but " +
        std::string(got) +
        " dataset was passed; create a Clusterer whose spec.modality "
        "matches the dataset");
  }

  Status NotFitted() const {
    return Status::InvalidArgument(
        "Predict requires a fitted model; call Fit first");
  }

  Status UnsupportedAccelerator() const {
    // Unreachable after ValidateClustererSpec; kept as a real error (not
    // an abort) so a hand-rolled dispatcher misuse stays debuggable.
    return Status::InvalidArgument(
        std::string("accelerator ") +
        std::string(AcceleratorToString(spec_.accelerator)) +
        " is not implemented for " +
        std::string(ModalityToString(spec_.modality)) + " data");
  }

  ClustererSpec spec_;
};

namespace {

/// K-Modes cell (kCategorical and kTextBinarized): exhaustive, MinHash
/// shortlists, or canopy shortlists over a CategoricalDataset.
class CategoricalDispatcher final : public EngineDispatcher {
 public:
  using EngineDispatcher::EngineDispatcher;

  Result<FitReport> Fit(const CategoricalDataset& dataset) override {
    // Built into a local and only moved into the member on success: a
    // rejected Fit leaves the previously fitted model usable.
    ModeTable modes(spec_.engine.num_clusters, dataset.num_attributes());
    FitReport report;
    switch (spec_.accelerator) {
      case Accelerator::kExhaustive: {
        ExhaustiveProvider provider;
        LSHC_ASSIGN_OR_RETURN(
            report, (RunToReport<CategoricalClusteringTraits>(
                        dataset, spec_.engine, provider, &modes)));
        break;
      }
      case Accelerator::kMinHash: {
        ClusterShortlistProvider provider(spec_.minhash,
                                          spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(
            report, (RunToReport<CategoricalClusteringTraits>(
                        dataset, spec_.engine, provider, &modes)));
        break;
      }
      case Accelerator::kCanopy: {
        CanopyShortlistProvider provider(spec_.canopy,
                                         spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(
            report, (RunToReport<CategoricalClusteringTraits>(
                        dataset, spec_.engine, provider, &modes)));
        break;
      }
      default:
        return UnsupportedAccelerator();
    }
    num_attributes_ = dataset.num_attributes();
    modes_ = std::move(modes);
    return report;
  }

  Result<std::vector<uint32_t>> Predict(
      const CategoricalDataset& dataset) const override {
    if (!modes_.has_value()) return NotFitted();
    if (dataset.num_items() == 0) {
      return Status::InvalidArgument("dataset is empty");
    }
    if (dataset.num_attributes() != num_attributes_) {
      return Status::InvalidArgument(
          "Predict dataset has " + std::to_string(dataset.num_attributes()) +
          " attributes; the fitted model expects " +
          std::to_string(num_attributes_));
    }
    return AssignNearest<CategoricalClusteringTraits>(dataset, *modes_,
                                                      spec_.engine);
  }

  bool fitted() const override { return modes_.has_value(); }

 private:
  std::optional<ModeTable> modes_;
  uint32_t num_attributes_ = 0;
};

/// K-Means cell (kNumeric): exhaustive or SimHash shortlists over a
/// NumericDataset.
class NumericDispatcher final : public EngineDispatcher {
 public:
  using EngineDispatcher::EngineDispatcher;

  Result<FitReport> Fit(const NumericDataset& dataset) override {
    // The engine writes centroids_ only when it returns a result, so a
    // rejected Fit leaves the previously fitted model usable.
    KMeansOptions options;
    static_cast<EngineOptions&>(options) = spec_.engine;
    FitReport report;
    switch (spec_.accelerator) {
      case Accelerator::kExhaustive: {
        ExhaustiveProvider provider;
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<NumericClusteringTraits>(
                                  dataset, options, provider, &centroids_)));
        break;
      }
      case Accelerator::kSimHash: {
        SimHashShortlistProvider provider(spec_.simhash,
                                          spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<NumericClusteringTraits>(
                                  dataset, options, provider, &centroids_)));
        break;
      }
      default:
        return UnsupportedAccelerator();
    }
    dimensions_ = dataset.dimensions();
    fitted_ = true;
    return report;
  }

  Result<std::vector<uint32_t>> Predict(
      const NumericDataset& dataset) const override {
    if (!fitted_) return NotFitted();
    if (dataset.num_items() == 0) {
      return Status::InvalidArgument("dataset is empty");
    }
    if (dataset.dimensions() != dimensions_) {
      return Status::InvalidArgument(
          "Predict dataset has " + std::to_string(dataset.dimensions()) +
          " dimensions; the fitted model expects " +
          std::to_string(dimensions_));
    }
    KMeansOptions options;
    static_cast<EngineOptions&>(options) = spec_.engine;
    return AssignNearest<NumericClusteringTraits>(dataset, centroids_,
                                                  options);
  }

  bool fitted() const override { return fitted_; }

 private:
  CentroidTable centroids_{0, 0};
  uint32_t dimensions_ = 0;
  bool fitted_ = false;
};

/// K-Prototypes cell (kMixed): exhaustive or concatenated MinHash+SimHash
/// shortlists over a MixedDataset.
class MixedDispatcher final : public EngineDispatcher {
 public:
  using EngineDispatcher::EngineDispatcher;

  Result<FitReport> Fit(const MixedDataset& dataset) override {
    // Built into a local and only moved into the member on success: a
    // rejected Fit leaves the previously fitted model usable.
    const KPrototypesOptions options = Options();
    MixedClusteringTraits::Centroids prototypes{
        ModeTable(spec_.engine.num_clusters, dataset.num_categorical()),
        CentroidTable(spec_.engine.num_clusters, dataset.num_numeric())};
    FitReport report;
    switch (spec_.accelerator) {
      case Accelerator::kExhaustive: {
        ExhaustiveProvider provider;
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<MixedClusteringTraits>(
                                  dataset, options, provider, &prototypes)));
        break;
      }
      case Accelerator::kMixedConcat: {
        MixedShortlistProvider provider(spec_.mixed_index,
                                        spec_.engine.num_clusters);
        LSHC_ASSIGN_OR_RETURN(report,
                              (RunToReport<MixedClusteringTraits>(
                                  dataset, options, provider, &prototypes)));
        break;
      }
      default:
        return UnsupportedAccelerator();
    }
    num_categorical_ = dataset.num_categorical();
    num_numeric_ = dataset.num_numeric();
    prototypes_ = std::move(prototypes);
    return report;
  }

  Result<std::vector<uint32_t>> Predict(
      const MixedDataset& dataset) const override {
    if (!prototypes_.has_value()) return NotFitted();
    if (dataset.num_items() == 0) {
      return Status::InvalidArgument("dataset is empty");
    }
    if (dataset.num_categorical() != num_categorical_ ||
        dataset.num_numeric() != num_numeric_) {
      return Status::InvalidArgument(
          "Predict dataset has " + std::to_string(dataset.num_categorical()) +
          " categorical + " + std::to_string(dataset.num_numeric()) +
          " numeric attributes; the fitted model expects " +
          std::to_string(num_categorical_) + " + " +
          std::to_string(num_numeric_));
    }
    return AssignNearest<MixedClusteringTraits>(dataset, *prototypes_,
                                                Options());
  }

  bool fitted() const override { return prototypes_.has_value(); }

 private:
  KPrototypesOptions Options() const {
    KPrototypesOptions options;
    static_cast<EngineOptions&>(options) = spec_.engine;
    options.gamma = spec_.gamma;
    return options;
  }

  std::optional<MixedClusteringTraits::Centroids> prototypes_;
  uint32_t num_categorical_ = 0;
  uint32_t num_numeric_ = 0;
};

}  // namespace
}  // namespace internal

StreamingSession::StreamingSession(std::unique_ptr<StreamingMHKModes> engine)
    : engine_(std::move(engine)) {}
StreamingSession::~StreamingSession() = default;
StreamingSession::StreamingSession(StreamingSession&&) noexcept = default;
StreamingSession& StreamingSession::operator=(StreamingSession&&) noexcept =
    default;

Clusterer::Clusterer(std::unique_ptr<internal::EngineDispatcher> dispatcher)
    : dispatcher_(std::move(dispatcher)) {}
Clusterer::~Clusterer() = default;
Clusterer::Clusterer(Clusterer&&) noexcept = default;
Clusterer& Clusterer::operator=(Clusterer&&) noexcept = default;

Result<Clusterer> Clusterer::Create(const ClustererSpec& spec) {
  LSHC_RETURN_NOT_OK(ValidateClustererSpec(spec));
  std::unique_ptr<internal::EngineDispatcher> dispatcher;
  switch (spec.modality) {
    case Modality::kCategorical:
    case Modality::kTextBinarized:
      dispatcher = std::make_unique<internal::CategoricalDispatcher>(spec);
      break;
    case Modality::kNumeric:
      dispatcher = std::make_unique<internal::NumericDispatcher>(spec);
      break;
    case Modality::kMixed:
      dispatcher = std::make_unique<internal::MixedDispatcher>(spec);
      break;
  }
  return Clusterer(std::move(dispatcher));
}

const ClustererSpec& Clusterer::spec() const { return dispatcher_->spec(); }

Result<FitReport> Clusterer::Fit(const CategoricalDataset& dataset) {
  return dispatcher_->Fit(dataset);
}
Result<FitReport> Clusterer::Fit(const NumericDataset& dataset) {
  return dispatcher_->Fit(dataset);
}
Result<FitReport> Clusterer::Fit(const MixedDataset& dataset) {
  return dispatcher_->Fit(dataset);
}

Result<std::vector<uint32_t>> Clusterer::Predict(
    const CategoricalDataset& dataset) const {
  return dispatcher_->Predict(dataset);
}
Result<std::vector<uint32_t>> Clusterer::Predict(
    const NumericDataset& dataset) const {
  return dispatcher_->Predict(dataset);
}
Result<std::vector<uint32_t>> Clusterer::Predict(
    const MixedDataset& dataset) const {
  return dispatcher_->Predict(dataset);
}

bool Clusterer::fitted() const { return dispatcher_->fitted(); }

Result<StreamingSession> Clusterer::MakeStreamingSession(
    const CategoricalDataset& warmup,
    const StreamingSessionOptions& options) const {
  const ClustererSpec& spec = this->spec();
  if (!IsCategoricalShaped(spec.modality) ||
      spec.accelerator != Accelerator::kMinHash) {
    return Status::InvalidArgument(
        "streaming sessions require a categorical or text-binarized spec "
        "with the minhash accelerator (the live index is MinHash-based); "
        "this Clusterer is " + std::string(ModalityToString(spec.modality)) +
        " / " + std::string(AcceleratorToString(spec.accelerator)));
  }
  StreamingMHKModesOptions streaming;
  streaming.bootstrap.engine = spec.engine;
  streaming.bootstrap.index = spec.minhash;
  streaming.update_modes = options.update_modes;
  streaming.ingest_threads = options.ingest_threads;
  streaming.ingest_shards = options.ingest_shards;
  streaming.ingest_chunk_size = options.ingest_chunk_size;
  LSHC_RETURN_NOT_OK(ValidateStreamingMHKModesOptions(streaming));
  LSHC_ASSIGN_OR_RETURN(StreamingMHKModes engine,
                        StreamingMHKModes::Bootstrap(warmup, streaming));
  return StreamingSession(
      std::make_unique<StreamingMHKModes>(std::move(engine)));
}

}  // namespace lshclust
