#pragma once

/// \file clusterer.h
/// \brief The front door of lshclust: a type-erased `Clusterer` built from
/// a runtime `ClustererSpec`, serving every (modality x accelerator)
/// combination the library implements through one Fit / Stream / Predict
/// lifecycle.
///
/// The paper's point is that one shortlist idea — LSH bucketing of
/// centroids — accelerates *all three* centroid algorithms (K-Modes,
/// K-Means, K-Prototypes). The engine layer (clustering/engine.h) unifies
/// their internals; this header unifies their *surface*: callers pick a
/// data modality and an accelerator at runtime instead of picking one of
/// five per-algorithm entry points at compile time (the same consolidation
/// FALCONN makes with `LSHNearestNeighborTable`).
///
/// \code
///   ClustererSpec spec;
///   spec.modality = Modality::kCategorical;
///   spec.accelerator = Accelerator::kMinHash;
///   spec.engine.num_clusters = 2000;
///   spec.minhash.banding = {20, 5};               // "20b 5r"
///   LSHC_ASSIGN_OR_RETURN(Clusterer clusterer, Clusterer::Create(spec));
///   LSHC_ASSIGN_OR_RETURN(FitReport report, clusterer.Fit(dataset));
///   // report.result.assignment, report.result.iterations, ...
///   LSHC_ASSIGN_OR_RETURN(std::vector<uint32_t> routed,
///                         clusterer.Predict(arrivals));
/// \endcode
///
/// Design contracts:
///  * **Validation up front.** `Clusterer::Create` validates everything
///    the chosen (modality, accelerator) cell will read — the pair's
///    compatibility, the shared engine knobs, and the selected
///    accelerator's option block (unused blocks are ignored by design, so
///    specs can be built incrementally; see ClustererSpec) — and returns
///    `Status` errors with actionable messages instead of aborting (the
///    per-algorithm constructors used to `LSHC_CHECK`; those checks
///    remain as debug backstops).
///  * **Bit-identity with the legacy entry points.** `Fit` dispatches to
///    exactly the engine instantiation the corresponding legacy entry
///    point (core/mh_kmodes.h etc.) used, with the same option structs, so
///    assignments, centroids and per-iteration costs are bit-identical
///    (tests/api_test.cpp proves every cell).
///  * **Progress / cancellation.** `spec.engine.progress` is invoked after
///    every refinement iteration; `spec.engine.cancel` is polled between
///    iterations and at shard-chunk boundaries. A cancelled run returns a
///    *partial* FitReport whose `status` carries StatusCode::kCancelled:
///    the state after the last completed iteration, never a half-applied
///    pass.
///  * **Type erasure at the boundary only.** Internally an
///    `EngineDispatcher` instantiates the right
///    `ClusteringEngine<Traits, Provider>` specialization behind a small
///    virtual interface; the hot loops stay fully templated, so the
///    facade's dispatch cost is one virtual call per Fit/Predict
///    (bench/engine_threads.cpp records the overhead as
///    `facade_overhead`).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/index_handle.h"
#include "clustering/canopy.h"
#include "clustering/engine.h"
#include "clustering/kmeans.h"
#include "clustering/kprototypes.h"
#include "core/canopy_shortlist_index.h"
#include "core/cluster_shortlist_index.h"
#include "core/mixed_shortlist_index.h"
#include "core/simhash_shortlist_index.h"
#include "core/streaming.h"
#include "data/categorical_dataset.h"
#include "data/mixed_dataset.h"
#include "lsh/banded_index.h"
#include "serving/model_server.h"
#include "util/result.h"

namespace lshclust {

/// \brief The shape of the data a Clusterer consumes. Determines the
/// algorithm family: K-Modes for categorical (and text-binarized) items,
/// K-Means for numeric items, K-Prototypes for mixed items.
enum class Modality : uint8_t {
  /// Items are vectors of category codes (CategoricalDataset).
  kCategorical,
  /// Items are dense real vectors (NumericDataset).
  kNumeric,
  /// Items carry both categorical codes and numeric values (MixedDataset).
  kMixed,
  /// Binary word-presence items produced by the text pipeline
  /// (text/binarizer.h) — categorical-shaped (Fit takes the binarized
  /// CategoricalDataset), named separately because the sparse/absence
  /// semantics matter for accelerator choice.
  kTextBinarized,
};

/// \brief The candidate-generation strategy of the assignment step.
enum class Accelerator : uint8_t {
  /// Every cluster is a candidate — the family's original algorithm.
  kExhaustive,
  /// MinHash cluster shortlists (the paper's MH-K-Modes); categorical and
  /// text-binarized data.
  kMinHash,
  /// SimHash cluster shortlists (LSH-K-Means); numeric data.
  kSimHash,
  /// Concatenated MinHash + SimHash signatures over a heterogeneous band
  /// layout (LSH-K-Prototypes); mixed data.
  kMixedConcat,
  /// Canopy-peer shortlists (the related-work baseline); categorical and
  /// text-binarized data.
  kCanopy,
};

/// Human-readable names ("categorical", "minhash", ...) for messages.
std::string_view ModalityToString(Modality modality);
std::string_view AcceleratorToString(Accelerator accelerator);

/// Parses the names ModalityToString / AcceleratorToString produce
/// ("mixed-concat" etc.); kInvalidArgument on anything else.
Result<Modality> ParseModality(std::string_view text);
Result<Accelerator> ParseAccelerator(std::string_view text);

/// \brief Everything a Clusterer needs to know, chosen at runtime. Only
/// the option block matching `accelerator` (and `gamma` for mixed data) is
/// read; the others are ignored, so a spec can be built incrementally and
/// re-targeted by flipping the two enums.
struct ClustererSpec {
  /// Data shape; selects the algorithm family.
  Modality modality = Modality::kCategorical;
  /// Candidate-generation strategy of the assignment step.
  Accelerator accelerator = Accelerator::kExhaustive;
  /// The engine knobs shared by every family: k, iteration cap, init,
  /// seeds, threads, shards, chunk size, progress/cancel hooks.
  EngineOptions engine;
  /// Weight of the numeric squared distance against categorical
  /// mismatches (kMixed only).
  double gamma = 1.0;
  /// Retain the fitted shortlist state (signatures machinery + banded
  /// buckets + the fitted assignment) inside the Clusterer after Fit —
  /// the model keeps the index it built instead of discarding it, which
  /// is what powers PredictRouted and index(). Costs the index's memory
  /// for the model's lifetime; switch off for fit-and-forget batch jobs
  /// (PredictRouted then degenerates to the exhaustive Predict and
  /// index() reports no retained index). Only the banding accelerators
  /// (kMinHash / kSimHash / kMixedConcat) build an index to retain.
  bool retain_index = true;
  /// MinHash index configuration (kMinHash only).
  ShortlistIndexOptions minhash;
  /// SimHash index configuration (kSimHash only).
  SimHashIndexOptions simhash;
  /// Concatenated-signature index configuration (kMixedConcat only).
  MixedIndexOptions mixed_index;
  /// Canopy construction parameters (kCanopy only).
  CanopyOptions canopy;
};

/// Validates every combination of spec fields as a returned Status:
/// modality/accelerator compatibility, engine invariants (k >= 1,
/// shards/chunk >= 1, seed-count consistency), init-method/modality
/// compatibility, gamma, and the chosen accelerator's index options.
/// `Clusterer::Create` calls this; it is public so front ends (the CLI)
/// can validate without constructing.
[[nodiscard]] Status ValidateClustererSpec(const ClustererSpec& spec);

/// \brief Outcome of Clusterer::Fit: the clustering result plus index
/// diagnostics and the run's completion status.
struct FitReport {
  /// The clustering outcome (same type every legacy entry point returned,
  /// so downstream tooling treats facade and direct runs uniformly).
  ClusteringResult result;
  /// OK for a completed run; StatusCode::kCancelled when the caller's
  /// cancellation hook stopped it — `result` then holds the state after
  /// the last completed iteration (an empty assignment if not even the
  /// initial pass completed).
  Status status;
  /// True when an accelerator built a banding index this run (kMinHash /
  /// kSimHash / kMixedConcat) — false if a cancel landed during index
  /// preparation (a partial index is never installed, so there is none to
  /// describe). The timing split below is valid only when set.
  bool has_index = false;
  /// True when that index was retained on the Clusterer
  /// (spec.retain_index) and `index_stats` / `index_memory_bytes` below
  /// describe *live* state reachable through Clusterer::index() and
  /// PredictRouted. When retention is disabled the index is gone by the
  /// time Fit returns, so those two fields are zero — the report never
  /// describes freed state.
  bool index_retained = false;
  /// Bucket occupancy of the retained banding index (zero when
  /// !index_retained).
  BandedIndex::Stats index_stats;
  /// Approximate footprint of the retained shortlist state (zero when
  /// !index_retained).
  uint64_t index_memory_bytes = 0;
  /// Prepare() split: signature computation vs index construction.
  double signature_seconds = 0;
  double index_seconds = 0;
};

/// \brief Options of a streaming session beyond what the spec carries.
/// Defaults are drawn from StreamingMHKModesOptions so the facade can
/// never drift from a direct StreamingMHKModes session.
struct StreamingSessionOptions {
  /// Maintain modes incrementally as items arrive. When false, modes stay
  /// frozen at their bootstrap values (cheaper; suits stable streams).
  bool update_modes = StreamingMHKModesOptions{}.update_modes;
  /// Worker threads for IngestBatch's parallel phase. 1 = run in-line on
  /// the calling thread (default); 0 = one per hardware thread.
  uint32_t ingest_threads = StreamingMHKModesOptions{}.ingest_threads;
  /// Item-space shards of IngestBatch's parallel phase (>= 1).
  uint32_t ingest_shards = StreamingMHKModesOptions{}.ingest_shards;
  /// Items per ParallelFor unit within a shard (>= 1).
  uint32_t ingest_chunk_size = StreamingMHKModesOptions{}.ingest_chunk_size;
  /// Serving hook: when non-null, the session snapshots its live state and
  /// publishes the FrozenModel to this server every `publish_every`
  /// successful ingests (see below). The server must outlive the session.
  serving::ModelServer* publish_to = nullptr;
  /// Ingest count between automatic publishes; 0 disables the hook even
  /// with `publish_to` set. A micro-batch counts all its rows at once and
  /// triggers at most one publish, so a batch larger than the period
  /// publishes once at its end (the counter then restarts from zero).
  uint64_t publish_every = 0;
};

/// \brief An online clustering session created by
/// Clusterer::MakeStreamingSession: a thin owning wrapper over
/// StreamingMHKModes with the facade's naming.
class StreamingSession {
 public:
  ~StreamingSession();
  StreamingSession(StreamingSession&&) noexcept;
  StreamingSession& operator=(StreamingSession&&) noexcept;
  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  /// Assigns one arriving item (a row of num_attributes() codes in the
  /// warm-up dataset's code space) and returns its cluster. May trigger an
  /// automatic snapshot publish (StreamingSessionOptions::publish_to).
  Result<uint32_t> Ingest(std::span<const uint32_t> row);

  /// Assigns a micro-batch (row-major, rows.size() = batch x
  /// num_attributes()); bit-identical to ingesting the rows one by one at
  /// every thread/shard setting. The returned view is valid until the
  /// next ingest call. May trigger an automatic snapshot publish
  /// (StreamingSessionOptions::publish_to).
  Result<std::span<const uint32_t>> IngestBatch(
      std::span<const uint32_t> rows);

  /// An immutable deep-copied FrozenModel of the session's *current*
  /// state: modes, the signing family, the live index frozen into CSR
  /// form, sketches and the full assignment so far. Safe to route from
  /// other threads while this session keeps ingesting. Call between
  /// ingest calls on the writer's thread (the session is single-writer,
  /// like its Ingest methods). Snapshot routing resolves score ties to
  /// the lowest cluster id (the batch Predict convention); the live
  /// ingest path resolves them in shortlist-discovery order, so on tied
  /// scores a snapshot may route an item to a different — equally near —
  /// cluster than Ingest would.
  Result<std::shared_ptr<const serving::FrozenModel>> Snapshot() const;

  uint32_t num_clusters() const { return engine_->num_clusters(); }
  uint32_t num_attributes() const { return engine_->num_attributes(); }

  /// Assignment of every item seen so far (warm-up items first, then
  /// ingested ones in arrival order).
  const std::vector<uint32_t>& assignment() const {
    return engine_->assignment();
  }

  /// The current mode of `cluster`.
  std::span<const uint32_t> ModeOf(uint32_t cluster) const {
    return engine_->ModeOf(cluster);
  }

  /// Ingest-side counters (fallbacks, shortlist sizes, revalidations).
  const StreamingMHKModes::Stats& stats() const { return engine_->stats(); }

  /// The warm-up clustering outcome.
  const ClusteringResult& bootstrap_result() const {
    return engine_->bootstrap_result();
  }

 private:
  friend class Clusterer;
  explicit StreamingSession(std::unique_ptr<StreamingMHKModes> engine);

  /// Counts `ingested` items toward the publish period and snapshots +
  /// publishes when it elapses.
  void MaybePublish(uint64_t ingested);

  std::unique_ptr<StreamingMHKModes> engine_;
  serving::ModelServer* publish_to_ = nullptr;
  uint64_t publish_every_ = 0;
  uint64_t since_publish_ = 0;
};

namespace internal {
class EngineDispatcher;
}  // namespace internal

/// \brief The type-erased clustering front door. Construct via Create
/// (which validates the spec), then Fit a dataset of the spec's modality;
/// Predict assigns out-of-sample items against the fitted centroids, and
/// MakeStreamingSession opens an online session (categorical + minhash
/// specs). Move-only; one Clusterer may Fit repeatedly — each successful
/// Fit replaces the fitted model, a rejected one leaves it untouched.
class Clusterer {
 public:
  /// Validates `spec` (see ValidateClustererSpec) and builds the engine
  /// dispatcher for its (modality, accelerator) cell.
  static Result<Clusterer> Create(const ClustererSpec& spec);

  /// Warm-starts a Clusterer from a model file saved by
  /// serving::SaveFrozenModel (persist/model_io.h) — the fitted state is
  /// reconstructed without re-clustering or re-signing anything: centroids
  /// come back verbatim, the family's hashers rebuild deterministically
  /// from their persisted options + seeds, and the banded index adopts the
  /// raw CSR dump. The returned Clusterer reports fitted(), its spec()
  /// mirrors the persisted model (modality, accelerator, k, gamma, index
  /// options; everything else defaulted), and Predict / PredictRouted /
  /// Snapshot / index() behave exactly as after the Fit that produced the
  /// file — PredictRouted routes bit-identically to the saving process,
  /// across SIMD tiers and thread counts. Fit remains usable and replaces
  /// the loaded model like any refit. Corrupt or truncated files come back
  /// as typed Status errors, never a partially loaded model.
  static Result<Clusterer> FromSnapshot(const std::string& path);

  ~Clusterer();
  Clusterer(Clusterer&&) noexcept;
  Clusterer& operator=(Clusterer&&) noexcept;
  Clusterer(const Clusterer&) = delete;
  Clusterer& operator=(const Clusterer&) = delete;

  /// Runs the full clustering procedure on a dataset of the spec's
  /// modality (kCategorical and kTextBinarized both take the categorical
  /// overload). A dataset of the wrong modality is a kInvalidArgument
  /// error; a run stopped by spec.engine.cancel returns OK with
  /// FitReport::status = kCancelled and the partial result.
  Result<FitReport> Fit(const CategoricalDataset& dataset);
  Result<FitReport> Fit(const NumericDataset& dataset);
  Result<FitReport> Fit(const MixedDataset& dataset);

  /// Assigns each item of an out-of-sample dataset to its nearest fitted
  /// centroid (exhaustive scan — prediction cost is per-arrival, not
  /// per-refinement). Requires a prior successful Fit of matching shape.
  Result<std::vector<uint32_t>> Predict(
      const CategoricalDataset& dataset) const;
  Result<std::vector<uint32_t>> Predict(const NumericDataset& dataset) const;
  Result<std::vector<uint32_t>> Predict(const MixedDataset& dataset) const;

  /// LSH-routed out-of-sample assignment through the retained fit-time
  /// index — the paper's shortlist idea applied to the query side. Per
  /// item: sign the query with the fitted family's hashers, probe the
  /// fit-time buckets, dereference the co-bucketed fitted items' clusters
  /// through the fitted assignment, and assign the nearest candidate
  /// cluster; an item whose probe yields no candidates (external queries,
  /// unlike fitted items, share no bucket with themselves) falls back to
  /// the exhaustive scan. Candidates are scanned in ascending cluster-id
  /// order, so ties resolve to the lowest id exactly as Predict does —
  /// whenever the probe contains the true nearest cluster the routed
  /// answer is bit-identical to Predict's. The fitted dataset is never
  /// re-signed (see IndexHandle::dataset_sign_passes). Batch-parallel and
  /// shard-chunked through the spec's ShardPlan; per-item work is pure,
  /// so every (threads x shards) setting is bit-identical. Requires a
  /// prior successful Fit of matching shape; with no retained index
  /// (non-banding accelerators, spec.retain_index = false, or a fit
  /// cancelled before its index was built) every item takes the fallback
  /// and PredictRouted returns exactly Predict's assignment.
  Result<std::vector<uint32_t>> PredictRouted(
      const CategoricalDataset& dataset) const;
  Result<std::vector<uint32_t>> PredictRouted(
      const NumericDataset& dataset) const;
  Result<std::vector<uint32_t>> PredictRouted(
      const MixedDataset& dataset) const;

  /// An immutable deep-copied FrozenModel of the fitted state for the
  /// lock-free serving layer (serving/frozen_model.h): centroids/modes,
  /// the family's hashers, the banded index's CSR arrays, sketches and
  /// the fitted assignment. The snapshot is self-contained — refitting or
  /// destroying this Clusterer leaves it routing unchanged (the opposite
  /// of index(), whose handles a refit invalidates). Its Route is
  /// bit-identical to PredictRouted on the fitted state it was taken
  /// from; with no retained index (non-banding accelerators or
  /// spec.retain_index = false) the snapshot still works, routing as an
  /// exhaustive Predict. Requires a prior successful Fit.
  Result<std::shared_ptr<const serving::FrozenModel>> Snapshot() const;

  /// A read-only handle on the retained fit-time shortlist index: bucket
  /// occupancy, memory, the dataset-signing counter, and candidate
  /// enumeration for dedup workloads (see api/index_handle.h for the
  /// lifetime contract — valid until the next Fit or destruction).
  /// kInvalidArgument when nothing is retained: no successful Fit yet, a
  /// non-banding accelerator, retention disabled, or the fit was
  /// cancelled before its index was built.
  Result<IndexHandle> index() const;

  /// Opens a streaming session: batch-clusters `warmup` with this spec's
  /// engine + minhash options, then every Ingest assigns one arrival and
  /// folds it into the live index/modes (core/streaming.h). Only valid
  /// for categorical / text-binarized specs with the kMinHash
  /// accelerator. Independent of this Clusterer's fitted state.
  Result<StreamingSession> MakeStreamingSession(
      const CategoricalDataset& warmup,
      const StreamingSessionOptions& options = {}) const;

  /// The validated spec this Clusterer was created from.
  const ClustererSpec& spec() const;

  /// True after a Fit produced a model Predict can use. A cancelled Fit
  /// counts: the model is whatever state the run reached — the last
  /// completed centroid update, or the raw seed centroids if not even
  /// the initial pass completed (detectable via the report's empty
  /// assignment).
  bool fitted() const;

 private:
  explicit Clusterer(std::unique_ptr<internal::EngineDispatcher> dispatcher);

  // The spec lives on the dispatcher (its engine runs read it); spec()
  // exposes that single copy.
  std::unique_ptr<internal::EngineDispatcher> dispatcher_;
};

}  // namespace lshclust
