/// \file model_io.cpp
/// \brief Implementation of the model persistence subsystem: the section
/// codec (see model_io.h for the layout), the FrozenModel extractor, and
/// the two reconstruction paths (LoadFrozenModel here,
/// Clusterer::FromSnapshot in api/clusterer.cpp on top of the Build*
/// helpers).

#include "persist/model_io.h"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "clustering/engine.h"
#include "clustering/kmeans.h"
#include "clustering/kprototypes.h"
#include "serving/frozen_model_impl.h"
#include "serving/model_server.h"
#include "util/binary_io.h"
#include "util/macros.h"

namespace lshclust::persist {

const char* SectionName(uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kModelInfo:
      return "model_info";
    case SectionId::kCentroids:
      return "centroids";
    case SectionId::kFamily:
      return "family";
    case SectionId::kIndex:
      return "index";
    case SectionId::kSketches:
      return "sketches";
    case SectionId::kAssignment:
      return "assignment";
  }
  return "unknown";
}

namespace {

using serving::internal::FrozenModelImpl;
using serving::internal::NoFamily;

using CatExhaustive = FrozenModelImpl<CategoricalClusteringTraits, NoFamily>;
using CatRouted =
    FrozenModelImpl<CategoricalClusteringTraits, MinHashShortlistFamily>;
using NumExhaustive = FrozenModelImpl<NumericClusteringTraits, NoFamily>;
using NumRouted =
    FrozenModelImpl<NumericClusteringTraits, SimHashShortlistFamily>;
using MixExhaustive = FrozenModelImpl<MixedClusteringTraits, NoFamily>;
using MixRouted = FrozenModelImpl<MixedClusteringTraits, MixedShortlistFamily>;

/// Numeric dimensionality of the centroid table: the primary shape for a
/// numeric model, the secondary one for a mixed model.
uint32_t CentroidDims(const DecodedModel& model) {
  return model.modality == ModelModality::kNumeric ? model.shape_primary
                                                   : model.shape_secondary;
}

// ---------------------------------------------------------------------------
// Extraction: FrozenModel -> DecodedModel.

void FillModes(const ModeTable& modes, DecodedModel* out) {
  out->has_modes = true;
  out->mode_codes.reserve(static_cast<size_t>(modes.num_clusters()) *
                          modes.num_attributes());
  for (uint32_t c = 0; c < modes.num_clusters(); ++c) {
    const auto row = modes.Mode(c);
    out->mode_codes.insert(out->mode_codes.end(), row.begin(), row.end());
  }
}

void FillCentroids(const CentroidTable& centroids, DecodedModel* out) {
  out->has_centroids = true;
  out->centroid_values.reserve(static_cast<size_t>(centroids.num_clusters()) *
                               centroids.dimensions());
  for (uint32_t c = 0; c < centroids.num_clusters(); ++c) {
    const auto row = centroids.Centroid(c);
    out->centroid_values.insert(out->centroid_values.end(), row.begin(),
                                row.end());
  }
}

template <typename Impl>
void FillCommon(const Impl& impl, ModelModality modality,
                ModelFamilyKind family, DecodedModel* out) {
  out->modality = modality;
  out->family = family;
  out->num_clusters = impl.options().num_clusters;
  out->shape_primary = impl.shape_primary();
  out->shape_secondary = impl.shape_secondary();
}

template <typename Impl>
void FillRouted(const Impl& impl, DecodedModel* out) {
  out->has_index = true;
  out->index_raw = impl.index()->ToRaw();
  const BitSketchTable& sketches = impl.sketches();
  if (!sketches.empty()) {
    out->has_sketches = true;
    out->sketch_width = sketches.width();
    const auto bits = sketches.packed_bits();
    out->sketch_bits.assign(bits.begin(), bits.end());
    out->sketch_max_hamming = impl.sketch_max_hamming();
  }
  const auto assignment = impl.fit_assignment();
  out->fit_assignment.assign(assignment.begin(), assignment.end());
}

/// Downcasts `model` to its concrete snapshot type and dumps exactly the
/// members the snapshot holds. Rejects implementations this build does
/// not know (there are none today; the error guards future model kinds
/// being saved by an old writer path).
Result<DecodedModel> ExtractModel(const serving::FrozenModel& model) {
  DecodedModel out;
  if (const auto* m = dynamic_cast<const CatExhaustive*>(&model)) {
    FillCommon(*m, ModelModality::kCategorical, ModelFamilyKind::kNone, &out);
    FillModes(m->centroids(), &out);
    return out;
  }
  if (const auto* m = dynamic_cast<const CatRouted*>(&model)) {
    FillCommon(*m, ModelModality::kCategorical, ModelFamilyKind::kMinHash,
               &out);
    FillModes(m->centroids(), &out);
    out.minhash = m->family()->options();
    FillRouted(*m, &out);
    return out;
  }
  if (const auto* m = dynamic_cast<const NumExhaustive*>(&model)) {
    FillCommon(*m, ModelModality::kNumeric, ModelFamilyKind::kNone, &out);
    FillCentroids(m->centroids(), &out);
    return out;
  }
  if (const auto* m = dynamic_cast<const NumRouted*>(&model)) {
    FillCommon(*m, ModelModality::kNumeric, ModelFamilyKind::kSimHash, &out);
    FillCentroids(m->centroids(), &out);
    out.simhash = m->family()->options();
    out.simhash_dimensions = m->family()->fitted_dimensions();
    FillRouted(*m, &out);
    return out;
  }
  if (const auto* m = dynamic_cast<const MixExhaustive*>(&model)) {
    FillCommon(*m, ModelModality::kMixed, ModelFamilyKind::kNone, &out);
    out.gamma = m->options().gamma;
    FillModes(m->centroids().modes, &out);
    FillCentroids(m->centroids().centroids, &out);
    return out;
  }
  if (const auto* m = dynamic_cast<const MixRouted*>(&model)) {
    FillCommon(*m, ModelModality::kMixed, ModelFamilyKind::kMixedConcat, &out);
    out.gamma = m->options().gamma;
    FillModes(m->centroids().modes, &out);
    FillCentroids(m->centroids().centroids, &out);
    out.mixed = m->family()->options();
    out.mixed_mean = m->family()->mean();
    FillRouted(*m, &out);
    return out;
  }
  return Status::InvalidArgument(
      "unrecognized FrozenModel implementation; this build cannot persist "
      "it");
}

// ---------------------------------------------------------------------------
// Encoding: DecodedModel -> bytes. Deterministic: sections are emitted in
// fixed id order with fully specified layouts, so save -> load -> save
// reproduces the file byte for byte.

std::string EncodeModelInfo(const DecodedModel& model) {
  std::string payload;
  AppendLeU8(&payload, static_cast<uint8_t>(model.modality));
  AppendLeU8(&payload, static_cast<uint8_t>(model.family));
  AppendLeU32(&payload, model.num_clusters);
  AppendLeU32(&payload, model.shape_primary);
  AppendLeU32(&payload, model.shape_secondary);
  AppendLeF64(&payload, model.gamma);
  return payload;
}

std::string EncodeCentroids(const DecodedModel& model) {
  std::string payload;
  AppendLeU8(&payload, model.has_modes ? 1 : 0);
  AppendLeU8(&payload, model.has_centroids ? 1 : 0);
  if (model.has_modes) {
    AppendLeU32(&payload, model.num_clusters);
    AppendLeU32(&payload, model.shape_primary);
    AppendLeArray<uint32_t>(&payload, model.mode_codes);
  }
  if (model.has_centroids) {
    AppendLeU32(&payload, model.num_clusters);
    AppendLeU32(&payload, CentroidDims(model));
    AppendLeArray<double>(&payload, model.centroid_values);
  }
  return payload;
}

std::string EncodeFamily(const DecodedModel& model) {
  std::string payload;
  switch (model.family) {
    case ModelFamilyKind::kMinHash: {
      const ShortlistIndexOptions& options = model.minhash;
      AppendLeU32(&payload, options.banding.bands);
      AppendLeU32(&payload, options.banding.rows);
      AppendLeU8(&payload, static_cast<uint8_t>(options.algorithm));
      AppendLeU8(&payload, static_cast<uint8_t>(options.minhash_mode));
      AppendLeU64(&payload, options.seed);
      AppendLeU8(&payload, options.keep_signatures ? 1 : 0);
      AppendLeU8(&payload, options.sketch.enabled ? 1 : 0);
      AppendLeF64(&payload, options.sketch.max_hamming_fraction);
      break;
    }
    case ModelFamilyKind::kSimHash: {
      const SimHashIndexOptions& options = model.simhash;
      AppendLeU32(&payload, options.banding.bands);
      AppendLeU32(&payload, options.banding.rows);
      AppendLeU64(&payload, options.seed);
      AppendLeU8(&payload, options.sketch.enabled ? 1 : 0);
      AppendLeF64(&payload, options.sketch.max_hamming_fraction);
      AppendLeU32(&payload, model.simhash_dimensions);
      break;
    }
    case ModelFamilyKind::kMixedConcat: {
      const MixedIndexOptions& options = model.mixed;
      AppendLeU32(&payload, options.categorical_banding.bands);
      AppendLeU32(&payload, options.categorical_banding.rows);
      AppendLeU32(&payload, options.numeric_banding.bands);
      AppendLeU32(&payload, options.numeric_banding.rows);
      AppendLeU64(&payload, options.seed);
      AppendLeU8(&payload, options.sketch.enabled ? 1 : 0);
      AppendLeF64(&payload, options.sketch.max_hamming_fraction);
      AppendLeU32(&payload, static_cast<uint32_t>(model.mixed_mean.size()));
      AppendLeArray<double>(&payload, model.mixed_mean);
      break;
    }
    case ModelFamilyKind::kNone:
      break;
  }
  return payload;
}

std::string EncodeIndex(const BandedIndex::Raw& raw) {
  std::string payload;
  AppendLeU32(&payload, raw.num_items);
  AppendLeU32(&payload, static_cast<uint32_t>(raw.bands.size()));
  for (const BandedIndex::RawBand& band : raw.bands) {
    AppendLeU32(&payload, band.offset);
    AppendLeU32(&payload, band.rows);
    AppendLeU32(&payload, static_cast<uint32_t>(band.bucket_keys.size()));
    AppendLeArray<uint64_t>(&payload, band.bucket_keys);
    AppendLeArray<uint32_t>(&payload, band.bucket_offsets);
    AppendLeArray<uint32_t>(&payload, band.bucket_items);
    AppendLeArray<uint32_t>(&payload, band.item_bucket);
  }
  return payload;
}

std::string EncodeSketches(const DecodedModel& model) {
  std::string payload;
  const size_t words = (static_cast<size_t>(model.sketch_width) + 63) / 64;
  AppendLeU32(&payload, model.sketch_width);
  AppendLeU32(&payload,
              static_cast<uint32_t>(model.sketch_bits.size() / words));
  AppendLeU64(&payload, model.sketch_max_hamming);
  AppendLeArray<uint64_t>(&payload, model.sketch_bits);
  return payload;
}

std::string EncodeAssignment(const DecodedModel& model) {
  std::string payload;
  AppendLeU32(&payload, static_cast<uint32_t>(model.fit_assignment.size()));
  AppendLeArray<uint32_t>(&payload, model.fit_assignment);
  return payload;
}

std::string EncodeModel(const DecodedModel& model) {
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.emplace_back(static_cast<uint32_t>(SectionId::kModelInfo),
                        EncodeModelInfo(model));
  sections.emplace_back(static_cast<uint32_t>(SectionId::kCentroids),
                        EncodeCentroids(model));
  if (model.family != ModelFamilyKind::kNone) {
    sections.emplace_back(static_cast<uint32_t>(SectionId::kFamily),
                          EncodeFamily(model));
    sections.emplace_back(static_cast<uint32_t>(SectionId::kIndex),
                          EncodeIndex(model.index_raw));
    if (model.has_sketches) {
      sections.emplace_back(static_cast<uint32_t>(SectionId::kSketches),
                            EncodeSketches(model));
    }
    sections.emplace_back(static_cast<uint32_t>(SectionId::kAssignment),
                          EncodeAssignment(model));
  }

  std::string file;
  file.append(kModelMagic, sizeof(kModelMagic));
  AppendLeU32(&file, kModelFormatVersion);
  AppendLeU32(&file, static_cast<uint32_t>(sections.size()));
  uint64_t offset = 4 + 4 + 4 + sections.size() * 24u;
  for (const auto& [id, payload] : sections) {
    AppendLeU32(&file, id);
    AppendLeU64(&file, offset);
    AppendLeU64(&file, payload.size());
    AppendLeU32(&file, Crc32(payload.data(), payload.size()));
    offset += payload.size();
  }
  for (const auto& section : sections) {
    file += section.second;
  }
  return file;
}

// ---------------------------------------------------------------------------
// Decoding: bytes -> DecodedModel, validating hard at every step.

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open model file '" + path + "'");
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::IOError("cannot determine size of model file '" + path +
                           "'");
  }
  in.seekg(0, std::ios::beg);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(data.data()), size);
    if (in.gcount() != size) {
      return Status::IOError("failed reading model file '" + path + "'");
    }
  }
  return data;
}

Status Truncated(uint32_t id) {
  return Status::IOError("section '" + std::string(SectionName(id)) +
                         "' is truncated");
}

/// Parses the fixed header + TOC. TOC entries must lie entirely within
/// the file; per-section CRC results land in `crc_ok` (the full decoder
/// turns a false into an error, model_inspect reports it per section).
Status ParseHeader(std::span<const uint8_t> data, ModelFileInfo* info) {
  constexpr size_t kFixedHeader = 4 + 4 + 4;
  if (data.size() < kFixedHeader) {
    return Status::IOError("truncated model file: " +
                           std::to_string(data.size()) +
                           " bytes is smaller than the 12-byte header");
  }
  if (std::memcmp(data.data(), kModelMagic, sizeof(kModelMagic)) != 0) {
    return Status::InvalidArgument(
        "not a model file (magic bytes are not \"LSHM\")");
  }
  ByteReader reader(data);
  reader.Skip(sizeof(kModelMagic));
  uint32_t version = 0;
  uint32_t section_count = 0;
  reader.ReadU32(&version);
  reader.ReadU32(&section_count);
  if (version != kModelFormatVersion) {
    return Status::InvalidArgument(
        "unsupported model format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kModelFormatVersion) +
        ")");
  }
  if (section_count == 0 || section_count > 1024) {
    return Status::InvalidArgument("implausible section count " +
                                   std::to_string(section_count));
  }
  info->format_version = version;
  info->file_size = data.size();
  info->sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionInfo section;
    if (!reader.ReadU32(&section.id) || !reader.ReadU64(&section.offset) ||
        !reader.ReadU64(&section.size) || !reader.ReadU32(&section.crc32)) {
      return Status::IOError(
          "truncated model file: the table of contents is cut short");
    }
    if (section.size > data.size() ||
        section.offset > data.size() - section.size) {
      return Status::IOError("section '" +
                             std::string(SectionName(section.id)) +
                             "' extends past the end of the file");
    }
    section.crc_ok = Crc32(data.data() + section.offset, section.size) ==
                     section.crc32;
    info->sections.push_back(section);
  }
  return Status::OK();
}

Status DecodeModelInfo(ByteReader& reader, DecodedModel* model) {
  constexpr uint32_t id = static_cast<uint32_t>(SectionId::kModelInfo);
  uint8_t modality = 0;
  uint8_t family = 0;
  if (!reader.ReadU8(&modality) || !reader.ReadU8(&family) ||
      !reader.ReadU32(&model->num_clusters) ||
      !reader.ReadU32(&model->shape_primary) ||
      !reader.ReadU32(&model->shape_secondary) ||
      !reader.ReadF64(&model->gamma)) {
    return Truncated(id);
  }
  if (modality > static_cast<uint8_t>(ModelModality::kMixed)) {
    return Status::InvalidArgument("unknown modality tag " +
                                   std::to_string(modality));
  }
  if (family > static_cast<uint8_t>(ModelFamilyKind::kMixedConcat)) {
    return Status::InvalidArgument("unknown family tag " +
                                   std::to_string(family));
  }
  model->modality = static_cast<ModelModality>(modality);
  model->family = static_cast<ModelFamilyKind>(family);
  return Status::OK();
}

Status DecodeCentroids(ByteReader& reader, DecodedModel* model) {
  constexpr uint32_t id = static_cast<uint32_t>(SectionId::kCentroids);
  uint8_t has_modes = 0;
  uint8_t has_centroids = 0;
  if (!reader.ReadU8(&has_modes) || !reader.ReadU8(&has_centroids)) {
    return Truncated(id);
  }
  if (has_modes > 1 || has_centroids > 1) {
    return Status::InvalidArgument("centroids section has malformed flags");
  }
  model->has_modes = has_modes == 1;
  model->has_centroids = has_centroids == 1;
  if (model->has_modes) {
    uint32_t k = 0;
    uint32_t attributes = 0;
    if (!reader.ReadU32(&k) || !reader.ReadU32(&attributes)) {
      return Truncated(id);
    }
    if (k != model->num_clusters || attributes != model->shape_primary) {
      return Status::InvalidArgument(
          "centroids section stores a " + std::to_string(k) + " x " +
          std::to_string(attributes) + " mode table but model_info says " +
          std::to_string(model->num_clusters) + " clusters over " +
          std::to_string(model->shape_primary) + " attributes");
    }
    if (!reader.ReadArray(static_cast<size_t>(k) * attributes,
                          &model->mode_codes)) {
      return Truncated(id);
    }
  }
  if (model->has_centroids) {
    uint32_t k = 0;
    uint32_t dims = 0;
    if (!reader.ReadU32(&k) || !reader.ReadU32(&dims)) {
      return Truncated(id);
    }
    if (k != model->num_clusters || dims != CentroidDims(*model)) {
      return Status::InvalidArgument(
          "centroids section stores a " + std::to_string(k) + " x " +
          std::to_string(dims) + " centroid table but model_info says " +
          std::to_string(model->num_clusters) + " clusters over " +
          std::to_string(CentroidDims(*model)) + " dimensions");
    }
    if (!reader.ReadArray(static_cast<size_t>(k) * dims,
                          &model->centroid_values)) {
      return Truncated(id);
    }
  }
  return Status::OK();
}

Status DecodeFamily(ByteReader& reader, DecodedModel* model) {
  constexpr uint32_t id = static_cast<uint32_t>(SectionId::kFamily);
  switch (model->family) {
    case ModelFamilyKind::kMinHash: {
      ShortlistIndexOptions& options = model->minhash;
      uint8_t algorithm = 0;
      uint8_t minhash_mode = 0;
      uint8_t keep_signatures = 0;
      uint8_t sketch_enabled = 0;
      if (!reader.ReadU32(&options.banding.bands) ||
          !reader.ReadU32(&options.banding.rows) ||
          !reader.ReadU8(&algorithm) || !reader.ReadU8(&minhash_mode) ||
          !reader.ReadU64(&options.seed) || !reader.ReadU8(&keep_signatures) ||
          !reader.ReadU8(&sketch_enabled) ||
          !reader.ReadF64(&options.sketch.max_hamming_fraction)) {
        return Truncated(id);
      }
      if (algorithm >
              static_cast<uint8_t>(SignatureAlgorithm::kOnePermutation) ||
          minhash_mode > static_cast<uint8_t>(MinHashMode::kDoubleHashing) ||
          keep_signatures > 1 || sketch_enabled > 1) {
        return Status::InvalidArgument(
            "family section has malformed MinHash option tags");
      }
      options.algorithm = static_cast<SignatureAlgorithm>(algorithm);
      options.minhash_mode = static_cast<MinHashMode>(minhash_mode);
      options.keep_signatures = keep_signatures == 1;
      options.sketch.enabled = sketch_enabled == 1;
      return Status::OK();
    }
    case ModelFamilyKind::kSimHash: {
      SimHashIndexOptions& options = model->simhash;
      uint8_t sketch_enabled = 0;
      if (!reader.ReadU32(&options.banding.bands) ||
          !reader.ReadU32(&options.banding.rows) ||
          !reader.ReadU64(&options.seed) || !reader.ReadU8(&sketch_enabled) ||
          !reader.ReadF64(&options.sketch.max_hamming_fraction) ||
          !reader.ReadU32(&model->simhash_dimensions)) {
        return Truncated(id);
      }
      if (sketch_enabled > 1) {
        return Status::InvalidArgument(
            "family section has malformed SimHash option tags");
      }
      options.sketch.enabled = sketch_enabled == 1;
      return Status::OK();
    }
    case ModelFamilyKind::kMixedConcat: {
      MixedIndexOptions& options = model->mixed;
      uint8_t sketch_enabled = 0;
      uint32_t mean_size = 0;
      if (!reader.ReadU32(&options.categorical_banding.bands) ||
          !reader.ReadU32(&options.categorical_banding.rows) ||
          !reader.ReadU32(&options.numeric_banding.bands) ||
          !reader.ReadU32(&options.numeric_banding.rows) ||
          !reader.ReadU64(&options.seed) || !reader.ReadU8(&sketch_enabled) ||
          !reader.ReadF64(&options.sketch.max_hamming_fraction) ||
          !reader.ReadU32(&mean_size) ||
          !reader.ReadArray(mean_size, &model->mixed_mean)) {
        return Truncated(id);
      }
      if (sketch_enabled > 1) {
        return Status::InvalidArgument(
            "family section has malformed mixed option tags");
      }
      options.sketch.enabled = sketch_enabled == 1;
      return Status::OK();
    }
    case ModelFamilyKind::kNone:
      break;
  }
  return Status::InvalidArgument(
      "family section present on a model without a family");
}

Status DecodeIndex(ByteReader& reader, DecodedModel* model) {
  constexpr uint32_t id = static_cast<uint32_t>(SectionId::kIndex);
  BandedIndex::Raw& raw = model->index_raw;
  uint32_t num_bands = 0;
  if (!reader.ReadU32(&raw.num_items) || !reader.ReadU32(&num_bands)) {
    return Truncated(id);
  }
  if (num_bands > 65536) {
    return Status::InvalidArgument("implausible index band count " +
                                   std::to_string(num_bands));
  }
  raw.bands.resize(num_bands);
  for (BandedIndex::RawBand& band : raw.bands) {
    uint32_t buckets = 0;
    if (!reader.ReadU32(&band.offset) || !reader.ReadU32(&band.rows) ||
        !reader.ReadU32(&buckets) ||
        !reader.ReadArray(buckets, &band.bucket_keys) ||
        !reader.ReadArray(static_cast<size_t>(buckets) + 1,
                          &band.bucket_offsets) ||
        !reader.ReadArray(raw.num_items, &band.bucket_items) ||
        !reader.ReadArray(raw.num_items, &band.item_bucket)) {
      return Truncated(id);
    }
  }
  model->has_index = true;
  return Status::OK();
}

Status DecodeSketches(ByteReader& reader, DecodedModel* model) {
  constexpr uint32_t id = static_cast<uint32_t>(SectionId::kSketches);
  uint32_t num_items = 0;
  if (!reader.ReadU32(&model->sketch_width) || !reader.ReadU32(&num_items) ||
      !reader.ReadU64(&model->sketch_max_hamming)) {
    return Truncated(id);
  }
  if (model->sketch_width < 1) {
    return Status::InvalidArgument("sketch width must be >= 1");
  }
  const size_t words = (static_cast<size_t>(model->sketch_width) + 63) / 64;
  if (!reader.ReadArray(static_cast<size_t>(num_items) * words,
                        &model->sketch_bits)) {
    return Truncated(id);
  }
  if (num_items != model->index_raw.num_items) {
    return Status::InvalidArgument(
        "sketches cover " + std::to_string(num_items) +
        " items but the index holds " +
        std::to_string(model->index_raw.num_items));
  }
  model->has_sketches = true;
  return Status::OK();
}

Status DecodeAssignment(ByteReader& reader, DecodedModel* model) {
  constexpr uint32_t id = static_cast<uint32_t>(SectionId::kAssignment);
  uint32_t n = 0;
  if (!reader.ReadU32(&n) || !reader.ReadArray(n, &model->fit_assignment)) {
    return Truncated(id);
  }
  return Status::OK();
}

/// Expected band layout (rows per band, in signature order) of the
/// decoded family's options — what the persisted index must match.
std::vector<uint32_t> ExpectedBandLayout(const DecodedModel& model) {
  std::vector<uint32_t> layout;
  switch (model.family) {
    case ModelFamilyKind::kMinHash:
      layout.assign(model.minhash.banding.bands, model.minhash.banding.rows);
      break;
    case ModelFamilyKind::kSimHash:
      layout.assign(model.simhash.banding.bands, model.simhash.banding.rows);
      break;
    case ModelFamilyKind::kMixedConcat:
      layout.reserve(model.mixed.categorical_banding.bands +
                     model.mixed.numeric_banding.bands);
      layout.insert(layout.end(), model.mixed.categorical_banding.bands,
                    model.mixed.categorical_banding.rows);
      layout.insert(layout.end(), model.mixed.numeric_banding.bands,
                    model.mixed.numeric_banding.rows);
      break;
    case ModelFamilyKind::kNone:
      break;
  }
  return layout;
}

/// Cross-section consistency checks, after all sections decoded. The
/// per-section decoders validated local shape; this ties the sections to
/// one another (and to the family options) so every downstream consumer
/// can rely on the invariants without re-checking.
Status ValidateDecodedModel(const DecodedModel& model) {
  if (model.num_clusters < 1) {
    return Status::InvalidArgument("model has no clusters");
  }
  if (model.shape_primary < 1) {
    return Status::InvalidArgument("model has an empty primary shape");
  }
  switch (model.modality) {
    case ModelModality::kCategorical:
      if (!model.has_modes || model.has_centroids ||
          model.shape_secondary != 0) {
        return Status::InvalidArgument(
            "categorical model must carry exactly a mode table");
      }
      if (model.family != ModelFamilyKind::kNone &&
          model.family != ModelFamilyKind::kMinHash) {
        return Status::InvalidArgument(
            "categorical model carries a non-MinHash family");
      }
      break;
    case ModelModality::kNumeric:
      if (model.has_modes || !model.has_centroids ||
          model.shape_secondary != 0) {
        return Status::InvalidArgument(
            "numeric model must carry exactly a centroid table");
      }
      if (model.family != ModelFamilyKind::kNone &&
          model.family != ModelFamilyKind::kSimHash) {
        return Status::InvalidArgument(
            "numeric model carries a non-SimHash family");
      }
      break;
    case ModelModality::kMixed:
      if (!model.has_modes || !model.has_centroids ||
          model.shape_secondary < 1) {
        return Status::InvalidArgument(
            "mixed model must carry a mode table and a centroid table");
      }
      if (model.family != ModelFamilyKind::kNone &&
          model.family != ModelFamilyKind::kMixedConcat) {
        return Status::InvalidArgument(
            "mixed model carries a non-mixed family");
      }
      if (!std::isfinite(model.gamma) || model.gamma < 0.0) {
        return Status::InvalidArgument(
            "gamma must be a finite non-negative number");
      }
      break;
  }
  if (model.mode_codes.size() !=
      (model.has_modes ? static_cast<size_t>(model.num_clusters) *
                             model.shape_primary
                       : 0) ||
      model.centroid_values.size() !=
          (model.has_centroids ? static_cast<size_t>(model.num_clusters) *
                                     CentroidDims(model)
                               : 0)) {
    return Status::InvalidArgument("centroid array shape mismatch");
  }
  if (model.family == ModelFamilyKind::kNone) {
    return Status::OK();
  }

  // Routed models: options must be valid and every section must agree.
  switch (model.family) {
    case ModelFamilyKind::kMinHash:
      LSHC_RETURN_NOT_OK(MinHashShortlistFamily::ValidateOptions(model.minhash));
      break;
    case ModelFamilyKind::kSimHash:
      LSHC_RETURN_NOT_OK(SimHashShortlistFamily::ValidateOptions(model.simhash));
      if (model.simhash_dimensions != model.shape_primary) {
        return Status::InvalidArgument(
            "SimHash hasher dimensionality " +
            std::to_string(model.simhash_dimensions) +
            " disagrees with the model's " +
            std::to_string(model.shape_primary) + " dimensions");
      }
      break;
    case ModelFamilyKind::kMixedConcat:
      LSHC_RETURN_NOT_OK(MixedShortlistFamily::ValidateOptions(model.mixed));
      if (model.mixed_mean.size() != model.shape_secondary) {
        return Status::InvalidArgument(
            "mixed centering mean has " +
            std::to_string(model.mixed_mean.size()) +
            " coordinates; the model has " +
            std::to_string(model.shape_secondary) + " numeric dimensions");
      }
      break;
    case ModelFamilyKind::kNone:
      break;
  }
  if (!model.has_index) {
    return Status::InvalidArgument("routed model is missing its index");
  }
  const std::vector<uint32_t> layout = ExpectedBandLayout(model);
  if (model.index_raw.bands.size() != layout.size()) {
    return Status::InvalidArgument(
        "index has " + std::to_string(model.index_raw.bands.size()) +
        " bands; the family's banding options call for " +
        std::to_string(layout.size()));
  }
  for (size_t b = 0; b < layout.size(); ++b) {
    if (model.index_raw.bands[b].rows != layout[b]) {
      return Status::InvalidArgument(
          "index band " + std::to_string(b) + " covers " +
          std::to_string(model.index_raw.bands[b].rows) +
          " rows; the family's banding options call for " +
          std::to_string(layout[b]));
    }
  }
  if (model.fit_assignment.size() != model.index_raw.num_items) {
    return Status::InvalidArgument(
        "fit assignment covers " + std::to_string(model.fit_assignment.size()) +
        " items but the index holds " +
        std::to_string(model.index_raw.num_items));
  }
  for (const uint32_t cluster : model.fit_assignment) {
    if (cluster >= model.num_clusters) {
      return Status::InvalidArgument(
          "fit assignment references cluster " + std::to_string(cluster) +
          " of a " + std::to_string(model.num_clusters) + "-cluster model");
    }
  }
  if (model.has_sketches) {
    uint32_t signature_width = 0;
    for (const uint32_t rows : layout) signature_width += rows;
    if (model.sketch_width != signature_width) {
      return Status::InvalidArgument(
          "sketches are " + std::to_string(model.sketch_width) +
          " bits wide; the family signs " + std::to_string(signature_width) +
          " components");
    }
  }
  return Status::OK();
}

}  // namespace

Result<DecodedModel> DecodeModelBytes(std::span<const uint8_t> data) {
  ModelFileInfo info;
  LSHC_RETURN_NOT_OK(ParseHeader(data, &info));

  // Locate the known sections; skip unknown ids (forward compat), reject
  // duplicates, and fail on any known section whose checksum is off.
  constexpr uint32_t kMaxKnownId =
      static_cast<uint32_t>(SectionId::kAssignment);
  std::array<const SectionInfo*, kMaxKnownId + 1> known{};
  for (const SectionInfo& section : info.sections) {
    if (section.id < 1 || section.id > kMaxKnownId) continue;
    if (known[section.id] != nullptr) {
      return Status::InvalidArgument(
          "duplicate section '" + std::string(SectionName(section.id)) + "'");
    }
    if (!section.crc_ok) {
      return Status::IOError("section '" +
                             std::string(SectionName(section.id)) +
                             "' checksum mismatch: the file is corrupt");
    }
    known[section.id] = &section;
  }

  const auto payload = [&](SectionId id) {
    const SectionInfo* section = known[static_cast<uint32_t>(id)];
    return data.subspan(section->offset, section->size);
  };
  const auto present = [&](SectionId id) {
    return known[static_cast<uint32_t>(id)] != nullptr;
  };

  DecodedModel model;
  if (!present(SectionId::kModelInfo)) {
    return Status::InvalidArgument("model file has no model_info section");
  }
  {
    ByteReader reader(payload(SectionId::kModelInfo));
    LSHC_RETURN_NOT_OK(DecodeModelInfo(reader, &model));
  }
  if (!present(SectionId::kCentroids)) {
    return Status::InvalidArgument("model file has no centroids section");
  }
  const bool routed = model.family != ModelFamilyKind::kNone;
  if (routed) {
    for (const SectionId id :
         {SectionId::kFamily, SectionId::kIndex, SectionId::kAssignment}) {
      if (!present(id)) {
        return Status::InvalidArgument(
            "routed model file has no " +
            std::string(SectionName(static_cast<uint32_t>(id))) + " section");
      }
    }
  } else {
    for (const SectionId id : {SectionId::kFamily, SectionId::kIndex,
                               SectionId::kSketches, SectionId::kAssignment}) {
      if (present(id)) {
        return Status::InvalidArgument(
            "exhaustive model file carries a " +
            std::string(SectionName(static_cast<uint32_t>(id))) + " section");
      }
    }
  }
  {
    ByteReader reader(payload(SectionId::kCentroids));
    LSHC_RETURN_NOT_OK(DecodeCentroids(reader, &model));
  }
  if (routed) {
    {
      ByteReader reader(payload(SectionId::kFamily));
      LSHC_RETURN_NOT_OK(DecodeFamily(reader, &model));
    }
    {
      ByteReader reader(payload(SectionId::kIndex));
      LSHC_RETURN_NOT_OK(DecodeIndex(reader, &model));
    }
    if (present(SectionId::kSketches)) {
      ByteReader reader(payload(SectionId::kSketches));
      LSHC_RETURN_NOT_OK(DecodeSketches(reader, &model));
    }
    {
      ByteReader reader(payload(SectionId::kAssignment));
      LSHC_RETURN_NOT_OK(DecodeAssignment(reader, &model));
    }
  }
  LSHC_RETURN_NOT_OK(ValidateDecodedModel(model));
  return model;
}

Result<DecodedModel> DecodeModelFile(const std::string& path) {
  LSHC_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadWholeFile(path));
  Result<DecodedModel> model = DecodeModelBytes(data);
  if (!model.ok()) {
    return model.status().WithContext("model file '" + path + "'");
  }
  return model;
}

Result<ModelFileInfo> InspectModelFile(const std::string& path) {
  LSHC_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadWholeFile(path));
  ModelFileInfo info;
  const Status status = ParseHeader(data, &info);
  if (!status.ok()) {
    return status.WithContext("model file '" + path + "'");
  }
  return info;
}

Result<ModeTable> BuildModeTable(const DecodedModel& model) {
  if (!model.has_modes) {
    return Status::InvalidArgument("model carries no mode table");
  }
  ModeTable modes(model.num_clusters, model.shape_primary);
  for (uint32_t c = 0; c < model.num_clusters; ++c) {
    for (uint32_t a = 0; a < model.shape_primary; ++a) {
      modes.SetModeCode(
          c, a,
          model.mode_codes[static_cast<size_t>(c) * model.shape_primary + a]);
    }
  }
  return modes;
}

Result<CentroidTable> BuildCentroidTable(const DecodedModel& model) {
  if (!model.has_centroids) {
    return Status::InvalidArgument("model carries no centroid table");
  }
  const uint32_t dims = CentroidDims(model);
  CentroidTable centroids(model.num_clusters, dims);
  for (uint32_t c = 0; c < model.num_clusters; ++c) {
    centroids.SetCentroid(
        c, {model.centroid_values.data() + static_cast<size_t>(c) * dims,
            dims});
  }
  return centroids;
}

namespace {

/// Shared tail of the Build*Routing functions: adopt the index and the
/// sketches from the decoded arrays. `family` already has its hashers
/// rebuilt. No signature is recomputed anywhere on this path.
template <typename Family>
Result<LoadedRouting<Family>> FinishRouting(Family family,
                                            DecodedModel&& model) {
  LSHC_ASSIGN_OR_RETURN(BandedIndex index,
                        BandedIndex::FromRaw(std::move(model.index_raw)));
  BitSketchTable sketches;
  if (model.has_sketches) {
    LSHC_ASSIGN_OR_RETURN(
        sketches,
        BitSketchTable::FromRaw(model.sketch_width, index.num_items(),
                                std::move(model.sketch_bits)));
  }
  return LoadedRouting<Family>{
      std::move(family), std::make_unique<BandedIndex>(std::move(index)),
      std::move(sketches), model.sketch_max_hamming,
      std::move(model.fit_assignment)};
}

}  // namespace

Result<LoadedRouting<MinHashShortlistFamily>> BuildMinHashRouting(
    DecodedModel&& model) {
  if (model.family != ModelFamilyKind::kMinHash) {
    return Status::InvalidArgument("model does not carry a MinHash family");
  }
  // The MinHash hashers are built in the constructor, purely from the
  // options (seed included) — nothing else to restore.
  return FinishRouting(MinHashShortlistFamily(model.minhash),
                       std::move(model));
}

Result<LoadedRouting<SimHashShortlistFamily>> BuildSimHashRouting(
    DecodedModel&& model) {
  if (model.family != ModelFamilyKind::kSimHash) {
    return Status::InvalidArgument("model does not carry a SimHash family");
  }
  SimHashShortlistFamily family(model.simhash);
  family.RestoreHasher(model.simhash_dimensions);
  return FinishRouting(std::move(family), std::move(model));
}

Result<LoadedRouting<MixedShortlistFamily>> BuildMixedRouting(
    DecodedModel&& model) {
  if (model.family != ModelFamilyKind::kMixedConcat) {
    return Status::InvalidArgument("model does not carry a mixed family");
  }
  MixedShortlistFamily family(model.mixed);
  family.RestoreHashers(std::move(model.mixed_mean));
  return FinishRouting(std::move(family), std::move(model));
}

}  // namespace lshclust::persist

namespace lshclust::serving {

namespace {

using persist::DecodedModel;
using persist::ModelFamilyKind;
using persist::ModelModality;

using ModelPtr = std::shared_ptr<const FrozenModel>;

Result<ModelPtr> LoadCategorical(DecodedModel&& model) {
  EngineOptions options;
  options.num_clusters = model.num_clusters;
  LSHC_ASSIGN_OR_RETURN(ModeTable modes, persist::BuildModeTable(model));
  const uint32_t primary = model.shape_primary;
  const uint32_t secondary = model.shape_secondary;
  if (model.family == ModelFamilyKind::kNone) {
    return ModelPtr(std::make_shared<internal::FrozenModelImpl<
                        CategoricalClusteringTraits>>(
        options, std::move(modes), std::nullopt, nullptr, BitSketchTable(),
        0, std::vector<uint32_t>(), primary, secondary));
  }
  LSHC_ASSIGN_OR_RETURN(auto routing,
                        persist::BuildMinHashRouting(std::move(model)));
  return ModelPtr(
      std::make_shared<internal::FrozenModelImpl<CategoricalClusteringTraits,
                                                 MinHashShortlistFamily>>(
          options, std::move(modes), std::move(routing.family),
          std::move(routing.index), std::move(routing.sketches),
          routing.sketch_max_hamming, std::move(routing.fit_assignment),
          primary, secondary));
}

Result<ModelPtr> LoadNumeric(DecodedModel&& model) {
  KMeansOptions options;
  options.num_clusters = model.num_clusters;
  LSHC_ASSIGN_OR_RETURN(CentroidTable centroids,
                        persist::BuildCentroidTable(model));
  const uint32_t primary = model.shape_primary;
  const uint32_t secondary = model.shape_secondary;
  if (model.family == ModelFamilyKind::kNone) {
    return ModelPtr(
        std::make_shared<internal::FrozenModelImpl<NumericClusteringTraits>>(
            options, std::move(centroids), std::nullopt, nullptr,
            BitSketchTable(), 0, std::vector<uint32_t>(), primary,
            secondary));
  }
  LSHC_ASSIGN_OR_RETURN(auto routing,
                        persist::BuildSimHashRouting(std::move(model)));
  return ModelPtr(
      std::make_shared<internal::FrozenModelImpl<NumericClusteringTraits,
                                                 SimHashShortlistFamily>>(
          options, std::move(centroids), std::move(routing.family),
          std::move(routing.index), std::move(routing.sketches),
          routing.sketch_max_hamming, std::move(routing.fit_assignment),
          primary, secondary));
}

Result<ModelPtr> LoadMixed(DecodedModel&& model) {
  KPrototypesOptions options;
  options.num_clusters = model.num_clusters;
  options.gamma = model.gamma;
  LSHC_ASSIGN_OR_RETURN(ModeTable modes, persist::BuildModeTable(model));
  LSHC_ASSIGN_OR_RETURN(CentroidTable centroids,
                        persist::BuildCentroidTable(model));
  MixedClusteringTraits::Centroids prototypes{std::move(modes),
                                              std::move(centroids)};
  const uint32_t primary = model.shape_primary;
  const uint32_t secondary = model.shape_secondary;
  if (model.family == ModelFamilyKind::kNone) {
    return ModelPtr(
        std::make_shared<internal::FrozenModelImpl<MixedClusteringTraits>>(
            options, std::move(prototypes), std::nullopt, nullptr,
            BitSketchTable(), 0, std::vector<uint32_t>(), primary,
            secondary));
  }
  LSHC_ASSIGN_OR_RETURN(auto routing,
                        persist::BuildMixedRouting(std::move(model)));
  return ModelPtr(
      std::make_shared<internal::FrozenModelImpl<MixedClusteringTraits,
                                                 MixedShortlistFamily>>(
          options, std::move(prototypes), std::move(routing.family),
          std::move(routing.index), std::move(routing.sketches),
          routing.sketch_max_hamming, std::move(routing.fit_assignment),
          primary, secondary));
}

}  // namespace

Status SaveFrozenModel(const FrozenModel& model, const std::string& path) {
  LSHC_ASSIGN_OR_RETURN(DecodedModel decoded, persist::ExtractModel(model));
  const std::string bytes = persist::EncodeModel(decoded);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IOError("failed writing model file '" + path + "'");
  }
  return Status::OK();
}

Result<std::shared_ptr<const FrozenModel>> LoadFrozenModel(
    const std::string& path) {
  LSHC_ASSIGN_OR_RETURN(DecodedModel model, persist::DecodeModelFile(path));
  switch (model.modality) {
    case ModelModality::kCategorical:
      return LoadCategorical(std::move(model));
    case ModelModality::kNumeric:
      return LoadNumeric(std::move(model));
    case ModelModality::kMixed:
      return LoadMixed(std::move(model));
  }
  return Status::InvalidArgument("unknown model modality");
}

Result<uint64_t> ModelServer::PublishFromFile(const std::string& path) {
  LSHC_ASSIGN_OR_RETURN(std::shared_ptr<const FrozenModel> model,
                        LoadFrozenModel(path));
  return Publish(std::move(model));
}

}  // namespace lshclust::serving
