#pragma once

/// \file model_io.h
/// \brief The model persistence subsystem: versioned, checksummed on-disk
/// snapshots of `serving::FrozenModel`.
///
/// File layout (every scalar little-endian, see util/binary_io.h):
///
///   magic "LSHM" | u32 format_version | u32 section_count |
///   TOC: section_count x { u32 section_id, u64 offset, u64 size,
///                          u32 crc32 } |
///   section payloads, concatenated in TOC order
///
/// Sections carry exactly the FrozenModel members: ModelInfo (modality,
/// family kind, k, shapes, gamma), Centroids (mode and/or centroid
/// matrices), Family (the LSH family's options + seeds — hashers rebuild
/// from these on load; the mixed family additionally persists its
/// data-dependent centering mean), Index (the raw CSR band/bucket arrays,
/// dumped verbatim and adopted verbatim — signatures are never re-hashed
/// on load), Sketches (the packed prefilter bit matrix + threshold) and
/// Assignment (the fit-time item->cluster array, the routed path's
/// cluster-reference store). Exhaustive models carry only ModelInfo +
/// Centroids.
///
/// Version / compatibility policy: readers accept exactly
/// `kModelFormatVersion` and reject other versions with a typed Status.
/// Within a version, the section framing is the forward-compat seam:
/// readers skip section ids they do not know and ignore trailing bytes of
/// known sections, so future writers may append new sections or extend
/// existing ones without breaking this reader.
///
/// Every load validates hard — truncation anywhere, bad magic, wrong
/// version, a TOC entry pointing outside the file, a section CRC-32
/// mismatch, and internally inconsistent CSR state all come back as typed
/// `Status` errors; corrupt input can never construct a model.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "clustering/centroid_table.h"
#include "clustering/modes.h"
#include "core/cluster_shortlist_index.h"
#include "core/mixed_shortlist_index.h"
#include "core/simhash_shortlist_index.h"
#include "lsh/banded_index.h"
#include "lsh/bit_sketch.h"
#include "serving/frozen_model.h"
#include "util/result.h"

namespace lshclust::persist {

/// First 4 bytes of every model file.
inline constexpr char kModelMagic[4] = {'L', 'S', 'H', 'M'};

/// The one format version this build writes and reads.
inline constexpr uint32_t kModelFormatVersion = 1;

/// Section ids of format version 1. Unknown ids are skipped on load.
enum class SectionId : uint32_t {
  kModelInfo = 1,
  kCentroids = 2,
  kFamily = 3,
  kIndex = 4,
  kSketches = 5,
  kAssignment = 6,
};

/// Human-readable section name ("model_info", ...; "unknown" for ids this
/// build does not define). For diagnostics and model_inspect.
const char* SectionName(uint32_t id);

/// Modality of a persisted model, as stored in the ModelInfo section.
enum class ModelModality : uint8_t {
  kCategorical = 0,
  kNumeric = 1,
  kMixed = 2,
};

/// LSH family kind of a persisted model. kNone = exhaustive snapshot.
enum class ModelFamilyKind : uint8_t {
  kNone = 0,
  kMinHash = 1,
  kSimHash = 2,
  kMixedConcat = 3,
};

/// \brief A fully decoded + cross-validated model file: plain arrays and
/// option structs, ready for either reconstruction path (LoadFrozenModel
/// or Clusterer::FromSnapshot). Only the fields matching `modality` /
/// `family` are meaningful.
struct DecodedModel {
  ModelModality modality = ModelModality::kCategorical;
  ModelFamilyKind family = ModelFamilyKind::kNone;
  uint32_t num_clusters = 0;
  uint32_t shape_primary = 0;    ///< attributes / dims / categorical attrs
  uint32_t shape_secondary = 0;  ///< numeric dims of a mixed model, else 0
  double gamma = 1.0;            ///< K-Prototypes weight (mixed only)

  // Centroids section.
  bool has_modes = false;
  bool has_centroids = false;
  std::vector<uint32_t> mode_codes;     ///< k x shape_primary
  std::vector<double> centroid_values;  ///< k x numeric dimensionality

  // Family section (one of, per `family`).
  ShortlistIndexOptions minhash;
  SimHashIndexOptions simhash;
  MixedIndexOptions mixed;
  uint32_t simhash_dimensions = 0;  ///< fitted dims of the SimHash hasher
  std::vector<double> mixed_mean;   ///< mixed family's centering mean

  // Index / Sketches / Assignment sections (routed models only).
  bool has_index = false;
  BandedIndex::Raw index_raw;
  bool has_sketches = false;
  uint32_t sketch_width = 0;
  std::vector<uint64_t> sketch_bits;
  uint64_t sketch_max_hamming = 0;
  std::vector<uint32_t> fit_assignment;
};

/// Reads, checksum-verifies and cross-validates a model file.
Result<DecodedModel> DecodeModelFile(const std::string& path);

/// The in-memory core of DecodeModelFile: decodes a model image already in
/// memory. Exposed for embedders that transport model images off the
/// filesystem (and for the fuzz harness, which drives the decoder with
/// adversarial bytes — see tests/fuzz/model_io_fuzz.cpp).
Result<DecodedModel> DecodeModelBytes(std::span<const uint8_t> data);

/// \brief One TOC entry as found on disk, plus whether its payload's
/// CRC-32 matched. For model_inspect and corruption diagnostics.
struct SectionInfo {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc32 = 0;
  bool crc_ok = false;
};

/// \brief Header-level view of a model file (no section decoding).
struct ModelFileInfo {
  uint32_t format_version = 0;
  uint64_t file_size = 0;
  std::vector<SectionInfo> sections;
};

/// Parses the header + TOC and checks every section's checksum, without
/// decoding payloads. Fails on truncation / bad magic / wrong version /
/// out-of-file TOC entries; a payload CRC mismatch is reported per section
/// via `crc_ok` rather than failing, so model_inspect can localize
/// corruption.
Result<ModelFileInfo> InspectModelFile(const std::string& path);

/// Rebuilds the mode table of a decoded categorical or mixed model.
Result<ModeTable> BuildModeTable(const DecodedModel& model);

/// Rebuilds the centroid table of a decoded numeric or mixed model.
Result<CentroidTable> BuildCentroidTable(const DecodedModel& model);

/// \brief The routed half of a loaded model: a family with rebuilt
/// hashers, the adopted (not re-hashed) index, sketches, and the fit
/// assignment — everything a ShortlistProvider or FrozenModelImpl needs
/// beyond the centroids.
template <typename Family>
struct LoadedRouting {
  Family family;
  std::unique_ptr<BandedIndex> index;
  BitSketchTable sketches;
  uint64_t sketch_max_hamming = 0;
  std::vector<uint32_t> fit_assignment;
};

/// Reconstruct the routed state of a decoded model of the matching family
/// kind. Consumes `model`'s arrays. The family's hashers are rebuilt
/// deterministically from (options, seed) — plus the persisted centering
/// mean for the mixed family — and the index is adopted from the raw CSR
/// dump via BandedIndex::FromRaw, so no signature is ever recomputed.
Result<LoadedRouting<MinHashShortlistFamily>> BuildMinHashRouting(
    DecodedModel&& model);
Result<LoadedRouting<SimHashShortlistFamily>> BuildSimHashRouting(
    DecodedModel&& model);
Result<LoadedRouting<MixedShortlistFamily>> BuildMixedRouting(
    DecodedModel&& model);

}  // namespace lshclust::persist

namespace lshclust::serving {

/// Writes `model` to `path` in the versioned section format above. The
/// encoding is deterministic: saving, loading and saving again produces a
/// byte-identical file.
[[nodiscard]] Status SaveFrozenModel(const FrozenModel& model, const std::string& path);

/// Loads a model file into a routing-ready FrozenModel. The loaded
/// snapshot routes queries bit-identically to the snapshot that was saved
/// (and therefore to `PredictRouted` on the fit it came from), across
/// SIMD tiers and thread counts, without re-signing the fitted dataset.
Result<std::shared_ptr<const FrozenModel>> LoadFrozenModel(
    const std::string& path);

}  // namespace lshclust::serving
