#pragma once

/// \file simhash_shortlist_index.h
/// \brief The SimHash signature family that applies the paper's framework
/// to numeric data (its §VI future work): sign-random-projection
/// signatures, banded into buckets, queried as cluster shortlists.
/// Plugged into the generic ShortlistProvider
/// (core/shortlist_provider.h); `SimHashShortlistProvider` below is the
/// resulting provider type, the one LSH-K-Means runs on.
///
/// Collision probability per bit is 1 - theta/pi, so the banding S-curve
/// selects by angular similarity instead of Jaccard.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/shortlist_provider.h"
#include "data/categorical_dataset.h"
#include "hashing/simhash.h"
#include "lsh/banded_index.h"
#include "lsh/probability.h"
#include "util/result.h"

namespace lshclust {

/// \brief Index configuration of the SimHash family.
struct SimHashIndexOptions {
  /// Banding shape over SimHash bits.
  BandingParams banding = {16, 4};
  /// Hyperplane seed.
  uint64_t seed = 99;
  /// Bit-sketch prescreen of shortlist candidates (lsh/bit_sketch.h). For
  /// SimHash the sketch bits are the signature bits themselves, so the
  /// Hamming screen estimates the angle directly.
  SketchPrefilterOptions sketch;
};

/// \brief SimHash/angular signature family over numeric vectors.
class SimHashShortlistFamily {
 public:
  using Dataset = NumericDataset;
  using Options = SimHashIndexOptions;

  /// Validates the index configuration as a returned Status — the front
  /// door and the legacy entry points check this before constructing the
  /// family; the constructor keeps a debug backstop.
  [[nodiscard]] static Status ValidateOptions(const Options& options) {
    LSHC_RETURN_NOT_OK(ValidateBanding(options.banding, "SimHash banding"));
    return ValidateSketchPrefilter(options.sketch, "SimHash sketch");
  }

  explicit SimHashShortlistFamily(const Options& options)
      : options_(options) {
    LSHC_DCHECK(ValidateOptions(options).ok())
        << "invalid SimHash index options; call ValidateOptions first";
  }

  /// Deep copy: clones the fitted hasher (hyperplanes included) so the
  /// copy signs queries bit-identically and independently of the source's
  /// lifetime — this is what FrozenModel snapshots rely on.
  SimHashShortlistFamily(const SimHashShortlistFamily& other)
      : options_(other.options_),
        hasher_(other.hasher_ != nullptr
                    ? std::make_unique<SimHasher>(*other.hasher_)
                    : nullptr) {}
  SimHashShortlistFamily& operator=(const SimHashShortlistFamily& other) {
    if (this != &other) {
      SimHashShortlistFamily copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  SimHashShortlistFamily(SimHashShortlistFamily&&) noexcept = default;
  SimHashShortlistFamily& operator=(SimHashShortlistFamily&&) noexcept =
      default;

  /// One SimHash bit vector per item. The hasher is created here because
  /// its hyperplanes need the dataset dimensionality. Chunked across
  /// `pool` when given; projections are pure per item, so the parallel
  /// pass is bit-identical to the sequential one. When `cancel` is
  /// non-null it is polled at batch boundaries (thread-safe hook
  /// required); a true answer aborts with StatusCode::kCancelled.
  [[nodiscard]] Status ComputeSignatures(const Dataset& dataset,
                           std::vector<uint64_t>* signatures,
                           ThreadPool* pool = nullptr,
                           const std::function<bool()>* cancel = nullptr) {
    const uint32_t n = dataset.num_items();
    const uint32_t width = options_.banding.num_hashes();
    hasher_ = std::make_unique<SimHasher>(width, dataset.dimensions(),
                                          options_.seed);
    signatures->resize(static_cast<size_t>(n) * width);
    std::atomic<bool> cancelled{false};
    const auto sign_range = [&](uint32_t begin, uint32_t end, uint32_t) {
      if (cancel != nullptr) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        if ((*cancel)()) {
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
      }
      for (uint32_t item = begin; item < end; ++item) {
        hasher_->ComputeSignature(dataset.Row(item),
                                  signatures->data() +
                                      static_cast<size_t>(item) * width);
      }
    };
    if (pool == nullptr) {
      for (uint32_t begin = 0; begin < n; begin += kSignatureChunkSize) {
        sign_range(begin, std::min(n, begin + kSignatureChunkSize), 0);
        if (cancelled.load(std::memory_order_relaxed)) break;
      }
    } else {
      pool->ParallelFor(0, n, kSignatureChunkSize, sign_range);
    }
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled(
          "signature computation stopped by the cancellation hook at a "
          "batch boundary");
    }
    return Status::OK();
  }

  /// Uniform layout: banding.bands bands of banding.rows rows.
  std::vector<uint32_t> BandLayout() const {
    return std::vector<uint32_t>(options_.banding.bands,
                                 options_.banding.rows);
  }

  uint32_t signature_width() const { return options_.banding.num_hashes(); }
  bool keep_signatures() const { return false; }

  /// Signature of an external vector (length = dataset dimensionality).
  void ComputeQuerySignature(std::span<const double> vec,
                             uint64_t* out) const {
    LSHC_CHECK(hasher_ != nullptr) << "ComputeSignatures must run first";
    hasher_->ComputeSignature(vec, out);
  }

  /// Rebuilds the fitted hasher for a known dataset dimensionality without
  /// a signing pass — the persistence warm-start seam. The hyperplanes are
  /// a pure function of (width, dimensions, seed), so the rebuilt hasher
  /// signs queries bit-identically to the one the saved fit used.
  void RestoreHasher(uint32_t dimensions) {
    hasher_ = std::make_unique<SimHasher>(options_.banding.num_hashes(),
                                          dimensions, options_.seed);
  }

  /// Dimensionality the fitted hasher projects from; 0 before signing.
  uint32_t fitted_dimensions() const {
    return hasher_ == nullptr ? 0 : hasher_->dimensions();
  }

  uint64_t MemoryUsageBytes() const {
    return hasher_ == nullptr
               ? 0
               : static_cast<uint64_t>(hasher_->num_hashes()) *
                     hasher_->dimensions() * sizeof(double);
  }

  const Options& options() const { return options_; }

  /// Sketch prefilter configuration, read by ShortlistProvider::Prepare.
  const SketchPrefilterOptions& sketch_options() const {
    return options_.sketch;
  }

 private:
  Options options_;
  std::unique_ptr<SimHasher> hasher_;
};

/// \brief Engine provider producing SimHash cluster shortlists for numeric
/// items (the numeric twin of ClusterShortlistProvider).
using SimHashShortlistProvider = ShortlistProvider<SimHashShortlistFamily>;

}  // namespace lshclust
