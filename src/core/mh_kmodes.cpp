#include "core/mh_kmodes.h"

#include <utility>

#include "api/clusterer.h"
#include "util/macros.h"

namespace lshclust {

Result<MHKModesRun> RunMHKModes(const CategoricalDataset& dataset,
                                const MHKModesOptions& options) {
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = options.engine;
  spec.minhash = options.index;
  LSHC_ASSIGN_OR_RETURN(Clusterer clusterer, Clusterer::Create(spec));
  LSHC_ASSIGN_OR_RETURN(FitReport report, clusterer.Fit(dataset));
  // The legacy signature has no channel for a partial report, so a
  // cancelled run (options.engine.cancel fired) surfaces as the
  // kCancelled error rather than an ok() result callers would mistake
  // for a completed clustering.
  LSHC_RETURN_NOT_OK(report.status);
  MHKModesRun run;
  run.result = std::move(report.result);
  run.index_stats = report.index_stats;
  run.index_memory_bytes = report.index_memory_bytes;
  run.signature_seconds = report.signature_seconds;
  run.index_seconds = report.index_seconds;
  return run;
}

}  // namespace lshclust
