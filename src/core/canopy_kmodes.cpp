#include "core/canopy_kmodes.h"

#include <utility>

#include "api/clusterer.h"
#include "util/macros.h"

namespace lshclust {

Result<ClusteringResult> RunCanopyKModes(const CategoricalDataset& dataset,
                                         const CanopyKModesOptions& options) {
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kCanopy;
  spec.engine = options.engine;
  spec.canopy = options.canopy;
  LSHC_ASSIGN_OR_RETURN(Clusterer clusterer, Clusterer::Create(spec));
  LSHC_ASSIGN_OR_RETURN(FitReport report, clusterer.Fit(dataset));
  // No channel for a partial report here: a cancelled run surfaces as
  // the kCancelled error, never as an ok() result.
  LSHC_RETURN_NOT_OK(report.status);
  return std::move(report.result);
}

}  // namespace lshclust
