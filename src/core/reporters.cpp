#include "core/reporters.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "util/logging.h"

namespace lshclust {

namespace {

double FieldValue(const IterationStats& stats, IterationField field) {
  switch (field) {
    case IterationField::kSeconds:
      return stats.seconds;
    case IterationField::kShortlist:
      return stats.mean_shortlist;
    case IterationField::kMoves:
      return static_cast<double>(stats.moves);
    case IterationField::kCost:
      return stats.cost;
  }
  return 0;
}

const char* FieldName(IterationField field) {
  switch (field) {
    case IterationField::kSeconds:
      return "time (s)";
    case IterationField::kShortlist:
      return "avg. clusters returned";
    case IterationField::kMoves:
      return "moves";
    case IterationField::kCost:
      return "cost P(W,Q)";
  }
  return "?";
}

void PrintRule(std::ostream& out, size_t width) {
  for (size_t i = 0; i < width; ++i) out << '-';
  out << '\n';
}

}  // namespace

void PrintIterationSeries(std::ostream& out, const std::string& title,
                          const std::vector<MethodRun>& runs,
                          IterationField field) {
  out << "\n== " << title << " — " << FieldName(field) << " ==\n";
  size_t max_iterations = 0;
  std::vector<size_t> widths;
  for (const auto& run : runs) {
    max_iterations = std::max(max_iterations, run.result.iterations.size());
    widths.push_back(std::max<size_t>(run.spec.label.size(), 12));
  }

  out << std::setw(5) << "iter";
  for (size_t i = 0; i < runs.size(); ++i) {
    out << "  " << std::setw(static_cast<int>(widths[i]))
        << runs[i].spec.label;
  }
  out << '\n';
  PrintRule(out, 5 + runs.size() * 14 + 8);

  for (size_t iteration = 0; iteration < max_iterations; ++iteration) {
    out << std::setw(5) << (iteration + 1);
    for (size_t i = 0; i < runs.size(); ++i) {
      out << "  " << std::setw(static_cast<int>(widths[i]));
      if (iteration < runs[i].result.iterations.size()) {
        const double value =
            FieldValue(runs[i].result.iterations[iteration], field);
        out << std::fixed << std::setprecision(4) << value;
      } else {
        out << "-";  // converged earlier
      }
    }
    out << '\n';
  }
  out.unsetf(std::ios::fixed);
}

void PrintSummaryTable(std::ostream& out, const std::string& title,
                       const std::vector<MethodRun>& runs) {
  out << "\n== " << title << " — summary ==\n";

  // Baseline for speedup: the first non-LSH method, else the first method.
  size_t baseline = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].spec.use_lsh) {
      baseline = i;
      break;
    }
  }
  const double baseline_total = runs[baseline].result.total_seconds;

  out << std::left << std::setw(22) << "method" << std::right  //
      << std::setw(8) << "iters" << std::setw(6) << "conv"     //
      << std::setw(11) << "init(s)" << std::setw(11) << "assign0(s)"
      << std::setw(11) << "index(s)" << std::setw(11) << "refine(s)"
      << std::setw(11) << "total(s)" << std::setw(9) << "speedup"
      << std::setw(9) << "purity" << '\n';
  PrintRule(out, 109);
  for (const auto& run : runs) {
    const auto& r = run.result;
    out << std::left << std::setw(22) << run.spec.label << std::right
        << std::setw(8) << r.iterations.size()                        //
        << std::setw(6) << (r.converged ? "yes" : "no")               //
        << std::setw(11) << std::fixed << std::setprecision(3)
        << r.init_seconds                                             //
        << std::setw(11) << r.initial_assign_seconds                  //
        << std::setw(11) << r.index_build_seconds                     //
        << std::setw(11) << r.RefinementSeconds()                     //
        << std::setw(11) << r.total_seconds;
    out << std::setw(8) << std::setprecision(2)
        << (r.total_seconds > 0 ? baseline_total / r.total_seconds : 0.0)
        << "x";
    if (run.purity >= 0) {
      out << std::setw(9) << std::setprecision(4) << run.purity;
    } else {
      out << std::setw(9) << "-";
    }
    out << '\n';
  }
  out.unsetf(std::ios::fixed);

  for (const auto& run : runs) {
    if (run.has_index) {
      out << "  [" << run.spec.label << "] index: "
          << run.index_stats.total_buckets << " buckets, largest "
          << run.index_stats.largest_bucket << ", mean size " << std::fixed
          << std::setprecision(2) << run.index_stats.mean_bucket_size
          << ", ~" << (run.index_memory_bytes >> 20) << " MiB\n";
      out.unsetf(std::ios::fixed);
    }
  }
}

void PrintCollisionTable(std::ostream& out, const std::string& title,
                         uint32_t minhash_rows,
                         const std::vector<CollisionTableRow>& rows,
                         const std::vector<MonteCarloEstimate>& monte_carlo) {
  const bool with_mc = !monte_carlo.empty();
  if (with_mc) {
    LSHC_CHECK_EQ(monte_carlo.size(), rows.size())
        << "Monte-Carlo estimates must parallel the analytic rows";
  }
  out << "\n== " << title << " (r = " << minhash_rows << ") ==\n";
  out << std::right << std::setw(7) << "bands" << std::setw(12) << "jaccard"
      << std::setw(13) << "P(pair)" << std::setw(15) << "P(MH-K-Modes)";
  if (with_mc) {
    out << std::setw(13) << "MC P(pair)" << std::setw(15) << "MC P(clust)";
  }
  out << '\n';
  PrintRule(out, with_mc ? 75 : 47);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << std::setw(7) << row.bands                                     //
        << std::setw(12) << std::setprecision(6) << row.jaccard          //
        << std::setw(13) << std::fixed << std::setprecision(4)
        << row.pair_probability                                          //
        << std::setw(15) << row.mh_probability;
    if (with_mc) {
      out << std::setw(13) << monte_carlo[i].pair_probability  //
          << std::setw(15) << monte_carlo[i].cluster_probability;
    }
    out << '\n';
    out.unsetf(std::ios::fixed);
  }
}

void PrintExperimentHeader(std::ostream& out, const std::string& name,
                           uint32_t items, uint32_t attributes,
                           uint32_t clusters) {
  out << "\n#### " << name << ": " << items << " items, " << attributes
      << " attributes, " << clusters << " clusters ####\n";
}

}  // namespace lshclust
