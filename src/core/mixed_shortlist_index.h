#pragma once

/// \file mixed_shortlist_index.h
/// \brief The concatenated MinHash + SimHash signature family for mixed
/// categorical + numeric items — one LSH family per modality, one banding
/// index. Plugged into the generic ShortlistProvider
/// (core/shortlist_provider.h); `MixedShortlistProvider` below is the
/// resulting provider type, the one LSH-K-Prototypes runs on.
///
/// The categorical half of an item is MinHashed (Jaccard over present
/// tokens, as in MH-K-Modes); the numeric half is SimHashed (angular
/// similarity). The two signatures are concatenated and indexed by one
/// BandedIndex with a heterogeneous band layout — the categorical bands
/// first, then the numeric bands. Banding semantics make this exactly the
/// union of the per-modality candidate sets: an item similar to a cluster
/// in *either* modality reaches the exact mixed distance computation,
/// which then weighs the modalities by gamma.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/shortlist_provider.h"
#include "data/mixed_dataset.h"
#include "hashing/minhash.h"
#include "hashing/simhash.h"
#include "lsh/banded_index.h"
#include "util/result.h"

namespace lshclust {

/// \brief Index configuration of the mixed family.
struct MixedIndexOptions {
  /// Banding over the MinHash signature of the categorical tokens.
  BandingParams categorical_banding = {20, 5};
  /// Banding over the SimHash bits of the numeric vector. SimHash bits
  /// are weak (collision probability 0.5 for orthogonal vectors), so
  /// numeric bands need far more rows than MinHash bands: 16 bits per
  /// band keeps merely-angularly-close clusters out of the shortlist
  /// while near-identical vectors still collide with high probability.
  BandingParams numeric_banding = {10, 16};
  /// Hash family seed.
  uint64_t seed = 99;
  /// Bit-sketch prescreen of shortlist candidates (lsh/bit_sketch.h),
  /// packed over the concatenated signature — MinHash low bits for the
  /// categorical components, the SimHash bits themselves for the numeric
  /// ones — so the Hamming screen blends both modalities.
  SketchPrefilterOptions sketch;
};

/// \brief Concatenated MinHash + SimHash signature family over mixed
/// items.
class MixedShortlistFamily {
 public:
  using Dataset = MixedDataset;
  using Options = MixedIndexOptions;

  /// Validates the index configuration as a returned Status — the front
  /// door and the legacy entry points check this before constructing the
  /// family; the constructor keeps a debug backstop.
  [[nodiscard]] static Status ValidateOptions(const Options& options) {
    LSHC_RETURN_NOT_OK(ValidateBanding(options.categorical_banding,
                                       "mixed categorical banding"));
    LSHC_RETURN_NOT_OK(
        ValidateBanding(options.numeric_banding, "mixed numeric banding"));
    return ValidateSketchPrefilter(options.sketch, "mixed sketch");
  }

  explicit MixedShortlistFamily(const Options& options) : options_(options) {
    LSHC_DCHECK(ValidateOptions(options).ok())
        << "invalid mixed index options; call ValidateOptions first";
  }

  /// Deep copy: clones both fitted hashers and the centering mean so the
  /// copy signs queries bit-identically and independently of the source's
  /// lifetime — this is what FrozenModel snapshots rely on.
  MixedShortlistFamily(const MixedShortlistFamily& other)
      : options_(other.options_),
        categorical_hasher_(
            other.categorical_hasher_ != nullptr
                ? std::make_unique<MinHasher>(*other.categorical_hasher_)
                : nullptr),
        numeric_hasher_(other.numeric_hasher_ != nullptr
                            ? std::make_unique<SimHasher>(
                                  *other.numeric_hasher_)
                            : nullptr),
        mean_(other.mean_) {}
  MixedShortlistFamily& operator=(const MixedShortlistFamily& other) {
    if (this != &other) {
      MixedShortlistFamily copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  MixedShortlistFamily(MixedShortlistFamily&&) noexcept = default;
  MixedShortlistFamily& operator=(MixedShortlistFamily&&) noexcept = default;

  /// One concatenated signature per item: the MinHash components over the
  /// present categorical tokens, then the SimHash bits of the
  /// *mean-centered* numeric vector. SimHash discriminates by angle from
  /// the origin; centering spreads clusters across directions so
  /// nearby-but-distinct clusters stop sharing sign patterns. Distances
  /// are computed on the raw data — centering only affects candidate
  /// generation. The hashers and the centering mean are retained so
  /// external items can later be signed into the same bucket space
  /// (ComputeQuerySignature). When `cancel` is non-null it is polled at
  /// batch boundaries of both passes (thread-safe hook required); a true
  /// answer aborts with StatusCode::kCancelled.
  [[nodiscard]] Status ComputeSignatures(const Dataset& dataset,
                           std::vector<uint64_t>* signatures,
                           ThreadPool* pool = nullptr,
                           const std::function<bool()>* cancel = nullptr) {
    const uint32_t n = dataset.num_items();
    const uint32_t categorical_width =
        options_.categorical_banding.num_hashes();
    const uint32_t numeric_width = options_.numeric_banding.num_hashes();
    const uint32_t width = categorical_width + numeric_width;
    signatures->resize(static_cast<size_t>(n) * width);
    const uint32_t workers = pool == nullptr ? 1 : pool->num_threads();
    std::atomic<bool> cancelled{false};
    const auto poll_cancel = [&] {
      if (cancel == nullptr) return false;
      if (cancelled.load(std::memory_order_relaxed)) return true;
      if ((*cancel)()) {
        cancelled.store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    };
    const auto run_batched = [&](const auto& sign_range) {
      if (pool == nullptr) {
        for (uint32_t begin = 0; begin < n; begin += kSignatureChunkSize) {
          sign_range(begin, std::min(n, begin + kSignatureChunkSize), 0u);
          if (cancelled.load(std::memory_order_relaxed)) break;
        }
      } else {
        pool->ParallelFor(0, n, kSignatureChunkSize, sign_range);
      }
    };

    // Both halves are pure per item once their hashers exist (the mean is
    // fixed before the numeric pass), so the chunked parallel passes are
    // bit-identical to the sequential loops.

    // Categorical part: MinHash over present tokens.
    {
      categorical_hasher_ =
          std::make_unique<MinHasher>(categorical_width, options_.seed);
      std::vector<std::vector<uint32_t>> worker_tokens(workers);
      run_batched([&](uint32_t begin, uint32_t end, uint32_t worker) {
        if (poll_cancel()) return;
        std::vector<uint32_t>& tokens = worker_tokens[worker];
        for (uint32_t item = begin; item < end; ++item) {
          dataset.categorical().PresentTokens(item, &tokens);
          categorical_hasher_->ComputeSignature(
              tokens,
              signatures->data() + static_cast<size_t>(item) * width);
        }
      });
    }

    // Numeric part: SimHash bits over centered vectors. The mean stays a
    // single sequential scan: it is cheap, and its floating-point
    // summation order is part of the signatures.
    if (!cancelled.load(std::memory_order_relaxed)) {
      const uint32_t d = dataset.num_numeric();
      mean_.assign(d, 0.0);
      for (uint32_t item = 0; item < n; ++item) {
        const auto row = dataset.numeric().Row(item);
        for (uint32_t j = 0; j < d; ++j) mean_[j] += row[j];
      }
      for (auto& coordinate : mean_) coordinate /= n;

      numeric_hasher_ = std::make_unique<SimHasher>(
          numeric_width, d, options_.seed ^ 0x51A5ULL);
      std::vector<std::vector<double>> worker_centered(
          workers, std::vector<double>(d));
      run_batched([&](uint32_t begin, uint32_t end, uint32_t worker) {
        if (poll_cancel()) return;
        std::vector<double>& centered = worker_centered[worker];
        for (uint32_t item = begin; item < end; ++item) {
          const auto row = dataset.numeric().Row(item);
          for (uint32_t j = 0; j < d; ++j) centered[j] = row[j] - mean_[j];
          numeric_hasher_->ComputeSignature(
              centered, signatures->data() +
                            static_cast<size_t>(item) * width +
                            categorical_width);
        }
      });
    }
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled(
          "signature computation stopped by the cancellation hook at a "
          "batch boundary");
    }
    return Status::OK();
  }

  /// Signature of an external mixed item: MinHash over its present
  /// categorical tokens (codes in the fitted dataset's code space)
  /// followed by the SimHash bits of its numeric vector centered on the
  /// *fitted* dataset's mean — the exact signing rule of
  /// ComputeSignatures, so an external duplicate of a fitted item lands
  /// in the same buckets. `centered_scratch` is caller-owned so repeated
  /// queries (the routed-predict hot path) never allocate. Requires a
  /// completed ComputeSignatures (the hashers and the mean live there).
  void ComputeQuerySignature(std::span<const uint32_t> tokens,
                             std::span<const double> numeric,
                             std::vector<double>* centered_scratch,
                             uint64_t* out) const {
    LSHC_CHECK(categorical_hasher_ != nullptr && numeric_hasher_ != nullptr)
        << "ComputeSignatures must run first";
    categorical_hasher_->ComputeSignature(tokens, out);
    const uint32_t d = static_cast<uint32_t>(mean_.size());
    centered_scratch->resize(d);
    for (uint32_t j = 0; j < d; ++j) {
      (*centered_scratch)[j] = numeric[j] - mean_[j];
    }
    numeric_hasher_->ComputeSignature(
        *centered_scratch, out + options_.categorical_banding.num_hashes());
  }

  /// The fitted centering mean (empty before the first signing pass).
  const std::vector<double>& mean() const { return mean_; }

  /// Rebuilds both hashers from (options, seed) and restores the
  /// data-dependent centering mean without a signing pass — the
  /// persistence warm-start seam. The hashers are pure functions of their
  /// seeds, and `mean` carries the one data-dependent input, so the
  /// restored family signs queries bit-identically to the saved fit.
  /// `mean.size()` fixes the numeric dimensionality.
  void RestoreHashers(std::vector<double> mean) {
    categorical_hasher_ = std::make_unique<MinHasher>(
        options_.categorical_banding.num_hashes(), options_.seed);
    numeric_hasher_ = std::make_unique<SimHasher>(
        options_.numeric_banding.num_hashes(),
        static_cast<uint32_t>(mean.size()), options_.seed ^ 0x51A5ULL);
    mean_ = std::move(mean);
  }

  /// Heterogeneous layout: the categorical bands, then the numeric bands.
  std::vector<uint32_t> BandLayout() const {
    std::vector<uint32_t> layout;
    layout.reserve(options_.categorical_banding.bands +
                   options_.numeric_banding.bands);
    layout.insert(layout.end(), options_.categorical_banding.bands,
                  options_.categorical_banding.rows);
    layout.insert(layout.end(), options_.numeric_banding.bands,
                  options_.numeric_banding.rows);
    return layout;
  }

  uint32_t signature_width() const {
    return options_.categorical_banding.num_hashes() +
           options_.numeric_banding.num_hashes();
  }
  bool keep_signatures() const { return false; }

  /// Approximate footprint of the retained hashers + centering mean.
  uint64_t MemoryUsageBytes() const {
    uint64_t bytes = mean_.size() * sizeof(double);
    if (categorical_hasher_ != nullptr) {
      bytes += static_cast<uint64_t>(
                   options_.categorical_banding.num_hashes()) *
               sizeof(uint64_t);
    }
    if (numeric_hasher_ != nullptr) {
      bytes += static_cast<uint64_t>(numeric_hasher_->num_hashes()) *
               numeric_hasher_->dimensions() * sizeof(double);
    }
    return bytes;
  }

  const Options& options() const { return options_; }

  /// Sketch prefilter configuration, read by ShortlistProvider::Prepare.
  const SketchPrefilterOptions& sketch_options() const {
    return options_.sketch;
  }

 private:
  Options options_;
  // Retained by ComputeSignatures so external queries sign identically
  // (ComputeQuerySignature); null / empty before the first signing pass.
  std::unique_ptr<MinHasher> categorical_hasher_;
  std::unique_ptr<SimHasher> numeric_hasher_;
  std::vector<double> mean_;
};

/// \brief Dual-modality engine provider for RunKPrototypesEngine.
using MixedShortlistProvider = ShortlistProvider<MixedShortlistFamily>;

}  // namespace lshclust
