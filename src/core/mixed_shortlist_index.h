#pragma once

/// \file mixed_shortlist_index.h
/// \brief The concatenated MinHash + SimHash signature family for mixed
/// categorical + numeric items — one LSH family per modality, one banding
/// index. Plugged into the generic ShortlistProvider
/// (core/shortlist_provider.h); `MixedShortlistProvider` below is the
/// resulting provider type, the one LSH-K-Prototypes runs on.
///
/// The categorical half of an item is MinHashed (Jaccard over present
/// tokens, as in MH-K-Modes); the numeric half is SimHashed (angular
/// similarity). The two signatures are concatenated and indexed by one
/// BandedIndex with a heterogeneous band layout — the categorical bands
/// first, then the numeric bands. Banding semantics make this exactly the
/// union of the per-modality candidate sets: an item similar to a cluster
/// in *either* modality reaches the exact mixed distance computation,
/// which then weighs the modalities by gamma.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/shortlist_provider.h"
#include "data/mixed_dataset.h"
#include "hashing/minhash.h"
#include "hashing/simhash.h"
#include "lsh/banded_index.h"
#include "util/result.h"

namespace lshclust {

/// \brief Index configuration of the mixed family.
struct MixedIndexOptions {
  /// Banding over the MinHash signature of the categorical tokens.
  BandingParams categorical_banding = {20, 5};
  /// Banding over the SimHash bits of the numeric vector. SimHash bits
  /// are weak (collision probability 0.5 for orthogonal vectors), so
  /// numeric bands need far more rows than MinHash bands: 16 bits per
  /// band keeps merely-angularly-close clusters out of the shortlist
  /// while near-identical vectors still collide with high probability.
  BandingParams numeric_banding = {10, 16};
  /// Hash family seed.
  uint64_t seed = 99;
};

/// \brief Concatenated MinHash + SimHash signature family over mixed
/// items.
class MixedShortlistFamily {
 public:
  using Dataset = MixedDataset;
  using Options = MixedIndexOptions;

  /// Validates the index configuration as a returned Status — the front
  /// door and the legacy entry points check this before constructing the
  /// family; the constructor keeps a debug backstop.
  static Status ValidateOptions(const Options& options) {
    LSHC_RETURN_NOT_OK(ValidateBanding(options.categorical_banding,
                                       "mixed categorical banding"));
    return ValidateBanding(options.numeric_banding, "mixed numeric banding");
  }

  explicit MixedShortlistFamily(const Options& options) : options_(options) {
    LSHC_DCHECK(ValidateOptions(options).ok())
        << "invalid mixed index options; call ValidateOptions first";
  }

  /// One concatenated signature per item: the MinHash components over the
  /// present categorical tokens, then the SimHash bits of the
  /// *mean-centered* numeric vector. SimHash discriminates by angle from
  /// the origin; centering spreads clusters across directions so
  /// nearby-but-distinct clusters stop sharing sign patterns. Distances
  /// are computed on the raw data — centering only affects candidate
  /// generation.
  Status ComputeSignatures(const Dataset& dataset,
                           std::vector<uint64_t>* signatures,
                           ThreadPool* pool = nullptr) {
    const uint32_t n = dataset.num_items();
    const uint32_t categorical_width =
        options_.categorical_banding.num_hashes();
    const uint32_t numeric_width = options_.numeric_banding.num_hashes();
    const uint32_t width = categorical_width + numeric_width;
    signatures->resize(static_cast<size_t>(n) * width);
    const uint32_t workers = pool == nullptr ? 1 : pool->num_threads();

    // Both halves are pure per item once their hashers exist (the mean is
    // fixed before the numeric pass), so the chunked parallel passes are
    // bit-identical to the sequential loops.

    // Categorical part: MinHash over present tokens.
    {
      const MinHasher hasher(categorical_width, options_.seed);
      std::vector<std::vector<uint32_t>> worker_tokens(workers);
      const auto sign_range = [&](uint32_t begin, uint32_t end,
                                  uint32_t worker) {
        std::vector<uint32_t>& tokens = worker_tokens[worker];
        for (uint32_t item = begin; item < end; ++item) {
          dataset.categorical().PresentTokens(item, &tokens);
          hasher.ComputeSignature(
              tokens,
              signatures->data() + static_cast<size_t>(item) * width);
        }
      };
      if (pool == nullptr) {
        sign_range(0, n, 0);
      } else {
        pool->ParallelFor(0, n, kSignatureChunkSize, sign_range);
      }
    }

    // Numeric part: SimHash bits over centered vectors. The mean stays a
    // single sequential scan: it is cheap, and its floating-point
    // summation order is part of the signatures.
    {
      const uint32_t d = dataset.num_numeric();
      std::vector<double> mean(d, 0.0);
      for (uint32_t item = 0; item < n; ++item) {
        const auto row = dataset.numeric().Row(item);
        for (uint32_t j = 0; j < d; ++j) mean[j] += row[j];
      }
      for (auto& coordinate : mean) coordinate /= n;

      const SimHasher hasher(numeric_width, d, options_.seed ^ 0x51A5ULL);
      std::vector<std::vector<double>> worker_centered(
          workers, std::vector<double>(d));
      const auto sign_range = [&](uint32_t begin, uint32_t end,
                                  uint32_t worker) {
        std::vector<double>& centered = worker_centered[worker];
        for (uint32_t item = begin; item < end; ++item) {
          const auto row = dataset.numeric().Row(item);
          for (uint32_t j = 0; j < d; ++j) centered[j] = row[j] - mean[j];
          hasher.ComputeSignature(centered,
                                  signatures->data() +
                                      static_cast<size_t>(item) * width +
                                      categorical_width);
        }
      };
      if (pool == nullptr) {
        sign_range(0, n, 0);
      } else {
        pool->ParallelFor(0, n, kSignatureChunkSize, sign_range);
      }
    }
    return Status::OK();
  }

  /// Heterogeneous layout: the categorical bands, then the numeric bands.
  std::vector<uint32_t> BandLayout() const {
    std::vector<uint32_t> layout;
    layout.reserve(options_.categorical_banding.bands +
                   options_.numeric_banding.bands);
    layout.insert(layout.end(), options_.categorical_banding.bands,
                  options_.categorical_banding.rows);
    layout.insert(layout.end(), options_.numeric_banding.bands,
                  options_.numeric_banding.rows);
    return layout;
  }

  uint32_t signature_width() const {
    return options_.categorical_banding.num_hashes() +
           options_.numeric_banding.num_hashes();
  }
  bool keep_signatures() const { return false; }

  uint64_t MemoryUsageBytes() const { return 0; }

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// \brief Dual-modality engine provider for RunKPrototypesEngine.
using MixedShortlistProvider = ShortlistProvider<MixedShortlistFamily>;

}  // namespace lshclust
