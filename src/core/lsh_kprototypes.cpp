#include "core/lsh_kprototypes.h"

#include <utility>

#include "api/clusterer.h"
#include "util/macros.h"

namespace lshclust {

Result<ClusteringResult> RunLshKPrototypes(
    const MixedDataset& dataset, const LshKPrototypesOptions& options) {
  ClustererSpec spec;
  spec.modality = Modality::kMixed;
  spec.accelerator = Accelerator::kMixedConcat;
  spec.engine = options.kprototypes;
  spec.gamma = options.kprototypes.gamma;
  spec.mixed_index =
      MixedIndexOptions{options.categorical_banding, options.numeric_banding,
                        options.seed, SketchPrefilterOptions{}};
  LSHC_ASSIGN_OR_RETURN(Clusterer clusterer, Clusterer::Create(spec));
  LSHC_ASSIGN_OR_RETURN(FitReport report, clusterer.Fit(dataset));
  // No channel for a partial report here: a cancelled run surfaces as
  // the kCancelled error, never as an ok() result.
  LSHC_RETURN_NOT_OK(report.status);
  return std::move(report.result);
}

}  // namespace lshclust
