#include "core/streaming.h"

#include <algorithm>

#include "clustering/dissimilarity.h"
#include "clustering/engine.h"
#include "shard/shard_executor.h"
#include "shard/shard_plan.h"
#include "util/macros.h"

namespace lshclust {

namespace {
/// skip_item value meaning "skip nothing" (no real item has this id).
constexpr uint32_t kSkipNone = ~0u;
}  // namespace

Status ValidateStreamingMHKModesOptions(
    const StreamingMHKModesOptions& options) {
  LSHC_RETURN_NOT_OK(ValidateEngineOptions(options.bootstrap.engine));
  LSHC_RETURN_NOT_OK(
      MinHashShortlistFamily::ValidateOptions(options.bootstrap.index));
  if (options.ingest_shards == 0) {
    return Status::InvalidArgument("ingest_shards must be >= 1");
  }
  if (options.ingest_chunk_size == 0) {
    return Status::InvalidArgument("ingest_chunk_size must be >= 1");
  }
  return Status::OK();
}

Result<StreamingMHKModes> StreamingMHKModes::Bootstrap(
    const CategoricalDataset& warmup,
    const StreamingMHKModesOptions& options) {
  const uint32_t k = options.bootstrap.engine.num_clusters;
  const uint32_t m = warmup.num_attributes();
  LSHC_RETURN_NOT_OK(ValidateStreamingMHKModesOptions(options));

  StreamingMHKModes stream;
  stream.options_ = options;
  stream.num_clusters_ = k;
  stream.num_attributes_ = m;

  // 1. Batch warm-up clustering, forcing the provider to keep its
  //    signature matrix, and 2. bulk-load it into the growable index —
  //    the warm-up items are signed exactly once, by the batch provider
  //    (in parallel when engine.num_threads says so), and the streaming
  //    index inherits those very signatures, so its buckets cannot
  //    diverge from the batch index's.
  {
    ShortlistIndexOptions index_options = options.bootstrap.index;
    index_options.keep_signatures = true;
    ClusterShortlistProvider provider(index_options, k);
    LSHC_ASSIGN_OR_RETURN(
        stream.bootstrap_result_,
        RunEngine(warmup, options.bootstrap.engine, provider));
    if (stream.bootstrap_result_.cancelled) {
      // A cancelled warm-up run is not a clustering to stream on top of
      // (it may not even have built the index); surface it instead of
      // bootstrapping a session from partial state.
      return Status::Cancelled(
          "streaming bootstrap cancelled by the engine's cancellation "
          "hook before the warm-up clustering completed");
    }
    stream.assignment_ = stream.bootstrap_result_.assignment;
    stream.index_ = std::make_unique<DynamicBandedIndex>(
        options.bootstrap.index.banding, warmup.num_items());
    stream.index_->InsertBatch(provider.signatures(), warmup.num_items());
    // Bit-sketch prefilter: pack the warm-up sketches from the same
    // signature matrix the index just bulk-loaded (streamed items are
    // appended at insert time, keeping the table aligned with the index).
    if (options.bootstrap.index.sketch.enabled) {
      const uint32_t width = options.bootstrap.index.banding.num_hashes();
      stream.sketch_on_ = true;
      stream.sketches_.Build(provider.signatures(), warmup.num_items(),
                             width);
      stream.sketch_max_hamming_ =
          SketchHammingThreshold(options.bootstrap.index.sketch, width);
      stream.query_sketch_.resize(stream.sketches_.words());
    }
  }

  // 3. Stream-time signature machinery: the same family type the provider
  //    used, constructed from the same options, hashes identically.
  stream.family_ =
      std::make_unique<MinHashShortlistFamily>(options.bootstrap.index);
  stream.signature_.resize(stream.family_->signature_width());

  // 4. Presence semantics for stream-time token filtering.
  if (warmup.has_absence_semantics()) {
    stream.absent_codes_.resize(warmup.num_codes());
    for (uint32_t code = 0; code < warmup.num_codes(); ++code) {
      stream.absent_codes_[code] = !warmup.IsPresent(code);
    }
  }

  // 5. Modes + incremental majority state.
  stream.modes_ = std::make_unique<ModeTable>(k, m);
  Rng rng(options.bootstrap.engine.seed);
  stream.modes_->RecomputeFromAssignment(
      warmup, stream.assignment_,
      options.bootstrap.engine.empty_cluster_policy, rng);

  stream.attribute_counts_.resize(m);
  stream.best_counts_.assign(static_cast<size_t>(k) * m, 0);
  const uint32_t* codes = warmup.codes().data();
  for (uint32_t attribute = 0; attribute < m; ++attribute) {
    FlatHashMap64& counts = stream.attribute_counts_[attribute];
    counts.Reserve(warmup.num_items());
    for (uint32_t item = 0; item < warmup.num_items(); ++item) {
      const uint32_t code = codes[static_cast<size_t>(item) * m + attribute];
      const uint64_t key =
          (static_cast<uint64_t>(stream.assignment_[item]) << 32) | code;
      ++*counts.FindOrInsert(key, 0);
    }
    // Seed the running maxima with the bootstrap modes' counts.
    for (uint32_t cluster = 0; cluster < k; ++cluster) {
      const uint32_t mode_code = stream.modes_->Mode(cluster)[attribute];
      const uint64_t key = (static_cast<uint64_t>(cluster) << 32) | mode_code;
      const uint32_t* count = counts.Find(key);
      stream.best_counts_[static_cast<size_t>(cluster) * m + attribute] =
          count == nullptr ? 0 : *count;
    }
  }

  stream.dedup_ = MakeClusterDedupScratch(k);
  stream.mode_dirty_ = MakeClusterDedupScratch(k);
  return stream;
}

void StreamingMHKModes::SignRow(std::span<const uint32_t> row,
                                std::vector<uint32_t>& tokens,
                                uint64_t* signature) const {
  // Presence filtering (Alg. 2 lines 2-4); codes beyond the warm-up
  // bitmap are new values, necessarily "present".
  tokens.clear();
  for (const uint32_t code : row) {
    if (code < absent_codes_.size() && absent_codes_[code]) continue;
    tokens.push_back(code);
  }
  family_->ComputeQuerySignature(tokens, signature);
}

void StreamingMHKModes::ShortlistSignature(
    std::span<const uint64_t> signature, uint32_t skip_item,
    const uint64_t* query_sketch, ClusterDedupScratch& dedup,
    std::vector<uint32_t>* shortlist) const {
  shortlist->clear();
  BumpDedupEpoch(dedup);
  dedup.last_pruned = 0;
  index_->VisitCandidatesOfSignature(signature, [&](uint32_t other) {
    // Skipping the item's own (already inserted, newest-first) entries
    // reproduces the pre-insert walk exactly.
    if (other == skip_item) return;
    const uint32_t cluster = assignment_[other];
    if (dedup.cluster_stamp[cluster] == dedup.epoch) return;
    if (query_sketch != nullptr &&
        sketches_.HammingTo(query_sketch, other) > sketch_max_hamming_) {
      // Screened out. The cluster stays prunable: a later, closer peer
      // proposing the same cluster resurrects it below.
      if (dedup.pruned_stamp[cluster] != dedup.epoch) {
        dedup.pruned_stamp[cluster] = dedup.epoch;
        ++dedup.last_pruned;
      }
      return;
    }
    dedup.cluster_stamp[cluster] = dedup.epoch;
    if (dedup.pruned_stamp[cluster] == dedup.epoch) --dedup.last_pruned;
    shortlist->push_back(cluster);
  });
}

uint32_t StreamingMHKModes::ScoreRow(
    std::span<const uint32_t> row,
    std::span<const uint32_t> shortlist) const {
  uint32_t best_cluster = 0;
  uint32_t best_distance = ~0u;
  if (shortlist.empty()) {
    // No similar predecessor anywhere: exhaustive scan (rare).
    for (uint32_t cluster = 0; cluster < num_clusters_; ++cluster) {
      const uint32_t distance = BoundedMismatchDistance(
          row.data(), modes_->ModeData(cluster), num_attributes_,
          best_distance);
      if (distance < best_distance) {
        best_distance = distance;
        best_cluster = cluster;
      }
    }
  } else {
    for (const uint32_t cluster : shortlist) {
      const uint32_t distance = BoundedMismatchDistance(
          row.data(), modes_->ModeData(cluster), num_attributes_,
          best_distance);
      if (distance < best_distance) {
        best_distance = distance;
        best_cluster = cluster;
      }
    }
  }
  return best_cluster;
}

void StreamingMHKModes::CommitAssignment(std::span<const uint32_t> row,
                                         uint32_t cluster,
                                         int64_t shortlist_size,
                                         uint64_t pruned) {
  assignment_.push_back(cluster);
  ++stats_.ingested;
  if (shortlist_size < 0) {
    ++stats_.exhaustive_fallbacks;
    stats_.exact_distances_evaluated += num_clusters_;
  } else {
    stats_.shortlist_total += static_cast<uint64_t>(shortlist_size);
    stats_.exact_distances_evaluated +=
        static_cast<uint64_t>(shortlist_size);
  }
  stats_.exact_distances_pruned += pruned;
  if (options_.update_modes) {
    UpdateModeWithItem(cluster, row);
  }
}

void StreamingMHKModes::UpdateModeWithItem(uint32_t cluster,
                                           std::span<const uint32_t> row) {
  const uint32_t m = num_attributes_;
  for (uint32_t attribute = 0; attribute < m; ++attribute) {
    const uint64_t key =
        (static_cast<uint64_t>(cluster) << 32) | row[attribute];
    const uint32_t count =
        ++*attribute_counts_[attribute].FindOrInsert(key, 0);
    uint32_t& best = best_counts_[static_cast<size_t>(cluster) * m +
                                  attribute];
    // Increment-only majority: the mode component changes exactly when a
    // count strictly overtakes the current maximum.
    if (count > best) {
      best = count;
      modes_->SetModeCode(cluster, attribute, row[attribute]);
      // Record the change for IngestBatch validation: provisional results
      // that scored this cluster against pre-change modes are stale.
      if (mode_dirty_.cluster_stamp[cluster] != mode_dirty_.epoch) {
        mode_dirty_.cluster_stamp[cluster] = mode_dirty_.epoch;
        ++dirty_clusters_;
      }
    }
  }
}

Result<uint32_t> StreamingMHKModes::Ingest(std::span<const uint32_t> row) {
  if (row.size() != num_attributes_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " codes, expected " +
        std::to_string(num_attributes_));
  }

  SignRow(row, tokens_, signature_.data());
  if (sketch_on_) {
    PackSketchBits(signature_.data(), sketches_.width(),
                   query_sketch_.data());
  }
  ShortlistSignature(signature_, kSkipNone,
                     sketch_on_ ? query_sketch_.data() : nullptr, dedup_,
                     &shortlist_);
  const uint32_t best = ScoreRow(row, shortlist_);
  index_->Insert(signature_);
  if (sketch_on_) sketches_.Append(signature_);
  CommitAssignment(row, best,
                   shortlist_.empty()
                       ? -1
                       : static_cast<int64_t>(shortlist_.size()),
                   dedup_.last_pruned);
  return best;
}

Result<std::span<const uint32_t>> StreamingMHKModes::IngestBatch(
    std::span<const uint32_t> rows) {
  const uint32_t m = num_attributes_;
  if (m == 0 || rows.size() % m != 0) {
    return Status::InvalidArgument(
        "rows has " + std::to_string(rows.size()) +
        " codes, expected a multiple of " + std::to_string(m));
  }
  const uint32_t count = static_cast<uint32_t>(rows.size() / m);
  const size_t first_new = assignment_.size();
  if (count == 0) {
    return std::span<const uint32_t>();
  }

  const uint32_t width = family_->signature_width();
  const uint32_t num_threads = ResolveThreadCount(options_.ingest_threads);
  if (num_threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads);
  }
  const uint32_t workers = pool_ == nullptr ? 1 : pool_->num_threads();

  // The two-level (shard -> chunk) decomposition of this micro-batch:
  // `ingest_shards` contiguous arrival-order slices, each cut into
  // `ingest_chunk_size`-item chunks. Every (shard, worker) pair owns one
  // scratch slot, so a shard's queries never touch pool-global state.
  // Clamped() caps the shard count at the batch's flat chunk count, so
  // slot state stays proportional to actual work units.
  const ShardPlan plan = ShardPlan::Clamped(count, options_.ingest_shards,
                                            options_.ingest_chunk_size);
  const uint32_t slots = plan.num_shards() * workers;

  batch_.signatures.resize(static_cast<size_t>(count) * width);
  batch_.cluster.resize(count);
  batch_.refs.resize(count);
  batch_.pruned.assign(count, 0);
  if (batch_.worker_shortlists.size() < slots) {
    batch_.worker_shortlists.resize(slots);
    batch_.worker_tokens.resize(slots);
    batch_.worker_current.resize(slots);
    batch_.worker_sketches.resize(slots);
    // Default-constructed scratches; the stamp arrays are materialised
    // lazily by the first chunk that runs on each slot.
    batch_.worker_dedup.resize(slots);
  }
  for (auto& buffer : batch_.worker_shortlists) buffer.clear();

  // --- Parallel phase: sign + provisionally shortlist and assign every
  // item against the index and modes frozen at batch start. The shard and
  // chunk boundaries are a pure function of the batch size and the
  // options, and each item touches only its own outputs, so the phase is
  // bit-identical for every (shard x worker) combination.
  const uint32_t frozen_items = index_->num_items();
  const auto chunk_fn = [&](uint32_t begin, uint32_t end, uint32_t slot) {
    std::vector<uint32_t>& tokens = batch_.worker_tokens[slot];
    ClusterDedupScratch& dedup = batch_.worker_dedup[slot];
    // Lazy stamp materialisation is race-free: a slot encodes its worker,
    // so it is only ever touched from that worker's thread (k >= 1, so
    // empty means never initialised).
    if (dedup.cluster_stamp.empty()) {
      dedup = MakeClusterDedupScratch(num_clusters_);
    }
    std::vector<uint32_t>& current = batch_.worker_current[slot];
    std::vector<uint32_t>& out = batch_.worker_shortlists[slot];
    std::vector<uint64_t>& sketch = batch_.worker_sketches[slot];
    if (sketch_on_ && sketch.size() < sketches_.words()) {
      sketch.resize(sketches_.words());
    }
    for (uint32_t i = begin; i < end; ++i) {
      const std::span<const uint32_t> row =
          rows.subspan(static_cast<size_t>(i) * m, m);
      uint64_t* signature =
          batch_.signatures.data() + static_cast<size_t>(i) * width;
      SignRow(row, tokens, signature);
      if (sketch_on_) {
        PackSketchBits(signature, sketches_.width(), sketch.data());
      }

      // The same walk the sequential path runs (shared code keeps the
      // provisional and apply phases bit-aligned by construction); the
      // result is stashed in the slot's buffer for the apply phase.
      ShortlistSignature(std::span<const uint64_t>(signature, width),
                         kSkipNone, sketch_on_ ? sketch.data() : nullptr,
                         dedup, &current);
      const uint32_t offset = static_cast<uint32_t>(out.size());
      out.insert(out.end(), current.begin(), current.end());
      batch_.refs[i] = {slot, offset,
                        static_cast<uint32_t>(current.size())};
      batch_.pruned[i] = dedup.last_pruned;
      batch_.cluster[i] = ScoreRow(row, current);
    }
  };
  ForEachShardChunk(plan, pool_.get(),
                    [&](const ShardPlan::Chunk& chunk, uint32_t,
                        uint32_t worker) {
                      chunk_fn(chunk.begin, chunk.end,
                               chunk.shard * workers + worker);
                    });

  // --- Sequential apply phase, in arrival order. Three cases, from cheap
  // to expensive, each reproducing exactly what a sequential Ingest of
  // this item would have computed:
  //
  //  * No in-batch predecessor in the item's buckets and no mode change
  //    (so far this batch) on any cluster the provisional decision
  //    compared: the frozen-state computation saw exactly the sequential
  //    state — accept it verbatim.
  //  * No in-batch predecessor but stale modes: the shortlist is still
  //    provably the sequential one (shortlists read the index, never the
  //    modes — and an empty one provably stays empty), so re-scoring the
  //    stored shortlist against the live modes is the sequential
  //    computation, with no index re-walk.
  //  * An in-batch predecessor shares a bucket: the sequential shortlist
  //    itself differs — re-walk the live index and re-score.
  BumpDedupEpoch(mode_dirty_);
  dirty_clusters_ = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const std::span<const uint32_t> row =
        rows.subspan(static_cast<size_t>(i) * m, m);
    const std::span<const uint64_t> signature(
        batch_.signatures.data() + static_cast<size_t>(i) * width, width);
    bool collided = false;
    const uint32_t id =
        index_->InsertDetectingRecent(signature, frozen_items, &collided);
    // Appended before any rewalk so in-batch predecessors are screenable
    // (the rewalk skips the item's own entries, not its sketch row).
    if (sketch_on_) sketches_.Append(signature);
    const BatchScratch::ShortlistRef ref = batch_.refs[i];
    if (collided) {
      ++stats_.revalidated;
      ++stats_.rewalked;
      if (sketch_on_) {
        PackSketchBits(signature.data(), sketches_.width(),
                       query_sketch_.data());
      }
      ShortlistSignature(signature, /*skip_item=*/id,
                         sketch_on_ ? query_sketch_.data() : nullptr,
                         dedup_, &shortlist_);
      const uint32_t best = ScoreRow(row, shortlist_);
      CommitAssignment(row, best,
                       shortlist_.empty()
                           ? -1
                           : static_cast<int64_t>(shortlist_.size()),
                       dedup_.last_pruned);
      continue;
    }
    const std::span<const uint32_t> provisional(
        batch_.worker_shortlists[ref.slot].data() + ref.offset,
        ref.length);
    bool scores_stale = false;
    if (ref.length == 0) {
      // Provisional exhaustive fallback compared every cluster.
      scores_stale = dirty_clusters_ != 0;
    } else {
      for (const uint32_t cluster : provisional) {
        if (mode_dirty_.cluster_stamp[cluster] == mode_dirty_.epoch) {
          scores_stale = true;
          break;
        }
      }
    }
    uint32_t best = batch_.cluster[i];
    if (scores_stale) {
      ++stats_.revalidated;
      best = ScoreRow(row, provisional);
    }
    CommitAssignment(row, best,
                     ref.length == 0 ? -1 : static_cast<int64_t>(ref.length),
                     batch_.pruned[i]);
  }

  return std::span<const uint32_t>(assignment_).subspan(first_new, count);
}

}  // namespace lshclust
