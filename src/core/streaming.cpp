#include "core/streaming.h"

#include "clustering/dissimilarity.h"
#include "clustering/engine.h"
#include "util/macros.h"

namespace lshclust {

Result<StreamingMHKModes> StreamingMHKModes::Bootstrap(
    const CategoricalDataset& warmup,
    const StreamingMHKModesOptions& options) {
  const uint32_t k = options.bootstrap.engine.num_clusters;
  const uint32_t m = warmup.num_attributes();
  if (k == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }

  StreamingMHKModes stream;
  stream.options_ = options;
  stream.num_clusters_ = k;
  stream.num_attributes_ = m;

  // 1. Batch warm-up clustering.
  {
    ClusterShortlistProvider provider(options.bootstrap.index, k);
    LSHC_ASSIGN_OR_RETURN(
        stream.bootstrap_result_,
        RunEngine(warmup, options.bootstrap.engine, provider));
  }
  stream.assignment_ = stream.bootstrap_result_.assignment;

  // 2. Signature machinery, configured identically to the batch index so
  //    stream-time signatures are comparable.
  const uint32_t width = options.bootstrap.index.banding.num_hashes();
  if (options.bootstrap.index.algorithm ==
      SignatureAlgorithm::kClassicMinHash) {
    stream.minhasher_ = std::make_unique<MinHasher>(
        width, options.bootstrap.index.seed,
        options.bootstrap.index.minhash_mode);
  } else {
    stream.oph_ = std::make_unique<OnePermutationMinHasher>(
        width, options.bootstrap.index.seed);
  }
  stream.signature_.resize(width);

  // 3. Load every warm-up item into the growable index.
  stream.index_ = std::make_unique<DynamicBandedIndex>(
      options.bootstrap.index.banding, warmup.num_items());
  for (uint32_t item = 0; item < warmup.num_items(); ++item) {
    warmup.PresentTokens(item, &stream.tokens_);
    if (stream.minhasher_ != nullptr) {
      stream.minhasher_->ComputeSignature(stream.tokens_,
                                          stream.signature_.data());
    } else {
      stream.oph_->ComputeSignature(stream.tokens_,
                                    stream.signature_.data());
    }
    stream.index_->Insert(stream.signature_);
  }

  // 4. Presence semantics for stream-time token filtering.
  if (warmup.has_absence_semantics()) {
    stream.absent_codes_.resize(warmup.num_codes());
    for (uint32_t code = 0; code < warmup.num_codes(); ++code) {
      stream.absent_codes_[code] = !warmup.IsPresent(code);
    }
  }

  // 5. Modes + incremental majority state.
  stream.modes_ = std::make_unique<ModeTable>(k, m);
  Rng rng(options.bootstrap.engine.seed);
  stream.modes_->RecomputeFromAssignment(
      warmup, stream.assignment_,
      options.bootstrap.engine.empty_cluster_policy, rng);

  stream.attribute_counts_.resize(m);
  stream.best_counts_.assign(static_cast<size_t>(k) * m, 0);
  const uint32_t* codes = warmup.codes().data();
  for (uint32_t attribute = 0; attribute < m; ++attribute) {
    FlatHashMap64& counts = stream.attribute_counts_[attribute];
    counts.Reserve(warmup.num_items());
    for (uint32_t item = 0; item < warmup.num_items(); ++item) {
      const uint32_t code = codes[static_cast<size_t>(item) * m + attribute];
      const uint64_t key =
          (static_cast<uint64_t>(stream.assignment_[item]) << 32) | code;
      ++*counts.FindOrInsert(key, 0);
    }
    // Seed the running maxima with the bootstrap modes' counts.
    for (uint32_t cluster = 0; cluster < k; ++cluster) {
      const uint32_t mode_code = stream.modes_->Mode(cluster)[attribute];
      const uint64_t key = (static_cast<uint64_t>(cluster) << 32) | mode_code;
      const uint32_t* count = counts.Find(key);
      stream.best_counts_[static_cast<size_t>(cluster) * m + attribute] =
          count == nullptr ? 0 : *count;
    }
  }

  stream.cluster_stamp_.assign(k, 0);
  return stream;
}

void StreamingMHKModes::UpdateModeWithItem(uint32_t cluster,
                                           std::span<const uint32_t> row) {
  const uint32_t m = num_attributes_;
  for (uint32_t attribute = 0; attribute < m; ++attribute) {
    const uint64_t key =
        (static_cast<uint64_t>(cluster) << 32) | row[attribute];
    const uint32_t count =
        ++*attribute_counts_[attribute].FindOrInsert(key, 0);
    uint32_t& best = best_counts_[static_cast<size_t>(cluster) * m +
                                  attribute];
    // Increment-only majority: the mode component changes exactly when a
    // count strictly overtakes the current maximum.
    if (count > best) {
      best = count;
      modes_->SetModeCode(cluster, attribute, row[attribute]);
    }
  }
}

Result<uint32_t> StreamingMHKModes::Ingest(std::span<const uint32_t> row) {
  if (row.size() != num_attributes_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " codes, expected " +
        std::to_string(num_attributes_));
  }

  // Presence filtering (Alg. 2 lines 2-4); codes beyond the warm-up
  // bitmap are new values, necessarily "present".
  tokens_.clear();
  for (const uint32_t code : row) {
    if (code < absent_codes_.size() && absent_codes_[code]) continue;
    tokens_.push_back(code);
  }
  if (minhasher_ != nullptr) {
    minhasher_->ComputeSignature(tokens_, signature_.data());
  } else {
    oph_->ComputeSignature(tokens_, signature_.data());
  }

  // Shortlist the clusters of similar predecessors.
  shortlist_.clear();
  ++epoch_;
  index_->VisitCandidatesOfSignature(signature_, [&](uint32_t other) {
    const uint32_t cluster = assignment_[other];
    if (cluster_stamp_[cluster] != epoch_) {
      cluster_stamp_[cluster] = epoch_;
      shortlist_.push_back(cluster);
    }
  });

  uint32_t best_cluster = 0;
  uint32_t best_distance = ~0u;
  if (shortlist_.empty()) {
    // No similar predecessor anywhere: exhaustive scan (rare).
    ++stats_.exhaustive_fallbacks;
    for (uint32_t cluster = 0; cluster < num_clusters_; ++cluster) {
      const uint32_t distance = BoundedMismatchDistance(
          row.data(), modes_->ModeData(cluster), num_attributes_,
          best_distance);
      if (distance < best_distance) {
        best_distance = distance;
        best_cluster = cluster;
      }
    }
  } else {
    stats_.shortlist_total += shortlist_.size();
    for (const uint32_t cluster : shortlist_) {
      const uint32_t distance = BoundedMismatchDistance(
          row.data(), modes_->ModeData(cluster), num_attributes_,
          best_distance);
      if (distance < best_distance) {
        best_distance = distance;
        best_cluster = cluster;
      }
    }
  }

  assignment_.push_back(best_cluster);
  index_->Insert(signature_);
  if (options_.update_modes) {
    UpdateModeWithItem(best_cluster, row);
  }
  ++stats_.ingested;
  return best_cluster;
}

}  // namespace lshclust
