#pragma once

/// \file error_bound.h
/// \brief Generation of the paper's probability tables (Tables I & II) and
/// Monte-Carlo validation of the analytic model against the real MinHash
/// implementation.

#include <cstdint>
#include <vector>

#include "lsh/probability.h"

namespace lshclust {

/// \brief One row of Table I / Table II.
struct CollisionTableRow {
  /// Number of bands b (rows r is fixed per table).
  uint32_t bands = 0;
  /// The Jaccard similarity examined.
  double jaccard = 0;
  /// "Probability": P(two items become a candidate pair) = 1-(1-s^r)^b.
  double pair_probability = 0;
  /// "MH-K-Modes Probability": P(the cluster is shortlisted) assuming
  /// `cluster_items` items of at least that similarity in the cluster.
  double mh_probability = 0;
};

/// The exact (bands, jaccard) grid of Table I, r = 1, assuming a minimum of
/// 10 similar items per cluster.
std::vector<CollisionTableRow> MakePaperTable1();

/// The exact grid of Table II, r = 5, same assumption.
std::vector<CollisionTableRow> MakePaperTable2();

/// Builds a table over an arbitrary grid.
std::vector<CollisionTableRow> MakeCollisionTable(
    uint32_t rows, const std::vector<std::pair<uint32_t, double>>& grid,
    uint32_t cluster_items);

/// \brief Empirical estimates from the real MinHash + banding pipeline.
struct MonteCarloEstimate {
  /// Fraction of trials in which a pair at the target Jaccard collided.
  double pair_probability = 0;
  /// Fraction of trials in which at least one of `cluster_items` similar
  /// items collided (the shortlist-hit event).
  double cluster_probability = 0;
  /// Mean realised Jaccard of the generated pairs (sanity check; should be
  /// within rounding of the requested value).
  double realized_jaccard = 0;
};

/// Runs `trials` Monte-Carlo trials: synthesises token-set pairs at Jaccard
/// similarity `jaccard` (set size `set_size`), signs them with the classic
/// MinHasher under fresh seeds, bands, and counts bucket collisions.
MonteCarloEstimate EstimateCollisionProbability(double jaccard,
                                                BandingParams params,
                                                uint32_t cluster_items,
                                                uint32_t set_size,
                                                uint32_t trials,
                                                uint64_t seed);

/// The smallest set size that realises `jaccard` with at least two shared
/// tokens (i = 2zs/(1+s) >= 2), never below `base` and capped at 20000.
/// Tiny similarities (Table I's 0.0001) need thousands of tokens per set;
/// callers should scale trials down proportionally.
uint32_t RecommendedSetSize(double jaccard, uint32_t base);

}  // namespace lshclust
