#pragma once

/// \file cluster_shortlist_index.h
/// \brief The MinHash signature family that turns "all k clusters" into a
/// per-item shortlist of candidate clusters (Algorithm 2): presence
/// filtered tokens (Alg. 2 lines 1-5) -> MinHash signature -> banding
/// index. Plugged into the generic ShortlistProvider
/// (core/shortlist_provider.h); `ClusterShortlistProvider` below is the
/// resulting provider type, the one MH-K-Modes runs on.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/shortlist_provider.h"
#include "data/categorical_dataset.h"
#include "hashing/minhash.h"
#include "hashing/one_permutation_minhash.h"
#include "lsh/banded_index.h"
#include "lsh/probability.h"
#include "util/result.h"

namespace lshclust {

/// \brief Which signature generator backs the index.
enum class SignatureAlgorithm {
  /// Algorithm 1 of the paper: n independent(ish) hash functions.
  kClassicMinHash,
  /// One-permutation MinHash with densification: O(|S| + n) per item.
  kOnePermutation,
};

/// \brief Options for the shortlist index.
struct ShortlistIndexOptions {
  /// Banding shape (b bands of r rows; the paper's "20b 5r" notation).
  BandingParams banding;
  /// Signature generator.
  SignatureAlgorithm algorithm = SignatureAlgorithm::kClassicMinHash;
  /// Hash-derivation mode for kClassicMinHash.
  MinHashMode minhash_mode = MinHashMode::kDoubleHashing;
  /// Seed of the hash family.
  uint64_t seed = 99;
  /// Keep per-item signatures after the index is built (needed only for
  /// querying items outside the indexed dataset).
  bool keep_signatures = false;
  /// Bit-sketch prescreen of shortlist candidates (lsh/bit_sketch.h).
  SketchPrefilterOptions sketch;
};

/// \brief MinHash/Jaccard signature family over categorical token sets
/// (the paper's family).
class MinHashShortlistFamily {
 public:
  using Dataset = CategoricalDataset;
  using Options = ShortlistIndexOptions;

  /// Validates the index configuration as a returned Status — the front
  /// door and the legacy entry points check this before constructing the
  /// family; the constructor keeps a debug backstop.
  [[nodiscard]] static Status ValidateOptions(const Options& options);

  explicit MinHashShortlistFamily(const Options& options);

  /// Deep copy: clones the live hasher (seeds included) so the copy signs
  /// queries bit-identically and independently of the source's lifetime —
  /// this is what FrozenModel snapshots rely on.
  MinHashShortlistFamily(const MinHashShortlistFamily& other);
  MinHashShortlistFamily& operator=(const MinHashShortlistFamily& other);
  MinHashShortlistFamily(MinHashShortlistFamily&&) noexcept = default;
  MinHashShortlistFamily& operator=(MinHashShortlistFamily&&) noexcept =
      default;

  /// One MinHash signature per item over its *present* tokens (the
  /// presence filtering of Alg. 2 lines 2-4). Chunked across `pool` when
  /// given (per-worker token scratch); bit-identical to the sequential
  /// pass. When `cancel` is non-null it is polled at batch boundaries
  /// (kSignatureChunkSize items; thread-safe hook required) and a true
  /// answer aborts with StatusCode::kCancelled.
  [[nodiscard]] Status ComputeSignatures(const Dataset& dataset,
                           std::vector<uint64_t>* signatures,
                           ThreadPool* pool = nullptr,
                           const std::function<bool()>* cancel =
                               nullptr) const;

  /// Uniform layout: banding.bands bands of banding.rows rows.
  std::vector<uint32_t> BandLayout() const {
    return std::vector<uint32_t>(options_.banding.bands,
                                 options_.banding.rows);
  }

  uint32_t signature_width() const { return options_.banding.num_hashes(); }
  bool keep_signatures() const { return options_.keep_signatures; }

  /// Signature of an external token set (tokens in the dataset's code
  /// space) — enables GetCandidatesForTokens on the provider.
  void ComputeQuerySignature(std::span<const uint32_t> tokens,
                             uint64_t* out) const;

  /// Approximate hasher footprint.
  uint64_t MemoryUsageBytes() const;

  const Options& options() const { return options_; }

  /// Sketch prefilter configuration, read by ShortlistProvider::Prepare.
  const SketchPrefilterOptions& sketch_options() const {
    return options_.sketch;
  }

 private:
  Options options_;
  std::unique_ptr<MinHasher> minhasher_;
  std::unique_ptr<OnePermutationMinHasher> oph_;
};

/// \brief Engine provider producing MinHash cluster shortlists — the
/// provider of MH-K-Modes (Algorithm 2).
using ClusterShortlistProvider = ShortlistProvider<MinHashShortlistFamily>;

}  // namespace lshclust
