#pragma once

/// \file cluster_shortlist_index.h
/// \brief The heart of the paper: the MinHash index that turns "all k
/// clusters" into a per-item shortlist of candidate clusters (Algorithm 2).
///
/// Lifecycle, following §III-B exactly:
///  1. After the initial assignment, one pass over the dataset computes a
///     MinHash signature per item (presence-filtered tokens, Alg. 2 lines
///     1-5) and builds the banding index. Items never change, so this
///     happens once.
///  2. During refinement, an item's query walks its own buckets (it was
///     inserted, so the buckets are known — no re-hashing), collects the
///     co-bucketed items, and *dereferences their current cluster
///     assignment*. The deduplicated cluster set is the shortlist.
///  3. "Updating the index after a move" is writing assignment[item] — the
///     caller's assignment array is the cluster reference store, which is
///     why updates are "a fast operation ... merely update the item's
///     cluster that is stored via a reference or pointer" (§III-B).
///
/// The item always shares its buckets with itself, so the shortlist always
/// contains its current cluster and is never empty.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/categorical_dataset.h"
#include "hashing/minhash.h"
#include "hashing/one_permutation_minhash.h"
#include "lsh/banded_index.h"
#include "lsh/probability.h"
#include "util/result.h"

namespace lshclust {

/// \brief Which signature generator backs the index.
enum class SignatureAlgorithm {
  /// Algorithm 1 of the paper: n independent(ish) hash functions.
  kClassicMinHash,
  /// One-permutation MinHash with densification: O(|S| + n) per item.
  kOnePermutation,
};

/// \brief Options for the shortlist index.
struct ShortlistIndexOptions {
  /// Banding shape (b bands of r rows; the paper's "20b 5r" notation).
  BandingParams banding;
  /// Signature generator.
  SignatureAlgorithm algorithm = SignatureAlgorithm::kClassicMinHash;
  /// Hash-derivation mode for kClassicMinHash.
  MinHashMode minhash_mode = MinHashMode::kDoubleHashing;
  /// Seed of the hash family.
  uint64_t seed = 99;
  /// Keep per-item signatures after the index is built (needed only for
  /// querying items outside the indexed dataset).
  bool keep_signatures = false;
};

/// \brief Engine provider (see clustering/engine.h) producing LSH cluster
/// shortlists. Also usable standalone for any "candidate clusters of this
/// item" query.
class ClusterShortlistProvider {
 public:
  /// \param options index configuration
  /// \param num_clusters k — shortlist entries are cluster ids < k
  ClusterShortlistProvider(const ShortlistIndexOptions& options,
                           uint32_t num_clusters);

  /// Engine contract: shortlists instead of exhaustive scans.
  static constexpr bool kExhaustive = false;

  /// Computes all signatures and builds the banding index (the one-time
  /// pass of Alg. 2). Called by the engine after the initial assignment.
  Status Prepare(const CategoricalDataset& dataset);

  /// Fills `out` with the deduplicated candidate clusters of `item`:
  /// the clusters *currently* containing the items LSH considers similar
  /// to it, plus the item's own current cluster. Reads `assignment` as the
  /// live cluster-reference store.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     std::vector<uint32_t>* out);

  /// As GetCandidates but for an external item given by its token set
  /// (e.g. a new item arriving after clustering). Tokens must use the
  /// dataset's code space.
  void GetCandidatesForTokens(std::span<const uint32_t> tokens,
                              std::span<const uint32_t> assignment,
                              std::vector<uint32_t>* out);

  /// The underlying banding index (null before Prepare).
  const BandedIndex* index() const { return index_.get(); }

  /// Occupancy statistics of the underlying index.
  BandedIndex::Stats IndexStats() const;

  /// Approximate heap footprint (index + any kept signatures).
  uint64_t MemoryUsageBytes() const;

  /// Seconds spent in the last Prepare, split into signature computation
  /// and index construction.
  double signature_seconds() const { return signature_seconds_; }
  double index_seconds() const { return index_seconds_; }

 private:
  void ComputeSignature(std::span<const uint32_t> tokens, uint64_t* out) const;

  ShortlistIndexOptions options_;
  uint32_t num_clusters_;
  std::unique_ptr<MinHasher> minhasher_;
  std::unique_ptr<OnePermutationMinHasher> oph_;
  std::unique_ptr<BandedIndex> index_;
  std::vector<uint64_t> signatures_;  // kept only if options_.keep_signatures

  // Epoch-stamped deduplication; no per-query allocation.
  std::vector<uint32_t> cluster_stamp_;
  uint32_t epoch_ = 0;

  double signature_seconds_ = 0;
  double index_seconds_ = 0;
};

}  // namespace lshclust
