#include "core/experiment.h"

#include "clustering/initializers.h"
#include "metrics/metrics.h"
#include "util/macros.h"

namespace lshclust {

MethodSpec KModesSpec() {
  MethodSpec spec;
  spec.label = "K-Modes";
  spec.use_lsh = false;
  return spec;
}

MethodSpec MHKModesSpec(uint32_t bands, uint32_t rows) {
  MethodSpec spec;
  spec.label = "MH-K-Modes " + std::to_string(bands) + "b " +
               std::to_string(rows) + "r";
  spec.use_lsh = true;
  spec.banding = BandingParams{bands, rows};
  return spec;
}

Result<std::vector<MethodRun>> RunComparison(
    const CategoricalDataset& dataset, const ComparisonOptions& options,
    const std::vector<MethodSpec>& methods) {
  if (methods.empty()) {
    return Status::InvalidArgument("no methods to run");
  }

  // One shared draw of initial centroids (paper §IV-A: "the same initial
  // centroid points were selected" for every variant).
  Rng seed_rng(options.seed);
  LSHC_ASSIGN_OR_RETURN(
      const std::vector<uint32_t> shared_seeds,
      SelectRandomSeeds(dataset, options.num_clusters, seed_rng));

  EngineOptions engine;
  engine.num_clusters = options.num_clusters;
  engine.max_iterations = options.max_iterations;
  engine.empty_cluster_policy = options.empty_cluster_policy;
  engine.initial_seeds = shared_seeds;
  engine.seed = options.seed;
  engine.compute_cost = options.compute_cost;

  std::vector<MethodRun> runs;
  runs.reserve(methods.size());
  for (const MethodSpec& spec : methods) {
    MethodRun run;
    run.spec = spec;
    if (spec.use_lsh) {
      MHKModesOptions mh;
      mh.engine = engine;
      mh.index.banding = spec.banding;
      mh.index.algorithm = spec.algorithm;
      mh.index.seed = options.seed ^ 0xB4D5EEDULL;
      LSHC_ASSIGN_OR_RETURN(MHKModesRun mh_run, RunMHKModes(dataset, mh));
      run.result = std::move(mh_run.result);
      run.has_index = true;
      run.index_stats = mh_run.index_stats;
      run.index_memory_bytes = mh_run.index_memory_bytes;
    } else {
      LSHC_ASSIGN_OR_RETURN(run.result, RunKModes(dataset, engine));
    }
    if (dataset.has_labels()) {
      LSHC_ASSIGN_OR_RETURN(run.purity,
                            ComputePurity(run.result.assignment,
                                          dataset.labels()));
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace lshclust
