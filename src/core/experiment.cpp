#include "core/experiment.h"

#include "api/clusterer.h"
#include "clustering/initializers.h"
#include "metrics/metrics.h"
#include "util/macros.h"

namespace lshclust {

MethodSpec KModesSpec() {
  MethodSpec spec;
  spec.label = "K-Modes";
  spec.use_lsh = false;
  return spec;
}

MethodSpec MHKModesSpec(uint32_t bands, uint32_t rows) {
  MethodSpec spec;
  spec.label = "MH-K-Modes " + std::to_string(bands) + "b " +
               std::to_string(rows) + "r";
  spec.use_lsh = true;
  spec.banding = BandingParams{bands, rows};
  return spec;
}

Result<std::vector<MethodRun>> RunComparison(
    const CategoricalDataset& dataset, const ComparisonOptions& options,
    const std::vector<MethodSpec>& methods) {
  if (methods.empty()) {
    return Status::InvalidArgument("no methods to run");
  }

  // One shared draw of initial centroids (paper §IV-A: "the same initial
  // centroid points were selected" for every variant).
  Rng seed_rng(options.seed);
  LSHC_ASSIGN_OR_RETURN(
      const std::vector<uint32_t> shared_seeds,
      SelectRandomSeeds(dataset, options.num_clusters, seed_rng));

  EngineOptions engine;
  engine.num_clusters = options.num_clusters;
  engine.max_iterations = options.max_iterations;
  engine.empty_cluster_policy = options.empty_cluster_policy;
  engine.initial_seeds = shared_seeds;
  engine.seed = options.seed;
  engine.compute_cost = options.compute_cost;

  std::vector<MethodRun> runs;
  runs.reserve(methods.size());
  for (const MethodSpec& spec : methods) {
    MethodRun run;
    run.spec = spec;
    // Every variant goes through the Clusterer front door: the baseline
    // and the accelerated runs differ only in the spec's accelerator, the
    // controlled comparison the paper's figures need.
    ClustererSpec clusterer_spec;
    clusterer_spec.modality = Modality::kCategorical;
    clusterer_spec.engine = engine;
    if (spec.use_lsh) {
      clusterer_spec.accelerator = Accelerator::kMinHash;
      clusterer_spec.minhash.banding = spec.banding;
      clusterer_spec.minhash.algorithm = spec.algorithm;
      clusterer_spec.minhash.seed = options.seed ^ 0xB4D5EEDULL;
    } else {
      clusterer_spec.accelerator = Accelerator::kExhaustive;
    }
    LSHC_ASSIGN_OR_RETURN(Clusterer clusterer,
                          Clusterer::Create(clusterer_spec));
    LSHC_ASSIGN_OR_RETURN(FitReport report, clusterer.Fit(dataset));
    // The engine options are built locally above, so no cancel hook can
    // reach this run today — but never record a non-OK report as a
    // completed method.
    LSHC_RETURN_NOT_OK(report.status);
    run.result = std::move(report.result);
    run.has_index = report.has_index;
    run.index_stats = report.index_stats;
    run.index_memory_bytes = report.index_memory_bytes;
    if (dataset.has_labels()) {
      LSHC_ASSIGN_OR_RETURN(run.purity,
                            ComputePurity(run.result.assignment,
                                          dataset.labels()));
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace lshclust
