#pragma once

/// \file reporters.h
/// \brief Text-table reporters that print the same rows/series the paper's
/// figures and tables show (one bench driver per figure calls these).

#include <iosfwd>
#include <string>
#include <vector>

#include "core/error_bound.h"
#include "core/experiment.h"

namespace lshclust {

/// \brief Which per-iteration series to print.
enum class IterationField {
  kSeconds,    ///< "Time taken per iteration" (Figs. 2a, 3a, 4c, 5a, 9a, 10a)
  kShortlist,  ///< "Avg. Clusters Returned" (Figs. 2b, 3c, 4a, 5b, 9b, 10c)
  kMoves,      ///< "Moves" (Figs. 2c, 3d, 4b, 9c, 10d)
  kCost,       ///< P(W, Q) per iteration (not plotted in the paper; extra)
};

/// Prints one column per method, one row per iteration, e.g.
/// `iter  MH-K-Modes 20b 5r  K-Modes` — the tabular form of a figure panel.
void PrintIterationSeries(std::ostream& out, const std::string& title,
                          const std::vector<MethodRun>& runs,
                          IterationField field);

/// Prints the per-method summary: phase times (init / initial assignment /
/// index build), refinement time, total, iterations, convergence, speedup
/// over the first non-LSH method, and purity when available — the tabular
/// form of the "total time taken" and purity bar charts (Figs. 7, 8, 9d,
/// 9e, 10b).
void PrintSummaryTable(std::ostream& out, const std::string& title,
                       const std::vector<MethodRun>& runs);

/// Prints a Table I/II-style collision-probability table. When
/// `monte_carlo` is non-empty it must parallel `rows` and the empirical
/// estimates are printed alongside the analytic values.
void PrintCollisionTable(std::ostream& out, const std::string& title,
                         uint32_t minhash_rows,
                         const std::vector<CollisionTableRow>& rows,
                         const std::vector<MonteCarloEstimate>& monte_carlo = {});

/// Prints dataset shape + banding parameters header used by every driver.
void PrintExperimentHeader(std::ostream& out, const std::string& name,
                           uint32_t items, uint32_t attributes,
                           uint32_t clusters);

}  // namespace lshclust
