#pragma once

/// \file streaming.h
/// \brief Streaming MH-K-Modes — the paper's §VI future work: an online
/// clustering front end built from the same pieces as the batch algorithm.
///
/// Lifecycle:
///  1. Bootstrap: run batch MH-K-Modes over a warm-up dataset; load its
///     items into a growable (dynamic) banding index; build incremental
///     per-cluster attribute frequency tables.
///  2. Ingest(row): presence-filter, sign, shortlist through the index
///     (falling back to an exhaustive mode scan when the shortlist is
///     empty — possible for items with no similar predecessor), assign to
///     the nearest mode, insert into the index, and update the assigned
///     cluster's mode incrementally (increment-only majority tracking is
///     exact: a mode component changes only when some count overtakes the
///     current maximum).
///
/// Every ingested item immediately becomes retrievable: later arrivals
/// shortlist against it exactly like against warm-up items.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/mh_kmodes.h"
#include "lsh/dynamic_banded_index.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for StreamingMHKModes.
struct StreamingMHKModesOptions {
  /// Batch options for the warm-up clustering (engine + index).
  MHKModesOptions bootstrap;
  /// Maintain modes incrementally as items arrive. When false, modes stay
  /// frozen at their bootstrap values (cheaper; suits stable streams).
  bool update_modes = true;
};

/// \brief Online clusterer; construct via Bootstrap.
class StreamingMHKModes {
 public:
  /// Runs the batch warm-up and prepares the streaming state.
  static Result<StreamingMHKModes> Bootstrap(
      const CategoricalDataset& warmup,
      const StreamingMHKModesOptions& options);

  /// Assigns one arriving item (a row of `num_attributes` codes in the
  /// warm-up dataset's code space; codes never seen before are legal) and
  /// returns its cluster.
  Result<uint32_t> Ingest(std::span<const uint32_t> row);

  /// Number of clusters k.
  uint32_t num_clusters() const { return num_clusters_; }
  /// Attributes per item m.
  uint32_t num_attributes() const { return num_attributes_; }

  /// Assignment of every item seen so far (warm-up items first, then
  /// ingested ones in arrival order).
  const std::vector<uint32_t>& assignment() const { return assignment_; }

  /// The current mode of `cluster`.
  std::span<const uint32_t> ModeOf(uint32_t cluster) const {
    return modes_->Mode(cluster);
  }

  /// \brief Ingest-side counters.
  struct Stats {
    /// Items ingested after bootstrap.
    uint64_t ingested = 0;
    /// Ingests whose shortlist was empty (exhaustive fallback taken).
    uint64_t exhaustive_fallbacks = 0;
    /// Shortlist sizes summed over ingests (mean = total / ingested).
    uint64_t shortlist_total = 0;
  };
  const Stats& stats() const { return stats_; }

  /// The bootstrap clustering outcome (per-iteration instrumentation).
  const ClusteringResult& bootstrap_result() const {
    return bootstrap_result_;
  }

  StreamingMHKModes(StreamingMHKModes&&) = default;
  StreamingMHKModes& operator=(StreamingMHKModes&&) = default;

 private:
  StreamingMHKModes() = default;

  void UpdateModeWithItem(uint32_t cluster, std::span<const uint32_t> row);

  StreamingMHKModesOptions options_;
  uint32_t num_clusters_ = 0;
  uint32_t num_attributes_ = 0;

  // Signature machinery (matches the bootstrap index configuration).
  std::unique_ptr<MinHasher> minhasher_;
  std::unique_ptr<OnePermutationMinHasher> oph_;
  std::unique_ptr<DynamicBandedIndex> index_;

  // Presence semantics copied from the warm-up dataset; codes beyond the
  // bitmap (values first seen in the stream) are treated as present.
  std::vector<bool> absent_codes_;

  // Cluster state.
  std::unique_ptr<ModeTable> modes_;
  std::vector<uint32_t> assignment_;

  // Incremental majority tracking: per attribute a (cluster, code) -> count
  // table plus the running best count per (cluster, attribute).
  std::vector<FlatHashMap64> attribute_counts_;  // size m
  std::vector<uint32_t> best_counts_;            // k x m

  // Query scratch.
  std::vector<uint32_t> cluster_stamp_;
  uint32_t epoch_ = 0;
  std::vector<uint64_t> signature_;
  std::vector<uint32_t> tokens_;
  std::vector<uint32_t> shortlist_;

  ClusteringResult bootstrap_result_;
  Stats stats_;
};

}  // namespace lshclust
