#pragma once

/// \file streaming.h
/// \brief Streaming MH-K-Modes — the paper's §VI future work: an online
/// clustering front end built from the same pieces as the batch algorithm.
///
/// Lifecycle:
///  1. Bootstrap: run batch MH-K-Modes over a warm-up dataset; bulk-load
///     the signatures that clustering pass already computed into a
///     growable (dynamic) banding index; build incremental per-cluster
///     attribute frequency tables.
///  2. Ingest(row): presence-filter, sign, shortlist through the index
///     (falling back to an exhaustive mode scan when the shortlist is
///     empty — possible for items with no similar predecessor), assign to
///     the nearest mode, insert into the index, and update the assigned
///     cluster's mode incrementally (increment-only majority tracking is
///     exact: a mode component changes only when some count overtakes the
///     current maximum).
///  3. IngestBatch(rows): the same semantics over a micro-batch of
///     arrivals, with the expensive per-item work (presence filtering,
///     signing, provisional shortlisting) fanned out across a worker pool.
///
/// Every ingested item immediately becomes retrievable: later arrivals
/// shortlist against it exactly like against warm-up items.
///
/// ## Batch-parallel ingest
///
/// IngestBatch is bit-identical to calling Ingest on the same rows in the
/// same order, at every (shard count x thread count) combination, by a
/// speculate-then-validate scheme:
///
///  * Parallel phase: the micro-batch runs through the same two-level
///    (shard -> chunk) decomposition as the engine's assignment step
///    (src/shard/shard_plan.h): `ingest_shards` contiguous arrival-order
///    slices, each cut into `ingest_chunk_size`-item chunks (one chunk =
///    one ParallelFor unit; ClusterDedupScratch and token buffers are
///    owned per (shard, worker), never pool-global). Each item is
///    filtered, signed, shortlisted against the index *frozen at batch
///    start*, and provisionally assigned against the modes frozen at
///    batch start. Signing is the dominant per-item cost, so this is
///    where the wall time goes.
///  * Sequential apply phase, in arrival order: each item's signature is
///    inserted into the index; the insert reports whether any bucket
///    already held an in-batch predecessor (exact, because bucket chains
///    are newest-first). A provisional result is accepted verbatim iff no
///    such predecessor exists and no cluster the decision depended on had
///    a mode component change earlier in the batch — in that case the
///    frozen-state computation saw exactly the state a sequential Ingest
///    would have seen, so the outcome (and its stats) is bit-identical.
///    When only the modes went stale, the shortlist is still provably the
///    sequential one (shortlists read the index, never the modes), so the
///    item is merely re-scored against the live modes; only a genuine
///    in-batch bucket collision forces a re-walk of the live index. Both
///    recomputations *are* the sequential computation
///    (Stats::revalidated / Stats::rewalked count them). Index inserts
///    and mode updates always apply in arrival order.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/mh_kmodes.h"
#include "core/shortlist_provider.h"
#include "lsh/bit_sketch.h"
#include "lsh/dynamic_banded_index.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace lshclust {

/// \brief Options for StreamingMHKModes.
struct StreamingMHKModesOptions {
  /// Batch options for the warm-up clustering (engine + index). The
  /// engine's num_threads also parallelizes the warm-up signature pass.
  MHKModesOptions bootstrap;
  /// Maintain modes incrementally as items arrive. When false, modes stay
  /// frozen at their bootstrap values (cheaper; suits stable streams).
  bool update_modes = true;
  /// Worker threads for IngestBatch's parallel phase. 1 = run in-line on
  /// the calling thread (default); 0 = one per hardware thread. Any value
  /// produces bit-identical results.
  uint32_t ingest_threads = 1;
  /// Item-space shards of IngestBatch's parallel phase: each micro-batch
  /// is partitioned into this many contiguous arrival-order slices, each
  /// owning its own query scratch. Must be >= 1; any value produces
  /// bit-identical results (1 = the historical flat decomposition).
  /// Values above the batch's flat chunk count
  /// (ceil(batch / ingest_chunk_size)) are clamped to it — the excess
  /// shards could not own a whole work unit anyway.
  uint32_t ingest_shards = 1;
  /// Items per ParallelFor unit within a shard of the parallel phase.
  /// Must be >= 1; any value produces bit-identical results. Smaller than
  /// the engine's assignment chunk because signing an item costs far more
  /// than a distance.
  uint32_t ingest_chunk_size = 64;
};

/// Validates a full streaming configuration (bootstrap engine + index
/// options + ingest knobs) as a returned Status, reusing the engine and
/// family validators. Bootstrap re-checks it; the front door
/// (api/clusterer.h) reports it at session-creation time.
[[nodiscard]] Status ValidateStreamingMHKModesOptions(
    const StreamingMHKModesOptions& options);

/// \brief Online clusterer; construct via Bootstrap.
class StreamingMHKModes {
 public:
  /// Runs the batch warm-up and prepares the streaming state.
  static Result<StreamingMHKModes> Bootstrap(
      const CategoricalDataset& warmup,
      const StreamingMHKModesOptions& options);

  /// Assigns one arriving item (a row of `num_attributes` codes in the
  /// warm-up dataset's code space; codes never seen before are legal) and
  /// returns its cluster.
  Result<uint32_t> Ingest(std::span<const uint32_t> row);

  /// Assigns a micro-batch of arriving items — `rows` is row-major,
  /// rows.size() = batch_size x num_attributes() — through the
  /// batch-parallel pipeline described in the file comment. Returns a view
  /// of the new items' assignments, in arrival order (valid until the next
  /// ingest call). Bit-identical to ingesting the rows one by one, for
  /// every ingest_threads setting.
  Result<std::span<const uint32_t>> IngestBatch(
      std::span<const uint32_t> rows);

  /// Number of clusters k.
  uint32_t num_clusters() const { return num_clusters_; }
  /// Attributes per item m.
  uint32_t num_attributes() const { return num_attributes_; }

  /// Assignment of every item seen so far (warm-up items first, then
  /// ingested ones in arrival order).
  const std::vector<uint32_t>& assignment() const { return assignment_; }

  /// The current mode of `cluster`.
  std::span<const uint32_t> ModeOf(uint32_t cluster) const {
    return modes_->Mode(cluster);
  }

  /// \brief Ingest-side counters.
  struct Stats {
    /// Items ingested after bootstrap.
    uint64_t ingested = 0;
    /// Ingests whose shortlist was empty (exhaustive fallback taken; such
    /// ingests scan all k clusters and contribute nothing to
    /// shortlist_total).
    uint64_t exhaustive_fallbacks = 0;
    /// Shortlist sizes summed over the ingests that actually shortlisted —
    /// fallbacks excluded, so the mean shortlist is
    /// total / (ingested - exhaustive_fallbacks); see mean_shortlist().
    uint64_t shortlist_total = 0;
    /// IngestBatch items whose provisional (frozen-state) assignment had
    /// to be recomputed in the apply phase — because an in-batch
    /// predecessor shared a bucket or a relevant mode changed mid-batch.
    /// Purely diagnostic; identical across thread counts but not
    /// incremented by plain Ingest.
    uint64_t revalidated = 0;
    /// The subset of revalidated that re-walked the live index (an
    /// in-batch predecessor shared a bucket); the rest only re-scored
    /// their unchanged shortlist against the live modes.
    uint64_t rewalked = 0;
    /// Exact mismatch-distance evaluations across all ingests: the
    /// shortlist length per shortlisted ingest, k per exhaustive
    /// fallback. Revalidations re-score, so their evaluations count the
    /// final (sequential-equivalent) scoring pass only.
    uint64_t exact_distances_evaluated = 0;
    /// Candidate clusters dropped by the bit-sketch prefilter before
    /// scoring (0 unless the bootstrap index options enabled the sketch
    /// prefilter). A cluster counts only when every peer proposing it was
    /// screened out.
    uint64_t exact_distances_pruned = 0;

    /// Mean shortlist length over the ingests that shortlisted (0 when
    /// every ingest fell back or nothing was ingested).
    double mean_shortlist() const {
      return ingested > exhaustive_fallbacks
                 ? static_cast<double>(shortlist_total) /
                       static_cast<double>(ingested - exhaustive_fallbacks)
                 : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

  /// The bootstrap clustering outcome (per-iteration instrumentation).
  const ClusteringResult& bootstrap_result() const {
    return bootstrap_result_;
  }

  /// Read-only views of the live state, used by StreamingSession::Snapshot
  /// to deep-copy a FrozenModel out of the engine between ingests. Never
  /// call these concurrently with Ingest/IngestBatch — the session layer
  /// snapshots between ingest calls, on the writer's thread.
  const MinHashShortlistFamily& family() const { return *family_; }
  const DynamicBandedIndex& live_index() const { return *index_; }
  const ModeTable& modes() const { return *modes_; }
  bool sketch_enabled() const { return sketch_on_; }
  const BitSketchTable& sketches() const { return sketches_; }
  uint64_t sketch_max_hamming() const { return sketch_max_hamming_; }

  /// Test hook: forces the dedup epoch close to (or at) the wraparound so
  /// tests can exercise the stamp-reset path without 2^32 ingests.
  void set_dedup_epoch_for_testing(uint32_t epoch) {
    dedup_.epoch = epoch;
    mode_dirty_.epoch = epoch;
    for (auto& scratch : batch_.worker_dedup) scratch.epoch = epoch;
  }

  StreamingMHKModes(StreamingMHKModes&&) = default;
  StreamingMHKModes& operator=(StreamingMHKModes&&) = default;

 private:
  StreamingMHKModes() = default;

  /// Presence-filters `row` into `tokens` and signs it into `signature`
  /// (signature_width components). Pure; safe from worker threads.
  void SignRow(std::span<const uint32_t> row, std::vector<uint32_t>& tokens,
               uint64_t* signature) const;

  /// Best cluster among `shortlist` in order (or all k when empty) against
  /// the current modes, replicating Ingest's scoring loop exactly.
  uint32_t ScoreRow(std::span<const uint32_t> row,
                    std::span<const uint32_t> shortlist) const;

  /// Shortlists `signature` through the live index into `shortlist` using
  /// `dedup`, optionally skipping `skip_item` (the item itself when it was
  /// already inserted). The visit order matches a pre-insert walk exactly.
  /// When the sketch prefilter is on, `query_sketch` (the packed sketch of
  /// `signature`, sketches_.words() words) screens each candidate peer
  /// before its cluster enters the shortlist; `dedup.last_pruned` reports
  /// the clusters whose every proposer was screened out.
  void ShortlistSignature(std::span<const uint64_t> signature,
                          uint32_t skip_item, const uint64_t* query_sketch,
                          ClusterDedupScratch& dedup,
                          std::vector<uint32_t>* shortlist) const;

  /// Records `row`'s assignment: appends to assignment_, updates stats
  /// (`shortlist_size` < 0 means exhaustive fallback; `pruned` is the
  /// walk's prefilter-dropped cluster count) and, when enabled, the
  /// assigned cluster's mode.
  void CommitAssignment(std::span<const uint32_t> row, uint32_t cluster,
                        int64_t shortlist_size, uint64_t pruned);

  void UpdateModeWithItem(uint32_t cluster, std::span<const uint32_t> row);

  StreamingMHKModesOptions options_;
  uint32_t num_clusters_ = 0;
  uint32_t num_attributes_ = 0;

  // Signature machinery (the same family type the bootstrap provider
  // used, constructed from the same options, so stream-time signatures
  // land in the warm-up buckets).
  std::unique_ptr<MinHashShortlistFamily> family_;
  std::unique_ptr<DynamicBandedIndex> index_;

  // Presence semantics copied from the warm-up dataset; codes beyond the
  // bitmap (values first seen in the stream) are treated as present.
  std::vector<bool> absent_codes_;

  // Cluster state.
  std::unique_ptr<ModeTable> modes_;
  std::vector<uint32_t> assignment_;

  // Incremental majority tracking: per attribute a (cluster, code) -> count
  // table plus the running best count per (cluster, attribute).
  std::vector<FlatHashMap64> attribute_counts_;  // size m
  std::vector<uint32_t> best_counts_;            // k x m

  // Bit-sketch prefilter state (bootstrap index options' sketch knob):
  // one packed sketch per item seen so far, appended at index-insert time
  // so in-batch rewalks screen against in-batch predecessors too.
  bool sketch_on_ = false;
  BitSketchTable sketches_;
  uint64_t sketch_max_hamming_ = 0;

  // Query scratch (sequential paths + the batch apply phase).
  ClusterDedupScratch dedup_;
  std::vector<uint64_t> signature_;
  std::vector<uint64_t> query_sketch_;
  std::vector<uint32_t> tokens_;
  std::vector<uint32_t> shortlist_;

  // Mode-change tracking for IngestBatch validation: epoch bumped per
  // batch; a cluster is stamped when one of its mode components changes
  // during the apply phase. dirty_clusters_ counts stamped clusters.
  ClusterDedupScratch mode_dirty_;
  uint32_t dirty_clusters_ = 0;

  // IngestBatch scratch, reused across batches so steady-state ingest
  // does not allocate.
  struct BatchScratch {
    /// Packed batch_size x signature_width signatures.
    std::vector<uint64_t> signatures;
    /// Provisional cluster per item (frozen-state decision).
    std::vector<uint32_t> cluster;
    /// Provisional shortlist per item: a slice of one (shard, worker)
    /// slot's buffer. The apply phase keys the "empty -> exhaustive
    /// fallback" case off length == 0 alone; slot/offset always name the
    /// producing slot's buffer position, even for empty shortlists.
    struct ShortlistRef {
      uint32_t slot = 0;
      uint32_t offset = 0;
      uint32_t length = 0;
    };
    std::vector<ShortlistRef> refs;
    /// Clusters the sketch prefilter dropped from item i's provisional
    /// walk (0 with the prefilter off); committed verbatim unless the
    /// item re-walks, in which case the rewalk's count replaces it.
    std::vector<uint64_t> pruned;
    /// Per-(shard, worker) state for the parallel phase, indexed by
    /// slot = shard * workers + worker — shard-local, so a shard's
    /// queries never touch pool-global scratch. Dedup stamp arrays are
    /// materialised lazily, on the worker that first uses a slot, so
    /// degenerate shard counts don't pay k stamps per idle slot.
    std::vector<std::vector<uint32_t>> worker_shortlists;
    std::vector<std::vector<uint32_t>> worker_tokens;
    std::vector<std::vector<uint32_t>> worker_current;  // one item's walk
    std::vector<std::vector<uint64_t>> worker_sketches;  // one query sketch
    std::vector<ClusterDedupScratch> worker_dedup;
  };
  BatchScratch batch_;
  std::unique_ptr<ThreadPool> pool_;  // created on first parallel batch

  ClusteringResult bootstrap_result_;
  Stats stats_;
};

}  // namespace lshclust
