#pragma once

/// \file mh_kmodes.h
/// \brief MH-K-Modes — K-Modes accelerated with the MinHash cluster
/// shortlist index (the paper's algorithm).
///
/// \deprecated This per-algorithm entry point is a compatibility shim over
/// the `lshclust::Clusterer` front door (api/clusterer.h): RunMHKModes is
/// exactly `Clusterer{categorical, minhash}` and new code should build a
/// ClustererSpec instead (it adds Predict, streaming sessions and
/// progress/cancel hooks with the same bit-identical results). The shim
/// stays because the experiment idiom — one options struct per method —
/// reads well in figures code.
///
/// \code
///   MHKModesOptions options;
///   options.engine.num_clusters = 2000;
///   options.index.banding = {20, 5};             // "20b 5r"
///   auto run = RunMHKModes(dataset, options);
///   // run->result.iterations[i].mean_shortlist << k
/// \endcode

#include "clustering/engine.h"
#include "core/cluster_shortlist_index.h"

namespace lshclust {

/// \brief Options for MH-K-Modes: the shared engine options plus the LSH
/// index configuration.
struct MHKModesOptions {
  /// K-Modes options shared with the baseline (same seeds, same kernels).
  EngineOptions engine;
  /// MinHash/banding configuration.
  ShortlistIndexOptions index;
};

/// \brief Clustering result plus index diagnostics.
struct MHKModesRun {
  /// The clustering outcome (same type the baseline returns, so the
  /// experiment harness treats both uniformly).
  ClusteringResult result;
  /// Bucket occupancy of the MinHash index.
  BandedIndex::Stats index_stats;
  /// Approximate index memory footprint.
  uint64_t index_memory_bytes = 0;
  /// Prepare() split: signature computation vs index construction.
  double signature_seconds = 0;
  double index_seconds = 0;
};

/// Runs MH-K-Modes (Algorithm 2) through the Clusterer front door.
/// \deprecated Prefer api/clusterer.h (see the file comment).
Result<MHKModesRun> RunMHKModes(const CategoricalDataset& dataset,
                                const MHKModesOptions& options);

}  // namespace lshclust
