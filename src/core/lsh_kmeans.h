#pragma once

/// \file lsh_kmeans.h
/// \brief LSH-K-Means — the paper's framework applied to numeric data
/// (its §VI future work), with SimHash as the locality sensitive family.
///
/// Identical structure to MH-K-Modes: sign-random-projection signatures are
/// computed once per item, banded into buckets, and each assignment step
/// searches only the clusters currently holding the item's bucket
/// neighbours. Collision probability per bit is 1 - theta/pi, so the
/// banding S-curve selects by angular similarity instead of Jaccard.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "clustering/kmeans.h"
#include "hashing/simhash.h"
#include "lsh/banded_index.h"
#include "lsh/probability.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace lshclust {

/// \brief Options for LSH-K-Means.
struct LshKMeansOptions {
  /// K-Means options shared with the baseline.
  KMeansOptions kmeans;
  /// Banding shape over SimHash bits.
  BandingParams banding = {16, 4};
  /// Hyperplane seed.
  uint64_t seed = 99;
};

/// \brief Engine provider producing SimHash cluster shortlists for numeric
/// items (the numeric twin of ClusterShortlistProvider).
class SimHashShortlistProvider {
 public:
  SimHashShortlistProvider(const LshKMeansOptions& options,
                           uint32_t num_clusters)
      : options_(options), num_clusters_(num_clusters) {
    LSHC_CHECK_GE(num_clusters, 1u);
    cluster_stamp_.assign(num_clusters, 0);
  }

  static constexpr bool kExhaustive = false;

  /// Computes all SimHash signatures and builds the banding index.
  Status Prepare(const NumericDataset& dataset) {
    const uint32_t n = dataset.num_items();
    if (n == 0) return Status::InvalidArgument("dataset is empty");
    const uint32_t width = options_.banding.num_hashes();
    hasher_ = std::make_unique<SimHasher>(width, dataset.dimensions(),
                                          options_.seed);
    std::vector<uint64_t> signatures(static_cast<size_t>(n) * width);
    for (uint32_t item = 0; item < n; ++item) {
      hasher_->ComputeSignature(dataset.Row(item),
                                signatures.data() +
                                    static_cast<size_t>(item) * width);
    }
    index_ = std::make_unique<BandedIndex>(signatures, n, options_.banding);
    return Status::OK();
  }

  /// Engine contract; see ClusterShortlistProvider::GetCandidates.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     std::vector<uint32_t>* out) {
    out->clear();
    ++epoch_;
    const uint32_t current = assignment[item];
    cluster_stamp_[current] = epoch_;
    out->push_back(current);
    index_->VisitCandidates(item, [&](uint32_t other) {
      const uint32_t cluster = assignment[other];
      if (cluster_stamp_[cluster] != epoch_) {
        cluster_stamp_[cluster] = epoch_;
        out->push_back(cluster);
      }
    });
  }

  /// The underlying banding index (null before Prepare).
  const BandedIndex* index() const { return index_.get(); }

 private:
  LshKMeansOptions options_;
  uint32_t num_clusters_;
  std::unique_ptr<SimHasher> hasher_;
  std::unique_ptr<BandedIndex> index_;
  std::vector<uint32_t> cluster_stamp_;
  uint32_t epoch_ = 0;
};

/// Runs LSH-K-Means.
inline Result<ClusteringResult> RunLshKMeans(const NumericDataset& dataset,
                                             const LshKMeansOptions& options) {
  SimHashShortlistProvider provider(options, options.kmeans.num_clusters);
  return RunKMeansEngine(dataset, options.kmeans, provider);
}

}  // namespace lshclust
