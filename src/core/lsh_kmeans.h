#pragma once

/// \file lsh_kmeans.h
/// \brief LSH-K-Means — the paper's framework applied to numeric data
/// (its §VI future work), with SimHash as the locality sensitive family.
///
/// \deprecated This per-algorithm entry point is a compatibility shim over
/// the `lshclust::Clusterer` front door (api/clusterer.h): RunLshKMeans is
/// exactly `Clusterer{numeric, simhash}` and new code should build a
/// ClustererSpec instead. The SimHash family itself now lives in
/// core/simhash_shortlist_index.h (re-exported here for compatibility).
///
/// Identical structure to MH-K-Modes: sign-random-projection signatures
/// are computed once per item, banded into buckets, and each assignment
/// step searches only the clusters currently holding the item's bucket
/// neighbours. Collision probability per bit is 1 - theta/pi, so the
/// banding S-curve selects by angular similarity instead of Jaccard.

#include "clustering/kmeans.h"
#include "core/simhash_shortlist_index.h"  // IWYU pragma: export
#include "util/result.h"

namespace lshclust {

/// \brief Options for LSH-K-Means.
struct LshKMeansOptions {
  /// K-Means options shared with the baseline.
  KMeansOptions kmeans;
  /// Banding shape over SimHash bits.
  BandingParams banding = {16, 4};
  /// Hyperplane seed.
  uint64_t seed = 99;
};

/// Runs LSH-K-Means through the Clusterer front door.
/// \deprecated Prefer api/clusterer.h (see the file comment).
Result<ClusteringResult> RunLshKMeans(const NumericDataset& dataset,
                                      const LshKMeansOptions& options);

}  // namespace lshclust
