#include "core/cluster_shortlist_index.h"

#include "util/stopwatch.h"

namespace lshclust {

ClusterShortlistProvider::ClusterShortlistProvider(
    const ShortlistIndexOptions& options, uint32_t num_clusters)
    : options_(options), num_clusters_(num_clusters) {
  LSHC_CHECK_GE(num_clusters, 1u) << "need at least one cluster";
  LSHC_CHECK(options.banding.bands >= 1 && options.banding.rows >= 1)
      << "banding needs at least one band and one row";
  const uint32_t width = options_.banding.num_hashes();
  if (options_.algorithm == SignatureAlgorithm::kClassicMinHash) {
    minhasher_ = std::make_unique<MinHasher>(width, options_.seed,
                                             options_.minhash_mode);
  } else {
    oph_ = std::make_unique<OnePermutationMinHasher>(width, options_.seed);
  }
  cluster_stamp_.assign(num_clusters, 0);
}

void ClusterShortlistProvider::ComputeSignature(
    std::span<const uint32_t> tokens, uint64_t* out) const {
  if (minhasher_ != nullptr) {
    minhasher_->ComputeSignature(tokens, out);
  } else {
    oph_->ComputeSignature(tokens, out);
  }
}

Status ClusterShortlistProvider::Prepare(const CategoricalDataset& dataset) {
  const uint32_t n = dataset.num_items();
  if (n == 0) return Status::InvalidArgument("dataset is empty");
  const uint32_t width = options_.banding.num_hashes();

  Stopwatch watch;
  std::vector<uint64_t> signatures(static_cast<size_t>(n) * width);
  std::vector<uint32_t> tokens;
  for (uint32_t item = 0; item < n; ++item) {
    dataset.PresentTokens(item, &tokens);  // Alg. 2 lines 2-4
    ComputeSignature(tokens, signatures.data() +
                                 static_cast<size_t>(item) * width);
  }
  signature_seconds_ = watch.ElapsedSeconds();

  watch.Restart();
  index_ = std::make_unique<BandedIndex>(signatures, n, options_.banding);
  index_seconds_ = watch.ElapsedSeconds();

  if (options_.keep_signatures) {
    signatures_ = std::move(signatures);
  }
  return Status::OK();
}

void ClusterShortlistProvider::GetCandidates(
    uint32_t item, std::span<const uint32_t> assignment,
    std::vector<uint32_t>* out) {
  LSHC_DCHECK(index_ != nullptr) << "Prepare() must run before queries";
  out->clear();
  ++epoch_;
  // The current cluster is always a candidate (the item collides with
  // itself, but make it unconditional so the contract holds even for
  // degenerate banding).
  const uint32_t current = assignment[item];
  cluster_stamp_[current] = epoch_;
  out->push_back(current);
  index_->VisitCandidates(item, [&](uint32_t other) {
    const uint32_t cluster = assignment[other];
    if (cluster_stamp_[cluster] != epoch_) {
      cluster_stamp_[cluster] = epoch_;
      out->push_back(cluster);
    }
  });
}

void ClusterShortlistProvider::GetCandidatesForTokens(
    std::span<const uint32_t> tokens, std::span<const uint32_t> assignment,
    std::vector<uint32_t>* out) {
  LSHC_CHECK(index_ != nullptr) << "Prepare() must run before queries";
  out->clear();
  ++epoch_;
  std::vector<uint64_t> signature(options_.banding.num_hashes());
  ComputeSignature(tokens, signature.data());
  index_->VisitCandidatesOfSignature(signature, [&](uint32_t other) {
    const uint32_t cluster = assignment[other];
    if (cluster_stamp_[cluster] != epoch_) {
      cluster_stamp_[cluster] = epoch_;
      out->push_back(cluster);
    }
  });
}

BandedIndex::Stats ClusterShortlistProvider::IndexStats() const {
  LSHC_CHECK(index_ != nullptr) << "Prepare() must run before IndexStats";
  return index_->ComputeStats();
}

uint64_t ClusterShortlistProvider::MemoryUsageBytes() const {
  uint64_t bytes = sizeof(*this);
  if (index_ != nullptr) bytes += index_->MemoryUsageBytes();
  bytes += signatures_.size() * sizeof(uint64_t);
  bytes += cluster_stamp_.size() * sizeof(uint32_t);
  return bytes;
}

}  // namespace lshclust
