#include "core/cluster_shortlist_index.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace lshclust {

Status MinHashShortlistFamily::ValidateOptions(const Options& options) {
  LSHC_RETURN_NOT_OK(ValidateBanding(options.banding, "MinHash banding"));
  return ValidateSketchPrefilter(options.sketch, "MinHash sketch");
}

MinHashShortlistFamily::MinHashShortlistFamily(const Options& options)
    : options_(options) {
  LSHC_DCHECK(ValidateOptions(options).ok())
      << "invalid MinHash index options; call ValidateOptions first";
  const uint32_t width = options_.banding.num_hashes();
  if (options_.algorithm == SignatureAlgorithm::kClassicMinHash) {
    minhasher_ = std::make_unique<MinHasher>(width, options_.seed,
                                             options_.minhash_mode);
  } else {
    oph_ = std::make_unique<OnePermutationMinHasher>(width, options_.seed);
  }
}

MinHashShortlistFamily::MinHashShortlistFamily(
    const MinHashShortlistFamily& other)
    : options_(other.options_),
      minhasher_(other.minhasher_ != nullptr
                     ? std::make_unique<MinHasher>(*other.minhasher_)
                     : nullptr),
      oph_(other.oph_ != nullptr
               ? std::make_unique<OnePermutationMinHasher>(*other.oph_)
               : nullptr) {}

MinHashShortlistFamily& MinHashShortlistFamily::operator=(
    const MinHashShortlistFamily& other) {
  if (this != &other) {
    MinHashShortlistFamily copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Status MinHashShortlistFamily::ComputeSignatures(
    const Dataset& dataset, std::vector<uint64_t>* signatures,
    ThreadPool* pool, const std::function<bool()>* cancel) const {
  const uint32_t n = dataset.num_items();
  const uint32_t width = options_.banding.num_hashes();
  signatures->resize(static_cast<size_t>(n) * width);
  // Signing is pure per item (each writes only its own matrix row), so the
  // parallel pass is bit-identical to the sequential one; only the token
  // scratch is per worker. The cancel hook is polled once per batch —
  // a batch that already started still completes, so a cancelled pass
  // wastes at most one batch per worker.
  std::atomic<bool> cancelled{false};
  std::vector<std::vector<uint32_t>> worker_tokens(
      pool == nullptr ? 1 : pool->num_threads());
  const auto sign_range = [&](uint32_t begin, uint32_t end,
                              uint32_t worker) {
    if (cancel != nullptr) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      if ((*cancel)()) {
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
    std::vector<uint32_t>& tokens = worker_tokens[worker];
    for (uint32_t item = begin; item < end; ++item) {
      dataset.PresentTokens(item, &tokens);  // Alg. 2 lines 2-4
      ComputeQuerySignature(tokens, signatures->data() +
                                        static_cast<size_t>(item) * width);
    }
  };
  if (pool == nullptr) {
    // Same batch decomposition as the pooled path, so the poll cadence —
    // and with it the cancellation latency — does not depend on whether a
    // pool was given.
    for (uint32_t begin = 0; begin < n; begin += kSignatureChunkSize) {
      sign_range(begin, std::min(n, begin + kSignatureChunkSize), 0);
      if (cancelled.load(std::memory_order_relaxed)) break;
    }
  } else {
    pool->ParallelFor(0, n, kSignatureChunkSize, sign_range);
  }
  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled(
        "signature computation stopped by the cancellation hook at a "
        "batch boundary");
  }
  return Status::OK();
}

void MinHashShortlistFamily::ComputeQuerySignature(
    std::span<const uint32_t> tokens, uint64_t* out) const {
  if (minhasher_ != nullptr) {
    minhasher_->ComputeSignature(tokens, out);
  } else {
    oph_->ComputeSignature(tokens, out);
  }
}

uint64_t MinHashShortlistFamily::MemoryUsageBytes() const {
  // The hashers hold O(width) seeds; report the dominant term.
  return static_cast<uint64_t>(options_.banding.num_hashes()) *
         sizeof(uint64_t);
}

}  // namespace lshclust
