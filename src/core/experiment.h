#pragma once

/// \file experiment.h
/// \brief The experiment harness behind every figure: runs K-Modes and
/// MH-K-Modes variants on one dataset with *identical initial centroids*
/// (the paper's controlled comparison, §IV-A) and collects per-iteration
/// series plus final purity.

#include <cstdint>
#include <string>
#include <vector>

#include "clustering/kmodes.h"
#include "core/mh_kmodes.h"
#include "lsh/banded_index.h"
#include "util/result.h"

namespace lshclust {

/// \brief One algorithm variant in a comparison.
struct MethodSpec {
  /// Display label, e.g. "K-Modes" or "MH-K-Modes 20b 5r".
  std::string label;
  /// False: exhaustive baseline. True: MinHash-accelerated.
  bool use_lsh = false;
  /// Banding shape (LSH methods only).
  BandingParams banding{20, 5};
  /// Signature generator (LSH methods only).
  SignatureAlgorithm algorithm = SignatureAlgorithm::kClassicMinHash;
};

/// The exhaustive baseline ("K-Modes").
MethodSpec KModesSpec();

/// An MH-K-Modes variant labelled the paper's way ("MH-K-Modes 20b 5r").
MethodSpec MHKModesSpec(uint32_t bands, uint32_t rows);

/// \brief One method's outcome within a comparison.
struct MethodRun {
  MethodSpec spec;
  ClusteringResult result;
  /// Cluster purity against the dataset labels; -1 when unlabeled.
  double purity = -1.0;
  /// Index diagnostics (LSH methods only; has_index false otherwise).
  bool has_index = false;
  BandedIndex::Stats index_stats;
  uint64_t index_memory_bytes = 0;
};

/// \brief Options shared by all methods of one comparison.
struct ComparisonOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Refinement iteration cap.
  uint32_t max_iterations = 100;
  /// Seeds both the shared initial-centroid draw and the engines.
  uint64_t seed = 42;
  /// Evaluate P(W, Q) per iteration.
  bool compute_cost = true;
  /// Empty-cluster handling.
  EmptyClusterPolicy empty_cluster_policy =
      EmptyClusterPolicy::kKeepPreviousMode;
};

/// Runs every method on `dataset` with one shared random draw of initial
/// centroids, so differences between runs come from the assignment
/// strategy alone. Computes purity when the dataset has labels.
Result<std::vector<MethodRun>> RunComparison(
    const CategoricalDataset& dataset, const ComparisonOptions& options,
    const std::vector<MethodSpec>& methods);

}  // namespace lshclust
