#pragma once

/// \file lsh_kprototypes.h
/// \brief LSH-K-Prototypes: the paper's framework on mixed data, with one
/// LSH family per modality.
///
/// The categorical half of an item is MinHashed (Jaccard over present
/// tokens, as in MH-K-Modes); the numeric half is SimHashed (angular
/// similarity). Each modality gets its own banding index, and an item's
/// candidate clusters are the union of both indexes' shortlists — an item
/// similar to a cluster in *either* modality reaches the exact mixed
/// distance computation, which then weighs the modalities by gamma.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "clustering/kprototypes.h"
#include "hashing/minhash.h"
#include "hashing/simhash.h"
#include "lsh/banded_index.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for LSH-K-Prototypes.
struct LshKPrototypesOptions {
  /// K-Prototypes options shared with the baseline.
  KPrototypesOptions kprototypes;
  /// Banding over the MinHash signature of the categorical tokens.
  BandingParams categorical_banding = {20, 5};
  /// Banding over the SimHash bits of the numeric vector. SimHash bits
  /// are weak (collision probability 0.5 for orthogonal vectors), so
  /// numeric bands need far more rows than MinHash bands: 16 bits per
  /// band keeps merely-angularly-close clusters out of the shortlist
  /// while near-identical vectors still collide with high probability.
  BandingParams numeric_banding = {10, 16};
  /// Hash family seed.
  uint64_t seed = 99;
};

/// \brief Dual-modality provider for RunKPrototypesEngine.
class MixedShortlistProvider {
 public:
  MixedShortlistProvider(const LshKPrototypesOptions& options,
                         uint32_t num_clusters)
      : options_(options), num_clusters_(num_clusters) {
    LSHC_CHECK_GE(num_clusters, 1u);
    cluster_stamp_.assign(num_clusters, 0);
  }

  static constexpr bool kExhaustive = false;

  /// Builds both indexes (one pass per modality over the items).
  Status Prepare(const MixedDataset& dataset) {
    const uint32_t n = dataset.num_items();
    if (n == 0) return Status::InvalidArgument("dataset is empty");

    // Categorical index: MinHash over present tokens.
    {
      const uint32_t width = options_.categorical_banding.num_hashes();
      const MinHasher hasher(width, options_.seed);
      std::vector<uint64_t> signatures(static_cast<size_t>(n) * width);
      std::vector<uint32_t> tokens;
      for (uint32_t item = 0; item < n; ++item) {
        dataset.categorical().PresentTokens(item, &tokens);
        hasher.ComputeSignature(
            tokens, signatures.data() + static_cast<size_t>(item) * width);
      }
      categorical_index_ = std::make_unique<BandedIndex>(
          signatures, n, options_.categorical_banding);
    }

    // Numeric index: SimHash bits over *mean-centered* vectors. SimHash
    // discriminates by angle from the origin; centering spreads clusters
    // across directions so nearby-but-distinct clusters stop sharing
    // sign patterns. Distances are computed on the raw data — centering
    // only affects candidate generation.
    {
      const uint32_t d = dataset.num_numeric();
      std::vector<double> mean(d, 0.0);
      for (uint32_t item = 0; item < n; ++item) {
        const auto row = dataset.numeric().Row(item);
        for (uint32_t j = 0; j < d; ++j) mean[j] += row[j];
      }
      for (auto& coordinate : mean) coordinate /= n;

      const uint32_t width = options_.numeric_banding.num_hashes();
      const SimHasher hasher(width, d, options_.seed ^ 0x51A5ULL);
      std::vector<uint64_t> signatures(static_cast<size_t>(n) * width);
      std::vector<double> centered(d);
      for (uint32_t item = 0; item < n; ++item) {
        const auto row = dataset.numeric().Row(item);
        for (uint32_t j = 0; j < d; ++j) centered[j] = row[j] - mean[j];
        hasher.ComputeSignature(
            centered, signatures.data() + static_cast<size_t>(item) * width);
      }
      numeric_index_ = std::make_unique<BandedIndex>(
          signatures, n, options_.numeric_banding);
    }
    return Status::OK();
  }

  /// Union of both modalities' candidate clusters, deduplicated, always
  /// containing the item's current cluster.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     std::vector<uint32_t>* out) {
    out->clear();
    ++epoch_;
    const uint32_t current = assignment[item];
    cluster_stamp_[current] = epoch_;
    out->push_back(current);
    const auto visit = [&](uint32_t other) {
      const uint32_t cluster = assignment[other];
      if (cluster_stamp_[cluster] != epoch_) {
        cluster_stamp_[cluster] = epoch_;
        out->push_back(cluster);
      }
    };
    categorical_index_->VisitCandidates(item, visit);
    numeric_index_->VisitCandidates(item, visit);
  }

  /// The per-modality indexes (null before Prepare).
  const BandedIndex* categorical_index() const {
    return categorical_index_.get();
  }
  const BandedIndex* numeric_index() const { return numeric_index_.get(); }

 private:
  LshKPrototypesOptions options_;
  uint32_t num_clusters_;
  std::unique_ptr<BandedIndex> categorical_index_;
  std::unique_ptr<BandedIndex> numeric_index_;
  std::vector<uint32_t> cluster_stamp_;
  uint32_t epoch_ = 0;
};

/// Runs LSH-K-Prototypes.
inline Result<ClusteringResult> RunLshKPrototypes(
    const MixedDataset& dataset, const LshKPrototypesOptions& options) {
  MixedShortlistProvider provider(options,
                                  options.kprototypes.num_clusters);
  return RunKPrototypesEngine(dataset, options.kprototypes, provider);
}

}  // namespace lshclust
