#pragma once

/// \file lsh_kprototypes.h
/// \brief LSH-K-Prototypes: the paper's framework on mixed data, with one
/// LSH family per modality concatenated into a single signature.
///
/// \deprecated This per-algorithm entry point is a compatibility shim over
/// the `lshclust::Clusterer` front door (api/clusterer.h):
/// RunLshKPrototypes is exactly `Clusterer{mixed, mixed-concat}` and new
/// code should build a ClustererSpec instead. The concatenated family
/// itself now lives in core/mixed_shortlist_index.h (re-exported here for
/// compatibility).
///
/// The categorical half of an item is MinHashed (Jaccard over present
/// tokens, as in MH-K-Modes); the numeric half is SimHashed (angular
/// similarity); candidate clusters are the union of the per-modality
/// candidate sets (see mixed_shortlist_index.h).

#include "clustering/kprototypes.h"
#include "core/mixed_shortlist_index.h"  // IWYU pragma: export
#include "util/result.h"

namespace lshclust {

/// \brief Options for LSH-K-Prototypes.
struct LshKPrototypesOptions {
  /// K-Prototypes options shared with the baseline.
  KPrototypesOptions kprototypes;
  /// Banding over the MinHash signature of the categorical tokens.
  BandingParams categorical_banding = {20, 5};
  /// Banding over the SimHash bits of the numeric vector (see
  /// MixedIndexOptions::numeric_banding).
  BandingParams numeric_banding = {10, 16};
  /// Hash family seed.
  uint64_t seed = 99;
};

/// Runs LSH-K-Prototypes through the Clusterer front door.
/// \deprecated Prefer api/clusterer.h (see the file comment).
Result<ClusteringResult> RunLshKPrototypes(
    const MixedDataset& dataset, const LshKPrototypesOptions& options);

}  // namespace lshclust
