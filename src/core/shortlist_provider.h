#pragma once

/// \file shortlist_provider.h
/// \brief The generic LSH cluster-shortlist provider — the heart of the
/// paper (Algorithm 2), templated on the hash family.
///
/// All three LSH accelerations (MH-K-Modes, LSH-K-Means,
/// LSH-K-Prototypes) are this one class instantiated with a different
/// signature family:
///
///  * MinHashShortlistFamily (core/cluster_shortlist_index.h) — Jaccard
///    over present tokens, categorical data.
///  * SimHashShortlistFamily (core/lsh_kmeans.h) — angular similarity,
///    numeric data.
///  * MixedShortlistFamily (core/lsh_kprototypes.h) — concatenated
///    MinHash + SimHash signatures over a heterogeneous band layout,
///    mixed data.
///
/// Lifecycle, following §III-B exactly:
///  1. After the initial assignment, one pass over the dataset computes a
///     signature per item (family-specific) and builds the banding index.
///     Items never change, so this happens once.
///  2. During refinement, an item's query walks its own buckets (it was
///     inserted, so the buckets are known — no re-hashing), collects the
///     co-bucketed items, and dereferences their cluster through the
///     `assignment` span the caller passes. The deduplicated cluster set
///     is the shortlist.
///  3. "Updating the index after a move" is writing assignment[item] — an
///     assignment array is the cluster reference store, which is why
///     updates are "a fast operation ... merely update the item's cluster
///     that is stored via a reference or pointer" (§III-B). Note the
///     unified engine passes a snapshot of the assignment taken at the
///     start of each refinement pass (moves become visible to queries at
///     the *next* pass, not mid-pass) — that is what makes its
///     batch-parallel assignment deterministic for every thread count;
///     see clustering/engine.h.
///
/// The item always shares its buckets with itself, so the shortlist always
/// contains its current cluster and is never empty.
///
/// Queries are const and take an explicit Scratch, so the engine can run
/// them from many worker threads at once (one scratch per worker); the
/// scratch-less overload uses a provider-owned scratch for sequential
/// callers.
///
/// The family concept:
/// \code
///   struct SomeFamily {
///     using Dataset = ...;                       // what gets indexed
///     using Options = ...;                       // index configuration
///     explicit SomeFamily(const Options&);
///     // Row-major n x signature_width() matrix of signature components.
///     // Signing is pure per item, so families fan the loop out across
///     // `pool` when one is given (nullptr = sequential) — results are
///     // bit-identical either way. Families may accept a trailing
///     // `const std::function<bool()>* cancel` and poll it at batch
///     // boundaries, returning kCancelled (Prepare forwards the engine's
///     // cooperative-cancel hook to such families).
///     Status ComputeSignatures(const Dataset&, std::vector<uint64_t>*,
///                              ThreadPool* pool);
///     // Rows per band, concatenated over the signature.
///     std::vector<uint32_t> BandLayout() const;
///     uint32_t signature_width() const;
///     bool keep_signatures() const;              // retain the matrix?
///     uint64_t MemoryUsageBytes() const;         // hasher footprint
///   };
/// \endcode
/// Families may additionally expose ComputeQuerySignature(query, out) for
/// external (non-indexed) queries; see GetCandidatesForQuery.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "lsh/banded_index.h"
#include "lsh/bit_sketch.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace lshclust {

/// Items per ParallelFor unit of a parallel signing pass. Fixed (never
/// derived from the thread count) so the decomposition is identical for
/// every pool size; smaller than the engine's assignment chunk because a
/// signature costs far more than a distance.
inline constexpr uint32_t kSignatureChunkSize = 256;

/// \brief Per-caller query state for epoch-stamped cluster deduplication:
/// no per-query allocation, O(1) reset. Shared by every shortlist-style
/// provider (LSH families here, canopies in core/canopy_kmodes.h); the
/// engine makes one per worker thread.
struct ClusterDedupScratch {
  std::vector<uint32_t> cluster_stamp;
  /// Second stamp plane for the sketch prefilter: marks clusters that have
  /// so far only been seen through screened-out peers. A cluster counts as
  /// pruned only if *every* peer that would have proposed it failed the
  /// screen (a later surviving peer "resurrects" it).
  std::vector<uint32_t> pruned_stamp;
  uint32_t epoch = 0;
  /// Clusters fully pruned by the sketch screen in the most recent query
  /// through this scratch (0 when screening is off).
  uint64_t last_pruned = 0;
};

/// Returns a scratch sized for `num_clusters` clusters.
inline ClusterDedupScratch MakeClusterDedupScratch(uint32_t num_clusters) {
  ClusterDedupScratch scratch;
  scratch.cluster_stamp.assign(num_clusters, 0);
  scratch.pruned_stamp.assign(num_clusters, 0);
  return scratch;
}

/// Starts a new dedup epoch. After 2^32 queries the epoch counter wraps
/// into values the stamp arrays may still hold from earlier epochs, which
/// would make stale stamps read as "already seen" and silently drop
/// clusters from shortlists — so on wrap the stamps are cleared and the
/// epoch restarts at 1 (stamp 0 = "never stamped"). Every epoch bump in
/// the library must go through here.
inline void BumpDedupEpoch(ClusterDedupScratch& scratch) {
  if (++scratch.epoch == 0) {
    std::fill(scratch.cluster_stamp.begin(), scratch.cluster_stamp.end(), 0u);
    std::fill(scratch.pruned_stamp.begin(), scratch.pruned_stamp.end(), 0u);
    scratch.epoch = 1;
  }
}

/// Collects into `out` the deduplicated clusters (per `assignment`) of the
/// peers that `visit_peers` enumerates, first entry being `item`'s own
/// current cluster. The one dedup loop behind every shortlist provider.
///
/// \param visit_peers callable invoked as visit_peers(sink) where sink is
///        a callable taking a peer item id; peers may repeat freely
template <typename VisitPeersFn>
void CollectCandidateClusters(uint32_t item,
                              std::span<const uint32_t> assignment,
                              ClusterDedupScratch& scratch,
                              std::vector<uint32_t>* out,
                              VisitPeersFn&& visit_peers) {
  out->clear();
  BumpDedupEpoch(scratch);
  // The current cluster is always a candidate (the item collides with
  // itself, but make it unconditional so the contract holds even for
  // degenerate banding).
  const uint32_t current = assignment[item];
  scratch.cluster_stamp[current] = scratch.epoch;
  out->push_back(current);
  visit_peers([&](uint32_t other) {
    const uint32_t cluster = assignment[other];
    if (scratch.cluster_stamp[cluster] != scratch.epoch) {
      scratch.cluster_stamp[cluster] = scratch.epoch;
      out->push_back(cluster);
    }
  });
  scratch.last_pruned = 0;
}

/// CollectCandidateClusters with a per-peer sketch screen: a peer for which
/// `screen(peer)` returns false does not propose its cluster. The item's
/// own cluster is still entered unconditionally, and peers of clusters that
/// already survived skip the screen entirely (their Hamming test could not
/// change anything). On return `scratch.last_pruned` counts the clusters
/// whose *every* proposing peer was screened out — exactly the clusters
/// whose exact distance evaluations were avoided.
template <typename VisitPeersFn, typename ScreenFn>
void CollectCandidateClustersScreened(uint32_t item,
                                      std::span<const uint32_t> assignment,
                                      ClusterDedupScratch& scratch,
                                      std::vector<uint32_t>* out,
                                      VisitPeersFn&& visit_peers,
                                      ScreenFn&& screen) {
  out->clear();
  BumpDedupEpoch(scratch);
  const uint32_t current = assignment[item];
  scratch.cluster_stamp[current] = scratch.epoch;
  out->push_back(current);
  uint64_t pruned = 0;
  visit_peers([&](uint32_t other) {
    const uint32_t cluster = assignment[other];
    if (scratch.cluster_stamp[cluster] == scratch.epoch) return;
    if (screen(other)) {
      scratch.cluster_stamp[cluster] = scratch.epoch;
      out->push_back(cluster);
      if (scratch.pruned_stamp[cluster] == scratch.epoch) --pruned;
    } else if (scratch.pruned_stamp[cluster] != scratch.epoch) {
      scratch.pruned_stamp[cluster] = scratch.epoch;
      ++pruned;
    }
  });
  scratch.last_pruned = pruned;
}

/// \brief Engine provider (see clustering/engine.h) producing LSH cluster
/// shortlists. Also usable standalone for any "candidate clusters of this
/// item" query.
template <typename Family>
class ShortlistProvider {
 public:
  using Dataset = typename Family::Dataset;
  using Options = typename Family::Options;

  /// \param options family/index configuration
  /// \param num_clusters k — shortlist entries are cluster ids < k
  ShortlistProvider(const Options& options, uint32_t num_clusters)
      : family_(options), num_clusters_(num_clusters) {
    LSHC_DCHECK(num_clusters >= 1) << "need at least one cluster";
    scratch_ = MakeScratch();
  }

  /// Reassembles a provider from persisted parts: a family whose hashers
  /// were already rebuilt from (options, seed), the dumped banded index,
  /// and the sketch table (empty when the fit ran unscreened). No signing
  /// pass runs — `dataset_sign_passes()` stays 0 on the result, which is
  /// how warm-start loaders prove the saved buckets were adopted verbatim
  /// rather than re-hashed. The caller is responsible for cross-checking
  /// index/family shape agreement (persist/model_io.cpp does).
  static ShortlistProvider FromParts(Family family, uint32_t num_clusters,
                                     std::unique_ptr<BandedIndex> index,
                                     BitSketchTable sketches,
                                     uint64_t sketch_max_hamming) {
    ShortlistProvider provider(std::move(family), num_clusters);
    provider.index_ = std::move(index);
    provider.sketches_ = std::move(sketches);
    provider.sketch_max_hamming_ = sketch_max_hamming;
    return provider;
  }

  /// Engine contract: shortlists instead of exhaustive scans.
  static constexpr bool kExhaustive = false;

  /// Per-caller query state (see ClusterDedupScratch).
  using Scratch = ClusterDedupScratch;

  /// A fresh scratch sized for this provider's cluster count.
  Scratch MakeScratch() const { return MakeClusterDedupScratch(num_clusters_); }

  /// \brief A shard's handle on the centroid-side shortlist state: a
  /// read-only view of the banding index + family, carrying no mutable
  /// provider state (queries go through caller-owned scratch). The engine
  /// hands one to every shard of its shard plan, so each shard's query
  /// path owns its state outright. On a single node every replica aliases
  /// the same index; the handle is the seam where multi-node scale-out
  /// substitutes a real per-shard copy.
  class Replica {
   public:
    explicit Replica(const ShortlistProvider* provider)
        : provider_(provider) {}

    /// Same contract as ShortlistProvider::GetCandidates (const overload).
    void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                       Scratch& scratch, std::vector<uint32_t>* out) const {
      provider_->GetCandidates(item, assignment, scratch, out);
    }

    /// A fresh scratch sized for the replicated provider's cluster count.
    Scratch MakeScratch() const { return provider_->MakeScratch(); }

   private:
    const ShortlistProvider* provider_;
  };

  /// A shard replica handle of this provider's read-only query state.
  /// Valid for the provider's lifetime; Prepare() may run after handles
  /// were made (the engine creates them before building the index).
  Replica MakeReplica() const { return Replica(this); }

  /// Computes all signatures and builds the banding index (the one-time
  /// pass of Alg. 2). Called by the engine after the initial assignment.
  /// Signature computation is embarrassingly parallel over items, so when
  /// the engine hands over its worker pool the signing pass is chunked
  /// across it; the index build stays sequential. Bit-identical for every
  /// pool size including none.
  ///
  /// Cooperative cancellation: when `cancel` is non-null it is polled at
  /// signing-batch boundaries (every kSignatureChunkSize items, from
  /// whichever worker runs the batch — the hook must be thread-safe, same
  /// contract as EngineOptions::cancel) and again between the signing and
  /// index-build phases. A poll answering true aborts with
  /// StatusCode::kCancelled and leaves the provider index-less: any
  /// previous index is dropped on entry and the new one is only installed
  /// on success, so a cancelled Prepare can never leak a stale or partial
  /// index into diagnostics.
  [[nodiscard]] Status Prepare(const Dataset& dataset, ThreadPool* pool = nullptr,
                 const std::function<bool()>* cancel = nullptr) {
    const uint32_t n = dataset.num_items();
    if (n == 0) return Status::InvalidArgument("dataset is empty");

    // Either this Prepare completes and installs a fresh index, or the
    // provider ends up with none — never a half-built or stale one.
    index_.reset();
    signatures_.clear();

    Stopwatch watch;
    std::vector<uint64_t> signatures;
    if constexpr (requires {
                    family_.ComputeSignatures(dataset, &signatures, pool,
                                              cancel);
                  }) {
      LSHC_RETURN_NOT_OK(
          family_.ComputeSignatures(dataset, &signatures, pool, cancel));
    } else {
      if (cancel != nullptr && (*cancel)()) {
        return Status::Cancelled(
            "index preparation stopped by the cancellation hook before "
            "signature computation");
      }
      LSHC_RETURN_NOT_OK(family_.ComputeSignatures(dataset, &signatures,
                                                   pool));
    }
    ++dataset_sign_passes_;
    signature_seconds_ = watch.ElapsedSeconds();

    if (cancel != nullptr && (*cancel)()) {
      return Status::Cancelled(
          "index preparation stopped by the cancellation hook between "
          "signature computation and index construction");
    }

    watch.Restart();
    const std::vector<uint32_t> layout = family_.BandLayout();
    index_ = std::make_unique<BandedIndex>(signatures, n, layout);
    index_seconds_ = watch.ElapsedSeconds();

    // The sketch table packs the same signature matrix the index was just
    // built from — before a family that discards signatures lets go of it —
    // so enabling the prefilter never adds a signing pass.
    const SketchPrefilterOptions sketch = SketchOptions();
    if (sketch.enabled) {
      sketches_.Build(signatures, n, family_.signature_width());
      sketch_max_hamming_ =
          SketchHammingThreshold(sketch, family_.signature_width());
    } else {
      sketches_ = BitSketchTable();
    }

    if (family_.keep_signatures()) {
      signatures_ = std::move(signatures);
    }
    return Status::OK();
  }

  /// Fills `out` with the deduplicated candidate clusters of `item`:
  /// the clusters *currently* containing the items LSH considers similar
  /// to it, plus the item's own current cluster. Reads `assignment` as the
  /// cluster-reference store (the engine passes its per-pass snapshot).
  /// Thread-safe given a private `scratch`.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     Scratch& scratch, std::vector<uint32_t>* out) const {
    LSHC_DCHECK(index_ != nullptr) << "Prepare() must run before queries";
    if (!sketches_.empty()) {
      const uint64_t* query_sketch = sketches_.Row(item);
      CollectCandidateClustersScreened(
          item, assignment, scratch, out,
          [&](auto&& sink) { index_->VisitCandidates(item, sink); },
          [&](uint32_t other) {
            return sketches_.HammingTo(query_sketch, other) <=
                   sketch_max_hamming_;
          });
      return;
    }
    CollectCandidateClusters(item, assignment, scratch, out,
                             [&](auto&& sink) {
                               index_->VisitCandidates(item, sink);
                             });
  }

  /// Sequential convenience overload using the provider-owned scratch.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     std::vector<uint32_t>* out) {
    GetCandidates(item, assignment, scratch_, out);
  }

  /// As GetCandidates but for an external item given by its
  /// family-specific query representation (e.g. a token set for MinHash, a
  /// vector for SimHash) — a new item arriving after clustering. Only
  /// available for families exposing ComputeQuerySignature.
  template <typename Query>
  void GetCandidatesForQuery(const Query& query,
                             std::span<const uint32_t> assignment,
                             std::vector<uint32_t>* out) {
    LSHC_CHECK(index_ != nullptr) << "Prepare() must run before queries";
    out->clear();
    BumpDedupEpoch(scratch_);
    // The signature buffer lives in the provider so repeated queries (the
    // streaming hot path) never allocate.
    query_signature_.resize(family_.signature_width());
    family_.ComputeQuerySignature(query, query_signature_.data());
    if (!sketches_.empty()) {
      // External queries have no own-cluster guarantee, so screening may
      // empty the shortlist; callers already treat an empty shortlist as
      // "fall back to the exhaustive scan".
      query_sketch_.resize(sketches_.words());
      PackSketchBits(query_signature_.data(), sketches_.width(),
                     query_sketch_.data());
      uint64_t pruned = 0;
      index_->VisitCandidatesOfSignature(
          query_signature_, [&](uint32_t other) {
            const uint32_t cluster = assignment[other];
            if (scratch_.cluster_stamp[cluster] == scratch_.epoch) return;
            if (sketches_.HammingTo(query_sketch_.data(), other) <=
                sketch_max_hamming_) {
              scratch_.cluster_stamp[cluster] = scratch_.epoch;
              out->push_back(cluster);
              if (scratch_.pruned_stamp[cluster] == scratch_.epoch) --pruned;
            } else if (scratch_.pruned_stamp[cluster] != scratch_.epoch) {
              scratch_.pruned_stamp[cluster] = scratch_.epoch;
              ++pruned;
            }
          });
      scratch_.last_pruned = pruned;
      return;
    }
    index_->VisitCandidatesOfSignature(query_signature_, [&](uint32_t other) {
      const uint32_t cluster = assignment[other];
      if (scratch_.cluster_stamp[cluster] != scratch_.epoch) {
        scratch_.cluster_stamp[cluster] = scratch_.epoch;
        out->push_back(cluster);
      }
    });
    scratch_.last_pruned = 0;
  }

  /// Historical name of the categorical external query: candidates for a
  /// token set in the dataset's code space.
  void GetCandidatesForTokens(std::span<const uint32_t> tokens,
                              std::span<const uint32_t> assignment,
                              std::vector<uint32_t>* out) {
    GetCandidatesForQuery(tokens, assignment, out);
  }

  /// The hash family (hashers + configuration).
  const Family& family() const { return family_; }

  /// The per-item signature matrix computed by Prepare — non-empty only
  /// when the family keeps signatures. Lets callers (e.g. the streaming
  /// bootstrap) reuse the signing pass instead of re-hashing every item.
  std::span<const uint64_t> signatures() const { return signatures_; }

  /// The underlying banding index (null before Prepare).
  const BandedIndex* index() const { return index_.get(); }

  /// The packed bit-sketch table (empty unless the family's sketch
  /// prefilter is enabled and Prepare has run).
  const BitSketchTable& sketches() const { return sketches_; }

  /// True when shortlist queries screen candidates against bit sketches.
  bool sketch_enabled() const { return !sketches_.empty(); }

  /// The screening threshold: candidates whose sketch Hamming distance to
  /// the query exceeds this are dropped. Meaningful only when
  /// sketch_enabled().
  uint64_t sketch_max_hamming() const { return sketch_max_hamming_; }

  /// Heap footprint of the sketch table alone (0 when disabled) — the
  /// memory cost of enabling the prefilter, surfaced through IndexHandle.
  uint64_t SketchMemoryUsageBytes() const {
    return sketches_.MemoryUsageBytes();
  }

  /// Occupancy statistics of the underlying index.
  BandedIndex::Stats IndexStats() const {
    LSHC_CHECK(index_ != nullptr) << "Prepare() must run before IndexStats";
    return index_->ComputeStats();
  }

  /// Approximate heap footprint (index + any kept signatures).
  uint64_t MemoryUsageBytes() const {
    uint64_t bytes = sizeof(*this);
    if (index_ != nullptr) bytes += index_->MemoryUsageBytes();
    bytes += signatures_.size() * sizeof(uint64_t);
    bytes += scratch_.cluster_stamp.size() * sizeof(uint32_t);
    bytes += scratch_.pruned_stamp.size() * sizeof(uint32_t);
    bytes += query_signature_.capacity() * sizeof(uint64_t);
    bytes += query_sketch_.capacity() * sizeof(uint64_t);
    bytes += sketches_.MemoryUsageBytes();
    bytes += family_.MemoryUsageBytes();
    return bytes;
  }

  /// Seconds spent in the last Prepare, split into signature computation
  /// and index construction.
  double signature_seconds() const { return signature_seconds_; }
  double index_seconds() const { return index_seconds_; }

  /// Number of completed full-dataset signing passes this provider has
  /// executed — 1 after one successful Prepare. Query-side work (routed
  /// prediction, GetCandidatesForQuery) signs only the query and never
  /// raises this, which is how callers assert the fitted dataset is never
  /// re-signed when the fit-time index is reused.
  uint64_t dataset_sign_passes() const { return dataset_sign_passes_; }

 private:
  /// For FromParts: adopts an already-built family without signing.
  ShortlistProvider(Family family, uint32_t num_clusters)
      : family_(std::move(family)), num_clusters_(num_clusters) {
    LSHC_DCHECK(num_clusters >= 1) << "need at least one cluster";
    scratch_ = MakeScratch();
  }

  /// The family's sketch configuration, when it has one ({} = disabled for
  /// families predating the prefilter).
  SketchPrefilterOptions SketchOptions() const {
    if constexpr (requires { family_.sketch_options(); }) {
      return family_.sketch_options();
    } else {
      return {};
    }
  }

  Family family_;
  uint32_t num_clusters_;
  std::unique_ptr<BandedIndex> index_;
  std::vector<uint64_t> signatures_;  // kept only if family says so
  Scratch scratch_;                   // for the sequential overloads
  std::vector<uint64_t> query_signature_;  // GetCandidatesForQuery buffer
  std::vector<uint64_t> query_sketch_;     // its packed sketch twin
  BitSketchTable sketches_;           // empty unless the prefilter is on
  uint64_t sketch_max_hamming_ = 0;

  double signature_seconds_ = 0;
  double index_seconds_ = 0;
  uint64_t dataset_sign_passes_ = 0;
};

}  // namespace lshclust
