#pragma once

/// \file canopy_kmodes.h
/// \brief Canopy-K-Modes: the classic related-work accelerator (paper ref
/// [15]) plugged into the same engine hook as MH-K-Modes, so the two
/// search-space-reduction strategies compare head-to-head.
///
/// Candidate clusters of item X = the clusters currently containing X's
/// canopy peers — structurally identical to the MinHash shortlist, with
/// canopies (cheap-distance balls) replacing LSH buckets. Canopies are
/// built once after the initial assignment, exactly where MH-K-Modes
/// builds its index, so phase timings are comparable.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "clustering/canopy.h"
#include "clustering/engine.h"
#include "core/shortlist_provider.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for Canopy-K-Modes.
struct CanopyKModesOptions {
  /// K-Modes options shared with the baseline and MH-K-Modes.
  EngineOptions engine;
  /// Canopy construction parameters.
  CanopyOptions canopy;
};

/// \brief Engine provider producing canopy-peer cluster shortlists.
/// Parallel-capable: queries are const with per-caller scratch, same
/// contract as ShortlistProvider.
class CanopyShortlistProvider {
 public:
  CanopyShortlistProvider(const CanopyOptions& options, uint32_t num_clusters)
      : options_(options), num_clusters_(num_clusters) {
    LSHC_CHECK_GE(num_clusters, 1u);
    scratch_ = MakeScratch();
  }

  static constexpr bool kExhaustive = false;

  /// Per-caller query state (see ClusterDedupScratch).
  using Scratch = ClusterDedupScratch;

  /// A fresh scratch sized for this provider's cluster count.
  Scratch MakeScratch() const { return MakeClusterDedupScratch(num_clusters_); }

  /// Builds the canopy cover (the accelerator's one-time pass).
  Status Prepare(const CategoricalDataset& dataset) {
    LSHC_ASSIGN_OR_RETURN(CanopyIndex index,
                          CanopyIndex::Build(dataset, options_));
    index_ = std::make_unique<CanopyIndex>(std::move(index));
    return Status::OK();
  }

  /// Deduplicated clusters of the item's canopy peers, always containing
  /// its current cluster. Thread-safe given a private `scratch`.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     Scratch& scratch, std::vector<uint32_t>* out) const {
    CollectCandidateClusters(item, assignment, scratch, out,
                             [&](auto&& sink) {
                               index_->VisitCanopyPeers(item, sink);
                             });
  }

  /// Sequential convenience overload using the provider-owned scratch.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     std::vector<uint32_t>* out) {
    GetCandidates(item, assignment, scratch_, out);
  }

  /// The canopy cover (null before Prepare).
  const CanopyIndex* index() const { return index_.get(); }

 private:
  CanopyOptions options_;
  uint32_t num_clusters_;
  std::unique_ptr<CanopyIndex> index_;
  Scratch scratch_;
};

/// Runs Canopy-K-Modes.
inline Result<ClusteringResult> RunCanopyKModes(
    const CategoricalDataset& dataset, const CanopyKModesOptions& options) {
  CanopyShortlistProvider provider(options.canopy,
                                   options.engine.num_clusters);
  return RunEngine(dataset, options.engine, provider);
}

}  // namespace lshclust
