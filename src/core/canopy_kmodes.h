#pragma once

/// \file canopy_kmodes.h
/// \brief Canopy-K-Modes: the classic related-work accelerator (paper ref
/// [15]) plugged into the same engine hook as MH-K-Modes, so the two
/// search-space-reduction strategies compare head-to-head.
///
/// \deprecated This per-algorithm entry point is a compatibility shim over
/// the `lshclust::Clusterer` front door (api/clusterer.h): RunCanopyKModes
/// is exactly `Clusterer{categorical, canopy}` and new code should build a
/// ClustererSpec instead. The canopy provider itself now lives in
/// core/canopy_shortlist_index.h (re-exported here for compatibility).

#include "clustering/canopy.h"
#include "clustering/engine.h"
#include "core/canopy_shortlist_index.h"  // IWYU pragma: export
#include "util/result.h"

namespace lshclust {

/// \brief Options for Canopy-K-Modes.
struct CanopyKModesOptions {
  /// K-Modes options shared with the baseline and MH-K-Modes.
  EngineOptions engine;
  /// Canopy construction parameters.
  CanopyOptions canopy;
};

/// Runs Canopy-K-Modes through the Clusterer front door.
/// \deprecated Prefer api/clusterer.h (see the file comment).
Result<ClusteringResult> RunCanopyKModes(const CategoricalDataset& dataset,
                                         const CanopyKModesOptions& options);

}  // namespace lshclust
