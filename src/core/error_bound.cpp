#include "core/error_bound.h"

#include <algorithm>
#include <cmath>

#include "hashing/minhash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace lshclust {

std::vector<CollisionTableRow> MakeCollisionTable(
    uint32_t rows, const std::vector<std::pair<uint32_t, double>>& grid,
    uint32_t cluster_items) {
  std::vector<CollisionTableRow> table;
  table.reserve(grid.size());
  for (const auto& [bands, jaccard] : grid) {
    const BandingParams params{bands, rows};
    CollisionTableRow row;
    row.bands = bands;
    row.jaccard = jaccard;
    row.pair_probability = CandidatePairProbability(jaccard, params);
    row.mh_probability =
        ClusterCandidateProbability(jaccard, params, cluster_items);
    table.push_back(row);
  }
  return table;
}

std::vector<CollisionTableRow> MakePaperTable1() {
  // Table I: r = 1, "assuming a minimum of 10 other items in the cluster".
  return MakeCollisionTable(
      1,
      {{10, 0.01}, {10, 0.1},   {10, 0.2},  {10, 0.5}, {100, 0.001},
       {100, 0.01}, {100, 0.1}, {100, 0.5}, {100, 0.8}, {800, 0.0001},
       {800, 0.001}, {800, 0.01}, {800, 0.1}},
      /*cluster_items=*/10);
}

std::vector<CollisionTableRow> MakePaperTable2() {
  // Table II: r = 5, same cluster assumption.
  return MakeCollisionTable(5,
                            {{10, 0.1},  {10, 0.2},  {10, 0.5},
                             {10, 0.8},  {100, 0.1}, {100, 0.5},
                             {800, 0.1}, {800, 0.2}, {800, 0.3}},
                            /*cluster_items=*/10);
}

namespace {

/// Builds a pair of token sets of size `set_size` whose Jaccard similarity
/// is as close as possible to `jaccard`: |A∩B| = i tokens shared,
/// |A∪B| = 2z - i, so s = i / (2z - i) and i = round(2zs / (1+s)).
/// Token values are disjoint across trials via `base`.
uint32_t FillPair(double jaccard, uint32_t set_size, uint32_t base,
                  std::vector<uint32_t>* a, std::vector<uint32_t>* b) {
  const double z = static_cast<double>(set_size);
  const uint32_t intersection = static_cast<uint32_t>(
      std::min(z, std::round(2.0 * z * jaccard / (1.0 + jaccard))));
  a->clear();
  b->clear();
  uint32_t next = base;
  for (uint32_t i = 0; i < intersection; ++i) {
    a->push_back(next);
    b->push_back(next);
    ++next;
  }
  for (uint32_t i = intersection; i < set_size; ++i) a->push_back(next++);
  for (uint32_t i = intersection; i < set_size; ++i) b->push_back(next++);
  return intersection;
}

/// True iff the two signatures share at least one band key.
bool Collides(const std::vector<uint64_t>& sa, const std::vector<uint64_t>& sb,
              BandingParams params) {
  for (uint32_t band = 0; band < params.bands; ++band) {
    bool equal = true;
    for (uint32_t r = 0; r < params.rows; ++r) {
      if (sa[band * params.rows + r] != sb[band * params.rows + r]) {
        equal = false;
        break;
      }
    }
    if (equal) return true;
  }
  return false;
}

}  // namespace

uint32_t RecommendedSetSize(double jaccard, uint32_t base) {
  LSHC_CHECK_GT(jaccard, 0.0);
  const double needed = std::ceil((1.0 + jaccard) / jaccard);
  return std::min<uint32_t>(
      20000, std::max<uint32_t>(base, static_cast<uint32_t>(needed)));
}

MonteCarloEstimate EstimateCollisionProbability(double jaccard,
                                                BandingParams params,
                                                uint32_t cluster_items,
                                                uint32_t set_size,
                                                uint32_t trials,
                                                uint64_t seed) {
  LSHC_CHECK(jaccard > 0.0 && jaccard <= 1.0)
      << "Monte Carlo needs similarity in (0, 1]";
  LSHC_CHECK_GE(set_size, 2u);
  LSHC_CHECK_GE(trials, 1u);

  Rng rng(seed);
  MonteCarloEstimate estimate;
  std::vector<uint32_t> a, b;
  uint64_t pair_hits = 0;
  uint64_t cluster_hits = 0;
  double jaccard_sum = 0;

  for (uint32_t trial = 0; trial < trials; ++trial) {
    // Fresh hash family per trial: the collision probability is over the
    // random choice of hash functions, not of the sets. Fully independent
    // components, not double hashing: the Kirsch-Mitzenmacher derivation
    // correlates components, which visibly inflates band-collision rates
    // once b*r reaches the thousands (Table II's 800-band rows).
    const MinHasher hasher(params.num_hashes(), rng.Next(),
                           MinHashMode::kIndependent);
    const uint32_t base = trial * (3 * set_size + 8);

    const uint32_t intersection = FillPair(jaccard, set_size, base, &a, &b);
    jaccard_sum += static_cast<double>(intersection) /
                   static_cast<double>(2 * set_size - intersection);

    const auto sig_a = hasher.ComputeSignature(a);
    const auto sig_b = hasher.ComputeSignature(b);
    if (Collides(sig_a, sig_b, params)) ++pair_hits;

    // Cluster event: any of `cluster_items` similar items collides. Each
    // member shares a *different* cyclic slice of A's tokens (§III-D
    // models the members as independent; sharing the same intersection
    // would correlate their collision events through A's minima).
    bool any = false;
    std::vector<uint32_t> c(set_size);
    for (uint32_t member = 0; member < cluster_items && !any; ++member) {
      const uint32_t start =
          static_cast<uint32_t>((static_cast<uint64_t>(member) *
                                 (intersection + 1)) %
                                set_size);
      for (uint32_t t = 0; t < intersection; ++t) {
        c[t] = a[(start + t) % set_size];
      }
      for (uint32_t t = intersection; t < set_size; ++t) {
        c[t] = base + 2 * set_size + 8 + (member + 1) * set_size + t;
      }
      const auto sig_c = hasher.ComputeSignature(c);
      if (Collides(sig_a, sig_c, params)) any = true;
    }
    if (any) ++cluster_hits;
  }

  estimate.pair_probability =
      static_cast<double>(pair_hits) / static_cast<double>(trials);
  estimate.cluster_probability =
      static_cast<double>(cluster_hits) / static_cast<double>(trials);
  estimate.realized_jaccard = jaccard_sum / static_cast<double>(trials);
  return estimate;
}

}  // namespace lshclust
