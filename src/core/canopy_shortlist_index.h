#pragma once

/// \file canopy_shortlist_index.h
/// \brief The canopy-based candidate provider — the classic related-work
/// accelerator (paper ref [15]) plugged into the same engine hook as the
/// LSH shortlist providers, so the two search-space-reduction strategies
/// compare head-to-head.
///
/// Candidate clusters of item X = the clusters currently containing X's
/// canopy peers — structurally identical to the MinHash shortlist, with
/// canopies (cheap-distance balls) replacing LSH buckets. Canopies are
/// built once after the initial assignment, exactly where MH-K-Modes
/// builds its index, so phase timings are comparable.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "clustering/canopy.h"
#include "core/shortlist_provider.h"
#include "data/categorical_dataset.h"
#include "util/result.h"

namespace lshclust {

/// \brief Engine provider producing canopy-peer cluster shortlists.
/// Parallel-capable: queries are const with per-caller scratch, same
/// contract as ShortlistProvider.
class CanopyShortlistProvider {
 public:
  CanopyShortlistProvider(const CanopyOptions& options, uint32_t num_clusters)
      : options_(options), num_clusters_(num_clusters) {
    LSHC_DCHECK(num_clusters >= 1) << "need at least one cluster";
    scratch_ = MakeScratch();
  }

  static constexpr bool kExhaustive = false;

  /// Per-caller query state (see ClusterDedupScratch).
  using Scratch = ClusterDedupScratch;

  /// A fresh scratch sized for this provider's cluster count.
  Scratch MakeScratch() const { return MakeClusterDedupScratch(num_clusters_); }

  /// Builds the canopy cover (the accelerator's one-time pass). The pool
  /// is accepted for engine-signature parity but unused (canopy
  /// construction is inherently sequential); when `cancel` is non-null it
  /// is polled before the build, and a true answer aborts with
  /// StatusCode::kCancelled leaving the provider cover-less (any previous
  /// cover is dropped on entry, matching ShortlistProvider::Prepare's
  /// no-partial-index contract).
  [[nodiscard]] Status Prepare(const CategoricalDataset& dataset,
                 ThreadPool* /*pool*/ = nullptr,
                 const std::function<bool()>* cancel = nullptr) {
    index_.reset();
    if (cancel != nullptr && (*cancel)()) {
      return Status::Cancelled(
          "canopy construction stopped by the cancellation hook");
    }
    LSHC_ASSIGN_OR_RETURN(CanopyIndex index,
                          CanopyIndex::Build(dataset, options_));
    index_ = std::make_unique<CanopyIndex>(std::move(index));
    return Status::OK();
  }

  /// Deduplicated clusters of the item's canopy peers, always containing
  /// its current cluster. Thread-safe given a private `scratch`.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     Scratch& scratch, std::vector<uint32_t>* out) const {
    CollectCandidateClusters(item, assignment, scratch, out,
                             [&](auto&& sink) {
                               index_->VisitCanopyPeers(item, sink);
                             });
  }

  /// Sequential convenience overload using the provider-owned scratch.
  void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                     std::vector<uint32_t>* out) {
    GetCandidates(item, assignment, scratch_, out);
  }

  /// The canopy cover (null before Prepare).
  const CanopyIndex* index() const { return index_.get(); }

 private:
  CanopyOptions options_;
  uint32_t num_clusters_;
  std::unique_ptr<CanopyIndex> index_;
  Scratch scratch_;
};

}  // namespace lshclust
