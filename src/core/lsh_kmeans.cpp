#include "core/lsh_kmeans.h"

#include <utility>

#include "api/clusterer.h"
#include "util/macros.h"

namespace lshclust {

Result<ClusteringResult> RunLshKMeans(const NumericDataset& dataset,
                                      const LshKMeansOptions& options) {
  ClustererSpec spec;
  spec.modality = Modality::kNumeric;
  spec.accelerator = Accelerator::kSimHash;
  spec.engine = options.kmeans;
  spec.simhash = SimHashIndexOptions{options.banding, options.seed,
                                     SketchPrefilterOptions{}};
  LSHC_ASSIGN_OR_RETURN(Clusterer clusterer, Clusterer::Create(spec));
  LSHC_ASSIGN_OR_RETURN(FitReport report, clusterer.Fit(dataset));
  // No channel for a partial report here: a cancelled run surfaces as
  // the kCancelled error, never as an ok() result.
  LSHC_RETURN_NOT_OK(report.status);
  return std::move(report.result);
}

}  // namespace lshclust
