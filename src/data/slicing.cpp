#include "data/slicing.h"

#include <algorithm>

namespace lshclust {

namespace {

/// Copies presence flags out of a dataset (empty when none).
std::vector<bool> AbsentFlags(const CategoricalDataset& dataset) {
  if (!dataset.has_absence_semantics()) return {};
  std::vector<bool> absent(dataset.num_codes());
  for (uint32_t code = 0; code < dataset.num_codes(); ++code) {
    absent[code] = !dataset.IsPresent(code);
  }
  return absent;
}

/// Builds a dataset from selected item indices of a source.
Result<CategoricalDataset> Select(const CategoricalDataset& dataset,
                                  const std::vector<uint32_t>& items) {
  const uint32_t m = dataset.num_attributes();
  std::vector<uint32_t> codes;
  codes.reserve(static_cast<size_t>(items.size()) * m);
  std::vector<uint32_t> labels;
  if (dataset.has_labels()) labels.reserve(items.size());
  for (const uint32_t item : items) {
    const auto row = dataset.Row(item);
    codes.insert(codes.end(), row.begin(), row.end());
    if (dataset.has_labels()) labels.push_back(dataset.labels()[item]);
  }
  // The dictionary is shared with the source, not copied.
  return CategoricalDataset::FromCodes(
      static_cast<uint32_t>(items.size()), m, dataset.num_codes(),
      std::move(codes), std::move(labels), AbsentFlags(dataset),
      dataset.shared_interner());
}

}  // namespace

Result<CategoricalDataset> SliceDataset(const CategoricalDataset& dataset,
                                        uint32_t begin, uint32_t end) {
  if (begin > end || end > dataset.num_items()) {
    return Status::OutOfRange(
        "slice [" + std::to_string(begin) + ", " + std::to_string(end) +
        ") out of range for " + std::to_string(dataset.num_items()) +
        " items");
  }
  if (begin == end) {
    return Status::InvalidArgument("slice is empty");
  }
  std::vector<uint32_t> items(end - begin);
  for (uint32_t i = begin; i < end; ++i) items[i - begin] = i;
  return Select(dataset, items);
}

Result<CategoricalDataset> SampleDataset(const CategoricalDataset& dataset,
                                         uint32_t count, uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("sample is empty");
  }
  if (count > dataset.num_items()) {
    return Status::OutOfRange("cannot sample " + std::to_string(count) +
                              " items from " +
                              std::to_string(dataset.num_items()));
  }
  Rng rng(seed);
  std::vector<uint32_t> items =
      rng.SampleWithoutReplacement(dataset.num_items(), count);
  std::sort(items.begin(), items.end());  // keep source order
  return Select(dataset, items);
}

Result<CategoricalDataset> ConcatDatasets(const CategoricalDataset& first,
                                          const CategoricalDataset& second) {
  if (first.num_attributes() != second.num_attributes()) {
    return Status::InvalidArgument("attribute counts differ");
  }
  if (first.num_codes() != second.num_codes()) {
    return Status::InvalidArgument("code spaces differ");
  }
  if (first.has_labels() != second.has_labels()) {
    return Status::InvalidArgument(
        "one dataset is labeled and the other is not");
  }
  if (first.has_absence_semantics() != second.has_absence_semantics()) {
    return Status::InvalidArgument("presence semantics differ");
  }
  if (first.has_absence_semantics()) {
    for (uint32_t code = 0; code < first.num_codes(); ++code) {
      if (first.IsPresent(code) != second.IsPresent(code)) {
        return Status::InvalidArgument("presence flags differ at code " +
                                       std::to_string(code));
      }
    }
  }

  std::vector<uint32_t> codes(first.codes().begin(), first.codes().end());
  codes.insert(codes.end(), second.codes().begin(), second.codes().end());
  std::vector<uint32_t> labels;
  if (first.has_labels()) {
    labels = first.labels();
    labels.insert(labels.end(), second.labels().begin(),
                  second.labels().end());
  }
  return CategoricalDataset::FromCodes(
      first.num_items() + second.num_items(), first.num_attributes(),
      first.num_codes(), std::move(codes), std::move(labels),
      AbsentFlags(first), first.shared_interner());
}

}  // namespace lshclust
