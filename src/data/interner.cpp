#include "data/interner.h"

namespace lshclust {

uint32_t ValueInterner::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  const uint32_t code = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), code);
  return code;
}

uint32_t ValueInterner::Lookup(std::string_view text) const {
  auto it = index_.find(std::string(text));
  return it == index_.end() ? kNotFound : it->second;
}

std::string ValueInterner::MakeToken(std::string_view attribute,
                                     std::string_view value) {
  std::string token;
  token.reserve(attribute.size() + value.size() + 1);
  token += attribute;
  token += '=';
  token += value;
  return token;
}

}  // namespace lshclust
