#pragma once

/// \file interner.h
/// \brief Bidirectional string <-> dense uint32 code dictionary.
///
/// Every distinct `(attribute, value)` pair in a categorical dataset is
/// interned to a dense 32-bit code. Codes serve double duty:
///  * positional equality of codes implements Huang's mismatch measure
///    d(X, Y) (Eq. 1-2 of the paper), and
///  * the set of *present* codes of an item is the token set fed to MinHash
///    (Algorithm 2 lines 1-5).
/// Global uniqueness across attributes guarantees that equal values under
/// different attributes never alias as MinHash tokens.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace lshclust {

/// \brief Append-only dictionary assigning dense codes 0..n-1 to strings.
class ValueInterner {
 public:
  ValueInterner() = default;

  /// Returns the code of `text`, inserting it if unseen.
  uint32_t Intern(std::string_view text);

  /// Returns the code of `text` or kNotFound if never interned.
  uint32_t Lookup(std::string_view text) const;

  /// Returns the string for `code`; code must be < size().
  const std::string& ToString(uint32_t code) const {
    LSHC_CHECK_LT(code, strings_.size()) << "interner code out of range";
    return strings_[code];
  }

  /// Number of distinct interned strings.
  uint32_t size() const { return static_cast<uint32_t>(strings_.size()); }

  /// Sentinel returned by Lookup for unknown strings.
  static constexpr uint32_t kNotFound = ~0u;

  /// Builds the canonical token string for an attribute/value pair,
  /// "attribute=value" — e.g. "colour=blue", or "zoo=1" for the binary
  /// word-presence encoding of §IV-B.
  static std::string MakeToken(std::string_view attribute,
                               std::string_view value);

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace lshclust
