#pragma once

/// \file categorical_dataset.h
/// \brief Immutable categorical dataset: n items x m attributes of interned
/// codes, optional ground-truth labels, optional presence semantics.
///
/// Items are stored row-major as dense uint32 codes so the assignment-step
/// inner loop (mismatch counting against a mode) is a linear scan of two
/// arrays. The dataset is immutable after construction — the property the
/// paper's index exploits: MinHash signatures and band buckets are computed
/// once, and only item->cluster references change between iterations.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/interner.h"
#include "util/result.h"
#include "util/status.h"

namespace lshclust {

/// \brief Immutable collection of categorical items.
class CategoricalDataset {
 public:
  /// Constructs an empty dataset (0 items); populate via FromCodes or the
  /// builder.
  CategoricalDataset() = default;

  /// Number of items n.
  uint32_t num_items() const { return num_items_; }
  /// Number of attributes m.
  uint32_t num_attributes() const { return num_attributes_; }
  /// Total number of distinct codes (exclusive upper bound of code values).
  uint32_t num_codes() const { return num_codes_; }

  /// The codes of one item, length num_attributes().
  std::span<const uint32_t> Row(uint32_t item) const {
    LSHC_DCHECK(item < num_items_) << "item index out of range";
    return {codes_.data() + static_cast<size_t>(item) * num_attributes_,
            num_attributes_};
  }

  /// Flat row-major code matrix (n * m entries).
  std::span<const uint32_t> codes() const { return codes_; }

  /// True iff ground-truth labels are attached.
  bool has_labels() const { return !labels_.empty(); }
  /// Ground-truth labels (empty when absent).
  const std::vector<uint32_t>& labels() const { return labels_; }

  /// True iff `code` denotes a present feature (always true when the
  /// dataset has no absence semantics).
  bool IsPresent(uint32_t code) const {
    return absent_codes_.empty() ? true : !absent_codes_[code];
  }

  /// True iff any code is marked absent (i.e. presence filtering applies).
  bool has_absence_semantics() const { return !absent_codes_.empty(); }

  /// Collects the *present* codes of `item` into `out` (cleared first) —
  /// the presence filtering of Algorithm 2 lines 2-4. Returns out->size().
  size_t PresentTokens(uint32_t item, std::vector<uint32_t>* out) const;

  /// The shared dictionary, or nullptr for datasets built from raw codes.
  const ValueInterner* interner() const { return interner_.get(); }

  /// Shared ownership of the dictionary (for building derived datasets
  /// that must outlive this one, e.g. slices).
  std::shared_ptr<ValueInterner> shared_interner() const { return interner_; }

  /// Renders the value of (item, attribute) for debugging: the interned
  /// string when a dictionary exists, otherwise "#<code>".
  std::string ValueToString(uint32_t item, uint32_t attribute) const;

  /// Constructs a dataset directly from a code matrix. `codes` must have
  /// num_items * num_attributes entries all < num_codes; `labels` is empty
  /// or one label per item; `absent_codes` is empty or num_codes flags.
  /// Used by the synthetic generators which produce codes natively.
  static Result<CategoricalDataset> FromCodes(
      uint32_t num_items, uint32_t num_attributes, uint32_t num_codes,
      std::vector<uint32_t> codes, std::vector<uint32_t> labels = {},
      std::vector<bool> absent_codes = {},
      std::shared_ptr<ValueInterner> interner = nullptr);

 private:
  friend class CategoricalDatasetBuilder;

  uint32_t num_items_ = 0;
  uint32_t num_attributes_ = 0;
  uint32_t num_codes_ = 0;
  std::vector<uint32_t> codes_;         // row-major n x m
  std::vector<uint32_t> labels_;        // empty or size n
  std::vector<bool> absent_codes_;      // empty or size num_codes
  std::shared_ptr<ValueInterner> interner_;  // may be null
};

/// \brief Incremental builder interning string values row by row.
///
/// \code
///   CategoricalDatasetBuilder builder({"colour", "size"});
///   builder.MarkAbsentValue("No");
///   LSHC_CHECK_OK(builder.AddRow({"blue", "No"}, /*label=*/0));
///   auto dataset = std::move(builder).Build();
/// \endcode
class CategoricalDatasetBuilder {
 public:
  /// \param attribute_names one name per attribute; defines m
  explicit CategoricalDatasetBuilder(std::vector<std::string> attribute_names);

  /// Declares a value string (e.g. "No", "0") as meaning "feature absent";
  /// codes interning to it are excluded from MinHash token sets. Must be
  /// called before the first AddRow.
  void MarkAbsentValue(std::string value);

  /// Appends one item; `values` must have exactly one value per attribute.
  [[nodiscard]] Status AddRow(std::span<const std::string> values,
                std::optional<uint32_t> label = std::nullopt);

  /// Number of rows added so far.
  uint32_t num_rows() const { return num_rows_; }

  /// Finalizes the dataset. The builder is consumed.
  CategoricalDataset Build() &&;

 private:
  std::vector<std::string> attribute_names_;
  std::vector<std::string> absent_values_;
  std::shared_ptr<ValueInterner> interner_ = std::make_shared<ValueInterner>();
  std::vector<uint32_t> codes_;
  std::vector<uint32_t> labels_;
  std::vector<bool> absent_codes_;
  uint32_t num_rows_ = 0;
  bool any_label_ = false;
  bool any_absent_ = false;
};

/// \brief Immutable numeric dataset (n items x d dimensions of doubles)
/// used by the K-Means / LSH-K-Means extension.
class NumericDataset {
 public:
  NumericDataset() = default;

  /// Constructs from a row-major matrix; `values` must have
  /// num_items * dimensions entries.
  static Result<NumericDataset> FromValues(uint32_t num_items,
                                           uint32_t dimensions,
                                           std::vector<double> values,
                                           std::vector<uint32_t> labels = {});

  uint32_t num_items() const { return num_items_; }
  uint32_t dimensions() const { return dimensions_; }

  /// One item's coordinates, length dimensions().
  std::span<const double> Row(uint32_t item) const {
    LSHC_DCHECK(item < num_items_) << "item index out of range";
    return {values_.data() + static_cast<size_t>(item) * dimensions_,
            dimensions_};
  }

  bool has_labels() const { return !labels_.empty(); }
  const std::vector<uint32_t>& labels() const { return labels_; }

 private:
  uint32_t num_items_ = 0;
  uint32_t dimensions_ = 0;
  std::vector<double> values_;
  std::vector<uint32_t> labels_;
};

}  // namespace lshclust
