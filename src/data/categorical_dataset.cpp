#include "data/categorical_dataset.h"

#include <algorithm>

namespace lshclust {

size_t CategoricalDataset::PresentTokens(uint32_t item,
                                         std::vector<uint32_t>* out) const {
  out->clear();
  const auto row = Row(item);
  if (absent_codes_.empty()) {
    out->assign(row.begin(), row.end());
  } else {
    for (const uint32_t code : row) {
      if (!absent_codes_[code]) out->push_back(code);
    }
  }
  return out->size();
}

std::string CategoricalDataset::ValueToString(uint32_t item,
                                              uint32_t attribute) const {
  LSHC_CHECK_LT(attribute, num_attributes_);
  const uint32_t code = Row(item)[attribute];
  if (interner_ != nullptr) return interner_->ToString(code);
  std::string text = "#";
  text += std::to_string(code);
  return text;
}

Result<CategoricalDataset> CategoricalDataset::FromCodes(
    uint32_t num_items, uint32_t num_attributes, uint32_t num_codes,
    std::vector<uint32_t> codes, std::vector<uint32_t> labels,
    std::vector<bool> absent_codes, std::shared_ptr<ValueInterner> interner) {
  if (static_cast<uint64_t>(num_items) * num_attributes != codes.size()) {
    return Status::InvalidArgument(
        "code matrix has " + std::to_string(codes.size()) +
        " entries, expected " +
        std::to_string(static_cast<uint64_t>(num_items) * num_attributes));
  }
  if (!labels.empty() && labels.size() != num_items) {
    return Status::InvalidArgument(
        "labels must be empty or one per item; got " +
        std::to_string(labels.size()) + " for " + std::to_string(num_items) +
        " items");
  }
  if (!absent_codes.empty() && absent_codes.size() != num_codes) {
    return Status::InvalidArgument(
        "absent_codes must be empty or one flag per code");
  }
  for (const uint32_t code : codes) {
    if (code >= num_codes) {
      return Status::OutOfRange("code " + std::to_string(code) +
                                " >= num_codes " + std::to_string(num_codes));
    }
  }
  CategoricalDataset dataset;
  dataset.num_items_ = num_items;
  dataset.num_attributes_ = num_attributes;
  dataset.num_codes_ = num_codes;
  dataset.codes_ = std::move(codes);
  dataset.labels_ = std::move(labels);
  dataset.absent_codes_ = std::move(absent_codes);
  dataset.interner_ = std::move(interner);
  return dataset;
}

CategoricalDatasetBuilder::CategoricalDatasetBuilder(
    std::vector<std::string> attribute_names)
    : attribute_names_(std::move(attribute_names)) {
  LSHC_CHECK(!attribute_names_.empty())
      << "a dataset needs at least one attribute";
}

void CategoricalDatasetBuilder::MarkAbsentValue(std::string value) {
  LSHC_CHECK_EQ(num_rows_, 0u)
      << "MarkAbsentValue must be called before the first AddRow";
  absent_values_.push_back(std::move(value));
  any_absent_ = true;
}

Status CategoricalDatasetBuilder::AddRow(std::span<const std::string> values,
                                         std::optional<uint32_t> label) {
  if (values.size() != attribute_names_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, expected " +
        std::to_string(attribute_names_.size()));
  }
  if (num_rows_ > 0 && label.has_value() != any_label_) {
    return Status::InvalidArgument(
        "either all rows or no rows may carry a label");
  }
  for (size_t a = 0; a < values.size(); ++a) {
    const std::string token =
        ValueInterner::MakeToken(attribute_names_[a], values[a]);
    const uint32_t code = interner_->Intern(token);
    if (code >= absent_codes_.size()) absent_codes_.resize(code + 1, false);
    if (any_absent_) {
      for (const auto& absent : absent_values_) {
        if (values[a] == absent) {
          absent_codes_[code] = true;
          break;
        }
      }
    }
    codes_.push_back(code);
  }
  if (label.has_value()) {
    any_label_ = true;
    labels_.push_back(*label);
  }
  ++num_rows_;
  return Status::OK();
}

CategoricalDataset CategoricalDatasetBuilder::Build() && {
  CategoricalDataset dataset;
  dataset.num_items_ = num_rows_;
  dataset.num_attributes_ = static_cast<uint32_t>(attribute_names_.size());
  dataset.num_codes_ = interner_->size();
  absent_codes_.resize(interner_->size(), false);
  dataset.codes_ = std::move(codes_);
  dataset.labels_ = std::move(labels_);
  if (any_absent_) dataset.absent_codes_ = std::move(absent_codes_);
  dataset.interner_ = std::move(interner_);
  return dataset;
}

Result<NumericDataset> NumericDataset::FromValues(uint32_t num_items,
                                                  uint32_t dimensions,
                                                  std::vector<double> values,
                                                  std::vector<uint32_t> labels) {
  if (static_cast<uint64_t>(num_items) * dimensions != values.size()) {
    return Status::InvalidArgument(
        "value matrix has " + std::to_string(values.size()) +
        " entries, expected " +
        std::to_string(static_cast<uint64_t>(num_items) * dimensions));
  }
  if (!labels.empty() && labels.size() != num_items) {
    return Status::InvalidArgument("labels must be empty or one per item");
  }
  NumericDataset dataset;
  dataset.num_items_ = num_items;
  dataset.dimensions_ = dimensions;
  dataset.values_ = std::move(values);
  dataset.labels_ = std::move(labels);
  return dataset;
}

}  // namespace lshclust
