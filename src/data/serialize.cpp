#include "data/serialize.h"

#include <cstring>
#include <fstream>

#include "util/binary_io.h"
#include "util/macros.h"

namespace lshclust {

namespace {

constexpr char kMagic[4] = {'L', 'S', 'H', 'C'};
constexpr uint32_t kVersion = 1;

constexpr uint8_t kFlagLabels = 1;
constexpr uint8_t kFlagAbsence = 2;
constexpr uint8_t kFlagDictionary = 4;

/// Size of the file on disk, or an error. Leaves `in` positioned at the
/// first payload byte (right after the magic check will re-read it).
Result<uint64_t> FileSize(std::ifstream& in) {
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end < 0 || !in.good()) {
    return Status::IOError("cannot determine file size");
  }
  return static_cast<uint64_t>(end);
}

}  // namespace

Status SaveDatasetBinary(const CategoricalDataset& dataset,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WriteLeU32(out, kVersion);
  WriteLeU32(out, dataset.num_items());
  WriteLeU32(out, dataset.num_attributes());
  WriteLeU32(out, dataset.num_codes());

  uint8_t flags = 0;
  if (dataset.has_labels()) flags |= kFlagLabels;
  if (dataset.has_absence_semantics()) flags |= kFlagAbsence;
  if (dataset.interner() != nullptr) flags |= kFlagDictionary;
  out.write(reinterpret_cast<const char*>(&flags), 1);

  // Bulk arrays go through a staging buffer so they are little-endian on
  // any host (on LE hosts AppendLeArray is a single memcpy).
  std::string buffer;
  AppendLeArray<uint32_t>(&buffer, dataset.codes());
  if (dataset.has_labels()) {
    AppendLeArray<uint32_t>(&buffer, dataset.labels());
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (dataset.has_absence_semantics()) {
    for (uint32_t code = 0; code < dataset.num_codes(); ++code) {
      const uint8_t absent = dataset.IsPresent(code) ? 0 : 1;
      out.write(reinterpret_cast<const char*>(&absent), 1);
    }
  }
  if (dataset.interner() != nullptr) {
    WriteLeU32(out, dataset.interner()->size());
    for (uint32_t code = 0; code < dataset.interner()->size(); ++code) {
      const std::string& text = dataset.interner()->ToString(code);
      WriteLeU32(out, static_cast<uint32_t>(text.size()));
      out.write(text.data(), static_cast<std::streamsize>(text.size()));
    }
  }
  if (!out.good()) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<CategoricalDataset> LoadDatasetBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  LSHC_ASSIGN_OR_RETURN(const uint64_t file_size, FileSize(in));

  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an lshclust dataset file");
  }
  uint32_t version = 0, n = 0, m = 0, num_codes = 0;
  if (!ReadLeU32(in, &version)) {
    return Status::IOError("truncated dataset header in '" + path + "'");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        "'" + path + "' has dataset format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kVersion));
  }
  if (!ReadLeU32(in, &n) || !ReadLeU32(in, &m) || !ReadLeU32(in, &num_codes)) {
    return Status::IOError("truncated dataset header in '" + path + "'");
  }
  uint8_t flags = 0;
  in.read(reinterpret_cast<char*>(&flags), 1);
  if (in.gcount() != 1) {
    return Status::IOError("truncated dataset header in '" + path + "'");
  }
  if ((flags & ~(kFlagLabels | kFlagAbsence | kFlagDictionary)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' header carries unknown flag bits");
  }

  // Validate every declared array length against the bytes actually in the
  // file *before* allocating — a corrupt header must produce a typed error,
  // not a multi-gigabyte resize.
  uint64_t remaining = file_size - static_cast<uint64_t>(in.tellg());
  const auto consume = [&remaining, &path](uint64_t bytes,
                                           const char* what) -> Status {
    if (bytes > remaining) {
      return Status::IOError("truncated " + std::string(what) + " in '" +
                             path + "' (need " + std::to_string(bytes) +
                             " bytes, have " + std::to_string(remaining) +
                             ")");
    }
    remaining -= bytes;
    return Status::OK();
  };

  const uint64_t num_code_entries = static_cast<uint64_t>(n) * m;
  LSHC_RETURN_NOT_OK(
      consume(num_code_entries * sizeof(uint32_t), "code matrix"));
  std::vector<uint32_t> codes(num_code_entries);
  in.read(reinterpret_cast<char*>(codes.data()),
          static_cast<std::streamsize>(codes.size() * sizeof(uint32_t)));
  if (static_cast<uint64_t>(in.gcount()) != codes.size() * sizeof(uint32_t)) {
    return Status::IOError("truncated code matrix in '" + path + "'");
  }

  std::vector<uint32_t> labels;
  if (flags & kFlagLabels) {
    LSHC_RETURN_NOT_OK(
        consume(static_cast<uint64_t>(n) * sizeof(uint32_t), "label array"));
    labels.resize(n);
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(labels.size() * sizeof(uint32_t)));
    if (static_cast<uint64_t>(in.gcount()) !=
        labels.size() * sizeof(uint32_t)) {
      return Status::IOError("truncated label array in '" + path + "'");
    }
  }

  std::vector<bool> absent_codes;
  if (flags & kFlagAbsence) {
    LSHC_RETURN_NOT_OK(consume(num_codes, "absence bitmap"));
    absent_codes.resize(num_codes);
    for (uint32_t code = 0; code < num_codes; ++code) {
      uint8_t absent = 0;
      in.read(reinterpret_cast<char*>(&absent), 1);
      if (in.gcount() != 1) {
        return Status::IOError("truncated absence bitmap in '" + path + "'");
      }
      absent_codes[code] = absent != 0;
    }
  }

  std::shared_ptr<ValueInterner> interner;
  if (flags & kFlagDictionary) {
    interner = std::make_shared<ValueInterner>();
    uint32_t count = 0;
    LSHC_RETURN_NOT_OK(consume(sizeof(uint32_t), "dictionary"));
    if (!ReadLeU32(in, &count)) {
      return Status::IOError("truncated dictionary in '" + path + "'");
    }
    if (count != num_codes) {
      return Status::InvalidArgument(
          "'" + path + "' dictionary holds " + std::to_string(count) +
          " entries for " + std::to_string(num_codes) + " codes");
    }
    std::string text;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t length = 0;
      LSHC_RETURN_NOT_OK(consume(sizeof(uint32_t), "dictionary"));
      if (!ReadLeU32(in, &length)) {
        return Status::IOError("truncated dictionary in '" + path + "'");
      }
      LSHC_RETURN_NOT_OK(consume(length, "dictionary entry"));
      text.resize(length);
      in.read(text.data(), static_cast<std::streamsize>(length));
      if (static_cast<uint64_t>(in.gcount()) != length) {
        return Status::IOError("truncated dictionary entry in '" + path +
                               "'");
      }
      const uint32_t code = interner->Intern(text);
      if (code != i) {
        return Status::InvalidArgument(
            "dictionary contains duplicate entries");
      }
    }
  }

  // FromCodes re-validates shape consistency and rejects out-of-range
  // codes, so garbage payload bytes surface as a typed Status here too.
  return CategoricalDataset::FromCodes(n, m, num_codes, std::move(codes),
                                       std::move(labels),
                                       std::move(absent_codes),
                                       std::move(interner));
}

}  // namespace lshclust
