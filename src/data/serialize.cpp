#include "data/serialize.h"

#include <cstring>
#include <fstream>

#include "util/macros.h"

namespace lshclust {

namespace {

constexpr char kMagic[4] = {'L', 'S', 'H', 'C'};
constexpr uint32_t kVersion = 1;

constexpr uint8_t kFlagLabels = 1;
constexpr uint8_t kFlagAbsence = 2;
constexpr uint8_t kFlagDictionary = 4;

void WriteU32(std::ostream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU32(std::istream& in, uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

}  // namespace

Status SaveDatasetBinary(const CategoricalDataset& dataset,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);
  WriteU32(out, dataset.num_items());
  WriteU32(out, dataset.num_attributes());
  WriteU32(out, dataset.num_codes());

  uint8_t flags = 0;
  if (dataset.has_labels()) flags |= kFlagLabels;
  if (dataset.has_absence_semantics()) flags |= kFlagAbsence;
  if (dataset.interner() != nullptr) flags |= kFlagDictionary;
  out.write(reinterpret_cast<const char*>(&flags), 1);

  const auto codes = dataset.codes();
  out.write(reinterpret_cast<const char*>(codes.data()),
            static_cast<std::streamsize>(codes.size() * sizeof(uint32_t)));
  if (dataset.has_labels()) {
    out.write(reinterpret_cast<const char*>(dataset.labels().data()),
              static_cast<std::streamsize>(dataset.labels().size() *
                                           sizeof(uint32_t)));
  }
  if (dataset.has_absence_semantics()) {
    for (uint32_t code = 0; code < dataset.num_codes(); ++code) {
      const uint8_t absent = dataset.IsPresent(code) ? 0 : 1;
      out.write(reinterpret_cast<const char*>(&absent), 1);
    }
  }
  if (dataset.interner() != nullptr) {
    WriteU32(out, dataset.interner()->size());
    for (uint32_t code = 0; code < dataset.interner()->size(); ++code) {
      const std::string& text = dataset.interner()->ToString(code);
      WriteU32(out, static_cast<uint32_t>(text.size()));
      out.write(text.data(), static_cast<std::streamsize>(text.size()));
    }
  }
  if (!out.good()) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<CategoricalDataset> LoadDatasetBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an lshclust dataset file");
  }
  uint32_t version = 0, n = 0, m = 0, num_codes = 0;
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported dataset file version");
  }
  if (!ReadU32(in, &n) || !ReadU32(in, &m) || !ReadU32(in, &num_codes)) {
    return Status::IOError("truncated dataset header");
  }
  uint8_t flags = 0;
  in.read(reinterpret_cast<char*>(&flags), 1);
  if (!in.good()) return Status::IOError("truncated dataset header");

  std::vector<uint32_t> codes(static_cast<size_t>(n) * m);
  in.read(reinterpret_cast<char*>(codes.data()),
          static_cast<std::streamsize>(codes.size() * sizeof(uint32_t)));
  if (!in.good()) return Status::IOError("truncated code matrix");

  std::vector<uint32_t> labels;
  if (flags & kFlagLabels) {
    labels.resize(n);
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(labels.size() * sizeof(uint32_t)));
    if (!in.good()) return Status::IOError("truncated label array");
  }

  std::vector<bool> absent_codes;
  if (flags & kFlagAbsence) {
    absent_codes.resize(num_codes);
    for (uint32_t code = 0; code < num_codes; ++code) {
      uint8_t absent = 0;
      in.read(reinterpret_cast<char*>(&absent), 1);
      if (!in.good()) return Status::IOError("truncated absence bitmap");
      absent_codes[code] = absent != 0;
    }
  }

  std::shared_ptr<ValueInterner> interner;
  if (flags & kFlagDictionary) {
    interner = std::make_shared<ValueInterner>();
    uint32_t count = 0;
    if (!ReadU32(in, &count)) return Status::IOError("truncated dictionary");
    std::string text;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t length = 0;
      if (!ReadU32(in, &length)) return Status::IOError("truncated dictionary");
      text.resize(length);
      in.read(text.data(), static_cast<std::streamsize>(length));
      if (!in.good()) return Status::IOError("truncated dictionary entry");
      const uint32_t code = interner->Intern(text);
      if (code != i) {
        return Status::InvalidArgument(
            "dictionary contains duplicate entries");
      }
    }
  }

  return CategoricalDataset::FromCodes(n, m, num_codes, std::move(codes),
                                       std::move(labels),
                                       std::move(absent_codes),
                                       std::move(interner));
}

}  // namespace lshclust
