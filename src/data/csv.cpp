#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "util/macros.h"
#include "util/string_util.h"

namespace lshclust {

namespace {

Result<CategoricalDataset> ParseLines(std::istream& input,
                                      const CsvOptions& options) {
  std::string line;
  if (!std::getline(input, line)) {
    return Status::InvalidArgument("CSV input is empty (no header)");
  }
  std::vector<std::string> header = Split(Trim(line), options.delimiter);
  for (auto& name : header) name = std::string(Trim(name));

  int label_index = -1;
  std::vector<std::string> attribute_names;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == options.label_column) {
      if (label_index >= 0) {
        return Status::InvalidArgument("duplicate label column '" +
                                       options.label_column + "'");
      }
      label_index = static_cast<int>(i);
    } else {
      attribute_names.push_back(header[i]);
    }
  }
  if (attribute_names.empty()) {
    return Status::InvalidArgument("CSV has no attribute columns");
  }

  CategoricalDatasetBuilder builder(attribute_names);
  for (const auto& absent : options.absent_values) {
    builder.MarkAbsentValue(absent);
  }

  std::vector<std::string> row_values(attribute_names.size());
  size_t line_number = 1;
  while (std::getline(input, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;  // skip blank lines
    const std::vector<std::string> fields = Split(trimmed, options.delimiter);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    std::optional<uint32_t> label;
    size_t out = 0;
    for (size_t i = 0; i < fields.size(); ++i) {
      const std::string_view field = Trim(fields[i]);
      if (static_cast<int>(i) == label_index) {
        int64_t value = 0;
        if (!ParseInt64(field, &value) || value < 0) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) +
              ": label must be a non-negative integer, got '" +
              std::string(field) + "'");
        }
        label = static_cast<uint32_t>(value);
      } else {
        row_values[out++] = std::string(field);
      }
    }
    LSHC_RETURN_NOT_OK(
        builder.AddRow(row_values, label)
            .WithContext("line " + std::to_string(line_number)));
  }
  if (builder.num_rows() == 0) {
    return Status::InvalidArgument("CSV contains a header but no rows");
  }
  return std::move(builder).Build();
}

}  // namespace

Result<CategoricalDataset> ReadCategoricalCsv(const std::string& path,
                                              const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  auto result = ParseLines(file, options);
  if (!result.ok()) return result.status().WithContext(path);
  return result;
}

Result<CategoricalDataset> ParseCategoricalCsv(std::string_view text,
                                               const CsvOptions& options) {
  std::istringstream stream{std::string(text)};
  return ParseLines(stream, options);
}

Status WriteCategoricalCsv(const CategoricalDataset& dataset,
                           const std::string& path,
                           const CsvOptions& options) {
  if (dataset.interner() == nullptr) {
    return Status::InvalidArgument(
        "dataset has no value dictionary; cannot serialize to CSV");
  }
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }

  // Recover attribute names by splitting the "attribute=value" tokens of
  // the first row.
  const uint32_t m = dataset.num_attributes();
  std::vector<std::string> attribute_names(m);
  for (uint32_t a = 0; a < m; ++a) {
    const std::string& token = dataset.interner()->ToString(dataset.Row(0)[a]);
    const size_t eq = token.find('=');
    attribute_names[a] = eq == std::string::npos ? token : token.substr(0, eq);
  }

  for (uint32_t a = 0; a < m; ++a) {
    if (a > 0) file << options.delimiter;
    file << attribute_names[a];
  }
  if (dataset.has_labels()) file << options.delimiter << options.label_column;
  file << '\n';

  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    for (uint32_t a = 0; a < m; ++a) {
      if (a > 0) file << options.delimiter;
      const std::string& token =
          dataset.interner()->ToString(dataset.Row(i)[a]);
      const size_t eq = token.find('=');
      file << (eq == std::string::npos ? token : token.substr(eq + 1));
    }
    if (dataset.has_labels()) {
      file << options.delimiter << dataset.labels()[i];
    }
    file << '\n';
  }
  if (!file.good()) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace lshclust
