#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/macros.h"
#include "util/string_util.h"

namespace lshclust {

namespace {

/// The parsed header line: feature column names with the label column
/// (found by name, any position) split out.
struct CsvHeader {
  std::vector<std::string> feature_names;
  int label_index = -1;  // -1 = no label column
  size_t num_fields = 0;
};

Result<CsvHeader> ParseCsvHeader(std::istream& input,
                                 const CsvOptions& options) {
  std::string line;
  if (!std::getline(input, line)) {
    return Status::InvalidArgument("CSV input is empty (no header)");
  }
  std::vector<std::string> header = Split(Trim(line), options.delimiter);
  for (auto& name : header) name = std::string(Trim(name));

  CsvHeader parsed;
  parsed.num_fields = header.size();
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == options.label_column) {
      if (parsed.label_index >= 0) {
        return Status::InvalidArgument("duplicate label column '" +
                                       options.label_column + "'");
      }
      parsed.label_index = static_cast<int>(i);
    } else {
      parsed.feature_names.push_back(std::move(header[i]));
    }
  }
  if (parsed.feature_names.empty()) {
    return Status::InvalidArgument("CSV has no attribute columns");
  }
  return parsed;
}

/// Iterates the data rows after the header: skips blank lines, validates
/// the field count, trims every field, parses the label, and invokes
/// `row_fn(features, label, line_number)` per row. The one row-parsing
/// loop behind every CSV reader — feature `features` is reused across
/// rows (size = feature_names.size()).
template <typename RowFn>
Status ForEachCsvRow(std::istream& input, const CsvHeader& header,
                     const CsvOptions& options, const RowFn& row_fn) {
  std::vector<std::string> features(header.feature_names.size());
  std::string line;
  size_t line_number = 1;
  while (std::getline(input, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;  // skip blank lines
    const std::vector<std::string> fields = Split(trimmed, options.delimiter);
    if (fields.size() != header.num_fields) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.num_fields));
    }
    std::optional<uint32_t> label;
    size_t out = 0;
    for (size_t i = 0; i < fields.size(); ++i) {
      const std::string_view field = Trim(fields[i]);
      if (static_cast<int>(i) == header.label_index) {
        int64_t value = 0;
        if (!ParseInt64(field, &value) || value < 0) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) +
              ": label must be a non-negative integer, got '" +
              std::string(field) + "'");
        }
        label = static_cast<uint32_t>(value);
      } else {
        features[out++] = std::string(field);
      }
    }
    LSHC_RETURN_NOT_OK(row_fn(features, label, line_number));
  }
  return Status::OK();
}

Result<CategoricalDataset> ParseLines(std::istream& input,
                                      const CsvOptions& options) {
  LSHC_ASSIGN_OR_RETURN(const CsvHeader header,
                        ParseCsvHeader(input, options));
  CategoricalDatasetBuilder builder(header.feature_names);
  for (const auto& absent : options.absent_values) {
    builder.MarkAbsentValue(absent);
  }
  LSHC_RETURN_NOT_OK(ForEachCsvRow(
      input, header, options,
      [&](const std::vector<std::string>& features,
          std::optional<uint32_t> label, size_t line_number) {
        return builder.AddRow(features, label)
            .WithContext("line " + std::to_string(line_number));
      }));
  if (builder.num_rows() == 0) {
    return Status::InvalidArgument("CSV contains a header but no rows");
  }
  return std::move(builder).Build();
}

}  // namespace

Result<CategoricalDataset> ReadCategoricalCsv(const std::string& path,
                                              const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  auto result = ParseLines(file, options);
  if (!result.ok()) return result.status().WithContext(path);
  return result;
}

Result<CategoricalDataset> ParseCategoricalCsv(std::string_view text,
                                               const CsvOptions& options) {
  std::istringstream stream{std::string(text)};
  return ParseLines(stream, options);
}

Status WriteCategoricalCsv(const CategoricalDataset& dataset,
                           const std::string& path,
                           const CsvOptions& options) {
  if (dataset.interner() == nullptr) {
    return Status::InvalidArgument(
        "dataset has no value dictionary; cannot serialize to CSV");
  }
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }

  // Recover attribute names by splitting the "attribute=value" tokens of
  // the first row.
  const uint32_t m = dataset.num_attributes();
  std::vector<std::string> attribute_names(m);
  for (uint32_t a = 0; a < m; ++a) {
    const std::string& token = dataset.interner()->ToString(dataset.Row(0)[a]);
    const size_t eq = token.find('=');
    attribute_names[a] = eq == std::string::npos ? token : token.substr(0, eq);
  }

  for (uint32_t a = 0; a < m; ++a) {
    if (a > 0) file << options.delimiter;
    file << attribute_names[a];
  }
  if (dataset.has_labels()) file << options.delimiter << options.label_column;
  file << '\n';

  for (uint32_t i = 0; i < dataset.num_items(); ++i) {
    for (uint32_t a = 0; a < m; ++a) {
      if (a > 0) file << options.delimiter;
      const std::string& token =
          dataset.interner()->ToString(dataset.Row(i)[a]);
      const size_t eq = token.find('=');
      file << (eq == std::string::npos ? token : token.substr(eq + 1));
    }
    if (dataset.has_labels()) {
      file << options.delimiter << dataset.labels()[i];
    }
    file << '\n';
  }
  if (!file.good()) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

namespace {

/// A CSV parsed into per-column cells with single-pass numeric sniffing:
/// a column is numeric iff every cell parsed as a *finite* double (NaN /
/// inf count as non-numeric — a pandas-style missing value must not
/// silently poison a clustering objective). Parsed values are kept, so
/// no cell is parsed twice. Shared front of ReadNumericCsv /
/// ReadMixedCsv, built on the same header/row framework as
/// ReadCategoricalCsv. In numeric_strict mode (ReadNumericCsv) the first
/// non-numeric cell is an immediate error and no cell text is retained —
/// an all-numeric parse never holds the strings alongside the doubles.
struct CellTable {
  std::vector<std::string> columns;             // feature column names
  std::vector<std::vector<std::string>> cells;  // per column, one per row
  std::vector<std::vector<double>> numbers;     // parallel, numeric cols
  std::vector<bool> numeric;                    // per column
  std::vector<uint32_t> labels;                 // empty or one per row
  std::vector<size_t> line_numbers;             // source line of each row
  uint32_t num_rows = 0;
};

Result<CellTable> ParseCellTable(std::istream& input,
                                 const CsvOptions& options,
                                 bool numeric_strict) {
  LSHC_ASSIGN_OR_RETURN(const CsvHeader header,
                        ParseCsvHeader(input, options));
  CellTable table;
  table.columns = header.feature_names;
  table.cells.resize(table.columns.size());
  table.numbers.resize(table.columns.size());
  table.numeric.assign(table.columns.size(), true);

  LSHC_RETURN_NOT_OK(ForEachCsvRow(
      input, header, options,
      [&](const std::vector<std::string>& features,
          std::optional<uint32_t> label, size_t line_number) -> Status {
        if (label.has_value()) table.labels.push_back(*label);
        for (size_t column = 0; column < features.size(); ++column) {
          const std::string& field = features[column];
          if (!numeric_strict) table.cells[column].push_back(field);
          if (!table.numeric[column]) continue;
          double value = 0;
          if (ParseDouble(field, &value) && std::isfinite(value)) {
            table.numbers[column].push_back(value);
          } else if (numeric_strict) {
            return Status::InvalidArgument(
                "column '" + table.columns[column] + "' is not numeric "
                "(line " + std::to_string(line_number) + ": '" + field +
                "'); every feature column must parse as a finite double "
                "(use ReadMixedCsv for mixed data)");
          } else {
            table.numeric[column] = false;
            table.numbers[column].clear();
          }
        }
        table.line_numbers.push_back(line_number);
        ++table.num_rows;
        return Status::OK();
      }));
  if (table.num_rows == 0) {
    return Status::InvalidArgument("CSV contains a header but no rows");
  }
  return table;
}

Result<CellTable> ReadCellTable(const std::string& path,
                                const CsvOptions& options,
                                bool numeric_strict) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  auto table = ParseCellTable(file, options, numeric_strict);
  if (!table.ok()) return table.status().WithContext(path);
  return table;
}

}  // namespace

Result<NumericDataset> ReadNumericCsv(const std::string& path,
                                      const CsvOptions& options) {
  LSHC_ASSIGN_OR_RETURN(
      CellTable table,
      ReadCellTable(path, options, /*numeric_strict=*/true));
  const size_t d = table.columns.size();
  std::vector<double> values;
  values.reserve(static_cast<size_t>(table.num_rows) * d);
  for (uint32_t row = 0; row < table.num_rows; ++row) {
    for (size_t column = 0; column < d; ++column) {
      values.push_back(table.numbers[column][row]);
    }
  }
  return NumericDataset::FromValues(table.num_rows,
                                    static_cast<uint32_t>(d),
                                    std::move(values),
                                    std::move(table.labels));
}

Result<MixedDataset> ReadMixedCsv(const std::string& path,
                                  const CsvOptions& options) {
  LSHC_ASSIGN_OR_RETURN(
      CellTable table,
      ReadCellTable(path, options, /*numeric_strict=*/false));
  std::vector<size_t> numeric_columns, categorical_columns;
  for (size_t column = 0; column < table.columns.size(); ++column) {
    (table.numeric[column] ? numeric_columns : categorical_columns)
        .push_back(column);
  }
  if (numeric_columns.empty() || categorical_columns.empty()) {
    return Status::InvalidArgument(
        "'" + path + "' has " + std::to_string(categorical_columns.size()) +
        " categorical and " + std::to_string(numeric_columns.size()) +
        " numeric feature columns; mixed data needs at least one of each "
        "(use ReadCategoricalCsv or ReadNumericCsv instead)");
  }

  std::vector<std::string> categorical_names;
  for (const size_t column : categorical_columns) {
    categorical_names.push_back(table.columns[column]);
  }
  CategoricalDatasetBuilder builder(std::move(categorical_names));
  for (const auto& absent : options.absent_values) {
    builder.MarkAbsentValue(absent);
  }
  std::vector<std::string> categorical_row(categorical_columns.size());
  std::vector<double> numeric_values;
  numeric_values.reserve(static_cast<size_t>(table.num_rows) *
                         numeric_columns.size());
  for (uint32_t row = 0; row < table.num_rows; ++row) {
    for (size_t j = 0; j < categorical_columns.size(); ++j) {
      categorical_row[j] = table.cells[categorical_columns[j]][row];
    }
    const std::optional<uint32_t> label =
        table.labels.empty() ? std::nullopt
                             : std::optional<uint32_t>(table.labels[row]);
    LSHC_RETURN_NOT_OK(
        builder.AddRow(categorical_row, label)
            .WithContext("line " +
                         std::to_string(table.line_numbers[row])));
    for (const size_t column : numeric_columns) {
      numeric_values.push_back(table.numbers[column][row]);
    }
  }
  LSHC_ASSIGN_OR_RETURN(
      NumericDataset numeric,
      NumericDataset::FromValues(
          table.num_rows, static_cast<uint32_t>(numeric_columns.size()),
          std::move(numeric_values)));
  return MixedDataset::Combine(std::move(builder).Build(),
                               std::move(numeric));
}

}  // namespace lshclust
