#pragma once

/// \file serialize.h
/// \brief Compact binary round-trip format for categorical datasets.
///
/// Layout (little-endian):
///   magic "LSHC" | u32 version | u32 n | u32 m | u32 num_codes |
///   u8 flags (bit0 labels, bit1 absence bitmap, bit2 dictionary) |
///   u32 codes[n*m] | u32 labels[n]? | u8 absent[num_codes]? |
///   dictionary: u32 count, then per string u32 length + bytes
///
/// The binary form is ~8x smaller and ~40x faster to load than CSV for the
/// synthetic datasets and is what the bench drivers cache between runs.

#include <string>

#include "data/categorical_dataset.h"
#include "util/result.h"

namespace lshclust {

/// \brief Serializes `dataset` to `path` in the binary format above.
[[nodiscard]] Status SaveDatasetBinary(const CategoricalDataset& dataset,
                         const std::string& path);

/// \brief Loads a dataset previously written by SaveDatasetBinary.
Result<CategoricalDataset> LoadDatasetBinary(const std::string& path);

}  // namespace lshclust
