#pragma once

/// \file csv.h
/// \brief CSV reader/writer for categorical datasets.
///
/// Format: first line is the header of attribute names; an optional final
/// column named `label` carries integer ground-truth labels. Fields are
/// split on a configurable delimiter; quoting is not supported (values in
/// this domain are category identifiers, not free text).

#include <string>
#include <string_view>

#include "data/categorical_dataset.h"
#include "data/mixed_dataset.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options controlling CSV parsing.
struct CsvOptions {
  /// Field delimiter.
  char delimiter = ',';
  /// Name of the column treated as the ground-truth label.
  std::string label_column = "label";
  /// Value strings that denote "feature absent" (excluded from MinHash
  /// token sets, see Algorithm 2 lines 2-4). Empty means no absence
  /// semantics.
  std::vector<std::string> absent_values;
};

/// \brief Parses a CSV file into a CategoricalDataset.
Result<CategoricalDataset> ReadCategoricalCsv(const std::string& path,
                                              const CsvOptions& options = {});

/// \brief Parses CSV text (same format) from a string, for tests and small
/// embedded datasets.
Result<CategoricalDataset> ParseCategoricalCsv(std::string_view text,
                                               const CsvOptions& options = {});

/// \brief Writes a dataset to CSV (inverse of ReadCategoricalCsv). Requires
/// the dataset to carry an interner (string-backed values). The label
/// column is emitted iff labels are present.
[[nodiscard]] Status WriteCategoricalCsv(const CategoricalDataset& dataset,
                           const std::string& path,
                           const CsvOptions& options = {});

/// \brief Parses a CSV whose feature columns are all numeric (K-Means
/// input; every cell must parse as a double). Same header/label/trim
/// semantics as ReadCategoricalCsv; each cell is parsed exactly once.
Result<NumericDataset> ReadNumericCsv(const std::string& path,
                                      const CsvOptions& options = {});

/// \brief Parses a CSV with both kinds of feature columns (K-Prototypes
/// input): a column whose every value parses as a double is numeric, the
/// rest are categorical; at least one of each is required. Same
/// header/label/trim semantics as ReadCategoricalCsv.
Result<MixedDataset> ReadMixedCsv(const std::string& path,
                                  const CsvOptions& options = {});

}  // namespace lshclust
