#pragma once

/// \file slicing.h
/// \brief Dataset slicing, sampling and concatenation.
///
/// All operations preserve the code space, presence semantics and
/// dictionary of the source dataset, so slices remain interoperable with
/// indexes and mode tables built over the same codes (used e.g. to split a
/// catalog into an indexed base and a stream of arrivals).

#include <cstdint>

#include "data/categorical_dataset.h"
#include "util/result.h"
#include "util/rng.h"

namespace lshclust {

/// Items [begin, end) of `dataset` as a new dataset (labels kept).
Result<CategoricalDataset> SliceDataset(const CategoricalDataset& dataset,
                                        uint32_t begin, uint32_t end);

/// `count` items sampled without replacement (order preserved).
Result<CategoricalDataset> SampleDataset(const CategoricalDataset& dataset,
                                         uint32_t count, uint64_t seed);

/// Concatenates two datasets sharing a code space. Both must agree on
/// num_attributes, num_codes, presence flags, and label presence.
Result<CategoricalDataset> ConcatDatasets(const CategoricalDataset& first,
                                          const CategoricalDataset& second);

}  // namespace lshclust
