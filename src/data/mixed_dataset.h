#pragma once

/// \file mixed_dataset.h
/// \brief Mixed categorical + numeric items — the substrate for
/// K-Prototypes (Huang 1998) and its LSH acceleration (the paper's §VI:
/// "not only categorical data, but numeric data, or combinations of
/// both").

#include <cstdint>

#include "data/categorical_dataset.h"
#include "util/result.h"

namespace lshclust {

/// \brief n items, each with m categorical codes and d numeric values.
/// Labels (when present) live on the categorical part.
class MixedDataset {
 public:
  /// Combines two datasets over the same items. Item counts must agree;
  /// labels, if any, are taken from the categorical part.
  static Result<MixedDataset> Combine(CategoricalDataset categorical,
                                      NumericDataset numeric) {
    if (categorical.num_items() != numeric.num_items()) {
      return Status::InvalidArgument(
          "categorical part has " + std::to_string(categorical.num_items()) +
          " items, numeric part " + std::to_string(numeric.num_items()));
    }
    if (categorical.num_items() == 0) {
      return Status::InvalidArgument("dataset is empty");
    }
    MixedDataset dataset;
    dataset.categorical_ = std::move(categorical);
    dataset.numeric_ = std::move(numeric);
    return dataset;
  }

  uint32_t num_items() const { return categorical_.num_items(); }
  uint32_t num_categorical() const { return categorical_.num_attributes(); }
  uint32_t num_numeric() const { return numeric_.dimensions(); }

  const CategoricalDataset& categorical() const { return categorical_; }
  const NumericDataset& numeric() const { return numeric_; }

  bool has_labels() const { return categorical_.has_labels(); }
  const std::vector<uint32_t>& labels() const {
    return categorical_.labels();
  }

 private:
  MixedDataset() = default;
  CategoricalDataset categorical_;
  NumericDataset numeric_;
};

}  // namespace lshclust
