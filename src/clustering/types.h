#pragma once

/// \file types.h
/// \brief Shared option and result types for the clustering engines.

#include <cstdint>
#include <string>
#include <vector>

namespace lshclust {

/// \brief What to do when a cluster loses all members during an iteration.
enum class EmptyClusterPolicy {
  /// Keep the previous mode; the cluster can re-acquire members later.
  kKeepPreviousMode,
  /// Re-seed the mode from a random item (drawn from the engine's RNG).
  kReseedRandomItem,
};

/// \brief How initial centroids are selected.
enum class InitMethod {
  /// k distinct random items (the paper's choice, §IV-A).
  kRandom,
  /// Huang's frequency-based method (paper ref [3]).
  kHuang,
  /// Cao's density-distance method (paper ref [22]).
  kCao,
};

/// \brief Per-iteration measurements — one row of the paper's figure series.
struct IterationStats {
  /// 1-based iteration number within the refinement phase.
  uint32_t iteration = 0;
  /// Wall-clock seconds of this iteration (assignment + mode update).
  double seconds = 0;
  /// Items that changed cluster this iteration ("moves", Figs. 2c/3d/4b...).
  uint64_t moves = 0;
  /// Mean candidate shortlist size per item ("Avg. Clusters Returned",
  /// Figs. 2b/3c/...); equals k for the exhaustive baseline.
  double mean_shortlist = 0;
  /// Cost P(W, Q) (Eq. 4) evaluated after the mode update.
  double cost = 0;
};

/// \brief Outcome of a clustering run, including the instrumentation the
/// experiment harness turns into the paper's figures.
struct ClusteringResult {
  /// Final item -> cluster assignment, size n.
  std::vector<uint32_t> assignment;
  /// Per-iteration measurements for the refinement phase (the series
  /// plotted in the paper's per-iteration figures).
  std::vector<IterationStats> iterations;
  /// True iff the run stopped because no item moved.
  bool converged = false;
  /// True iff the run was stopped early by the caller's cancellation hook
  /// (EngineOptions::cancel). A cancelled result is still consistent: it
  /// reports the state after the last *completed* iteration (an
  /// interrupted pass is rolled back, never half-applied). If the hook
  /// fired before even the initial assignment pass completed, there is no
  /// completed state to report and `assignment` is empty.
  bool cancelled = false;
  /// Cost P(W, Q) after the final iteration.
  double final_cost = 0;
  /// Seconds spent selecting seeds and building initial centroids.
  double init_seconds = 0;
  /// Seconds of the initial exhaustive assignment pass (common to the
  /// baseline and the accelerated variant; Alg. 2 runs it before indexing).
  double initial_assign_seconds = 0;
  /// Seconds spent computing signatures and building the LSH index
  /// (zero for the baseline).
  double index_build_seconds = 0;
  /// Total wall-clock seconds: init + initial assign + index build +
  /// all refinement iterations.
  double total_seconds = 0;
  /// Exact distance kernel invocations across the refinement passes
  /// (cost evaluation is instrumentation and the initial exhaustive
  /// assignment is common to every method — Alg. 2 runs it before
  /// indexing — so neither is counted). For the exhaustive baseline this
  /// is n*k per pass; for shortlist providers it is the summed shortlist
  /// sizes, so the counter directly measures what the index (and the
  /// sketch prefilter on top of it) saves.
  uint64_t exact_distances_evaluated = 0;
  /// Candidate clusters dropped by the bit-sketch prefilter before their
  /// exact distance was computed (0 unless the prefilter is enabled) —
  /// each one an exact kernel invocation that did not happen. A cluster
  /// counts only when every peer proposing it was screened out.
  uint64_t exact_distances_pruned = 0;

  /// Sum of per-iteration seconds (the refinement phase only).
  double RefinementSeconds() const {
    double total = 0;
    for (const auto& it : iterations) total += it.seconds;
    return total;
  }
  /// Total moves across the refinement phase.
  uint64_t TotalMoves() const {
    uint64_t total = 0;
    for (const auto& it : iterations) total += it.moves;
    return total;
  }
};

}  // namespace lshclust
