#include "clustering/modes.h"

#include <algorithm>
#include <cstring>

#include "lsh/flat_hash_table.h"

namespace lshclust {

ModeTable::ModeTable(uint32_t num_clusters, uint32_t num_attributes)
    : num_clusters_(num_clusters), num_attributes_(num_attributes) {
  LSHC_CHECK_GE(num_clusters, 1u) << "need at least one cluster";
  LSHC_CHECK_GE(num_attributes, 1u) << "need at least one attribute";
  codes_.resize(static_cast<size_t>(num_clusters) * num_attributes, 0);
  sizes_.resize(num_clusters, 0);
  best_count_.resize(num_clusters, 0);
  best_code_.resize(num_clusters, 0);
  stamp_.resize(num_clusters, 0);
}

void ModeTable::SetModeFromItem(uint32_t cluster,
                                const CategoricalDataset& dataset,
                                uint32_t item) {
  LSHC_CHECK_LT(cluster, num_clusters_);
  LSHC_CHECK_EQ(dataset.num_attributes(), num_attributes_);
  const auto row = dataset.Row(item);
  std::copy(row.begin(), row.end(),
            codes_.begin() + static_cast<size_t>(cluster) * num_attributes_);
}

void ModeTable::RecomputeFromAssignment(const CategoricalDataset& dataset,
                                        std::span<const uint32_t> assignment,
                                        EmptyClusterPolicy policy, Rng& rng) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = num_attributes_;
  LSHC_CHECK_EQ(assignment.size(), static_cast<size_t>(n))
      << "assignment must map every item";
  LSHC_CHECK_EQ(dataset.num_attributes(), m);

  std::fill(sizes_.begin(), sizes_.end(), 0);
  for (const uint32_t cluster : assignment) {
    LSHC_DCHECK(cluster < num_clusters_) << "assignment out of range";
    ++sizes_[cluster];
  }

  // Frequency table reused across attributes: (cluster, code) -> count.
  FlatHashMap64 frequency(n);
  const uint32_t* codes = dataset.codes().data();

  for (uint32_t attribute = 0; attribute < m; ++attribute) {
    frequency.Clear();
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t code = codes[static_cast<size_t>(item) * m + attribute];
      const uint64_t key =
          (static_cast<uint64_t>(assignment[item]) << 32) | code;
      ++*frequency.FindOrInsert(key, 0);
    }

    // Per-cluster argmax with deterministic smallest-code tie-break, so
    // the result is independent of hash-map iteration order. When the
    // epoch counter wraps it could collide with stale stamps (making an
    // unseen cluster read as seen, with garbage best counts), so clear
    // the stamps and restart at 1 — same contract as BumpDedupEpoch.
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    frequency.ForEach([&](uint64_t key, uint32_t count) {
      const uint32_t cluster = static_cast<uint32_t>(key >> 32);
      const uint32_t code = static_cast<uint32_t>(key);
      if (stamp_[cluster] != epoch_) {
        stamp_[cluster] = epoch_;
        best_count_[cluster] = count;
        best_code_[cluster] = code;
        return;
      }
      if (count > best_count_[cluster] ||
          (count == best_count_[cluster] && code < best_code_[cluster])) {
        best_count_[cluster] = count;
        best_code_[cluster] = code;
      }
    });

    for (uint32_t cluster = 0; cluster < num_clusters_; ++cluster) {
      if (stamp_[cluster] == epoch_) {
        codes_[static_cast<size_t>(cluster) * m + attribute] =
            best_code_[cluster];
      }
    }
  }

  if (policy == EmptyClusterPolicy::kReseedRandomItem && n > 0) {
    for (uint32_t cluster = 0; cluster < num_clusters_; ++cluster) {
      if (sizes_[cluster] == 0) {
        const uint32_t item = static_cast<uint32_t>(rng.Below(n));
        SetModeFromItem(cluster, dataset, item);
      }
    }
  }
}

}  // namespace lshclust
