#pragma once

/// \file canopy.h
/// \brief Canopy clustering (McCallum, Nigam & Ungar 2000 — the paper's
/// related-work ref [15]): overlapping coarse groups built with a cheap
/// distance, inside which exact distances are computed.
///
/// The paper positions canopies as the classic alternative to its LSH
/// index for pruning the cluster search space; this module implements
/// them so the two accelerators can be compared head-to-head
/// (core/canopy_kmodes.h plugs canopies into the same engine hook as the
/// MinHash index, and bench/ext_related_baselines.cpp runs the fight).
///
/// Construction (the original algorithm):
///   while candidate centers remain:
///     pick a center c at random;
///     its canopy = all items with cheap_distance(x, c) < T1;
///     items with cheap_distance(x, c) < T2 stop being candidate centers.
/// T1 > T2; items may belong to several canopies.
///
/// The cheap distance for categorical data is the mismatch count over a
/// fixed random subset of attributes — a handful of comparisons instead
/// of m.

#include <cstdint>
#include <span>
#include <vector>

#include "data/categorical_dataset.h"
#include "util/result.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Options for canopy construction.
struct CanopyOptions {
  /// Attributes sampled for the cheap distance (clamped to m).
  uint32_t cheap_attributes = 8;
  /// Loose threshold T1 as a fraction of the sampled attributes: items
  /// mismatching on fewer than T1 * cheap_attributes sampled positions
  /// join the canopy.
  double loose_fraction = 0.75;
  /// Tight threshold T2 (< T1): items inside it stop being candidate
  /// centers.
  double tight_fraction = 0.4;
  /// RNG seed (center order and attribute sample).
  uint64_t seed = 42;
};

/// Validates the dataset-independent canopy invariants as a returned
/// Status. CanopyIndex::Build re-checks them, so direct callers keep the
/// historical behaviour; the front door (api/clusterer.h) reports them at
/// Clusterer::Create time instead of mid-run.
[[nodiscard]] inline Status ValidateCanopyOptions(const CanopyOptions& options) {
  if (!(options.tight_fraction > 0.0 &&
        options.tight_fraction <= options.loose_fraction &&
        options.loose_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "thresholds must satisfy 0 < tight <= loose <= 1");
  }
  if (options.cheap_attributes == 0) {
    return Status::InvalidArgument("cheap_attributes must be positive");
  }
  return Status::OK();
}

/// \brief Immutable canopy cover of a dataset: every item belongs to at
/// least one canopy; canopies overlap.
class CanopyIndex {
 public:
  /// Builds the cover. Fails on an empty dataset or thresholds violating
  /// 0 < tight <= loose <= 1.
  static Result<CanopyIndex> Build(const CategoricalDataset& dataset,
                                   const CanopyOptions& options);

  /// Number of canopies.
  uint32_t num_canopies() const {
    return static_cast<uint32_t>(canopy_offsets_.size() - 1);
  }
  /// Number of covered items (= dataset size).
  uint32_t num_items() const { return num_items_; }

  /// The items of canopy `canopy`.
  std::span<const uint32_t> CanopyMembers(uint32_t canopy) const {
    LSHC_DCHECK(canopy < num_canopies());
    return {canopy_items_.data() + canopy_offsets_[canopy],
            canopy_offsets_[canopy + 1] - canopy_offsets_[canopy]};
  }

  /// The canopies containing `item` (at least one).
  std::span<const uint32_t> CanopiesOf(uint32_t item) const {
    LSHC_DCHECK(item < num_items_);
    return {item_canopies_.data() + item_offsets_[item],
            item_offsets_[item + 1] - item_offsets_[item]};
  }

  /// Invokes `visit(other_item)` for every item sharing a canopy with
  /// `item` (repeats across canopies possible; includes `item` itself).
  template <typename Visitor>
  void VisitCanopyPeers(uint32_t item, Visitor&& visit) const {
    for (const uint32_t canopy : CanopiesOf(item)) {
      for (const uint32_t other : CanopyMembers(canopy)) {
        visit(other);
      }
    }
  }

  /// Mean canopy size (items appear once per containing canopy).
  double MeanCanopySize() const {
    return num_canopies() == 0
               ? 0.0
               : static_cast<double>(canopy_items_.size()) / num_canopies();
  }

 private:
  CanopyIndex() = default;

  uint32_t num_items_ = 0;
  // canopy -> items (CSR).
  std::vector<uint32_t> canopy_offsets_;
  std::vector<uint32_t> canopy_items_;
  // item -> canopies (CSR).
  std::vector<uint32_t> item_offsets_;
  std::vector<uint32_t> item_canopies_;
};

}  // namespace lshclust
