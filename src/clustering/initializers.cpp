#include "clustering/initializers.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "clustering/dissimilarity.h"
#include "util/macros.h"

namespace lshclust {

namespace {

Status ValidateK(const CategoricalDataset& dataset, uint32_t k) {
  if (k == 0) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > dataset.num_items()) {
    return Status::InvalidArgument(
        "cannot select " + std::to_string(k) + " seeds from " +
        std::to_string(dataset.num_items()) + " items");
  }
  return Status::OK();
}

/// Computes dens(x) = (1/m) Σ_j fr(A_j = x_j | X) for every item — the
/// density used by both Huang's ranking and Cao's first seed.
std::vector<double> ComputeDensities(const CategoricalDataset& dataset) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_attributes();
  // Codes are globally unique across attributes, so one frequency table
  // covers all attributes at once.
  std::vector<uint32_t> code_frequency(dataset.num_codes(), 0);
  for (const uint32_t code : dataset.codes()) ++code_frequency[code];

  std::vector<double> densities(n, 0.0);
  const double scale = 1.0 / (static_cast<double>(n) * m);
  for (uint32_t item = 0; item < n; ++item) {
    double sum = 0;
    for (const uint32_t code : dataset.Row(item)) {
      sum += static_cast<double>(code_frequency[code]);
    }
    densities[item] = sum * scale;
  }
  return densities;
}

}  // namespace

Result<std::vector<uint32_t>> SelectRandomSeeds(
    const CategoricalDataset& dataset, uint32_t k, Rng& rng) {
  LSHC_RETURN_NOT_OK(ValidateK(dataset, k));
  return rng.SampleWithoutReplacement(dataset.num_items(), k);
}

Result<std::vector<uint32_t>> SelectHuangSeeds(
    const CategoricalDataset& dataset, uint32_t k, Rng& rng) {
  LSHC_RETURN_NOT_OK(ValidateK(dataset, k));
  LSHC_UNUSED(rng);
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_attributes();

  const std::vector<double> densities = ComputeDensities(dataset);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return densities[a] > densities[b];
                   });

  // Walk the ranking with stride n/k so seeds spread across the density
  // spectrum, skipping items identical to an already chosen seed.
  std::vector<uint32_t> seeds;
  seeds.reserve(k);
  std::vector<bool> taken(n, false);
  const uint32_t stride = std::max<uint32_t>(1, n / k);
  for (uint32_t start = 0; seeds.size() < k && start < stride; ++start) {
    for (uint32_t pos = start; pos < n && seeds.size() < k; pos += stride) {
      const uint32_t item = order[pos];
      if (taken[item]) continue;
      bool duplicate = false;
      for (const uint32_t seed : seeds) {
        if (MismatchDistance(dataset.Row(item), dataset.Row(seed)) == 0) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      taken[item] = true;
      seeds.push_back(item);
    }
  }
  // If duplicates exhausted the supply of distinct items, fill with any
  // remaining items to honour the contract of returning exactly k seeds.
  for (uint32_t item = 0; seeds.size() < k && item < n; ++item) {
    if (!taken[item]) {
      taken[item] = true;
      seeds.push_back(item);
    }
  }
  LSHC_UNUSED(m);
  return seeds;
}

Result<std::vector<uint32_t>> SelectCaoSeeds(const CategoricalDataset& dataset,
                                             uint32_t k, Rng& rng) {
  LSHC_RETURN_NOT_OK(ValidateK(dataset, k));
  LSHC_UNUSED(rng);
  const uint32_t n = dataset.num_items();

  const std::vector<double> densities = ComputeDensities(dataset);

  std::vector<uint32_t> seeds;
  seeds.reserve(k);
  const auto first = static_cast<uint32_t>(
      std::max_element(densities.begin(), densities.end()) -
      densities.begin());
  seeds.push_back(first);

  // min over chosen seeds of d(x, seed), maintained incrementally.
  std::vector<uint32_t> min_distance(n, std::numeric_limits<uint32_t>::max());
  std::vector<bool> chosen(n, false);
  chosen[first] = true;
  while (seeds.size() < k) {
    const uint32_t last = seeds.back();
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t d = MismatchDistance(dataset.Row(item), dataset.Row(last));
      min_distance[item] = std::min(min_distance[item], d);
    }
    uint32_t best_item = n;  // sentinel: no candidate yet
    double best_score = -1.0;
    for (uint32_t item = 0; item < n; ++item) {
      if (chosen[item]) continue;
      const double score =
          static_cast<double>(min_distance[item]) * densities[item];
      if (score > best_score) {
        best_score = score;
        best_item = item;
      }
    }
    LSHC_CHECK_LT(best_item, n) << "ran out of distinct items for seeds";
    chosen[best_item] = true;
    seeds.push_back(best_item);
  }
  return seeds;
}

Result<std::vector<uint32_t>> SelectSeeds(const CategoricalDataset& dataset,
                                          uint32_t k, InitMethod method,
                                          Rng& rng) {
  switch (method) {
    case InitMethod::kRandom:
      return SelectRandomSeeds(dataset, k, rng);
    case InitMethod::kHuang:
      return SelectHuangSeeds(dataset, k, rng);
    case InitMethod::kCao:
      return SelectCaoSeeds(dataset, k, rng);
  }
  return Status::InvalidArgument("unknown init method");
}

}  // namespace lshclust
