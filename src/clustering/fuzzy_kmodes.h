#pragma once

/// \file fuzzy_kmodes.h
/// \brief Fuzzy K-Modes (Huang & Ng 1999 — the paper's ref [21], from
/// which it takes the K-Modes formalization).
///
/// Instead of a hard assignment, every item carries a membership
/// distribution over the k clusters; the optimisation target is
///   F(W, Q) = Σ_l Σ_i w_il^α d(X_i, Q_l),   Σ_l w_il = 1,  w_il >= 0,
/// with fuzziness exponent α > 1. The alternating updates are
///   w_il = 1 / Σ_h (d(X_i,Q_l) / d(X_i,Q_h))^(1/(α-1))
///   q_lj = argmax_c Σ_{i: x_ij = c} w_il^α            (fuzzy mode)
/// with the convention that items at distance 0 from one or more modes
/// put all their membership uniformly on those modes.
///
/// The membership matrix is n x k doubles, so this implementation targets
/// the moderate-k regime; it is a reference substrate, not a large-scale
/// path (the paper's framework accelerates the *hard* assignment step).

#include <cstdint>
#include <vector>

#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for fuzzy K-Modes.
struct FuzzyKModesOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Fuzziness exponent α (> 1; α -> 1 approaches hard K-Modes, large α
  /// blurs all memberships towards uniform).
  double alpha = 1.5;
  /// Iteration cap.
  uint32_t max_iterations = 100;
  /// Stop when the objective improves by less than this (relative).
  double tolerance = 1e-6;
  /// Explicit seed items (same contract as EngineOptions::initial_seeds).
  std::vector<uint32_t> initial_seeds;
  /// RNG seed for seed selection.
  uint64_t seed = 42;
};

/// \brief Outcome of a fuzzy K-Modes run.
struct FuzzyKModesResult {
  /// Row-major n x k membership matrix; rows sum to 1.
  std::vector<double> memberships;
  /// Hard assignment by maximum membership (ties to the lowest cluster).
  std::vector<uint32_t> hard_assignment;
  /// Final modes, row-major k x m.
  std::vector<uint32_t> modes;
  /// Objective F(W, Q) per iteration (non-increasing).
  std::vector<double> objective;
  /// True iff the run stopped on the tolerance test.
  bool converged = false;
  /// Number of clusters and attributes (matrix shapes).
  uint32_t num_clusters = 0;
  uint32_t num_attributes = 0;

  /// Membership of `item` in `cluster`.
  double Membership(uint32_t item, uint32_t cluster) const {
    return memberships[static_cast<size_t>(item) * num_clusters + cluster];
  }
};

/// Runs fuzzy K-Modes on `dataset`.
Result<FuzzyKModesResult> RunFuzzyKModes(const CategoricalDataset& dataset,
                                         const FuzzyKModesOptions& options);

}  // namespace lshclust
