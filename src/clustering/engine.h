#pragma once

/// \file engine.h
/// \brief The unified centroid-clustering refinement engine, templated on
/// the dataset family (via traits) and the candidate provider.
///
/// The paper's framework changes exactly one thing about centroid-based
/// clustering: where the assignment step looks for candidate clusters.
/// Everything else — seeding, the initial exhaustive pass, centroid
/// updates, the convergence test, instrumentation — is shared. The engine
/// therefore factors along two axes:
///
///  * **Traits** describe the dataset family and its dissimilarity:
///    - CategoricalClusteringTraits (here): K-Modes, mismatch counts.
///    - NumericClusteringTraits (clustering/kmeans.h): K-Means, squared L2.
///    - MixedClusteringTraits (clustering/kprototypes.h): K-Prototypes,
///      mismatches + gamma * squared L2.
///  * **Provider** is the candidate policy:
///    - ExhaustiveProvider — every cluster is a candidate: the original
///      algorithm of the family.
///    - ShortlistProvider<Family> (core/shortlist_provider.h) — candidates
///      come from an LSH banding index: the paper's acceleration.
///
/// One engine body serves all six combinations (and more, e.g. the canopy
/// provider), which keeps the paper's efficiency comparisons honest: both
/// sides of every comparison run the same code except candidate
/// generation.
///
/// Phases, timed separately (see ClusteringResult):
///   1. init: seed selection, initial centroids = seed items.
///   2. initial assignment: one exhaustive pass (the paper performs this
///      for MH-K-Modes too, before the index exists — Alg. 2 step 2).
///   3. provider.Prepare(): signature computation + index build
///      (no-op for the baseline). Pool-aware providers receive the worker
///      pool and parallelize signing over items.
///   4. refinement iterations until no item moves or max_iterations.
///
/// ## Shard-aware batch-parallel assignment
///
/// The assignment step — the hot loop the whole paper is about — runs
/// through a two-level decomposition (src/shard/shard_plan.h): the item
/// space is partitioned into `EngineOptions::num_shards` contiguous
/// shards, each shard is cut into `EngineOptions::chunk_size`-item
/// chunks, and the chunks are dispatched to a small worker pool
/// (util/thread_pool.h) when EngineOptions::num_threads > 1. A shard is
/// the slice a future node / NUMA domain would own: it carries its own
/// replica handle of the centroid-side shortlist state and its own query
/// scratch, so nothing about a shard's work references pool-global
/// mutable state. Determinism is preserved by construction — every
/// (num_shards x num_threads) combination produces bit-identical
/// assignments, costs and move counts, and `num_shards = 1` *is* the
/// historical flat decomposition, not an emulation of it:
///
///  * Candidate providers dereference a *snapshot* of the assignment taken
///    at the start of the pass (the cluster-reference store of §III-B,
///    frozen per iteration), so an item's shortlist never depends on how
///    many items before it already moved this pass. Each item writes only
///    its own assignment slot. The snapshot buffer is allocated once per
///    run and reused across refinement iterations.
///  * Per-chunk move/shortlist accumulators live in a ShardedAccumulator
///    and are merged in shard order (chunk order within the shard) after
///    the pass.
///  * Centroid updates — including empty-cluster repair — and cost
///    evaluation stay sequential: they are cheap (one scan) and their
///    floating-point summation and RNG draw order is part of the
///    reported numbers.
///
/// Providers that opt into parallel queries expose `MakeScratch()` and a
/// const `GetCandidates(item, assignment, scratch, out)`; the engine gives
/// every (shard, worker) pair its own scratch. Providers that additionally
/// expose `MakeReplica()` (see core/shortlist_provider.h) hand each shard
/// a replica handle of their read-only query state — on one node every
/// replica aliases the same index, but the handle is the seam where
/// multi-node scale-out substitutes a per-shard copy. Legacy
/// single-threaded providers (a non-const 3-argument `GetCandidates`)
/// still work — the engine detects them and runs their passes
/// sequentially on the live assignment array, preserving their historical
/// in-place semantics (the shard plan has no observable effect there).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "clustering/dissimilarity.h"
#include "clustering/initializers.h"
#include "clustering/modes.h"
#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "shard/shard_executor.h"
#include "shard/shard_plan.h"
#include "shard/sharded_accumulator.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace lshclust {

/// \brief Options shared by every engine family (K-Modes, K-Means,
/// K-Prototypes and their LSH-accelerated variants).
struct EngineOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Refinement iteration cap (the paper caps Fig. 10 at 10).
  uint32_t max_iterations = 100;
  /// Empty-cluster handling during centroid updates.
  EmptyClusterPolicy empty_cluster_policy =
      EmptyClusterPolicy::kKeepPreviousMode;
  /// Initial centroid selection method (ignored when initial_seeds given;
  /// kHuang/kCao are categorical-only).
  InitMethod init_method = InitMethod::kRandom;
  /// Explicit seed items; the experiment harness draws these once and
  /// passes the same vector to every variant, as the paper does.
  std::vector<uint32_t> initial_seeds;
  /// Seed for the engine RNG (seed selection, empty-cluster reseeding).
  uint64_t seed = 42;
  /// Use the bounded early-exit distance kernel (ablation switch).
  bool early_exit = true;
  /// Evaluate the cost function after each iteration (Eq. 4 for K-Modes,
  /// inertia for K-Means, the mixed objective for K-Prototypes). Costs one
  /// extra n*m scan per iteration; switch off for pure timing.
  bool compute_cost = true;
  /// Worker threads for the batch-parallel assignment step and the
  /// provider's signature pass. 1 = run in-line on the calling thread
  /// (default); 0 = one per hardware thread. Any value produces
  /// bit-identical results.
  uint32_t num_threads = 1;
  /// Item-space shards of the two-level (shard -> chunk) decomposition.
  /// Each shard owns a contiguous item slice, a replica handle of the
  /// centroid-side shortlist state and its own query scratch. Must be
  /// >= 1; any value produces bit-identical results (1 = the historical
  /// flat decomposition). Values above the flat chunk count
  /// (ceil(n / chunk_size)) are clamped to it — the excess shards could
  /// not own a whole work unit anyway.
  uint32_t num_shards = 1;
  /// Items per work unit of the parallel assignment step, within a shard.
  /// Must be >= 1. Never derived from the thread count, so the chunk
  /// decomposition — and with it all per-chunk bookkeeping — is identical
  /// for every num_threads; any value produces bit-identical results
  /// (tuning knob for the NUMA/chunk-size study).
  uint32_t chunk_size = 1024;
  /// Invoked after every refinement iteration with that iteration's stats
  /// (the same record appended to ClusteringResult::iterations, cost
  /// included when compute_cost is set). Runs on the calling thread,
  /// outside the iteration clock; keep it cheap. Null = no reporting.
  std::function<void(const IterationStats&)> progress;
  /// Cooperative cancellation hook: polled between refinement iterations,
  /// at shard-chunk boundaries inside every assignment pass, and at
  /// signing-batch boundaries inside the provider's Prepare (cancel-aware
  /// providers; the signature + index-build phase is the most expensive
  /// pre-iteration work); return true to stop the run. An interrupted
  /// pass is rolled back — and an interrupted Prepare installs no index —
  /// so the engine returns the state after the last completed iteration
  /// with ClusteringResult::cancelled set. May be called concurrently
  /// from worker threads — it must be thread-safe (an atomic flag is the
  /// typical implementation). Null = never cancelled.
  std::function<bool()> cancel;
};

/// Validates the dataset-independent EngineOptions invariants as a
/// returned Status — the front door (api/clusterer.h) and the CLI report
/// these as usage errors instead of aborting. Dataset-dependent checks
/// (k <= n, seed items in range) stay in ClusteringEngine::Run, which
/// re-checks these too, so direct engine callers keep the historical
/// behaviour.
[[nodiscard]] inline Status ValidateEngineOptions(const EngineOptions& options) {
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be >= 1");
  }
  if (!options.initial_seeds.empty() &&
      options.initial_seeds.size() != options.num_clusters) {
    return Status::InvalidArgument(
        "initial_seeds has " + std::to_string(options.initial_seeds.size()) +
        " entries, expected k=" + std::to_string(options.num_clusters));
  }
  return Status::OK();
}

/// Best cluster for `item` scanning every cluster — the family's exact
/// argmin semantics: `seed_cluster` is evaluated exactly first (so the
/// early-exit bound starts tight once the clustering stabilises) and
/// skipped in the scan; strict improvement decides, so ties keep the
/// lowest-index candidate. The engine's exhaustive passes and the
/// facade's Predict share this one kernel, so their tie-breaking can
/// never drift apart.
template <typename Traits, bool EarlyExit>
uint32_t BestClusterExhaustive(const typename Traits::Dataset& dataset,
                               const typename Traits::Centroids& centroids,
                               const typename Traits::Options& options,
                               uint32_t item, uint32_t seed_cluster,
                               uint32_t k) {
  uint32_t best_cluster = seed_cluster;
  typename Traits::DistanceType best_distance =
      Traits::template ComputeDistance<false>(dataset, centroids, options,
                                              item, seed_cluster,
                                              Traits::kInfiniteDistance);
  for (uint32_t cluster = 0; cluster < k; ++cluster) {
    if (cluster == seed_cluster) continue;
    const typename Traits::DistanceType distance =
        Traits::template ComputeDistance<EarlyExit>(
            dataset, centroids, options, item, cluster, best_distance);
    if (distance < best_distance) {
      best_distance = distance;
      best_cluster = cluster;
    }
  }
  return best_cluster;
}

/// \brief Candidate provider that enumerates every cluster — plugging this
/// into the engine yields the family's original algorithm. One struct
/// serves all dataset families (Prepare is a template; the engine never
/// queries candidates on the exhaustive path).
struct ExhaustiveProvider {
  /// Tells the engine to scan all k clusters without materialising lists.
  static constexpr bool kExhaustive = true;

  /// Nothing to build.
  template <typename Dataset>
  [[nodiscard]] Status Prepare(const Dataset&) {
    return Status::OK();
  }
};

/// \brief Dissimilarity/centroid traits for categorical data (K-Modes).
struct CategoricalClusteringTraits {
  using Dataset = CategoricalDataset;
  using Options = EngineOptions;
  using DistanceType = uint32_t;
  using Centroids = ModeTable;

  /// Bound that never triggers an early exit (mismatches <= m << 2^32).
  static constexpr DistanceType kInfiniteDistance = ~0u;

  [[nodiscard]] static Status ValidateOptions(const Dataset&, const Options&) {
    return Status::OK();
  }

  static Result<std::vector<uint32_t>> SelectSeedItems(const Dataset& dataset,
                                                       const Options& options,
                                                       Rng& rng) {
    return SelectSeeds(dataset, options.num_clusters, options.init_method,
                       rng);
  }

  static Centroids MakeCentroids(const Dataset& dataset,
                                 const Options& options) {
    return ModeTable(options.num_clusters, dataset.num_attributes());
  }

  static void SeedCentroid(Centroids& modes, uint32_t cluster,
                           const Dataset& dataset, uint32_t item) {
    modes.SetModeFromItem(cluster, dataset, item);
  }

  /// Mismatch count of item vs mode. EarlyExit selects the bounded
  /// blockwise kernel; the plain kernel is kept distinct so the ablation
  /// bench measures exactly the kernels it names.
  template <bool EarlyExit>
  static DistanceType ComputeDistance(const Dataset& dataset,
                                      const Centroids& modes, const Options&,
                                      uint32_t item, uint32_t cluster,
                                      DistanceType bound) {
    if constexpr (EarlyExit) {
      return BoundedMismatchDistance(dataset.Row(item).data(),
                                     modes.ModeData(cluster),
                                     dataset.num_attributes(), bound);
    } else {
      return MismatchDistance(dataset.Row(item), modes.Mode(cluster));
    }
  }

  static void UpdateCentroids(const Dataset& dataset, Centroids& modes,
                              std::span<const uint32_t> assignment,
                              const Options& options, Rng& rng) {
    modes.RecomputeFromAssignment(dataset, assignment,
                                  options.empty_cluster_policy, rng);
  }

  /// Cost P(W, Q) (Eq. 4): summed mismatch of every item to its mode.
  static double ComputeCost(const Dataset& dataset, const Centroids& modes,
                            const Options&,
                            std::span<const uint32_t> assignment) {
    double cost = 0;
    for (uint32_t item = 0; item < dataset.num_items(); ++item) {
      cost +=
          MismatchDistance(dataset.Row(item), modes.Mode(assignment[item]));
    }
    return cost;
  }
};

namespace internal {

/// Scratch type of a provider: providers that support parallel queries
/// expose MakeScratch(); everything else gets an empty placeholder.
template <typename Provider>
struct ProviderScratch {
  struct None {};
  using type = None;
};
template <typename Provider>
  requires requires(const Provider& p) { p.MakeScratch(); }
struct ProviderScratch<Provider> {
  using type = decltype(std::declval<const Provider&>().MakeScratch());
};

/// Replica-handle type of a provider: providers exposing MakeReplica()
/// hand each shard a replica of their read-only query state; everything
/// else gets the engine-supplied fallback (a thin provider reference).
template <typename Provider, typename Fallback>
struct ProviderReplica {
  using type = Fallback;
};
template <typename Provider, typename Fallback>
  requires requires(const Provider& p) { p.MakeReplica(); }
struct ProviderReplica<Provider, Fallback> {
  using type = decltype(std::declval<const Provider&>().MakeReplica());
};

}  // namespace internal

/// \brief The unified refinement engine. See the file comment.
template <typename Traits, typename Provider>
class ClusteringEngine {
 public:
  using Dataset = typename Traits::Dataset;
  using Options = typename Traits::Options;
  using DistanceType = typename Traits::DistanceType;
  using Centroids = typename Traits::Centroids;

  /// Runs the full procedure with candidate clusters supplied by
  /// `provider`.
  ///
  /// \param dataset items to cluster
  /// \param options engine options; num_clusters must be in [1, n]
  /// \param provider candidate policy (ExhaustiveProvider for baselines)
  /// \param final_centroids when non-null, receives the centroids as of
  ///        the last completed centroid update (the model the facade's
  ///        Predict assigns out-of-sample items against)
  /// \return per-iteration instrumentation and the final assignment
  static Result<ClusteringResult> Run(const Dataset& dataset,
                                      const Options& options,
                                      Provider& provider,
                                      Centroids* final_centroids = nullptr) {
    const uint32_t n = dataset.num_items();
    const uint32_t k = options.num_clusters;
    if (n == 0) return Status::InvalidArgument("dataset is empty");
    if (k == 0 || k > n) {
      return Status::InvalidArgument(
          "num_clusters must be in [1, n]; got k=" + std::to_string(k) +
          " with n=" + std::to_string(n));
    }
    if (options.num_shards == 0) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (options.chunk_size == 0) {
      return Status::InvalidArgument("chunk_size must be >= 1");
    }
    LSHC_RETURN_NOT_OK(Traits::ValidateOptions(dataset, options));

    ClusteringResult result;
    Rng rng(options.seed);
    Stopwatch total_watch;

    // Phase 1: seeds -> initial centroids.
    Stopwatch phase_watch;
    std::vector<uint32_t> seeds = options.initial_seeds;
    if (seeds.empty()) {
      LSHC_ASSIGN_OR_RETURN(seeds,
                            Traits::SelectSeedItems(dataset, options, rng));
    } else if (seeds.size() != k) {
      return Status::InvalidArgument(
          "initial_seeds has " + std::to_string(seeds.size()) +
          " entries, expected k=" + std::to_string(k));
    }
    for (const uint32_t seed_item : seeds) {
      if (seed_item >= n) {
        return Status::OutOfRange("seed item " + std::to_string(seed_item) +
                                  " out of range");
      }
    }
    Centroids centroids = Traits::MakeCentroids(dataset, options);
    for (uint32_t cluster = 0; cluster < k; ++cluster) {
      Traits::SeedCentroid(centroids, cluster, dataset, seeds[cluster]);
    }
    result.init_seconds = phase_watch.ElapsedSeconds();

    // Worker pool shared by every pass of this run. Legacy providers
    // cannot be queried concurrently, so their shortlist passes run
    // sequentially either way; the exhaustive passes still parallelise.
    const uint32_t num_threads = ResolveThreadCount(options.num_threads);
    std::optional<ThreadPool> pool_storage;
    ThreadPool* pool = nullptr;
    if (num_threads > 1) {
      pool_storage.emplace(num_threads);
      pool = &*pool_storage;
    }

    // The two-level decomposition of this run's item space, and the
    // per-chunk accumulator storage every pass merges in shard order.
    // Both are pure functions of (n, num_shards, chunk_size), never of
    // the pool, which is what keeps every (shards x threads) combination
    // bit-identical. Clamped() caps the shard count at the flat chunk
    // count, so per-shard state stays proportional to actual work units.
    const ShardPlan plan =
        ShardPlan::Clamped(n, options.num_shards, options.chunk_size);
    ShardedAccumulator<ChunkStats> accumulator;

    // Shard-local query state for parallel-capable shortlist providers:
    // each shard owns a replica handle of the provider's read-only query
    // state plus one scratch slot per worker (filled lazily; see
    // ShardState) — nothing a shard's queries touch is pool-global.
    [[maybe_unused]] std::vector<ShardState> shard_states;
    if constexpr (!Provider::kExhaustive && kParallelProvider) {
      shard_states.reserve(plan.num_shards());
      for (uint32_t s = 0; s < plan.num_shards(); ++s) {
        ShardState state{MakeQueryHandle(provider), {}, {}};
        state.scratches.resize(num_threads);
        state.shortlists.resize(num_threads);
        shard_states.push_back(std::move(state));
      }
    }

    // Cooperative cancellation: one latch shared by every pass of the run.
    // Workers poll it at chunk boundaries; once any poll answers "stop",
    // the remaining chunks are skipped and the interrupted pass is rolled
    // back below, so the reported state is always a completed iteration's.
    std::atomic<bool> cancel_latch{false};
    const CancelPoll cancel{options.cancel ? &options.cancel : nullptr,
                            &cancel_latch};
    const auto finish_cancelled = [&](ClusteringResult&& partial) {
      partial.cancelled = true;
      partial.final_cost =
          partial.iterations.empty() ? 0.0 : partial.iterations.back().cost;
      partial.total_seconds = total_watch.ElapsedSeconds();
      if (final_centroids != nullptr) *final_centroids = std::move(centroids);
      return std::move(partial);
    };

    // Phase 2: initial exhaustive assignment + first centroid update.
    phase_watch.Restart();
    result.assignment.assign(n, 0);
    // Evaluations of this pass are deliberately not folded into
    // result.exact_distances_evaluated: the initial exhaustive assignment
    // is common to every method, so the counter tracks the refinement
    // phase, where the providers differ.
    uint64_t initial_evaluated = 0;
    DispatchEarlyExit(options.early_exit, [&](auto early_exit) {
      ExhaustivePass<early_exit.value, /*FirstPass=*/true>(
          dataset, centroids, options, result.assignment, plan, pool,
          accumulator, &initial_evaluated, cancel);
    });
    if (cancel.Latched()) {
      // The interrupted initial pass has no previous state to roll back
      // to — unprocessed chunks still hold the cluster-0 placeholder —
      // so report no assignment at all rather than a half-applied one.
      result.assignment.clear();
      return finish_cancelled(std::move(result));
    }
    Traits::UpdateCentroids(dataset, centroids, result.assignment, options,
                            rng);
    result.initial_assign_seconds = phase_watch.ElapsedSeconds();
    // Fresh poll before the index build starts: the initial assignment is
    // complete and reportable, and Prepare is the next big work unit.
    if (cancel.Cancelled()) return finish_cancelled(std::move(result));

    // Phase 3: provider preparation (signatures + LSH index). Pool-aware
    // providers parallelize their signing pass over the same workers the
    // assignment step uses; others keep their historical signature.
    // Cancel-aware providers additionally poll the run's hook at
    // signing-batch boundaries — Prepare is the most expensive
    // pre-iteration phase, so a cancel landing here must not wait for the
    // first refinement pass. A Prepare stopped that way reports the same
    // rollback contract as any other cancel point: the state after the
    // completed initial assignment, with no (partial) index installed.
    phase_watch.Restart();
    const std::function<bool()> prepare_cancel = [&cancel] {
      return cancel.Cancelled();
    };
    const std::function<bool()>* prepare_cancel_hook =
        options.cancel ? &prepare_cancel : nullptr;
    Status prepare_status;
    if constexpr (requires {
                    provider.Prepare(dataset, pool, prepare_cancel_hook);
                  }) {
      prepare_status = provider.Prepare(dataset, pool, prepare_cancel_hook);
    } else if constexpr (requires { provider.Prepare(dataset, pool); }) {
      prepare_status = provider.Prepare(dataset, pool);
    } else {
      prepare_status = provider.Prepare(dataset);
    }
    result.index_build_seconds = phase_watch.ElapsedSeconds();
    if (prepare_status.IsCancelled()) {
      return finish_cancelled(std::move(result));
    }
    LSHC_RETURN_NOT_OK(prepare_status);
    if (cancel.Cancelled()) return finish_cancelled(std::move(result));

    // Phase 4: refinement until convergence. The per-pass assignment
    // snapshot is allocated once here and reused by every iteration; it
    // doubles as the rollback buffer for a cancelled pass, so cancellable
    // exhaustive runs keep one too.
    std::vector<uint32_t> snapshot;
    if constexpr (!Provider::kExhaustive && kParallelProvider) {
      snapshot.resize(n);
    } else {
      if (options.cancel) snapshot.resize(n);
    }
    [[maybe_unused]] std::vector<uint32_t> legacy_shortlist;
    for (uint32_t iteration = 1; iteration <= options.max_iterations;
         ++iteration) {
      if (cancel.Cancelled()) {
        result.cancelled = true;
        break;
      }
      phase_watch.Restart();
      uint64_t moves = 0;
      uint64_t shortlist_total = 0;
      uint64_t pass_evaluated = 0;
      uint64_t pass_pruned = 0;
      DispatchEarlyExit(options.early_exit, [&](auto early_exit) {
        constexpr bool kEarlyExit = early_exit.value;
        if constexpr (Provider::kExhaustive) {
          if (!snapshot.empty()) {
            std::copy(result.assignment.begin(), result.assignment.end(),
                      snapshot.begin());
          }
          moves = ExhaustivePass<kEarlyExit, /*FirstPass=*/false>(
              dataset, centroids, options, result.assignment, plan, pool,
              accumulator, &pass_evaluated, cancel);
          shortlist_total = static_cast<uint64_t>(n) * k;
        } else if constexpr (kParallelProvider) {
          // Freeze the cluster-reference store for this pass: queries see
          // the pre-pass assignment regardless of chunk order, which is
          // what makes the pass thread-count-invariant.
          std::copy(result.assignment.begin(), result.assignment.end(),
                    snapshot.begin());
          moves = ShortlistPass<kEarlyExit>(
              dataset, centroids, options, snapshot, result.assignment, plan,
              pool, shard_states, accumulator, &shortlist_total,
              &pass_evaluated, &pass_pruned, cancel);
        } else {
          if (!snapshot.empty()) {
            std::copy(result.assignment.begin(), result.assignment.end(),
                      snapshot.begin());
          }
          moves = LegacyShortlistPass<kEarlyExit>(
              dataset, centroids, options, provider, result.assignment,
              legacy_shortlist, &shortlist_total, &pass_evaluated, cancel);
        }
      });
      if (cancel.Latched()) {
        // Some chunk poll answered "stop" mid-pass, so the pass is
        // half-applied: roll it back to the pre-pass assignment. (A hook
        // that first turns true after the pass completed is caught by
        // the next iteration-top poll instead — completed work is never
        // discarded.)
        std::copy(snapshot.begin(), snapshot.end(),
                  result.assignment.begin());
        result.cancelled = true;
        break;
      }
      // Counters are committed only for completed passes, matching the
      // rollback contract: a cancelled pass contributes no state at all.
      result.exact_distances_evaluated += pass_evaluated;
      result.exact_distances_pruned += pass_pruned;
      Traits::UpdateCentroids(dataset, centroids, result.assignment, options,
                              rng);

      IterationStats stats;
      stats.iteration = iteration;
      stats.moves = moves;
      stats.mean_shortlist =
          static_cast<double>(shortlist_total) / static_cast<double>(n);
      // The iteration clock stops before cost evaluation: the cost is
      // instrumentation, not part of any of the algorithms.
      stats.seconds = phase_watch.ElapsedSeconds();
      if (options.compute_cost) {
        stats.cost =
            Traits::ComputeCost(dataset, centroids, options,
                                result.assignment);
      }
      result.iterations.push_back(stats);
      if (options.progress) options.progress(stats);

      if (moves == 0) {
        result.converged = true;
        break;
      }
    }

    result.final_cost =
        result.iterations.empty() ? 0.0 : result.iterations.back().cost;
    result.total_seconds = total_watch.ElapsedSeconds();
    if (final_centroids != nullptr) *final_centroids = std::move(centroids);
    return result;
  }

 private:
  /// Polls the caller's cancellation hook, latching the first "stop"
  /// answer in an atomic so every worker observes it at its next chunk
  /// boundary without re-invoking the hook. A null hook never cancels and
  /// costs one branch per poll.
  struct CancelPoll {
    const std::function<bool()>* hook = nullptr;
    std::atomic<bool>* latch = nullptr;

    bool Cancelled() const {
      if (hook == nullptr) return false;
      if (latch->load(std::memory_order_relaxed)) return true;
      if ((*hook)()) {
        latch->store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    }

    /// True iff some earlier poll already answered "stop" — used after a
    /// pass to decide whether it was interrupted (chunks were skipped).
    /// Deliberately does NOT re-invoke the hook: a hook that first turns
    /// true after the pass's last chunk completed must not discard that
    /// completed pass; the fresh poll before the next work unit stops
    /// the run instead.
    bool Latched() const {
      return hook != nullptr && latch->load(std::memory_order_relaxed);
    }
  };

  /// True when the provider supports concurrent queries via per-worker
  /// scratch state.
  static constexpr bool kParallelProvider =
      requires(const Provider& p) { p.MakeScratch(); };

  /// True when the provider hands out shard replica handles of its
  /// read-only query state (core/shortlist_provider.h). Providers without
  /// one are wrapped in ProviderRef — same calls, provider-global state.
  static constexpr bool kHasReplica =
      requires(const Provider& p) { p.MakeReplica(); };

  using Scratch = typename internal::ProviderScratch<Provider>::type;

  /// Thin query handle for parallel providers without MakeReplica.
  struct ProviderRef {
    const Provider* provider = nullptr;

    void GetCandidates(uint32_t item, std::span<const uint32_t> assignment,
                       Scratch& scratch, std::vector<uint32_t>* out) const {
      provider->GetCandidates(item, assignment, scratch, out);
    }

    Scratch MakeScratch() const { return provider->MakeScratch(); }
  };

  /// What a shard queries through: the provider's replica handle when it
  /// offers one, a plain provider reference otherwise.
  using QueryHandle =
      typename internal::ProviderReplica<Provider, ProviderRef>::type;

  static QueryHandle MakeQueryHandle(const Provider& provider) {
    if constexpr (kHasReplica) {
      return provider.MakeReplica();
    } else {
      return ProviderRef{&provider};
    }
  }

  /// Everything a shard owns besides its item slice: the replica handle
  /// of the centroid-side shortlist state and per-worker query scratch
  /// (dedup stamps + shortlist buffers). Indexed by shard; the per-worker
  /// vectors are indexed by the pool's stable worker id. Scratches are
  /// materialised lazily, on the worker that first runs one of the
  /// shard's chunks: scratch contents never influence results (queries
  /// epoch-reset them), so only (shard, worker) pairs that actually
  /// execute pay the k-sized stamp array. Together with the shard-count
  /// clamp in Run (shards <= flat chunk count), total shard-state
  /// bookkeeping is bounded by the number of work units, not by the
  /// requested shard count.
  struct ShardState {
    QueryHandle handle;
    std::vector<std::optional<Scratch>> scratches;
    std::vector<std::vector<uint32_t>> shortlists;
  };

  /// Per-chunk accumulator, merged in shard order after a pass (see
  /// shard/sharded_accumulator.h).
  struct ChunkStats {
    uint64_t moves = 0;
    uint64_t shortlist = 0;
    uint64_t evaluated = 0;  ///< exact distance kernel invocations
    uint64_t pruned = 0;     ///< clusters dropped by the sketch prefilter
  };

  /// Hoists the early-exit switch out of the hot loops: a runtime branch
  /// per distance defeats vectorization of both kernels.
  template <typename Fn>
  static void DispatchEarlyExit(bool early_exit, Fn&& fn) {
    if (early_exit) {
      fn(std::bool_constant<true>{});
    } else {
      fn(std::bool_constant<false>{});
    }
  }

  /// Best cluster for `item` among `shortlist` (which contains
  /// `seed_cluster`, the item's current cluster).
  template <bool EarlyExit>
  static uint32_t BestClusterShortlist(const Dataset& dataset,
                                       const Centroids& centroids,
                                       const Options& options, uint32_t item,
                                       uint32_t seed_cluster,
                                       std::span<const uint32_t> shortlist) {
    uint32_t best_cluster = seed_cluster;
    DistanceType best_distance = Traits::template ComputeDistance<false>(
        dataset, centroids, options, item, seed_cluster,
        Traits::kInfiniteDistance);
    for (const uint32_t cluster : shortlist) {
      if (cluster == seed_cluster) continue;
      const DistanceType distance =
          Traits::template ComputeDistance<EarlyExit>(
              dataset, centroids, options, item, cluster, best_distance);
      if (distance < best_distance) {
        best_distance = distance;
        best_cluster = cluster;
      }
    }
    return best_cluster;
  }

  /// One exhaustive chunk: items [begin, end) against all k clusters.
  /// Accumulates into locals and stores to `stats` once at the end:
  /// adjacent chunks' ChunkStats share cache lines, and per-item writes
  /// through the pointer would false-share between workers.
  template <bool EarlyExit, bool FirstPass>
  static void ExhaustiveChunk(const Dataset& dataset,
                              const Centroids& centroids,
                              const Options& options,
                              std::span<uint32_t> assignment, uint32_t begin,
                              uint32_t end, ChunkStats* stats) {
    const uint32_t k = options.num_clusters;
    uint64_t moves = 0;
    for (uint32_t item = begin; item < end; ++item) {
      const uint32_t seed_cluster = FirstPass ? 0u : assignment[item];
      const uint32_t best = BestClusterExhaustive<Traits, EarlyExit>(
          dataset, centroids, options, item, seed_cluster, k);
      if (FirstPass) {
        assignment[item] = best;
      } else if (best != seed_cluster) {
        assignment[item] = best;
        ++moves;
      }
    }
    stats->moves = moves;
    // Exactly k exact distances per item: the seed cluster once, then the
    // k-1 others (the scan skips the seed).
    stats->evaluated = static_cast<uint64_t>(end - begin) * k;
  }

  /// Full exhaustive pass over the shard plan. Each item touches only its
  /// own assignment slot, so in-place parallel writes are race-free and
  /// order-independent; per-chunk stats merge through the accumulator in
  /// shard order.
  template <bool EarlyExit, bool FirstPass>
  static uint64_t ExhaustivePass(const Dataset& dataset,
                                 const Centroids& centroids,
                                 const Options& options,
                                 std::span<uint32_t> assignment,
                                 const ShardPlan& plan, ThreadPool* pool,
                                 ShardedAccumulator<ChunkStats>& accumulator,
                                 uint64_t* evaluated,
                                 const CancelPoll& cancel) {
    accumulator.Reset(plan);
    ForEachShardChunk(
        plan, pool,
        [&](const ShardPlan::Chunk& chunk, uint32_t index, uint32_t) {
          if (cancel.Cancelled()) return;
          ExhaustiveChunk<EarlyExit, FirstPass>(dataset, centroids, options,
                                                assignment, chunk.begin,
                                                chunk.end,
                                                accumulator.slot(index));
        });
    uint64_t moves = 0;
    accumulator.MergeInOrder([&](const ChunkStats& stats) {
      moves += stats.moves;
      *evaluated += stats.evaluated;
    });
    return moves;
  }

  /// One shortlist chunk (parallel-capable providers): queries through the
  /// owning shard's replica `handle` against the frozen `reference`
  /// snapshot, writes into the live assignment. Local accumulators for the
  /// same false-sharing reason as ExhaustiveChunk.
  template <bool EarlyExit>
  static void ShortlistChunk(const Dataset& dataset,
                             const Centroids& centroids,
                             const Options& options,
                             const QueryHandle& handle,
                             std::span<const uint32_t> reference,
                             std::span<uint32_t> assignment, uint32_t begin,
                             uint32_t end, Scratch& scratch,
                             std::vector<uint32_t>& shortlist,
                             ChunkStats* stats) {
    uint64_t moves = 0;
    uint64_t shortlist_total = 0;
    uint64_t pruned_total = 0;
    for (uint32_t item = begin; item < end; ++item) {
      handle.GetCandidates(item, reference, scratch, &shortlist);
      // Every surviving shortlist entry gets one exact distance: the seed
      // cluster (always the shortlist's first entry) exactly once, the
      // rest in the scan.
      shortlist_total += shortlist.size();
      if constexpr (requires { scratch.last_pruned; }) {
        pruned_total += scratch.last_pruned;
      }
      const uint32_t seed_cluster = assignment[item];
      const uint32_t best = BestClusterShortlist<EarlyExit>(
          dataset, centroids, options, item, seed_cluster, shortlist);
      if (best != seed_cluster) {
        assignment[item] = best;
        ++moves;
      }
    }
    stats->moves = moves;
    stats->shortlist = shortlist_total;
    stats->evaluated = shortlist_total;
    stats->pruned = pruned_total;
  }

  /// Full shortlist pass for parallel-capable providers: every chunk runs
  /// against its shard's replica handle and (shard, worker) scratch, and
  /// the per-chunk stats merge through the accumulator in shard order.
  template <bool EarlyExit>
  static uint64_t ShortlistPass(
      const Dataset& dataset, const Centroids& centroids,
      const Options& options, std::span<const uint32_t> reference,
      std::span<uint32_t> assignment, const ShardPlan& plan,
      ThreadPool* pool, std::vector<ShardState>& shard_states,
      ShardedAccumulator<ChunkStats>& accumulator,
      uint64_t* shortlist_total, uint64_t* evaluated, uint64_t* pruned,
      const CancelPoll& cancel) {
    accumulator.Reset(plan);
    ForEachShardChunk(
        plan, pool,
        [&](const ShardPlan::Chunk& chunk, uint32_t index, uint32_t worker) {
          if (cancel.Cancelled()) return;
          ShardState& state = shard_states[chunk.shard];
          // Lazy scratch materialisation is race-free: slot (shard,
          // worker) is only ever touched from worker `worker`, and the
          // slot vector was sized up front (no reallocation).
          std::optional<Scratch>& scratch = state.scratches[worker];
          if (!scratch.has_value()) scratch.emplace(state.handle.MakeScratch());
          ShortlistChunk<EarlyExit>(dataset, centroids, options,
                                    state.handle, reference, assignment,
                                    chunk.begin, chunk.end, *scratch,
                                    state.shortlists[worker],
                                    accumulator.slot(index));
        });
    uint64_t moves = 0;
    accumulator.MergeInOrder([&](const ChunkStats& stats) {
      moves += stats.moves;
      *shortlist_total += stats.shortlist;
      *evaluated += stats.evaluated;
      *pruned += stats.pruned;
    });
    return moves;
  }

  /// Sequential pass for legacy providers (non-const 3-argument
  /// GetCandidates): queries run in item order against the live
  /// assignment, preserving their historical in-place semantics.
  template <bool EarlyExit>
  static uint64_t LegacyShortlistPass(const Dataset& dataset,
                                      const Centroids& centroids,
                                      const Options& options,
                                      Provider& provider,
                                      std::span<uint32_t> assignment,
                                      std::vector<uint32_t>& shortlist,
                                      uint64_t* shortlist_total,
                                      uint64_t* evaluated,
                                      const CancelPoll& cancel) {
    const uint32_t n = dataset.num_items();
    uint64_t moves = 0;
    for (uint32_t item = 0; item < n; ++item) {
      // The sequential pass has no chunks; poll at the same granularity
      // the chunked passes would (the default chunk size).
      if ((item & 1023u) == 0 && cancel.Cancelled()) break;
      provider.GetCandidates(item, assignment, &shortlist);
      *shortlist_total += shortlist.size();
      *evaluated += shortlist.size();
      const uint32_t seed_cluster = assignment[item];
      const uint32_t best = BestClusterShortlist<EarlyExit>(
          dataset, centroids, options, item, seed_cluster, shortlist);
      if (best != seed_cluster) {
        assignment[item] = best;
        ++moves;
      }
    }
    return moves;
  }
};

/// Runs the categorical (K-Modes) engine with candidate clusters supplied
/// by `provider` — kept as the historical entry point; MH-K-Modes wraps it
/// in core/mh_kmodes.h.
template <typename Provider>
Result<ClusteringResult> RunEngine(const CategoricalDataset& dataset,
                                   const EngineOptions& options,
                                   Provider& provider,
                                   ModeTable* final_modes = nullptr) {
  return ClusteringEngine<CategoricalClusteringTraits, Provider>::Run(
      dataset, options, provider, final_modes);
}

}  // namespace lshclust
