#pragma once

/// \file engine.h
/// \brief The shared K-Modes refinement engine, templated on a candidate
/// provider.
///
/// The paper's framework changes exactly one thing about K-Modes: where the
/// assignment step looks for candidate clusters. The engine therefore takes
/// a *provider* policy:
///
///  * ExhaustiveProvider — every cluster is a candidate: original K-Modes.
///  * core/ClusterShortlistProvider — candidates come from the MinHash
///    index: MH-K-Modes (Algorithm 2).
///
/// Both variants share every other line of code, which keeps the
/// efficiency comparison honest (same distance kernel, same mode updates,
/// same convergence test — mirroring the paper's single code base for both
/// algorithms).
///
/// Phases, timed separately (see ClusteringResult):
///   1. init: seed selection, initial modes = seed items.
///   2. initial assignment: one exhaustive pass (the paper performs this
///      for MH-K-Modes too, before the index exists — Alg. 2 step 2).
///   3. provider.Prepare(): signature computation + index build
///      (no-op for the baseline).
///   4. refinement iterations until no item moves or max_iterations.

#include <cstdint>
#include <span>
#include <vector>

#include "clustering/dissimilarity.h"
#include "clustering/initializers.h"
#include "clustering/modes.h"
#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace lshclust {

/// \brief Options shared by K-Modes and MH-K-Modes runs.
struct EngineOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Refinement iteration cap (the paper caps Fig. 10 at 10).
  uint32_t max_iterations = 100;
  /// Empty-cluster handling during mode updates.
  EmptyClusterPolicy empty_cluster_policy =
      EmptyClusterPolicy::kKeepPreviousMode;
  /// Initial centroid selection method (ignored when initial_seeds given).
  InitMethod init_method = InitMethod::kRandom;
  /// Explicit seed items; the experiment harness draws these once and
  /// passes the same vector to every variant, as the paper does.
  std::vector<uint32_t> initial_seeds;
  /// Seed for the engine RNG (seed selection, empty-cluster reseeding).
  uint64_t seed = 42;
  /// Use the bounded early-exit distance kernel (ablation switch).
  bool early_exit = true;
  /// Evaluate the cost function P(W, Q) after each iteration (Eq. 4).
  /// Costs one extra n*m scan per iteration; switch off for pure timing.
  bool compute_cost = true;
};

/// \brief Candidate provider that enumerates every cluster — plugging this
/// into the engine yields the original K-Modes.
struct ExhaustiveProvider {
  /// Tells the engine to scan all k clusters without materialising lists.
  static constexpr bool kExhaustive = true;

  /// Nothing to build.
  Status Prepare(const CategoricalDataset&) { return Status::OK(); }

  /// Never called (kExhaustive short-circuits); present to satisfy the
  /// provider interface.
  void GetCandidates(uint32_t, std::span<const uint32_t>,
                     std::vector<uint32_t>*) {}
};

namespace internal {

/// One exhaustive assignment pass used for the initial assignment of both
/// variants (and per-iteration by the baseline). Returns the number of
/// items whose cluster changed. When `first_pass` is true every item is
/// (re)assigned from scratch and moves are not counted.
inline uint64_t ExhaustiveAssignPass(const CategoricalDataset& dataset,
                                     const ModeTable& modes,
                                     std::span<uint32_t> assignment,
                                     bool early_exit, bool first_pass) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_attributes();
  const uint32_t k = modes.num_clusters();
  uint64_t moves = 0;
  // The kernel choice is hoisted out of the hot loop: a runtime ternary
  // per distance defeats the vectorizer for both kernels.
  auto scan = [&](auto&& kernel) {
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t* row = dataset.Row(item).data();
      uint32_t best_cluster;
      uint32_t best_distance;
      uint32_t first_other = 0;
      if (first_pass) {
        best_cluster = 0;
        best_distance = MismatchDistance(dataset.Row(item), modes.Mode(0));
        first_other = 1;
      } else {
        // Seed the bound with the current cluster so early exit prunes
        // aggressively once the clustering stabilises.
        best_cluster = assignment[item];
        best_distance =
            MismatchDistance(dataset.Row(item), modes.Mode(best_cluster));
      }
      for (uint32_t cluster = first_other; cluster < k; ++cluster) {
        if (!first_pass && cluster == assignment[item]) continue;
        const uint32_t distance =
            kernel(row, modes.ModeData(cluster), m, best_distance);
        if (distance < best_distance) {
          best_distance = distance;
          best_cluster = cluster;
        }
      }
      if (first_pass) {
        assignment[item] = best_cluster;
      } else if (best_cluster != assignment[item]) {
        assignment[item] = best_cluster;
        ++moves;
      }
    }
  };
  if (early_exit) {
    scan([](const uint32_t* a, const uint32_t* b, uint32_t width,
            uint32_t bound) {
      return BoundedMismatchDistance(a, b, width, bound);
    });
  } else {
    scan([](const uint32_t* a, const uint32_t* b, uint32_t width,
            uint32_t) {
      return MismatchDistance({a, width}, {b, width});
    });
  }
  return moves;
}

/// Shortlist-driven assignment pass (the accelerated path). The provider
/// fills a deduplicated candidate list that must contain the item's current
/// cluster. Returns moves and accumulates the shortlist-size total.
template <typename Provider>
uint64_t ShortlistAssignPass(const CategoricalDataset& dataset,
                             const ModeTable& modes, Provider& provider,
                             std::span<uint32_t> assignment, bool early_exit,
                             uint64_t* shortlist_total) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_attributes();
  uint64_t moves = 0;
  std::vector<uint32_t> shortlist;
  auto scan = [&](auto&& kernel) {
    for (uint32_t item = 0; item < n; ++item) {
      provider.GetCandidates(item, assignment, &shortlist);
      *shortlist_total += shortlist.size();
      const uint32_t* row = dataset.Row(item).data();
      const uint32_t current = assignment[item];
      uint32_t best_cluster = current;
      uint32_t best_distance =
          MismatchDistance(dataset.Row(item), modes.Mode(current));
      for (const uint32_t cluster : shortlist) {
        if (cluster == current) continue;
        const uint32_t distance =
            kernel(row, modes.ModeData(cluster), m, best_distance);
        if (distance < best_distance) {
          best_distance = distance;
          best_cluster = cluster;
        }
      }
      if (best_cluster != current) {
        assignment[item] = best_cluster;
        ++moves;
      }
    }
  };
  if (early_exit) {
    scan([](const uint32_t* a, const uint32_t* b, uint32_t width,
            uint32_t bound) {
      return BoundedMismatchDistance(a, b, width, bound);
    });
  } else {
    scan([](const uint32_t* a, const uint32_t* b, uint32_t width,
            uint32_t) {
      return MismatchDistance({a, width}, {b, width});
    });
  }
  return moves;
}

/// Evaluates the cost function P(W, Q) (Eq. 4): the summed mismatch of
/// every item to its assigned mode.
inline double ComputeCost(const CategoricalDataset& dataset,
                          const ModeTable& modes,
                          std::span<const uint32_t> assignment) {
  double cost = 0;
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    cost += MismatchDistance(dataset.Row(item), modes.Mode(assignment[item]));
  }
  return cost;
}

}  // namespace internal

/// \brief Runs the full K-Modes procedure with candidate clusters supplied
/// by `provider`. See the file comment for the phase structure.
///
/// \param dataset items to cluster
/// \param options engine options; num_clusters must be in [1, n]
/// \param provider candidate policy (ExhaustiveProvider for the baseline)
/// \return per-iteration instrumentation and the final assignment
template <typename Provider>
Result<ClusteringResult> RunEngine(const CategoricalDataset& dataset,
                                   const EngineOptions& options,
                                   Provider& provider) {
  const uint32_t n = dataset.num_items();
  const uint32_t k = options.num_clusters;
  if (n == 0) return Status::InvalidArgument("dataset is empty");
  if (k == 0 || k > n) {
    return Status::InvalidArgument(
        "num_clusters must be in [1, n]; got k=" + std::to_string(k) +
        " with n=" + std::to_string(n));
  }

  ClusteringResult result;
  Rng rng(options.seed);
  Stopwatch total_watch;

  // Phase 1: seeds -> initial modes.
  Stopwatch phase_watch;
  std::vector<uint32_t> seeds = options.initial_seeds;
  if (seeds.empty()) {
    LSHC_ASSIGN_OR_RETURN(seeds,
                          SelectSeeds(dataset, k, options.init_method, rng));
  } else if (seeds.size() != k) {
    return Status::InvalidArgument(
        "initial_seeds has " + std::to_string(seeds.size()) +
        " entries, expected k=" + std::to_string(k));
  }
  for (const uint32_t seed_item : seeds) {
    if (seed_item >= n) {
      return Status::OutOfRange("seed item " + std::to_string(seed_item) +
                                " out of range");
    }
  }
  ModeTable modes(k, dataset.num_attributes());
  for (uint32_t cluster = 0; cluster < k; ++cluster) {
    modes.SetModeFromItem(cluster, dataset, seeds[cluster]);
  }
  result.init_seconds = phase_watch.ElapsedSeconds();

  // Phase 2: initial exhaustive assignment + first mode update.
  phase_watch.Restart();
  result.assignment.assign(n, 0);
  internal::ExhaustiveAssignPass(dataset, modes, result.assignment,
                                 options.early_exit, /*first_pass=*/true);
  modes.RecomputeFromAssignment(dataset, result.assignment,
                                options.empty_cluster_policy, rng);
  result.initial_assign_seconds = phase_watch.ElapsedSeconds();

  // Phase 3: provider preparation (signatures + LSH index for MH-K-Modes).
  phase_watch.Restart();
  LSHC_RETURN_NOT_OK(provider.Prepare(dataset));
  result.index_build_seconds = phase_watch.ElapsedSeconds();

  // Phase 4: refinement until convergence.
  for (uint32_t iteration = 1; iteration <= options.max_iterations;
       ++iteration) {
    phase_watch.Restart();
    uint64_t moves = 0;
    uint64_t shortlist_total = 0;
    if constexpr (Provider::kExhaustive) {
      moves = internal::ExhaustiveAssignPass(dataset, modes,
                                             result.assignment,
                                             options.early_exit,
                                             /*first_pass=*/false);
      shortlist_total = static_cast<uint64_t>(n) * k;
    } else {
      moves = internal::ShortlistAssignPass(dataset, modes, provider,
                                            result.assignment,
                                            options.early_exit,
                                            &shortlist_total);
    }
    modes.RecomputeFromAssignment(dataset, result.assignment,
                                  options.empty_cluster_policy, rng);

    IterationStats stats;
    stats.iteration = iteration;
    stats.moves = moves;
    stats.mean_shortlist =
        static_cast<double>(shortlist_total) / static_cast<double>(n);
    // The iteration clock stops before cost evaluation: P(W, Q) is
    // instrumentation, not part of either algorithm.
    stats.seconds = phase_watch.ElapsedSeconds();
    if (options.compute_cost) {
      stats.cost = internal::ComputeCost(dataset, modes, result.assignment);
    }
    result.iterations.push_back(stats);

    if (moves == 0) {
      result.converged = true;
      break;
    }
  }

  result.final_cost =
      result.iterations.empty() ? 0.0 : result.iterations.back().cost;
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace lshclust
