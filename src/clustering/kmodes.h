#pragma once

/// \file kmodes.h
/// \brief The original K-Modes algorithm (Huang 1998) — the baseline the
/// paper accelerates.
///
/// \code
///   EngineOptions options;
///   options.num_clusters = 16;
///   auto result = RunKModes(dataset, options);
///   if (result.ok()) { /* result->assignment, result->iterations, ... */ }
/// \endcode

#include "clustering/engine.h"

namespace lshclust {

/// Runs exhaustive K-Modes: every assignment step compares each item to
/// all k modes (with the early-exit kernel unless disabled).
inline Result<ClusteringResult> RunKModes(const CategoricalDataset& dataset,
                                          const EngineOptions& options) {
  ExhaustiveProvider provider;
  return RunEngine(dataset, options, provider);
}

}  // namespace lshclust
