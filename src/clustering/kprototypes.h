#pragma once

/// \file kprototypes.h
/// \brief K-Prototypes (Huang 1998): centroid clustering of mixed
/// categorical + numeric items, with the same candidate-provider hook as
/// the categorical and numeric engines.
///
/// Distance between item X and prototype P (mode Q, centroid c):
///   d(X, P) = mismatches(X_cat, Q) + gamma * ||X_num - c||^2
/// Prototype update: per-attribute majority for the categorical part,
/// mean for the numeric part. `gamma` balances the modalities (Huang
/// suggests ~0.5 * mean numeric variance; here it is explicit).

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "clustering/dissimilarity.h"
#include "clustering/kmeans.h"
#include "clustering/modes.h"
#include "clustering/types.h"
#include "data/mixed_dataset.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace lshclust {

/// \brief Options for K-Prototypes runs.
struct KPrototypesOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Weight of the numeric squared distance against categorical
  /// mismatches.
  double gamma = 1.0;
  /// Iteration cap.
  uint32_t max_iterations = 100;
  /// Explicit seed items (same contract as EngineOptions::initial_seeds).
  std::vector<uint32_t> initial_seeds;
  /// RNG seed.
  uint64_t seed = 42;
};

/// \brief Candidate provider scanning all clusters (original K-Prototypes).
struct ExhaustiveMixedProvider {
  static constexpr bool kExhaustive = true;
  Status Prepare(const MixedDataset&) { return Status::OK(); }
  void GetCandidates(uint32_t, std::span<const uint32_t>,
                     std::vector<uint32_t>*) {}
};

/// \brief Runs K-Prototypes with candidates from `provider` (the mixed
/// twin of RunEngine / RunKMeansEngine; same phases, same instrumentation).
template <typename Provider>
Result<ClusteringResult> RunKPrototypesEngine(const MixedDataset& dataset,
                                              const KPrototypesOptions& options,
                                              Provider& provider) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_categorical();
  const uint32_t d = dataset.num_numeric();
  const uint32_t k = options.num_clusters;
  if (k == 0 || k > n) {
    return Status::InvalidArgument(
        "num_clusters must be in [1, n]; got k=" + std::to_string(k) +
        " with n=" + std::to_string(n));
  }
  if (options.gamma < 0.0) {
    return Status::InvalidArgument("gamma must be non-negative");
  }

  ClusteringResult result;
  Rng rng(options.seed);
  Stopwatch total_watch;
  Stopwatch phase_watch;

  // Phase 1: prototypes seeded from items.
  std::vector<uint32_t> seeds = options.initial_seeds;
  if (seeds.empty()) {
    seeds = rng.SampleWithoutReplacement(n, k);
  } else if (seeds.size() != k) {
    return Status::InvalidArgument("initial_seeds size must equal k");
  }
  ModeTable modes(k, m);
  std::vector<double> centroids(static_cast<size_t>(k) * d);
  for (uint32_t cluster = 0; cluster < k; ++cluster) {
    if (seeds[cluster] >= n) {
      return Status::OutOfRange("seed item out of range");
    }
    modes.SetModeFromItem(cluster, dataset.categorical(), seeds[cluster]);
    const auto numeric_row = dataset.numeric().Row(seeds[cluster]);
    std::copy(numeric_row.begin(), numeric_row.end(),
              centroids.begin() + static_cast<size_t>(cluster) * d);
  }
  result.init_seconds = phase_watch.ElapsedSeconds();

  // Mixed distance with early exit through both modalities: the
  // categorical mismatch count is a lower bound on the total, so the
  // bounded kernel prunes before the numeric part is touched.
  auto distance = [&](uint32_t item, uint32_t cluster,
                      double bound) -> double {
    const uint32_t categorical_part = BoundedMismatchDistance(
        dataset.categorical().Row(item).data(), modes.ModeData(cluster), m,
        bound >= 4.0e9 ? ~0u : static_cast<uint32_t>(bound) + 1);
    if (static_cast<double>(categorical_part) >= bound) {
      return static_cast<double>(categorical_part);
    }
    const double numeric_part = internal::BoundedSquaredL2(
        dataset.numeric().Row(item).data(),
        centroids.data() + static_cast<size_t>(cluster) * d, d,
        (bound - categorical_part) / (options.gamma > 0 ? options.gamma
                                                        : 1.0));
    return categorical_part + options.gamma * numeric_part;
  };

  auto assign_pass = [&](bool first_pass, bool exhaustive,
                         uint64_t* shortlist_total) -> uint64_t {
    uint64_t moves = 0;
    std::vector<uint32_t> shortlist;
    for (uint32_t item = 0; item < n; ++item) {
      uint32_t best_cluster =
          first_pass ? 0u : result.assignment[item];
      double best_distance =
          distance(item, best_cluster, std::numeric_limits<double>::max());
      auto consider = [&](uint32_t cluster) {
        if (cluster == best_cluster) return;
        const double candidate = distance(item, cluster, best_distance);
        if (candidate < best_distance) {
          best_distance = candidate;
          best_cluster = cluster;
        }
      };
      if (exhaustive) {
        for (uint32_t cluster = 0; cluster < k; ++cluster) consider(cluster);
        if (shortlist_total != nullptr) *shortlist_total += k;
      } else {
        provider.GetCandidates(item, result.assignment, &shortlist);
        if (shortlist_total != nullptr) {
          *shortlist_total += shortlist.size();
        }
        for (const uint32_t cluster : shortlist) consider(cluster);
      }
      if (first_pass) {
        result.assignment[item] = best_cluster;
      } else if (best_cluster != result.assignment[item]) {
        result.assignment[item] = best_cluster;
        ++moves;
      }
    }
    return moves;
  };

  auto update_prototypes = [&]() {
    modes.RecomputeFromAssignment(dataset.categorical(), result.assignment,
                                  EmptyClusterPolicy::kKeepPreviousMode, rng);
    std::vector<double> sums(static_cast<size_t>(k) * d, 0.0);
    std::vector<uint32_t> counts(k, 0);
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t cluster = result.assignment[item];
      ++counts[cluster];
      const auto row = dataset.numeric().Row(item);
      double* sum = sums.data() + static_cast<size_t>(cluster) * d;
      for (uint32_t j = 0; j < d; ++j) sum[j] += row[j];
    }
    for (uint32_t cluster = 0; cluster < k; ++cluster) {
      if (counts[cluster] == 0) continue;
      double* centroid = centroids.data() + static_cast<size_t>(cluster) * d;
      const double* sum = sums.data() + static_cast<size_t>(cluster) * d;
      for (uint32_t j = 0; j < d; ++j) {
        centroid[j] = sum[j] / counts[cluster];
      }
    }
  };

  auto compute_cost = [&]() {
    double cost = 0;
    for (uint32_t item = 0; item < n; ++item) {
      cost += distance(item, result.assignment[item],
                       std::numeric_limits<double>::max());
    }
    return cost;
  };

  // Phase 2: initial exhaustive assignment + prototype update.
  phase_watch.Restart();
  result.assignment.assign(n, 0);
  assign_pass(/*first_pass=*/true, /*exhaustive=*/true, nullptr);
  update_prototypes();
  result.initial_assign_seconds = phase_watch.ElapsedSeconds();

  // Phase 3: provider preparation (dual index for LSH-K-Prototypes).
  phase_watch.Restart();
  LSHC_RETURN_NOT_OK(provider.Prepare(dataset));
  result.index_build_seconds = phase_watch.ElapsedSeconds();

  // Phase 4: refinement.
  for (uint32_t iteration = 1; iteration <= options.max_iterations;
       ++iteration) {
    phase_watch.Restart();
    uint64_t shortlist_total = 0;
    const uint64_t moves = assign_pass(
        /*first_pass=*/false, /*exhaustive=*/Provider::kExhaustive,
        &shortlist_total);
    update_prototypes();

    IterationStats stats;
    stats.iteration = iteration;
    stats.moves = moves;
    stats.mean_shortlist =
        static_cast<double>(shortlist_total) / static_cast<double>(n);
    stats.seconds = phase_watch.ElapsedSeconds();
    stats.cost = compute_cost();
    result.iterations.push_back(stats);
    if (moves == 0) {
      result.converged = true;
      break;
    }
  }

  result.final_cost =
      result.iterations.empty() ? 0.0 : result.iterations.back().cost;
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

/// Runs exhaustive K-Prototypes.
inline Result<ClusteringResult> RunKPrototypes(
    const MixedDataset& dataset, const KPrototypesOptions& options) {
  ExhaustiveMixedProvider provider;
  return RunKPrototypesEngine(dataset, options, provider);
}

}  // namespace lshclust
