#pragma once

/// \file kprototypes.h
/// \brief K-Prototypes (Huang 1998): centroid clustering of mixed
/// categorical + numeric items as a traits instantiation of the unified
/// clustering engine (clustering/engine.h).
///
/// Distance between item X and prototype P (mode Q, centroid c):
///   d(X, P) = mismatches(X_cat, Q) + gamma * ||X_num - c||^2
/// Prototype update: per-attribute majority for the categorical part,
/// mean for the numeric part. `gamma` balances the modalities (Huang
/// suggests ~0.5 * mean numeric variance; here it is explicit). The
/// refinement loop lives in ClusteringEngine; this module only supplies
/// the mixed distance and the dual-modality prototype update.

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "clustering/centroid_table.h"
#include "clustering/dissimilarity.h"
#include "clustering/engine.h"
#include "clustering/modes.h"
#include "clustering/types.h"
#include "data/mixed_dataset.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Options for K-Prototypes runs: the shared engine options plus
/// the modality weight.
struct KPrototypesOptions : EngineOptions {
  /// Weight of the numeric squared distance against categorical
  /// mismatches.
  double gamma = 1.0;
};

/// \brief Candidate provider scanning all clusters (original K-Prototypes).
using ExhaustiveMixedProvider = ExhaustiveProvider;

/// \brief Dissimilarity/centroid traits for mixed data (K-Prototypes).
struct MixedClusteringTraits {
  using Dataset = MixedDataset;
  using Options = KPrototypesOptions;
  using DistanceType = double;

  /// Mode + centroid per cluster.
  struct Centroids {
    ModeTable modes;
    CentroidTable centroids;
  };

  /// Not infinity: the categorical bound conversion below compares
  /// against 4e9 to detect "no bound yet", mirroring the historical
  /// K-Prototypes kernel.
  static constexpr DistanceType kInfiniteDistance =
      std::numeric_limits<double>::max();

  [[nodiscard]] static Status ValidateOptions(const Dataset&, const Options& options) {
    if (!(std::isfinite(options.gamma) && options.gamma >= 0.0)) {
      return Status::InvalidArgument(
          "gamma must be a finite non-negative number");
    }
    if (options.initial_seeds.empty() &&
        options.init_method != InitMethod::kRandom) {
      return Status::InvalidArgument(
          "only InitMethod::kRandom is supported for mixed data");
    }
    return Status::OK();
  }

  static Result<std::vector<uint32_t>> SelectSeedItems(const Dataset& dataset,
                                                       const Options& options,
                                                       Rng& rng) {
    return rng.SampleWithoutReplacement(dataset.num_items(),
                                        options.num_clusters);
  }

  static Centroids MakeCentroids(const Dataset& dataset,
                                 const Options& options) {
    return Centroids{
        ModeTable(options.num_clusters, dataset.num_categorical()),
        CentroidTable(options.num_clusters, dataset.num_numeric())};
  }

  static void SeedCentroid(Centroids& prototypes, uint32_t cluster,
                           const Dataset& dataset, uint32_t item) {
    prototypes.modes.SetModeFromItem(cluster, dataset.categorical(), item);
    prototypes.centroids.SetFromItem(cluster, dataset.numeric(), item);
  }

  /// Mixed distance with early exit through both modalities: the
  /// categorical mismatch count is a lower bound on the total, so the
  /// bounded kernel prunes before the numeric part is touched.
  template <bool EarlyExit>
  static DistanceType ComputeDistance(const Dataset& dataset,
                                      const Centroids& prototypes,
                                      const Options& options, uint32_t item,
                                      uint32_t cluster, DistanceType bound) {
    if constexpr (!EarlyExit) bound = kInfiniteDistance;
    const uint32_t m = dataset.num_categorical();
    const uint32_t categorical_part = BoundedMismatchDistance(
        dataset.categorical().Row(item).data(),
        prototypes.modes.ModeData(cluster), m,
        bound >= 4.0e9 ? ~0u : static_cast<uint32_t>(bound) + 1);
    if (static_cast<double>(categorical_part) >= bound) {
      return static_cast<double>(categorical_part);
    }
    const double numeric_part = internal::BoundedSquaredL2(
        dataset.numeric().Row(item).data(),
        prototypes.centroids.CentroidData(cluster), dataset.num_numeric(),
        (bound - categorical_part) / (options.gamma > 0 ? options.gamma
                                                        : 1.0));
    return categorical_part + options.gamma * numeric_part;
  }

  /// Majority modes + mean centroids. With kReseedRandomItem each empty
  /// cluster draws one random item per modality (two draws), so keep the
  /// default kKeepPreviousMode unless reseeding is really wanted.
  static void UpdateCentroids(const Dataset& dataset, Centroids& prototypes,
                              std::span<const uint32_t> assignment,
                              const Options& options, Rng& rng) {
    prototypes.modes.RecomputeFromAssignment(dataset.categorical(),
                                             assignment,
                                             options.empty_cluster_policy,
                                             rng);
    prototypes.centroids.RecomputeFromAssignment(
        dataset.numeric(), assignment, options.empty_cluster_policy, rng);
  }

  /// The mixed objective: summed exact mixed distance of every item to its
  /// prototype.
  static double ComputeCost(const Dataset& dataset,
                            const Centroids& prototypes,
                            const Options& options,
                            std::span<const uint32_t> assignment) {
    double cost = 0;
    for (uint32_t item = 0; item < dataset.num_items(); ++item) {
      cost += ComputeDistance<false>(dataset, prototypes, options, item,
                                     assignment[item], kInfiniteDistance);
    }
    return cost;
  }
};

/// \brief Runs K-Prototypes with candidates from `provider` — the mixed
/// instantiation of the unified engine (same phases, same instrumentation
/// as RunEngine / RunKMeansEngine).
template <typename Provider>
Result<ClusteringResult> RunKPrototypesEngine(
    const MixedDataset& dataset, const KPrototypesOptions& options,
    Provider& provider,
    MixedClusteringTraits::Centroids* final_prototypes = nullptr) {
  return ClusteringEngine<MixedClusteringTraits, Provider>::Run(
      dataset, options, provider, final_prototypes);
}

/// Runs exhaustive K-Prototypes.
inline Result<ClusteringResult> RunKPrototypes(
    const MixedDataset& dataset, const KPrototypesOptions& options) {
  ExhaustiveMixedProvider provider;
  return RunKPrototypesEngine(dataset, options, provider);
}

}  // namespace lshclust
