#pragma once

/// \file centroid_table.h
/// \brief Numeric centroid storage + recomputation — the numeric
/// counterpart of ModeTable, shared by the K-Means and K-Prototypes
/// traits of the unified clustering engine.

#include <cstdint>
#include <span>
#include <vector>

#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Owns the k x d centroid matrix and recomputes it from an
/// assignment (per-cluster mean of members).
class CentroidTable {
 public:
  /// \param num_clusters k
  /// \param dimensions d
  CentroidTable(uint32_t num_clusters, uint32_t dimensions)
      : num_clusters_(num_clusters),
        dimensions_(dimensions),
        values_(static_cast<size_t>(num_clusters) * dimensions, 0.0),
        sizes_(num_clusters, 0) {}

  uint32_t num_clusters() const { return num_clusters_; }
  uint32_t dimensions() const { return dimensions_; }

  /// The centroid of `cluster`, length d.
  std::span<const double> Centroid(uint32_t cluster) const {
    LSHC_DCHECK(cluster < num_clusters_) << "cluster index out of range";
    return {values_.data() + static_cast<size_t>(cluster) * dimensions_,
            dimensions_};
  }

  /// Raw pointer to the centroid of `cluster` (hot path).
  const double* CentroidData(uint32_t cluster) const {
    return values_.data() + static_cast<size_t>(cluster) * dimensions_;
  }

  /// Overwrites the centroid of `cluster` with explicit coordinates
  /// (length d) — how the persistence loader restores a saved table.
  void SetCentroid(uint32_t cluster, std::span<const double> values) {
    LSHC_DCHECK(cluster < num_clusters_ && values.size() == dimensions_)
        << "centroid shape mismatch";
    std::copy(values.begin(), values.end(),
              values_.begin() + static_cast<size_t>(cluster) * dimensions_);
  }

  /// Sets the centroid of `cluster` to the coordinates of a dataset row
  /// (seeding).
  void SetFromItem(uint32_t cluster, const NumericDataset& dataset,
                   uint32_t item) {
    const auto row = dataset.Row(item);
    std::copy(row.begin(), row.end(),
              values_.begin() + static_cast<size_t>(cluster) * dimensions_);
  }

  /// Recomputes every non-empty cluster's centroid as the mean of its
  /// members. Empty clusters follow `policy`: kKeepPreviousMode leaves the
  /// previous centroid in place (classic Lloyd), kReseedRandomItem copies a
  /// random item drawn from `rng`.
  void RecomputeFromAssignment(const NumericDataset& dataset,
                               std::span<const uint32_t> assignment,
                               EmptyClusterPolicy policy, Rng& rng) {
    const uint32_t n = dataset.num_items();
    const uint32_t d = dimensions_;
    std::vector<double> sums(static_cast<size_t>(num_clusters_) * d, 0.0);
    std::fill(sizes_.begin(), sizes_.end(), 0u);
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t cluster = assignment[item];
      ++sizes_[cluster];
      const auto row = dataset.Row(item);
      double* sum = sums.data() + static_cast<size_t>(cluster) * d;
      for (uint32_t j = 0; j < d; ++j) sum[j] += row[j];
    }
    for (uint32_t cluster = 0; cluster < num_clusters_; ++cluster) {
      if (sizes_[cluster] == 0) {
        if (policy == EmptyClusterPolicy::kReseedRandomItem && n > 0) {
          SetFromItem(cluster, dataset,
                      static_cast<uint32_t>(rng.Below(n)));
        }
        continue;
      }
      double* centroid = values_.data() + static_cast<size_t>(cluster) * d;
      const double* sum = sums.data() + static_cast<size_t>(cluster) * d;
      for (uint32_t j = 0; j < d; ++j) {
        centroid[j] = sum[j] / sizes_[cluster];
      }
    }
  }

  /// Number of members per cluster after the last Recompute (size k).
  const std::vector<uint32_t>& cluster_sizes() const { return sizes_; }

 private:
  uint32_t num_clusters_;
  uint32_t dimensions_;
  std::vector<double> values_;  // row-major k x d
  std::vector<uint32_t> sizes_;
};

}  // namespace lshclust
