#pragma once

/// \file dissimilarity.h
/// \brief Huang's categorical mismatch measure d(X, Y) (Eqs. 1-2) — the
/// inner loop of every assignment step.
///
/// The kernels themselves live in src/simd/ behind runtime CPU dispatch
/// (scalar / SSE4.2 / AVX2); this header is the thin domain-facing wrapper.
/// Historically the bounded scan relied on a `[[gnu::noinline]]` 32-element
/// block helper to keep GCC's auto-vectorizer engaged between the
/// early-exit branches; the dispatched kernels vectorize explicitly, so
/// that workaround is gone (bench/ablation_design_choices.cpp still
/// measures the historical shape for the before/after record).

#include <cstdint>
#include <span>

#include "simd/dispatch.h"

namespace lshclust {

/// Counts attribute positions where `a` and `b` differ. Both spans must
/// have equal length m; the result is in [0, m].
inline uint32_t MismatchDistance(std::span<const uint32_t> a,
                                 std::span<const uint32_t> b) {
  return simd::ActiveKernels().mismatch(a.data(), b.data(),
                                        static_cast<uint32_t>(a.size()));
}

/// Mismatch count with early exit: returns any value >= `bound` as soon as
/// the running count reaches `bound` (the caller is looking for distances
/// strictly below `bound`, so the exact value past it is irrelevant).
/// Every dispatch tier scans 32-attribute blocks with a bound check after
/// each, so even the early-exit partial value is tier-identical.
inline uint32_t BoundedMismatchDistance(const uint32_t* a, const uint32_t* b,
                                        uint32_t m, uint32_t bound) {
  return simd::ActiveKernels().bounded_mismatch(a, b, m, bound);
}

namespace internal {

/// Squared Euclidean distance with early exit at `bound` (the numeric twin
/// of BoundedMismatchDistance), shared by the K-Means and K-Prototypes
/// distance traits so both families run the identical kernel. All dispatch
/// tiers accumulate in the same fixed 4-lane x 8-element blocked order with
/// a bound check after each block, so the returned double — including the
/// early-exit partial — is bit-identical across tiers.
inline double BoundedSquaredL2(const double* a, const double* b, uint32_t d,
                               double bound) {
  return simd::ActiveKernels().bounded_sql2(a, b, d, bound);
}

/// Plain squared Euclidean distance (used by cost evaluation, where the
/// exact unblocked summation order is part of the reported number).
inline double SquaredL2(std::span<const double> a, std::span<const double> b) {
  double sum = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace internal

/// Jaccard similarity of two items' *present-token sets* when every
/// attribute is present: q matching attributes of m give |X∩Y| = q and
/// |X∪Y| = 2m - q, hence s = q / (2m - q). With at least one match,
/// s >= 1/(2m-1) — the quantity behind the paper's §III-C error bound.
inline double JaccardFromMatches(uint32_t matches, uint32_t m) {
  if (m == 0) return 0.0;
  return static_cast<double>(matches) /
         static_cast<double>(2 * m - matches);
}

}  // namespace lshclust
