#pragma once

/// \file dissimilarity.h
/// \brief Huang's categorical mismatch measure d(X, Y) (Eqs. 1-2) — the
/// inner loop of every assignment step.

#include <cstdint>
#include <span>

namespace lshclust {

/// Counts attribute positions where `a` and `b` differ. Both spans must
/// have equal length m; the result is in [0, m].
inline uint32_t MismatchDistance(std::span<const uint32_t> a,
                                 std::span<const uint32_t> b) {
  uint32_t mismatches = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

namespace internal {

/// Mismatch count of one fixed 32-attribute block. Deliberately *not*
/// inlined: when this body is inlined between the early-exit branches of
/// BoundedMismatchDistance, GCC stops vectorizing it and the bounded scan
/// runs ~5x slower than the exact kernel; compiled standalone it
/// vectorizes cleanly and the call overhead is ~2 cycles per block
/// (measured in bench/ablation_design_choices.cpp).
[[gnu::noinline]] inline uint32_t MismatchBlock32(const uint32_t* a,
                                                  const uint32_t* b) {
  uint32_t mismatches = 0;
  for (uint32_t t = 0; t < 32; ++t) {
    mismatches += (a[t] != b[t]) ? 1 : 0;
  }
  return mismatches;
}

}  // namespace internal

/// Mismatch count with early exit: returns any value >= `bound` as soon as
/// the running count reaches `bound` (the caller is looking for distances
/// strictly below `bound`, so the exact value past it is irrelevant).
/// Scans vectorized 32-attribute blocks with a bound check after each.
inline uint32_t BoundedMismatchDistance(const uint32_t* a, const uint32_t* b,
                                        uint32_t m, uint32_t bound) {
  uint32_t mismatches = 0;
  uint32_t j = 0;
  while (j + 32 <= m) {
    mismatches += internal::MismatchBlock32(a + j, b + j);
    j += 32;
    if (mismatches >= bound) return mismatches;
  }
  for (; j < m; ++j) {
    mismatches += (a[j] != b[j]) ? 1 : 0;
  }
  return mismatches;
}

namespace internal {

/// Squared Euclidean distance with early exit at `bound`, scanned in
/// 8-wide blocks with a bound check after each (the numeric twin of
/// BoundedMismatchDistance). Shared by the K-Means and K-Prototypes
/// distance traits so both families run the identical kernel.
inline double BoundedSquaredL2(const double* a, const double* b, uint32_t d,
                               double bound) {
  double sum = 0;
  uint32_t j = 0;
  constexpr uint32_t kBlock = 8;
  while (j + kBlock <= d) {
    for (uint32_t t = 0; t < kBlock; ++t) {
      const double diff = a[j + t] - b[j + t];
      sum += diff * diff;
    }
    j += kBlock;
    if (sum >= bound) return sum;
  }
  for (; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

/// Plain squared Euclidean distance (used by cost evaluation, where the
/// exact unblocked summation order is part of the reported number).
inline double SquaredL2(std::span<const double> a, std::span<const double> b) {
  double sum = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace internal

/// Jaccard similarity of two items' *present-token sets* when every
/// attribute is present: q matching attributes of m give |X∩Y| = q and
/// |X∪Y| = 2m - q, hence s = q / (2m - q). With at least one match,
/// s >= 1/(2m-1) — the quantity behind the paper's §III-C error bound.
inline double JaccardFromMatches(uint32_t matches, uint32_t m) {
  if (m == 0) return 0.0;
  return static_cast<double>(matches) /
         static_cast<double>(2 * m - matches);
}

}  // namespace lshclust
