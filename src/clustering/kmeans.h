#pragma once

/// \file kmeans.h
/// \brief K-Means (Lloyd) on numeric data, with the same provider hook as
/// the categorical engine, plus the mini-batch variant (Sculley 2010,
/// paper ref [16]).
///
/// The paper's framework is algorithm-agnostic for centroid-based
/// clustering (§I, §VI names numeric data as future work); this module is
/// the numeric substrate that core/lsh_kmeans.h accelerates with SimHash.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace lshclust {

/// \brief Options for K-Means runs.
struct KMeansOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Iteration cap.
  uint32_t max_iterations = 100;
  /// Explicit seed items (same contract as EngineOptions::initial_seeds).
  std::vector<uint32_t> initial_seeds;
  /// RNG seed for seed selection.
  uint64_t seed = 42;
  /// Use the bounded early-exit distance kernel.
  bool early_exit = true;
};

/// \brief Candidate provider scanning all clusters (original K-Means).
struct ExhaustiveNumericProvider {
  static constexpr bool kExhaustive = true;
  Status Prepare(const NumericDataset&) { return Status::OK(); }
  void GetCandidates(uint32_t, std::span<const uint32_t>,
                     std::vector<uint32_t>*) {}
};

namespace internal {

/// Squared Euclidean distance with early exit at `bound`.
inline double BoundedSquaredL2(const double* a, const double* b, uint32_t d,
                               double bound) {
  double sum = 0;
  uint32_t j = 0;
  constexpr uint32_t kBlock = 8;
  while (j + kBlock <= d) {
    for (uint32_t t = 0; t < kBlock; ++t) {
      const double diff = a[j + t] - b[j + t];
      sum += diff * diff;
    }
    j += kBlock;
    if (sum >= bound) return sum;
  }
  for (; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

/// Plain squared Euclidean distance.
inline double SquaredL2(std::span<const double> a, std::span<const double> b) {
  double sum = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace internal

/// \brief Runs Lloyd's algorithm with candidates from `provider` (the
/// numeric twin of RunEngine in engine.h; same phase structure, same
/// instrumentation semantics).
template <typename Provider>
Result<ClusteringResult> RunKMeansEngine(const NumericDataset& dataset,
                                         const KMeansOptions& options,
                                         Provider& provider) {
  const uint32_t n = dataset.num_items();
  const uint32_t d = dataset.dimensions();
  const uint32_t k = options.num_clusters;
  if (n == 0) return Status::InvalidArgument("dataset is empty");
  if (k == 0 || k > n) {
    return Status::InvalidArgument(
        "num_clusters must be in [1, n]; got k=" + std::to_string(k) +
        " with n=" + std::to_string(n));
  }

  ClusteringResult result;
  Rng rng(options.seed);
  Stopwatch total_watch;
  Stopwatch phase_watch;

  // Phase 1: seeds -> initial centroids.
  std::vector<uint32_t> seeds = options.initial_seeds;
  if (seeds.empty()) {
    seeds = rng.SampleWithoutReplacement(n, k);
  } else if (seeds.size() != k) {
    return Status::InvalidArgument("initial_seeds size must equal k");
  }
  std::vector<double> centroids(static_cast<size_t>(k) * d);
  for (uint32_t cluster = 0; cluster < k; ++cluster) {
    if (seeds[cluster] >= n) {
      return Status::OutOfRange("seed item out of range");
    }
    const auto row = dataset.Row(seeds[cluster]);
    std::copy(row.begin(), row.end(),
              centroids.begin() + static_cast<size_t>(cluster) * d);
  }
  result.init_seconds = phase_watch.ElapsedSeconds();

  auto assign_exhaustive = [&](bool first_pass) -> uint64_t {
    uint64_t moves = 0;
    for (uint32_t item = 0; item < n; ++item) {
      const double* row = dataset.Row(item).data();
      uint32_t best_cluster =
          first_pass ? 0u : result.assignment[item];
      double best_distance = internal::BoundedSquaredL2(
          row, centroids.data() + static_cast<size_t>(best_cluster) * d, d,
          std::numeric_limits<double>::infinity());
      for (uint32_t cluster = 0; cluster < k; ++cluster) {
        if (cluster == best_cluster) continue;
        const double distance = internal::BoundedSquaredL2(
            row, centroids.data() + static_cast<size_t>(cluster) * d, d,
            options.early_exit ? best_distance
                               : std::numeric_limits<double>::infinity());
        if (distance < best_distance) {
          best_distance = distance;
          best_cluster = cluster;
        }
      }
      if (first_pass) {
        result.assignment[item] = best_cluster;
      } else if (best_cluster != result.assignment[item]) {
        result.assignment[item] = best_cluster;
        ++moves;
      }
    }
    return moves;
  };

  auto update_centroids = [&]() {
    std::vector<double> sums(static_cast<size_t>(k) * d, 0.0);
    std::vector<uint32_t> counts(k, 0);
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t cluster = result.assignment[item];
      ++counts[cluster];
      const auto row = dataset.Row(item);
      double* sum = sums.data() + static_cast<size_t>(cluster) * d;
      for (uint32_t j = 0; j < d; ++j) sum[j] += row[j];
    }
    for (uint32_t cluster = 0; cluster < k; ++cluster) {
      if (counts[cluster] == 0) continue;  // keep previous centroid
      double* centroid = centroids.data() + static_cast<size_t>(cluster) * d;
      const double* sum = sums.data() + static_cast<size_t>(cluster) * d;
      for (uint32_t j = 0; j < d; ++j) {
        centroid[j] = sum[j] / counts[cluster];
      }
    }
  };

  auto compute_inertia = [&]() {
    double inertia = 0;
    for (uint32_t item = 0; item < n; ++item) {
      inertia += internal::SquaredL2(
          dataset.Row(item),
          {centroids.data() + static_cast<size_t>(result.assignment[item]) * d,
           d});
    }
    return inertia;
  };

  // Phase 2: initial exhaustive assignment + centroid update.
  phase_watch.Restart();
  result.assignment.assign(n, 0);
  assign_exhaustive(/*first_pass=*/true);
  update_centroids();
  result.initial_assign_seconds = phase_watch.ElapsedSeconds();

  // Phase 3: provider preparation (SimHash signatures for LSH-K-Means).
  phase_watch.Restart();
  LSHC_RETURN_NOT_OK(provider.Prepare(dataset));
  result.index_build_seconds = phase_watch.ElapsedSeconds();

  // Phase 4: refinement.
  std::vector<uint32_t> shortlist;
  for (uint32_t iteration = 1; iteration <= options.max_iterations;
       ++iteration) {
    phase_watch.Restart();
    uint64_t moves = 0;
    uint64_t shortlist_total = 0;
    if constexpr (Provider::kExhaustive) {
      moves = assign_exhaustive(/*first_pass=*/false);
      shortlist_total = static_cast<uint64_t>(n) * k;
    } else {
      for (uint32_t item = 0; item < n; ++item) {
        provider.GetCandidates(item, result.assignment, &shortlist);
        shortlist_total += shortlist.size();
        const double* row = dataset.Row(item).data();
        const uint32_t current = result.assignment[item];
        uint32_t best_cluster = current;
        double best_distance = internal::BoundedSquaredL2(
            row, centroids.data() + static_cast<size_t>(current) * d, d,
            std::numeric_limits<double>::infinity());
        for (const uint32_t cluster : shortlist) {
          if (cluster == current) continue;
          const double distance = internal::BoundedSquaredL2(
              row, centroids.data() + static_cast<size_t>(cluster) * d, d,
              options.early_exit ? best_distance
                                 : std::numeric_limits<double>::infinity());
          if (distance < best_distance) {
            best_distance = distance;
            best_cluster = cluster;
          }
        }
        if (best_cluster != current) {
          result.assignment[item] = best_cluster;
          ++moves;
        }
      }
    }
    update_centroids();

    IterationStats stats;
    stats.iteration = iteration;
    stats.moves = moves;
    stats.mean_shortlist =
        static_cast<double>(shortlist_total) / static_cast<double>(n);
    stats.seconds = phase_watch.ElapsedSeconds();
    stats.cost = compute_inertia();
    result.iterations.push_back(stats);

    if (moves == 0) {
      result.converged = true;
      break;
    }
  }

  result.final_cost =
      result.iterations.empty() ? 0.0 : result.iterations.back().cost;
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

/// Runs exhaustive K-Means (Lloyd's algorithm).
Result<ClusteringResult> RunKMeans(const NumericDataset& dataset,
                                   const KMeansOptions& options);

/// \brief Options for mini-batch K-Means (Sculley 2010).
struct MiniBatchKMeansOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Items sampled per batch.
  uint32_t batch_size = 256;
  /// Number of batches processed.
  uint32_t num_batches = 100;
  /// RNG seed (sampling and seeding).
  uint64_t seed = 42;
};

/// Runs mini-batch K-Means: per batch, assign the sampled items to their
/// nearest centroid, then move each touched centroid towards the batch
/// members with per-centroid learning rate 1/count. Converges orders of
/// magnitude faster than Lloyd on large n at a small inertia penalty —
/// the web-scale trade-off of the paper's ref [16]. The result's
/// `iterations` carry per-batch moves; `assignment` is a final full pass.
Result<ClusteringResult> RunMiniBatchKMeans(
    const NumericDataset& dataset, const MiniBatchKMeansOptions& options);

}  // namespace lshclust
