#pragma once

/// \file kmeans.h
/// \brief K-Means (Lloyd) on numeric data as a traits instantiation of the
/// unified clustering engine (clustering/engine.h), plus the mini-batch
/// variant (Sculley 2010, paper ref [16]).
///
/// The paper's framework is algorithm-agnostic for centroid-based
/// clustering (§I, §VI names numeric data as future work); this module is
/// the numeric substrate that core/lsh_kmeans.h accelerates with SimHash.
/// The refinement loop itself lives in ClusteringEngine — K-Means only
/// supplies the squared-L2 distance and mean-centroid update.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "clustering/centroid_table.h"
#include "clustering/dissimilarity.h"
#include "clustering/engine.h"
#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Options for K-Means runs: the shared engine options. (kHuang and
/// kCao seeding are categorical-only; numeric runs use kRandom.)
struct KMeansOptions : EngineOptions {};

/// \brief Candidate provider scanning all clusters (original K-Means).
using ExhaustiveNumericProvider = ExhaustiveProvider;

/// \brief Dissimilarity/centroid traits for numeric data (K-Means).
struct NumericClusteringTraits {
  using Dataset = NumericDataset;
  using Options = KMeansOptions;
  using DistanceType = double;
  using Centroids = CentroidTable;

  static constexpr DistanceType kInfiniteDistance =
      std::numeric_limits<double>::infinity();

  [[nodiscard]] static Status ValidateOptions(const Dataset&, const Options& options) {
    if (options.initial_seeds.empty() &&
        options.init_method != InitMethod::kRandom) {
      return Status::InvalidArgument(
          "only InitMethod::kRandom is supported for numeric data");
    }
    return Status::OK();
  }

  static Result<std::vector<uint32_t>> SelectSeedItems(const Dataset& dataset,
                                                       const Options& options,
                                                       Rng& rng) {
    return rng.SampleWithoutReplacement(dataset.num_items(),
                                        options.num_clusters);
  }

  static Centroids MakeCentroids(const Dataset& dataset,
                                 const Options& options) {
    return CentroidTable(options.num_clusters, dataset.dimensions());
  }

  static void SeedCentroid(Centroids& centroids, uint32_t cluster,
                           const Dataset& dataset, uint32_t item) {
    centroids.SetFromItem(cluster, dataset, item);
  }

  /// Squared L2 distance of item vs centroid; the bound is only honoured
  /// when EarlyExit is set (the blocked kernel is used either way so the
  /// summation order — and hence the value — never depends on the switch).
  template <bool EarlyExit>
  static DistanceType ComputeDistance(const Dataset& dataset,
                                      const Centroids& centroids,
                                      const Options&, uint32_t item,
                                      uint32_t cluster, DistanceType bound) {
    return internal::BoundedSquaredL2(
        dataset.Row(item).data(), centroids.CentroidData(cluster),
        dataset.dimensions(),
        EarlyExit ? bound : std::numeric_limits<double>::infinity());
  }

  static void UpdateCentroids(const Dataset& dataset, Centroids& centroids,
                              std::span<const uint32_t> assignment,
                              const Options& options, Rng& rng) {
    centroids.RecomputeFromAssignment(dataset, assignment,
                                      options.empty_cluster_policy, rng);
  }

  /// Inertia: summed exact squared L2 of every item to its centroid.
  static double ComputeCost(const Dataset& dataset, const Centroids& centroids,
                            const Options&,
                            std::span<const uint32_t> assignment) {
    double inertia = 0;
    for (uint32_t item = 0; item < dataset.num_items(); ++item) {
      inertia += internal::SquaredL2(dataset.Row(item),
                                     centroids.Centroid(assignment[item]));
    }
    return inertia;
  }
};

/// \brief Runs Lloyd's algorithm with candidates from `provider` — the
/// numeric instantiation of the unified engine (same phase structure, same
/// instrumentation semantics as RunEngine).
template <typename Provider>
Result<ClusteringResult> RunKMeansEngine(const NumericDataset& dataset,
                                         const KMeansOptions& options,
                                         Provider& provider,
                                         CentroidTable* final_centroids =
                                             nullptr) {
  return ClusteringEngine<NumericClusteringTraits, Provider>::Run(
      dataset, options, provider, final_centroids);
}

/// Runs exhaustive K-Means (Lloyd's algorithm).
Result<ClusteringResult> RunKMeans(const NumericDataset& dataset,
                                   const KMeansOptions& options);

/// \brief Options for mini-batch K-Means (Sculley 2010).
struct MiniBatchKMeansOptions {
  /// Number of clusters k.
  uint32_t num_clusters = 0;
  /// Items sampled per batch.
  uint32_t batch_size = 256;
  /// Number of batches processed.
  uint32_t num_batches = 100;
  /// RNG seed (sampling and seeding).
  uint64_t seed = 42;
};

/// Runs mini-batch K-Means: per batch, assign the sampled items to their
/// nearest centroid, then move each touched centroid towards the batch
/// members with per-centroid learning rate 1/count. Converges orders of
/// magnitude faster than Lloyd on large n at a small inertia penalty —
/// the web-scale trade-off of the paper's ref [16]. The result's
/// `iterations` carry per-batch moves; `assignment` is a final full pass.
Result<ClusteringResult> RunMiniBatchKMeans(
    const NumericDataset& dataset, const MiniBatchKMeansOptions& options);

}  // namespace lshclust
