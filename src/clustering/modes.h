#pragma once

/// \file modes.h
/// \brief Cluster mode (categorical centroid) computation.
///
/// A mode of a cluster is the vector of per-attribute most frequent codes
/// among its members; Theorem 1 of Huang (1998), restated in §III-A1 of the
/// paper, shows this minimises D(X, Q) = Σ d(X_i, Q). Ties break towards
/// the smallest code so runs are reproducible.

#include <cstdint>
#include <span>
#include <vector>

#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "util/rng.h"

namespace lshclust {

/// \brief Owns the k x m mode matrix and recomputes it from an assignment.
class ModeTable {
 public:
  /// \param num_clusters k
  /// \param num_attributes m
  ModeTable(uint32_t num_clusters, uint32_t num_attributes);

  /// k.
  uint32_t num_clusters() const { return num_clusters_; }
  /// m.
  uint32_t num_attributes() const { return num_attributes_; }

  /// The mode of `cluster`, length m.
  std::span<const uint32_t> Mode(uint32_t cluster) const {
    LSHC_DCHECK(cluster < num_clusters_) << "cluster index out of range";
    return {codes_.data() + static_cast<size_t>(cluster) * num_attributes_,
            num_attributes_};
  }

  /// Raw pointer to the mode of `cluster` (hot path).
  const uint32_t* ModeData(uint32_t cluster) const {
    return codes_.data() + static_cast<size_t>(cluster) * num_attributes_;
  }

  /// Sets the mode of `cluster` to the codes of a dataset row (seeding).
  void SetModeFromItem(uint32_t cluster, const CategoricalDataset& dataset,
                       uint32_t item);

  /// Overwrites one component of a mode (used by incremental maintainers
  /// such as core/streaming.h).
  void SetModeCode(uint32_t cluster, uint32_t attribute, uint32_t code) {
    LSHC_DCHECK(cluster < num_clusters_ && attribute < num_attributes_);
    codes_[static_cast<size_t>(cluster) * num_attributes_ + attribute] = code;
  }

  /// Recomputes every non-empty cluster's mode as the per-attribute
  /// majority code of its members. Empty clusters follow `policy`:
  /// kKeepPreviousMode leaves their row untouched, kReseedRandomItem copies
  /// a random item drawn from `rng`.
  ///
  /// \param dataset the items
  /// \param assignment item -> cluster, size n, all entries < k
  /// \param policy empty-cluster handling
  /// \param rng used only by kReseedRandomItem
  void RecomputeFromAssignment(const CategoricalDataset& dataset,
                               std::span<const uint32_t> assignment,
                               EmptyClusterPolicy policy, Rng& rng);

  /// Number of members per cluster after the last Recompute (size k).
  const std::vector<uint32_t>& cluster_sizes() const { return sizes_; }

 private:
  uint32_t num_clusters_;
  uint32_t num_attributes_;
  std::vector<uint32_t> codes_;  // row-major k x m
  std::vector<uint32_t> sizes_;

  // Scratch reused across recomputes to avoid reallocation: per attribute,
  // the best (count, code) seen per cluster, versioned by attribute epoch.
  std::vector<uint32_t> best_count_;
  std::vector<uint32_t> best_code_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

}  // namespace lshclust
