#pragma once

/// \file initializers.h
/// \brief Initial centroid selection for K-Modes.
///
/// The paper randomly selects k items as initial modes and reuses the same
/// selection across every algorithm variant "so that the initial centroid
/// selection does not influence the performance and efficiency results"
/// (§IV-A). SelectSeeds therefore returns item *indices* — the experiment
/// harness draws them once and passes them to both K-Modes and MH-K-Modes.
///
/// Huang's and Cao's methods (paper refs [3] and [22]) are provided for
/// completeness; Cao's is O(n·k·m) and intended for moderate k.

#include <cstdint>
#include <vector>

#include "clustering/types.h"
#include "data/categorical_dataset.h"
#include "util/result.h"
#include "util/rng.h"

namespace lshclust {

/// Picks k distinct random items (the paper's method).
Result<std::vector<uint32_t>> SelectRandomSeeds(
    const CategoricalDataset& dataset, uint32_t k, Rng& rng);

/// Huang's method: rank items by the summed relative frequency of their
/// attribute values (denser items first), then greedily take items that are
/// not duplicates of already-selected seeds, spreading the selection across
/// the frequency ranking.
Result<std::vector<uint32_t>> SelectHuangSeeds(
    const CategoricalDataset& dataset, uint32_t k, Rng& rng);

/// Cao's density-distance method: the first seed maximises density
/// dens(x) = (1/m) Σ_j fr(A_j = x_j); each later seed maximises
/// min over chosen seeds c of d(x, c) * dens(x). Deterministic; O(n·k·m).
Result<std::vector<uint32_t>> SelectCaoSeeds(const CategoricalDataset& dataset,
                                             uint32_t k, Rng& rng);

/// Dispatches on `method`.
Result<std::vector<uint32_t>> SelectSeeds(const CategoricalDataset& dataset,
                                          uint32_t k, InitMethod method,
                                          Rng& rng);

}  // namespace lshclust
