#include "clustering/fuzzy_kmodes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "clustering/dissimilarity.h"
#include "clustering/initializers.h"
#include "lsh/flat_hash_table.h"
#include "util/macros.h"

namespace lshclust {

namespace {

/// Fuzzy mode update for one attribute: per cluster, the code maximising
/// the summed w^alpha of the items carrying it.
void UpdateFuzzyModes(const CategoricalDataset& dataset,
                      const std::vector<double>& weights_alpha, uint32_t k,
                      std::vector<uint32_t>* modes) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_attributes();
  const uint32_t* codes = dataset.codes().data();

  // (cluster, code) -> index into a dense weight accumulator; reused per
  // attribute.
  FlatHashMap64 cell_index(n);
  std::vector<double> cell_weight;
  std::vector<uint64_t> cell_key;

  for (uint32_t attribute = 0; attribute < m; ++attribute) {
    cell_index.Clear();
    cell_weight.clear();
    cell_key.clear();
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t code = codes[static_cast<size_t>(item) * m + attribute];
      const double* item_weights =
          weights_alpha.data() + static_cast<size_t>(item) * k;
      for (uint32_t cluster = 0; cluster < k; ++cluster) {
        const double weight = item_weights[cluster];
        if (weight == 0.0) continue;
        const uint64_t key = (static_cast<uint64_t>(cluster) << 32) | code;
        uint32_t* slot = cell_index.FindOrInsert(
            key, static_cast<uint32_t>(cell_weight.size()));
        if (*slot == cell_weight.size()) {
          cell_weight.push_back(0.0);
          cell_key.push_back(key);
        }
        cell_weight[*slot] += weight;
      }
    }
    // Argmax per cluster with smallest-code tie-break.
    std::vector<double> best_weight(k, -1.0);
    for (size_t cell = 0; cell < cell_weight.size(); ++cell) {
      const uint32_t cluster = static_cast<uint32_t>(cell_key[cell] >> 32);
      const uint32_t code = static_cast<uint32_t>(cell_key[cell]);
      uint32_t& mode_code = (*modes)[static_cast<size_t>(cluster) * m +
                                     attribute];
      if (cell_weight[cell] > best_weight[cluster] ||
          (cell_weight[cell] == best_weight[cluster] && code < mode_code)) {
        best_weight[cluster] = cell_weight[cell];
        mode_code = code;
      }
    }
  }
}

}  // namespace

Result<FuzzyKModesResult> RunFuzzyKModes(const CategoricalDataset& dataset,
                                         const FuzzyKModesOptions& options) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_attributes();
  const uint32_t k = options.num_clusters;
  if (n == 0) return Status::InvalidArgument("dataset is empty");
  if (k == 0 || k > n) {
    return Status::InvalidArgument("num_clusters must be in [1, n]");
  }
  if (!(options.alpha > 1.0)) {
    return Status::InvalidArgument("alpha must be greater than 1");
  }

  Rng rng(options.seed);
  std::vector<uint32_t> seeds = options.initial_seeds;
  if (seeds.empty()) {
    LSHC_ASSIGN_OR_RETURN(seeds, SelectRandomSeeds(dataset, k, rng));
  } else if (seeds.size() != k) {
    return Status::InvalidArgument("initial_seeds size must equal k");
  }

  FuzzyKModesResult result;
  result.num_clusters = k;
  result.num_attributes = m;
  result.modes.resize(static_cast<size_t>(k) * m);
  for (uint32_t cluster = 0; cluster < k; ++cluster) {
    if (seeds[cluster] >= n) {
      return Status::OutOfRange("seed item out of range");
    }
    const auto row = dataset.Row(seeds[cluster]);
    std::copy(row.begin(), row.end(),
              result.modes.begin() + static_cast<size_t>(cluster) * m);
  }

  result.memberships.assign(static_cast<size_t>(n) * k, 0.0);
  std::vector<double> weights_alpha(static_cast<size_t>(n) * k, 0.0);
  std::vector<uint32_t> distances(k);
  const double exponent = 1.0 / (options.alpha - 1.0);

  double previous_objective = std::numeric_limits<double>::infinity();
  for (uint32_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // Membership update with frozen modes.
    double objective = 0;
    for (uint32_t item = 0; item < n; ++item) {
      const auto row = dataset.Row(item);
      uint32_t zero_distance_count = 0;
      for (uint32_t cluster = 0; cluster < k; ++cluster) {
        distances[cluster] = MismatchDistance(
            row, {result.modes.data() + static_cast<size_t>(cluster) * m, m});
        zero_distance_count += distances[cluster] == 0 ? 1u : 0u;
      }
      double* memberships =
          result.memberships.data() + static_cast<size_t>(item) * k;
      double* weights = weights_alpha.data() + static_cast<size_t>(item) * k;
      if (zero_distance_count > 0) {
        // All membership goes (uniformly) to the zero-distance modes.
        for (uint32_t cluster = 0; cluster < k; ++cluster) {
          memberships[cluster] = distances[cluster] == 0
                                     ? 1.0 / zero_distance_count
                                     : 0.0;
        }
      } else {
        // w_il ∝ d_il^(-1/(α-1)), normalised.
        double total = 0;
        for (uint32_t cluster = 0; cluster < k; ++cluster) {
          memberships[cluster] =
              std::pow(1.0 / static_cast<double>(distances[cluster]),
                       exponent);
          total += memberships[cluster];
        }
        for (uint32_t cluster = 0; cluster < k; ++cluster) {
          memberships[cluster] /= total;
        }
      }
      for (uint32_t cluster = 0; cluster < k; ++cluster) {
        weights[cluster] = std::pow(memberships[cluster], options.alpha);
        objective += weights[cluster] * distances[cluster];
      }
    }
    result.objective.push_back(objective);

    // Mode update with frozen memberships.
    UpdateFuzzyModes(dataset, weights_alpha, k, &result.modes);

    if (previous_objective - objective <=
        options.tolerance * std::max(1.0, std::abs(previous_objective)) &&
        iteration > 0) {
      result.converged = true;
      break;
    }
    previous_objective = objective;
  }

  // Hard assignment by maximum membership.
  result.hard_assignment.resize(n);
  for (uint32_t item = 0; item < n; ++item) {
    const double* memberships =
        result.memberships.data() + static_cast<size_t>(item) * k;
    uint32_t best = 0;
    for (uint32_t cluster = 1; cluster < k; ++cluster) {
      if (memberships[cluster] > memberships[best]) best = cluster;
    }
    result.hard_assignment[item] = best;
  }
  return result;
}

}  // namespace lshclust
