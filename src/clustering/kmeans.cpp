#include "clustering/kmeans.h"

#include <algorithm>
#include <limits>

namespace lshclust {

Result<ClusteringResult> RunKMeans(const NumericDataset& dataset,
                                   const KMeansOptions& options) {
  ExhaustiveNumericProvider provider;
  return RunKMeansEngine(dataset, options, provider);
}

Result<ClusteringResult> RunMiniBatchKMeans(
    const NumericDataset& dataset, const MiniBatchKMeansOptions& options) {
  const uint32_t n = dataset.num_items();
  const uint32_t d = dataset.dimensions();
  const uint32_t k = options.num_clusters;
  if (n == 0) return Status::InvalidArgument("dataset is empty");
  if (k == 0 || k > n) {
    return Status::InvalidArgument("num_clusters must be in [1, n]");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }

  ClusteringResult result;
  Rng rng(options.seed);
  Stopwatch total_watch;

  // Seed centroids from random items.
  const std::vector<uint32_t> seeds = rng.SampleWithoutReplacement(n, k);
  std::vector<double> centroids(static_cast<size_t>(k) * d);
  for (uint32_t cluster = 0; cluster < k; ++cluster) {
    const auto row = dataset.Row(seeds[cluster]);
    std::copy(row.begin(), row.end(),
              centroids.begin() + static_cast<size_t>(cluster) * d);
  }

  std::vector<uint64_t> update_counts(k, 0);
  std::vector<uint32_t> batch(options.batch_size);
  std::vector<uint32_t> batch_assignment(options.batch_size);

  for (uint32_t batch_index = 0; batch_index < options.num_batches;
       ++batch_index) {
    Stopwatch batch_watch;
    for (auto& item : batch) {
      item = static_cast<uint32_t>(rng.Below(n));
    }
    // Assign the batch with centroids frozen.
    for (uint32_t b = 0; b < options.batch_size; ++b) {
      const double* row = dataset.Row(batch[b]).data();
      uint32_t best_cluster = 0;
      double best_distance = std::numeric_limits<double>::infinity();
      for (uint32_t cluster = 0; cluster < k; ++cluster) {
        const double distance = internal::BoundedSquaredL2(
            row, centroids.data() + static_cast<size_t>(cluster) * d, d,
            best_distance);
        if (distance < best_distance) {
          best_distance = distance;
          best_cluster = cluster;
        }
      }
      batch_assignment[b] = best_cluster;
    }
    // Gradient step: per-centroid learning rate 1 / total updates.
    uint64_t moves = 0;
    for (uint32_t b = 0; b < options.batch_size; ++b) {
      const uint32_t cluster = batch_assignment[b];
      ++update_counts[cluster];
      const double eta = 1.0 / static_cast<double>(update_counts[cluster]);
      double* centroid = centroids.data() + static_cast<size_t>(cluster) * d;
      const double* row = dataset.Row(batch[b]).data();
      for (uint32_t j = 0; j < d; ++j) {
        centroid[j] = (1.0 - eta) * centroid[j] + eta * row[j];
      }
      ++moves;
    }

    IterationStats stats;
    stats.iteration = batch_index + 1;
    stats.moves = moves;
    stats.mean_shortlist = static_cast<double>(k);
    stats.seconds = batch_watch.ElapsedSeconds();
    result.iterations.push_back(stats);
  }

  // Final full assignment against the learned centroids.
  result.assignment.resize(n);
  double inertia = 0;
  for (uint32_t item = 0; item < n; ++item) {
    const double* row = dataset.Row(item).data();
    uint32_t best_cluster = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (uint32_t cluster = 0; cluster < k; ++cluster) {
      const double distance = internal::BoundedSquaredL2(
          row, centroids.data() + static_cast<size_t>(cluster) * d, d,
          best_distance);
      if (distance < best_distance) {
        best_distance = distance;
        best_cluster = cluster;
      }
    }
    result.assignment[item] = best_cluster;
    inertia += best_distance;
  }
  result.final_cost = inertia;
  if (!result.iterations.empty()) {
    result.iterations.back().cost = inertia;
  }
  result.converged = true;
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace lshclust
