#include "clustering/canopy.h"

#include <algorithm>
#include <numeric>

#include "util/macros.h"

namespace lshclust {

Result<CanopyIndex> CanopyIndex::Build(const CategoricalDataset& dataset,
                                       const CanopyOptions& options) {
  const uint32_t n = dataset.num_items();
  const uint32_t m = dataset.num_attributes();
  if (n == 0) return Status::InvalidArgument("dataset is empty");
  LSHC_RETURN_NOT_OK(ValidateCanopyOptions(options));

  Rng rng(options.seed);
  const uint32_t sampled = std::min(options.cheap_attributes, m);
  const std::vector<uint32_t> attributes =
      rng.SampleWithoutReplacement(m, sampled);
  // Mismatch thresholds on the sampled positions. "distance < T" in the
  // original formulation becomes "mismatches <= threshold" here.
  const uint32_t loose = static_cast<uint32_t>(options.loose_fraction *
                                               static_cast<double>(sampled));
  const uint32_t tight = static_cast<uint32_t>(options.tight_fraction *
                                               static_cast<double>(sampled));

  auto cheap_distance = [&](uint32_t a, uint32_t b) {
    const uint32_t* row_a = dataset.Row(a).data();
    const uint32_t* row_b = dataset.Row(b).data();
    uint32_t mismatches = 0;
    for (const uint32_t attribute : attributes) {
      mismatches += row_a[attribute] != row_b[attribute] ? 1 : 0;
    }
    return mismatches;
  };

  // Randomised center order.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  CanopyIndex index;
  index.num_items_ = n;
  index.canopy_offsets_.push_back(0);
  std::vector<bool> is_candidate(n, true);
  std::vector<uint32_t> membership_counts(n, 0);

  for (const uint32_t center : order) {
    if (!is_candidate[center]) continue;
    // New canopy centered at `center`.
    for (uint32_t item = 0; item < n; ++item) {
      const uint32_t distance = cheap_distance(center, item);
      if (distance <= loose) {
        index.canopy_items_.push_back(item);
        ++membership_counts[item];
        if (distance <= tight) is_candidate[item] = false;
      }
    }
    index.canopy_offsets_.push_back(
        static_cast<uint32_t>(index.canopy_items_.size()));
  }

  // Invert to the item -> canopies CSR.
  index.item_offsets_.resize(n + 1);
  uint32_t offset = 0;
  for (uint32_t item = 0; item < n; ++item) {
    index.item_offsets_[item] = offset;
    offset += membership_counts[item];
  }
  index.item_offsets_[n] = offset;
  index.item_canopies_.resize(offset);
  std::vector<uint32_t> cursor(index.item_offsets_.begin(),
                               index.item_offsets_.end() - 1);
  for (uint32_t canopy = 0; canopy < index.num_canopies(); ++canopy) {
    for (const uint32_t item : index.CanopyMembers(canopy)) {
      index.item_canopies_[cursor[item]++] = canopy;
    }
  }
  return index;
}

}  // namespace lshclust
