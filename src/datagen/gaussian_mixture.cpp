#include "datagen/gaussian_mixture.h"

#include "util/rng.h"

namespace lshclust {

Result<NumericDataset> GenerateGaussianMixture(
    const GaussianMixtureOptions& options) {
  const uint32_t n = options.num_items;
  const uint32_t d = options.dimensions;
  const uint32_t k = options.num_clusters;
  if (n == 0 || d == 0 || k == 0) {
    return Status::InvalidArgument(
        "num_items, dimensions and num_clusters must be positive");
  }
  if (k > n) {
    return Status::InvalidArgument("more clusters than items");
  }
  if (options.stddev < 0.0) {
    return Status::InvalidArgument("stddev must be non-negative");
  }

  Rng rng(options.seed);
  std::vector<double> centers(static_cast<size_t>(k) * d);
  for (auto& coordinate : centers) {
    coordinate = (rng.NextDouble() * 2.0 - 1.0) * options.center_box;
  }

  std::vector<double> values(static_cast<size_t>(n) * d);
  std::vector<uint32_t> labels(n);
  for (uint32_t item = 0; item < n; ++item) {
    const uint32_t cluster = item % k;
    labels[item] = cluster;
    const double* center = centers.data() + static_cast<size_t>(cluster) * d;
    double* row = values.data() + static_cast<size_t>(item) * d;
    for (uint32_t j = 0; j < d; ++j) {
      row[j] = center[j] + rng.NextGaussian() * options.stddev;
    }
  }
  return NumericDataset::FromValues(n, d, std::move(values),
                                    std::move(labels));
}

}  // namespace lshclust
