#pragma once

/// \file conjunctive_generator.h
/// \brief `datgen`-style synthetic categorical data (§IV-A).
///
/// Reproduces the paper's generation recipe (the original datgen tool at
/// datasetgenerator.com is defunct — see DESIGN.md §6): every cluster is
/// defined by a conjunctive rule fixing a random subset of attributes to
/// rule-specific category values from a shared domain; items of the
/// cluster satisfy the rule and fill the remaining attributes with uniform
/// noise. The paper's base setting: domain of 40000 values, rules covering
/// 40-80 of 100 attributes, scaled proportionally for wider items.
///
/// Ground-truth labels are the rule (cluster) indices, enabling the purity
/// figures (Fig. 8).

#include <cstdint>

#include "data/categorical_dataset.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for GenerateConjunctiveRuleData. Defaults are the paper's
/// base synthetic dataset scaled by the caller.
struct ConjunctiveDataOptions {
  /// Items n.
  uint32_t num_items = 90000;
  /// Attributes m per item.
  uint32_t num_attributes = 100;
  /// Clusters k (= number of conjunctive rules).
  uint32_t num_clusters = 20000;
  /// Category values available to each attribute (paper: 40000).
  uint32_t domain_size = 40000;
  /// A rule fixes between min and max fraction of the attributes
  /// (paper: 40-80 of 100 attributes).
  double min_rule_fraction = 0.4;
  double max_rule_fraction = 0.8;
  /// RNG seed; generation is fully deterministic given the options.
  uint64_t seed = 1;
};

/// Generates the dataset. Codes are `attribute * domain_size + value`, so
/// they are globally unique across attributes as the MinHash token
/// contract requires. Items are dealt to clusters round-robin (clusters
/// differ in size by at most one item) and labelled with their cluster.
Result<CategoricalDataset> GenerateConjunctiveRuleData(
    const ConjunctiveDataOptions& options);

}  // namespace lshclust
