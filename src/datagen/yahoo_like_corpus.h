#pragma once

/// \file yahoo_like_corpus.h
/// \brief Synthetic Yahoo!-Answers-like question corpus (§IV-B substitute).
///
/// The real Webscope L6 dataset is license-gated, so we generate a corpus
/// with the same statistical structure (DESIGN.md §6): T fine-grained
/// topics; a Zipf-distributed background vocabulary shared by all topics
/// (natural-language word frequencies); per-topic keyword vocabularies
/// (the "zoologist"/"zoo" words of the paper's example); and questions of
/// 5-30 words mixing topic keywords with background noise. Topic keyword
/// overlap is controllable: adjacent topics can share keywords, modelling
/// the "number of similar clusters" effect the paper blames for the 0.25
/// purity ceiling on the real data.

#include <cstdint>

#include "text/corpus.h"

namespace lshclust {

/// \brief Options for GenerateYahooLikeCorpus.
struct YahooCorpusOptions {
  /// Number of topics (the paper's slice had 2916).
  uint32_t num_topics = 300;
  /// Questions generated per topic (the paper capped at 100).
  uint32_t questions_per_topic = 30;
  /// Background vocabulary size shared by all topics.
  uint32_t background_vocabulary = 4000;
  /// Keywords private to each topic.
  uint32_t keywords_per_topic = 12;
  /// Fraction of keywords shared with the *next* topic (cyclically),
  /// creating confusable neighbouring topics; 0 disables overlap.
  double keyword_overlap = 0.25;
  /// Probability that a question word is drawn from the topic's keywords
  /// rather than the background distribution.
  double keyword_probability = 0.4;
  /// Question length bounds (words).
  uint32_t min_words = 5;
  uint32_t max_words = 30;
  /// Zipf exponent of the background word distribution.
  double zipf_exponent = 1.05;
  /// RNG seed.
  uint64_t seed = 7;
};

/// Generates the corpus. Word ids 0..background_vocabulary-1 are background
/// words ("bg<i>"), the rest topic keywords ("topic<t>_kw<j>"); documents
/// carry their topic as the ground-truth label.
TokenizedCorpus GenerateYahooLikeCorpus(const YahooCorpusOptions& options);

/// Renders one generated question as a plausible text string (words joined
/// with spaces and a question mark), for examples exercising the raw-text
/// Tokenizer path.
std::string RenderQuestionText(const TokenizedCorpus& corpus,
                               uint32_t document);

}  // namespace lshclust
