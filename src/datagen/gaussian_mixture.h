#pragma once

/// \file gaussian_mixture.h
/// \brief Isotropic Gaussian mixture generator for the numeric (K-Means /
/// LSH-K-Means) extension.

#include <cstdint>

#include "data/categorical_dataset.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for GenerateGaussianMixture.
struct GaussianMixtureOptions {
  /// Items n.
  uint32_t num_items = 10000;
  /// Dimensions d.
  uint32_t dimensions = 32;
  /// Mixture components (= ground-truth clusters).
  uint32_t num_clusters = 100;
  /// Component centres are uniform in [-center_box, center_box]^d.
  double center_box = 10.0;
  /// Isotropic standard deviation of each component.
  double stddev = 1.0;
  /// RNG seed.
  uint64_t seed = 11;
};

/// Generates n points dealt round-robin to the components, labelled with
/// their component index.
Result<NumericDataset> GenerateGaussianMixture(
    const GaussianMixtureOptions& options);

}  // namespace lshclust
