#include "datagen/yahoo_like_corpus.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace lshclust {

TokenizedCorpus GenerateYahooLikeCorpus(const YahooCorpusOptions& options) {
  LSHC_CHECK_GE(options.num_topics, 1u);
  LSHC_CHECK_GE(options.questions_per_topic, 1u);
  LSHC_CHECK_GE(options.background_vocabulary, 1u);
  LSHC_CHECK_GE(options.keywords_per_topic, 1u);
  LSHC_CHECK(options.min_words >= 1 &&
             options.min_words <= options.max_words)
      << "question length bounds invalid";
  LSHC_CHECK(options.keyword_probability >= 0.0 &&
             options.keyword_probability <= 1.0);
  LSHC_CHECK(options.keyword_overlap >= 0.0 &&
             options.keyword_overlap < 1.0);

  Rng rng(options.seed);
  TokenizedCorpus corpus;
  corpus.num_topics = options.num_topics;

  // Vocabulary: background words first, then per-topic keywords.
  corpus.vocabulary.reserve(options.background_vocabulary +
                            static_cast<size_t>(options.num_topics) *
                                options.keywords_per_topic);
  for (uint32_t w = 0; w < options.background_vocabulary; ++w) {
    corpus.vocabulary.push_back("bg" + std::to_string(w));
  }
  std::vector<std::vector<uint32_t>> topic_keywords(options.num_topics);
  for (uint32_t topic = 0; topic < options.num_topics; ++topic) {
    auto& keywords = topic_keywords[topic];
    keywords.reserve(options.keywords_per_topic);
    for (uint32_t j = 0; j < options.keywords_per_topic; ++j) {
      keywords.push_back(static_cast<uint32_t>(corpus.vocabulary.size()));
      corpus.vocabulary.push_back("topic" + std::to_string(topic) + "_kw" +
                                  std::to_string(j));
    }
  }
  // Keyword overlap: each topic replaces a prefix of its keywords with
  // keywords of the next topic (cyclically), making neighbours confusable.
  if (options.keyword_overlap > 0.0 && options.num_topics > 1) {
    const uint32_t shared = static_cast<uint32_t>(
        options.keyword_overlap * options.keywords_per_topic);
    for (uint32_t topic = 0; topic < options.num_topics; ++topic) {
      const uint32_t next = (topic + 1) % options.num_topics;
      for (uint32_t j = 0; j < shared; ++j) {
        topic_keywords[topic][j] = topic_keywords[next][
            options.keywords_per_topic - 1 - j];
      }
    }
  }

  const ZipfSampler background(options.background_vocabulary,
                               options.zipf_exponent);

  corpus.documents.reserve(static_cast<size_t>(options.num_topics) *
                           options.questions_per_topic);
  for (uint32_t topic = 0; topic < options.num_topics; ++topic) {
    for (uint32_t q = 0; q < options.questions_per_topic; ++q) {
      Document doc;
      doc.topic = topic;
      const uint32_t length = static_cast<uint32_t>(
          rng.Uniform(options.min_words, options.max_words));
      doc.words.reserve(length);
      for (uint32_t w = 0; w < length; ++w) {
        if (rng.Bernoulli(options.keyword_probability)) {
          const auto& keywords = topic_keywords[topic];
          doc.words.push_back(
              keywords[rng.Below(keywords.size())]);
        } else {
          doc.words.push_back(background.Sample(rng));
        }
      }
      corpus.documents.push_back(std::move(doc));
    }
  }
  return corpus;
}

std::string RenderQuestionText(const TokenizedCorpus& corpus,
                               uint32_t document) {
  LSHC_CHECK_LT(document, corpus.documents.size());
  const Document& doc = corpus.documents[document];
  std::string text;
  for (size_t i = 0; i < doc.words.size(); ++i) {
    if (i > 0) text += ' ';
    text += corpus.vocabulary[doc.words[i]];
  }
  text += '?';
  return text;
}

}  // namespace lshclust
