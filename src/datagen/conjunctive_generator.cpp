#include "datagen/conjunctive_generator.h"

#include <algorithm>

#include "util/rng.h"

namespace lshclust {

Result<CategoricalDataset> GenerateConjunctiveRuleData(
    const ConjunctiveDataOptions& options) {
  const uint32_t n = options.num_items;
  const uint32_t m = options.num_attributes;
  const uint32_t k = options.num_clusters;
  if (n == 0 || m == 0 || k == 0) {
    return Status::InvalidArgument(
        "num_items, num_attributes and num_clusters must be positive");
  }
  if (k > n) {
    return Status::InvalidArgument("more clusters than items");
  }
  if (options.domain_size < 2) {
    return Status::InvalidArgument("domain_size must be at least 2");
  }
  if (!(options.min_rule_fraction >= 0.0 &&
        options.min_rule_fraction <= options.max_rule_fraction &&
        options.max_rule_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "rule fractions must satisfy 0 <= min <= max <= 1");
  }
  if (static_cast<uint64_t>(m) * options.domain_size > (1ULL << 32)) {
    return Status::InvalidArgument(
        "num_attributes * domain_size exceeds the 32-bit code space");
  }

  Rng rng(options.seed);

  // Rule construction: per cluster, the fixed attributes and their values.
  const uint32_t min_rule = static_cast<uint32_t>(
      options.min_rule_fraction * static_cast<double>(m));
  const uint32_t max_rule = std::max<uint32_t>(
      1, static_cast<uint32_t>(options.max_rule_fraction *
                               static_cast<double>(m)));
  std::vector<std::vector<uint32_t>> rule_attributes(k);
  std::vector<std::vector<uint32_t>> rule_values(k);
  for (uint32_t cluster = 0; cluster < k; ++cluster) {
    const uint32_t rule_size = static_cast<uint32_t>(
        rng.Uniform(std::max<uint32_t>(1, min_rule), max_rule));
    rule_attributes[cluster] = rng.SampleWithoutReplacement(m, rule_size);
    std::sort(rule_attributes[cluster].begin(),
              rule_attributes[cluster].end());
    rule_values[cluster].reserve(rule_size);
    for (uint32_t i = 0; i < rule_size; ++i) {
      rule_values[cluster].push_back(
          static_cast<uint32_t>(rng.Below(options.domain_size)));
    }
  }

  // Item construction: round-robin cluster membership; rule attributes get
  // the rule values, the rest uniform noise.
  std::vector<uint32_t> codes(static_cast<size_t>(n) * m);
  std::vector<uint32_t> labels(n);
  for (uint32_t item = 0; item < n; ++item) {
    const uint32_t cluster = item % k;
    labels[item] = cluster;
    uint32_t* row = codes.data() + static_cast<size_t>(item) * m;
    for (uint32_t a = 0; a < m; ++a) {
      row[a] = a * options.domain_size +
               static_cast<uint32_t>(rng.Below(options.domain_size));
    }
    const auto& attributes = rule_attributes[cluster];
    const auto& values = rule_values[cluster];
    for (size_t i = 0; i < attributes.size(); ++i) {
      row[attributes[i]] = attributes[i] * options.domain_size + values[i];
    }
  }

  return CategoricalDataset::FromCodes(n, m, m * options.domain_size,
                                       std::move(codes), std::move(labels));
}

}  // namespace lshclust
