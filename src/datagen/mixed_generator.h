#pragma once

/// \file mixed_generator.h
/// \brief Synthetic mixed categorical + numeric data: every cluster is
/// defined by a conjunctive rule over the categorical attributes AND an
/// isotropic Gaussian component in the numeric space, with a shared label
/// — the test bed for K-Prototypes / LSH-K-Prototypes.

#include <cstdint>

#include "data/mixed_dataset.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "util/result.h"

namespace lshclust {

/// \brief Options for GenerateMixedData.
struct MixedDataOptions {
  /// Categorical side (num_items/num_clusters/seed are shared with the
  /// numeric side; set them here).
  ConjunctiveDataOptions categorical;
  /// Numeric dimensionality.
  uint32_t numeric_dimensions = 16;
  /// Numeric component geometry.
  double center_box = 10.0;
  double stddev = 1.0;
};

/// Generates the dataset. Item i belongs to cluster i % k in *both*
/// modalities (round-robin, matching the per-modality generators).
inline Result<MixedDataset> GenerateMixedData(const MixedDataOptions& options) {
  LSHC_ASSIGN_OR_RETURN(CategoricalDataset categorical,
                        GenerateConjunctiveRuleData(options.categorical));
  GaussianMixtureOptions numeric;
  numeric.num_items = options.categorical.num_items;
  numeric.dimensions = options.numeric_dimensions;
  numeric.num_clusters = options.categorical.num_clusters;
  numeric.center_box = options.center_box;
  numeric.stddev = options.stddev;
  numeric.seed = options.categorical.seed ^ 0x4D49584544ULL;  // "MIXED"
  LSHC_ASSIGN_OR_RETURN(NumericDataset numeric_part,
                        GenerateGaussianMixture(numeric));
  return MixedDataset::Combine(std::move(categorical),
                               std::move(numeric_part));
}

}  // namespace lshclust
