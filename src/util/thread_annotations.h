#pragma once

/// \file thread_annotations.h
/// \brief Clang thread-safety analysis: annotation macros plus an
/// annotated `Mutex` / `MutexLock` / `CondVar` wrapper set.
///
/// Every piece of locked state in the library is annotated with these
/// macros so that, under clang with `-Wthread-safety`
/// (`-Werror=thread-safety` in CI's static-analysis job), an access to a
/// guarded member without its mutex held is a *compile error* — the
/// static complement of the TSan jobs, which only catch races the test
/// inputs actually exercise. Under GCC (and any compiler without the
/// attributes) everything expands to nothing and `Mutex` is a
/// zero-overhead veneer over `std::mutex`.
///
/// Why wrap `std::mutex` at all: the analysis needs the *mutex type* to
/// be declared a capability and its lock/unlock functions to carry
/// acquire/release attributes. libstdc++'s `std::mutex` has none, so a
/// `GUARDED_BY(mutex_)` on a raw `std::mutex` member would never be
/// checkable. `Mutex` below is the annotated capability; `MutexLock` is
/// the scoped holder the analysis tracks; `CondVar` wraps
/// `std::condition_variable_any` so waiting is expressed against the
/// annotated mutex (the analysis treats the lock as continuously held
/// across `Wait`, which matches how guarded state may be read around it).
///
/// Usage:
/// \code
///   class Server {
///    public:
///     void Publish(Item item) LSHC_LOCKS_EXCLUDED(mutex_) {
///       MutexLock lock(mutex_);
///       slot_ = std::move(item);       // OK: mutex_ held
///     }
///    private:
///     mutable Mutex mutex_;
///     Item slot_ LSHC_GUARDED_BY(mutex_);
///   };
/// \endcode

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------- macros --
// Attribute spellings per the clang Thread Safety Analysis documentation.
// `__clang__` (not just attribute presence) gates the definitions: GCC
// accepts some of these spellings syntactically but implements no
// analysis, and warns about the ones it does not know.
#if defined(__clang__) && defined(__has_attribute)
#define LSHC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LSHC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define LSHC_CAPABILITY(x) LSHC_THREAD_ANNOTATION(capability(x))

/// Declares a scoped-lock type (acquires at construction, releases at
/// destruction).
#define LSHC_SCOPED_CAPABILITY LSHC_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be accessed while the given capability is held.
#define LSHC_GUARDED_BY(x) LSHC_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be accessed while the given capability is held.
#define LSHC_PT_GUARDED_BY(x) LSHC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability(ies) to be held by the caller.
#define LSHC_REQUIRES(...) \
  LSHC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define LSHC_ACQUIRE(...) \
  LSHC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which the caller must hold).
#define LSHC_RELEASE(...) \
  LSHC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant entry points).
#define LSHC_LOCKS_EXCLUDED(...) \
  LSHC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define LSHC_RETURN_CAPABILITY(x) LSHC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is exempt from analysis (used for
/// lock-shuffling internals whose safety argument is in prose). The
/// function's own interface attributes are still enforced at call sites.
#define LSHC_NO_THREAD_SAFETY_ANALYSIS \
  LSHC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lshclust {

// ---------------------------------------------------------------- wrappers --

/// \brief `std::mutex` declared as a thread-safety capability.
///
/// Also satisfies *BasicLockable* (lowercase `lock`/`unlock`) so
/// `CondVar`'s `std::condition_variable_any` can wait on it directly.
class LSHC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LSHC_ACQUIRE() { mutex_.lock(); }
  void Unlock() LSHC_RELEASE() { mutex_.unlock(); }

  // BasicLockable spellings (for std::condition_variable_any and
  // std::lock_guard-style generic code).
  void lock() LSHC_ACQUIRE() { mutex_.lock(); }
  void unlock() LSHC_RELEASE() { mutex_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// \brief Scoped lock of a `Mutex`; the annotated `std::lock_guard`.
class LSHC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) LSHC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() LSHC_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// \brief Condition variable bound to the annotated `Mutex`.
///
/// `Wait` requires the mutex to be held and is treated by the analysis as
/// holding it throughout (the standard CV contract: the lock is released
/// only inside the wait and re-acquired before returning, so guarded
/// state is never touchable unlocked). Spurious wakeups are possible as
/// with any condition variable; use the predicate overload.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Caller must hold `mutex`. Spell waits as
  /// `while (!condition) cv.Wait(mutex);` — a predicate-lambda overload
  /// is deliberately absent, because the analysis checks lambda bodies as
  /// standalone functions and would flag their guarded-member reads even
  /// though the lock is held for the call.
  void Wait(Mutex& mutex) LSHC_REQUIRES(mutex) { cv_.wait(mutex); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace lshclust
