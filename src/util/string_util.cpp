#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace lshclust {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  // std::from_chars for double is not universally available; strtod needs a
  // NUL-terminated buffer.
  std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[32];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, kUnits[unit]);
  }
  return buffer;
}

}  // namespace lshclust
