#pragma once

/// \file binary_io.h
/// \brief The one binary-framing idiom of the repo: CRC-32 checksums,
/// little-endian scalar/array writers, and a bounds-checked byte reader.
///
/// Both on-disk formats — the dataset container (data/serialize.h) and the
/// model container (persist/model_io.h) — encode through these helpers, so
/// files are byte-identical regardless of host endianness and every read
/// is range-checked before it happens. Writers come in two shapes: stream
/// writers (`WriteLeU32`) for formats that emit directly to an ostream, and
/// buffer appenders (`AppendLeU64`, `AppendLeArray`) for formats that frame
/// whole sections in memory to checksum them before writing. The reader
/// side is `ByteReader`: a cursor over an in-memory span whose every Read*
/// returns false instead of walking past the end, which is what turns a
/// truncated or corrupted file into a typed `Status` instead of UB.

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace lshclust {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// Extends a running CRC-32 (IEEE 802.3 polynomial, the zlib `crc32`
/// convention) over `size` more bytes. Start from 0 and chain:
/// `Crc32Update(Crc32Update(0, a, n), b, m)` equals the CRC of a||b.
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = internal::kCrc32Table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// CRC-32 of one contiguous buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

/// Writes a u32 to a stream as 4 little-endian bytes.
inline void WriteLeU32(std::ostream& out, uint32_t value) {
  const uint8_t bytes[4] = {
      static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
      static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

/// Reads a little-endian u32 from a stream; false on short read.
inline bool ReadLeU32(std::istream& in, uint32_t* value) {
  uint8_t bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (in.gcount() != 4) return false;
  *value = static_cast<uint32_t>(bytes[0]) |
           (static_cast<uint32_t>(bytes[1]) << 8) |
           (static_cast<uint32_t>(bytes[2]) << 16) |
           (static_cast<uint32_t>(bytes[3]) << 24);
  return true;
}

/// Appends one byte to a buffer under construction.
inline void AppendLeU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

/// Appends a u32 as 4 little-endian bytes.
inline void AppendLeU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

/// Appends a u64 as 8 little-endian bytes.
inline void AppendLeU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

/// Appends a double as its 8-byte IEEE-754 bit pattern, little-endian.
inline void AppendLeF64(std::string* out, double value) {
  AppendLeU64(out, std::bit_cast<uint64_t>(value));
}

/// Appends a contiguous array of u32 / u64 / double values in element
/// order, each little-endian. On little-endian hosts this is one memcpy.
template <typename T>
inline void AppendLeArray(std::string* out, std::span<const T> values) {
  static_assert(std::is_same_v<T, uint32_t> || std::is_same_v<T, uint64_t> ||
                    std::is_same_v<T, double>,
                "AppendLeArray supports u32, u64 and f64 elements");
  if (values.empty()) return;
  if constexpr (std::endian::native == std::endian::little) {
    const size_t old_size = out->size();
    out->resize(old_size + values.size_bytes());
    std::memcpy(out->data() + old_size, values.data(), values.size_bytes());
  } else {
    for (const T value : values) {
      if constexpr (std::is_same_v<T, uint32_t>) {
        AppendLeU32(out, value);
      } else if constexpr (std::is_same_v<T, uint64_t>) {
        AppendLeU64(out, value);
      } else {
        AppendLeF64(out, value);
      }
    }
  }
}

/// \brief Bounds-checked little-endian cursor over an in-memory buffer.
/// Every Read*/Skip returns false (leaving the cursor unmoved) rather than
/// reading past the end — callers turn that into a typed Status.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t position() const { return position_; }
  size_t remaining() const { return data_.size() - position_; }

  bool Skip(size_t bytes) {
    if (bytes > remaining()) return false;
    position_ += bytes;
    return true;
  }

  bool ReadU8(uint8_t* value) {
    if (remaining() < 1) return false;
    *value = data_[position_++];
    return true;
  }

  bool ReadU32(uint32_t* value) {
    if (remaining() < 4) return false;
    uint32_t v = 0;
    for (size_t i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[position_ + i]) << (8 * i);
    }
    *value = v;
    position_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* value) {
    if (remaining() < 8) return false;
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[position_ + i]) << (8 * i);
    }
    *value = v;
    position_ += 8;
    return true;
  }

  bool ReadF64(double* value) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *value = std::bit_cast<double>(bits);
    return true;
  }

  /// Reads `count` little-endian elements into `out` (replacing its
  /// contents). The element count is validated against the remaining
  /// bytes *before* any allocation, so a corrupt length cannot trigger a
  /// huge resize.
  template <typename T>
  bool ReadArray(size_t count, std::vector<T>* out) {
    static_assert(std::is_same_v<T, uint32_t> || std::is_same_v<T, uint64_t> ||
                      std::is_same_v<T, double>,
                  "ReadArray supports u32, u64 and f64 elements");
    if (count > remaining() / sizeof(T)) return false;
    out->clear();
    out->resize(count);
    if constexpr (std::endian::native == std::endian::little) {
      if (count > 0) {
        std::memcpy(out->data(), data_.data() + position_, count * sizeof(T));
      }
      position_ += count * sizeof(T);
    } else {
      for (size_t i = 0; i < count; ++i) {
        if constexpr (std::is_same_v<T, uint32_t>) {
          ReadU32(&(*out)[i]);
        } else if constexpr (std::is_same_v<T, uint64_t>) {
          ReadU64(&(*out)[i]);
        } else {
          ReadF64(&(*out)[i]);
        }
      }
    }
    return true;
  }

 private:
  std::span<const uint8_t> data_;
  size_t position_ = 0;
};

}  // namespace lshclust
