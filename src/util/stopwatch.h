#pragma once

/// \file stopwatch.h
/// \brief Monotonic wall-clock stopwatch used by the experiment harness to
/// time iterations and total runs.

#include <chrono>
#include <cstdint>

namespace lshclust {

/// \brief Measures elapsed wall-clock time from construction or the last
/// Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since start as a double.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start as a double.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed nanoseconds since start.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lshclust
