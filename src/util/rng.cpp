#include "util/rng.h"

#include <algorithm>

namespace lshclust {

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  LSHC_CHECK_GE(n, 1u) << "ZipfSampler requires a non-empty population";
  LSHC_CHECK_GT(s, 0.0) << "ZipfSampler requires a positive exponent";
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& value : cdf_) value /= total;
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(std::min<size_t>(
      static_cast<size_t>(it - cdf_.begin()), cdf_.size() - 1));
}

double ZipfSampler::Probability(uint32_t rank) const {
  LSHC_CHECK_LT(rank, cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace lshclust
