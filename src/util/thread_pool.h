#pragma once

/// \file thread_pool.h
/// \brief A small fixed-size worker pool with a blocking ParallelFor, used
/// by the clustering engine's batch-parallel assignment step.
///
/// The pool is deliberately minimal: one kind of job (a chunked index
/// range), one caller at a time, no futures. Determinism is the caller's
/// concern — ParallelFor only guarantees that every chunk runs exactly
/// once and that the call returns after the last chunk finished. Workers
/// receive a stable `worker_index` in [0, num_threads) so callers can give
/// each worker its own scratch state instead of locking.
///
/// All dispatch state is guarded by one annotated `Mutex`
/// (util/thread_annotations.h), so clang's `-Wthread-safety` proves at
/// compile time that no job field is touched without it; the user-supplied
/// chunk function itself runs unlocked, which is the whole point.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace lshclust {

/// Maps a thread-count option to an actual worker count: 0 means "one per
/// hardware thread", anything else is taken literally (minimum one). The
/// shared interpretation of every `num_threads`-style knob in the library.
inline uint32_t ResolveThreadCount(uint32_t requested) {
  if (requested == 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  return requested;
}

/// \brief Fixed pool of worker threads executing chunked index ranges.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(uint32_t num_threads) {
    const uint32_t count = std::max(1u, num_threads);
    workers_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    work_cv_.NotifyAll();
    for (auto& worker : workers_) worker.join();
  }

  /// Number of worker threads.
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Splits [begin, end) into consecutive chunks of `chunk_size` (the last
  /// chunk may be shorter) and invokes
  /// `fn(chunk_begin, chunk_end, worker_index)` for each across the
  /// workers. Blocks until every chunk completed. Chunk boundaries are a
  /// pure function of (begin, end, chunk_size) — never of thread timing —
  /// so callers that keep per-chunk results get a deterministic
  /// decomposition. Must not be called concurrently or from a worker.
  void ParallelFor(uint32_t begin, uint32_t end, uint32_t chunk_size,
                   const std::function<void(uint32_t, uint32_t, uint32_t)>& fn)
      LSHC_LOCKS_EXCLUDED(mutex_) {
    if (begin >= end) return;
    chunk_size = std::max(1u, chunk_size);
    MutexLock lock(mutex_);
    end_ = end;
    chunk_size_ = chunk_size;
    next_ = begin;
    completed_ = 0;
    total_chunks_ =
        (static_cast<uint64_t>(end) - begin + chunk_size - 1) / chunk_size;
    fn_ = &fn;
    ++generation_;
    work_cv_.NotifyAll();
    while (completed_ != total_chunks_) done_cv_.Wait(mutex_);
    fn_ = nullptr;
  }

 private:
  void WorkerLoop(uint32_t worker_index) LSHC_LOCKS_EXCLUDED(mutex_) {
    uint64_t seen_generation = 0;
    mutex_.Lock();
    while (true) {
      while (!stop_ && generation_ == seen_generation) work_cv_.Wait(mutex_);
      if (stop_) break;
      seen_generation = generation_;
      while (next_ < end_) {
        const uint32_t chunk_begin = next_;
        const uint32_t chunk_end =
            static_cast<uint32_t>(std::min<uint64_t>(
                end_, static_cast<uint64_t>(chunk_begin) + chunk_size_));
        next_ = chunk_end;
        const auto* fn = fn_;
        mutex_.Unlock();
        (*fn)(chunk_begin, chunk_end, worker_index);
        mutex_.Lock();
        ++completed_;
        if (completed_ == total_chunks_) done_cv_.NotifyAll();
      }
    }
    mutex_.Unlock();
  }

  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(uint32_t, uint32_t, uint32_t)>* fn_
      LSHC_GUARDED_BY(mutex_) = nullptr;
  uint32_t end_ LSHC_GUARDED_BY(mutex_) = 0;
  uint32_t chunk_size_ LSHC_GUARDED_BY(mutex_) = 1;
  uint32_t next_ LSHC_GUARDED_BY(mutex_) = 0;
  uint64_t completed_ LSHC_GUARDED_BY(mutex_) = 0;
  uint64_t total_chunks_ LSHC_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ LSHC_GUARDED_BY(mutex_) = 0;
  bool stop_ LSHC_GUARDED_BY(mutex_) = false;
};

}  // namespace lshclust
