#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lshclust {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel InitialLevel() {
  const char* env = std::getenv("LSHCLUST_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  return Logger::ParseLevel(env);
}

std::atomic<LogLevel>& GlobalLevel() {
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

// Strips the leading path so log lines show "util/logging.cpp" style names.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

LogLevel Logger::level() { return GlobalLevel().load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  GlobalLevel().store(level, std::memory_order_relaxed);
}

LogLevel Logger::ParseLevel(std::string_view text) {
  auto equals = [&](const char* name) {
    if (text.size() != std::strlen(name)) return false;
    for (size_t i = 0; i < text.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text[i])) != name[i]) {
        return false;
      }
    }
    return true;
  };
  if (equals("trace")) return LogLevel::kTrace;
  if (equals("debug")) return LogLevel::kDebug;
  if (equals("info")) return LogLevel::kInfo;
  if (equals("warn") || equals("warning")) return LogLevel::kWarning;
  if (equals("error")) return LogLevel::kError;
  if (equals("fatal")) return LogLevel::kFatal;
  if (equals("off")) return LogLevel::kOff;
  return LogLevel::kInfo;
}

void Logger::Write(LogLevel level, const char* file, int line,
                   const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

namespace internal {

LogMessage::~LogMessage() {
  if (LSHC_LOG_ENABLED(level_)) {
    Logger::Write(level_, file_, line_, stream_.str());
  }
}

FatalLogMessage::~FatalLogMessage() {
  // The base destructor has not run yet, so emit explicitly then abort.
  Logger::Write(LogLevel::kFatal, "", 0, stream().str());
  std::abort();
}

}  // namespace internal

}  // namespace lshclust
