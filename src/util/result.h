#pragma once

/// \file result.h
/// \brief `Result<T>`: value-or-Status, the return type of fallible
/// operations that produce a value. Mirrors arrow::Result.

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace lshclust {

/// \brief Holds either a `T` or a non-OK `Status` explaining why the value
/// could not be produced.
///
/// Typical usage:
/// \code
///   Result<Dataset> r = CsvReader::Read(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).ValueOrDie();
/// \endcode
/// or via the LSHC_ASSIGN_OR_RETURN macro in macros.h.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    LSHC_CHECK(!std::get<Status>(storage_).ok())
        << "Result constructed from an OK Status carries no value";
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The status: OK when a value is present, the error otherwise.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(storage_);
  }

  /// Returns the value; aborts if the Result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(storage_);
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(storage_));
  }

  /// Returns the value without checking; undefined behaviour on error.
  const T& ValueUnsafe() const& { return std::get<T>(storage_); }
  T& ValueUnsafe() & { return std::get<T>(storage_); }
  T ValueUnsafe() && { return std::move(std::get<T>(storage_)); }

  /// Returns the contained value or `fallback` when in error state.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) std::get<Status>(storage_).Abort("Result::ValueOrDie");
  }

  std::variant<Status, T> storage_;
};

}  // namespace lshclust
