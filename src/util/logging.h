#pragma once

/// \file logging.h
/// \brief Minimal leveled logging plus CHECK macros for invariants.
///
/// `LSHC_CHECK(cond) << "message"` aborts the process with file/line context
/// when `cond` is false. `LSHC_DCHECK` compiles away in release builds and
/// is used for hot-path invariants. Log lines go to stderr; the threshold is
/// controlled with Logger::set_level or the LSHCLUST_LOG_LEVEL environment
/// variable (trace|debug|info|warn|error|off).

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace lshclust {

/// \brief Severity of a log line.
enum class LogLevel : int8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kFatal = 5,
  kOff = 6,
};

/// \brief Process-wide logging configuration and sink.
class Logger {
 public:
  /// Returns the current threshold; lines below it are discarded.
  static LogLevel level();
  /// Sets the threshold for subsequent log lines.
  static void set_level(LogLevel level);
  /// Parses "trace".."off" (case-insensitive); returns kInfo on no match.
  static LogLevel ParseLevel(std::string_view text);
  /// Writes one formatted line to stderr (thread-safe at the line level).
  static void Write(LogLevel level, const char* file, int line,
                    const std::string& message);
};

namespace internal {

/// Accumulates one log line via operator<< and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after emitting (used by CHECK).
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kFatal, file, line) {}
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream() << value;
    return *this;
  }
};

/// Swallows the streamed expression when a log level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LSHC_LOG_ENABLED(lvl) \
  (static_cast<int>(lvl) >= static_cast<int>(::lshclust::Logger::level()))

#define LSHC_LOG(lvl)                                             \
  if (!LSHC_LOG_ENABLED(::lshclust::LogLevel::lvl))               \
    ;                                                             \
  else                                                            \
    ::lshclust::internal::LogMessage(::lshclust::LogLevel::lvl,   \
                                     __FILE__, __LINE__)

#define LSHC_LOG_TRACE() LSHC_LOG(kTrace)
#define LSHC_LOG_DEBUG() LSHC_LOG(kDebug)
#define LSHC_LOG_INFO() LSHC_LOG(kInfo)
#define LSHC_LOG_WARN() LSHC_LOG(kWarning)
#define LSHC_LOG_ERROR() LSHC_LOG(kError)

/// Aborts with a diagnostic when `condition` is false. Always on.
#define LSHC_CHECK(condition)                                       \
  if (condition)                                                    \
    ;                                                               \
  else                                                              \
    ::lshclust::internal::FatalLogMessage(__FILE__, __LINE__)       \
        << "Check failed: " #condition " "

#define LSHC_CHECK_OK(expr)                                         \
  if (::lshclust::Status _lshc_st = (expr); _lshc_st.ok())          \
    ;                                                               \
  else                                                              \
    ::lshclust::internal::FatalLogMessage(__FILE__, __LINE__)       \
        << "Operation failed: " << _lshc_st.ToString() << " "

#define LSHC_CHECK_EQ(a, b) LSHC_CHECK((a) == (b))
#define LSHC_CHECK_NE(a, b) LSHC_CHECK((a) != (b))
#define LSHC_CHECK_LT(a, b) LSHC_CHECK((a) < (b))
#define LSHC_CHECK_LE(a, b) LSHC_CHECK((a) <= (b))
#define LSHC_CHECK_GT(a, b) LSHC_CHECK((a) > (b))
#define LSHC_CHECK_GE(a, b) LSHC_CHECK((a) >= (b))

/// Debug-only invariant check; compiles to nothing with NDEBUG.
#ifdef NDEBUG
#define LSHC_DCHECK(condition) \
  if (true)                    \
    ;                          \
  else                         \
    ::lshclust::internal::NullStream()
#else
#define LSHC_DCHECK(condition) LSHC_CHECK(condition)
#endif

}  // namespace lshclust
