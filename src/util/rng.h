#pragma once

/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// All randomized components of the library (hash family sampling, data
/// generators, initial centroid selection) draw from `Rng`, a
/// xoshiro256** generator seeded through SplitMix64. Given the same seed the
/// whole pipeline is bit-reproducible, which the experiment harness relies
/// on: the paper fixes initial centroids across algorithm variants so that
/// initialization does not confound the efficiency comparison (§IV-A).

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace lshclust {

/// \brief One step of the SplitMix64 sequence; also usable as a 64-bit
/// integer mixer/finalizer.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// \brief Mixes a 64-bit value into a well-distributed 64-bit hash
/// (stateless SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

/// \brief xoshiro256** PRNG: fast, high quality, 2^256-1 period.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also feed
/// <random> distributions where convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs from a seed; equal seeds produce equal sequences.
  explicit Rng(uint64_t seed = 0xC0FFEE) { Seed(seed); }

  /// Re-seeds the generator (expands the seed through SplitMix64).
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  /// `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    LSHC_DCHECK(bound > 0) << "Below() requires a positive bound";
    // Unbiased: rejects the short final stripe of the 2^64 range.
    const uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
    while (true) {
      const uint64_t r = Next();
      __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<uint64_t>(m) >= threshold) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  int64_t Uniform(int64_t lo, int64_t hi) {
    LSHC_DCHECK(lo <= hi) << "Uniform() requires lo <= hi";
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal deviate (Box-Muller; one value per call).
  double NextGaussian() {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Below(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `count` distinct indices from [0, population) (partial
  /// Fisher-Yates; O(population) memory, O(population + count) time).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t population,
                                                 uint32_t count) {
    LSHC_CHECK_LE(count, population)
        << "cannot sample " << count << " distinct values from a population"
        << " of " << population;
    std::vector<uint32_t> pool(population);
    for (uint32_t i = 0; i < population; ++i) pool[i] = i;
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t j =
          i + static_cast<uint32_t>(Below(population - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(count);
    return pool;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

/// \brief Zipf-distributed integer sampler over {0, .., n-1} with exponent
/// `s`, using precomputed inverse-CDF lookup. Used by the Yahoo!-like corpus
/// generator to model natural-language word frequencies.
class ZipfSampler {
 public:
  /// \param n population size (must be >= 1)
  /// \param s exponent (> 0; ~1.0 for natural language)
  ZipfSampler(uint32_t n, double s);

  /// Draws one rank in [0, n); rank 0 is the most probable.
  uint32_t Sample(Rng& rng) const;

  /// The probability mass of rank `r`.
  double Probability(uint32_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace lshclust
