#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace lshclust {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kUnknownError:
      return "Unknown error";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unrecognized status code";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string annotated(context);
  annotated += ": ";
  annotated += message();
  return Status(code(), std::move(annotated));
}

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  if (context.empty()) {
    std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  } else {
    std::fprintf(stderr, "Fatal status (%.*s): %s\n",
                 static_cast<int>(context.size()), context.data(),
                 ToString().c_str());
  }
  std::abort();
}

}  // namespace lshclust
