#pragma once

/// \file string_util.h
/// \brief Small string helpers shared by the CSV reader, tokenizer and flag
/// parser.

#include <string>
#include <string_view>
#include <vector>

namespace lshclust {

/// Splits `text` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a signed 64-bit integer; the full string must be consumed.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a double; the full string must be consumed.
bool ParseDouble(std::string_view text, double* out);

/// Formats a double with `digits` significant digits (for table printers).
std::string FormatDouble(double value, int digits = 6);

/// Renders a byte count as a human-readable string ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

}  // namespace lshclust
