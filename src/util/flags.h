#pragma once

/// \file flags.h
/// \brief Tiny command-line flag parser used by the bench drivers and
/// examples. Supports `--name=value`, `--name value` and boolean
/// `--name` / `--no-name` forms, prints a generated `--help`.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lshclust {

/// \brief Declarative flag set: register flags bound to variables, then
/// Parse(argc, argv).
///
/// \code
///   FlagSet flags("fig2_clusters20k");
///   double scale = 0.1;
///   flags.AddDouble("scale", &scale, "dataset scale factor");
///   LSHC_CHECK_OK(flags.Parse(argc, argv));
/// \endcode
class FlagSet {
 public:
  /// \param program name shown in --help output
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  /// Registers an int64 flag bound to `target` (which holds the default).
  void AddInt64(std::string name, int64_t* target, std::string help);
  /// Registers a double flag bound to `target`.
  void AddDouble(std::string name, double* target, std::string help);
  /// Registers a boolean flag (`--name`, `--name=true/false`, `--no-name`).
  void AddBool(std::string name, bool* target, std::string help);
  /// Registers a string flag bound to `target`.
  void AddString(std::string name, std::string* target, std::string help);

  /// Parses argv. On `--help`, prints usage and returns a Status with code
  /// kAlreadyExists that callers treat as "exit 0". Unknown flags and
  /// malformed values produce kInvalidArgument.
  [[nodiscard]] Status Parse(int argc, char** argv);

  /// Positional (non-flag) arguments encountered during Parse.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the --help text.
  std::string Usage() const;

 private:
  enum class Kind { kInt64, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  [[nodiscard]] Status SetValue(const std::string& name, Flag& flag, std::string_view text);

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lshclust
