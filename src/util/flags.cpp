#include "util/flags.h"

#include <cstdio>

#include "util/macros.h"
#include "util/string_util.h"

namespace lshclust {

namespace {

std::string BoolRepr(bool value) { return value ? "true" : "false"; }

}  // namespace

void FlagSet::AddInt64(std::string name, int64_t* target, std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kInt64, target, std::move(help), std::to_string(*target)};
}

void FlagSet::AddDouble(std::string name, double* target, std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kDouble, target, std::move(help), FormatDouble(*target)};
}

void FlagSet::AddBool(std::string name, bool* target, std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kBool, target, std::move(help), BoolRepr(*target)};
}

void FlagSet::AddString(std::string name, std::string* target,
                        std::string help) {
  flags_[std::move(name)] =
      Flag{Kind::kString, target, std::move(help), *target};
}

Status FlagSet::SetValue(const std::string& name, Flag& flag,
                         std::string_view text) {
  switch (flag.kind) {
    case Kind::kInt64: {
      int64_t value = 0;
      if (!ParseInt64(text, &value)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" +
                                       std::string(text) + "'");
      }
      *static_cast<int64_t*>(flag.target) = value;
      return Status::OK();
    }
    case Kind::kDouble: {
      double value = 0;
      if (!ParseDouble(text, &value)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" +
                                       std::string(text) + "'");
      }
      *static_cast<double*>(flag.target) = value;
      return Status::OK();
    }
    case Kind::kBool: {
      const std::string lower = ToLower(text);
      if (lower == "true" || lower == "1" || lower == "yes") {
        *static_cast<bool*>(flag.target) = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" +
                                       std::string(text) + "'");
      }
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = std::string(text);
      return Status::OK();
  }
  return Status::UnknownError("unhandled flag kind");
}

Status FlagSet::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return Status::AlreadyExists("help requested");
    }
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);

    std::string name;
    std::string_view value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = std::string(arg);
    }

    // `--no-foo` negates a boolean flag `foo`.
    if (!has_value && StartsWith(name, "no-")) {
      const std::string positive = name.substr(3);
      auto it = flags_.find(positive);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }

    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" +
                                     Usage());
    }
    Flag& flag = it->second;

    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        *static_cast<bool*>(flag.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    LSHC_RETURN_NOT_OK(SetValue(name, flag, value));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::string out = "Usage: " + program_ + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    switch (flag.kind) {
      case Kind::kInt64:
        out += "=<int>";
        break;
      case Kind::kDouble:
        out += "=<num>";
        break;
      case Kind::kBool:
        out += "[=true|false]";
        break;
      case Kind::kString:
        out += "=<str>";
        break;
    }
    out += "\n      " + flag.help + " (default: " + flag.default_repr + ")\n";
  }
  return out;
}

}  // namespace lshclust
