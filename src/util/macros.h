#pragma once

/// \file macros.h
/// \brief Error-propagation macros used throughout the library
/// (Arrow-style RETURN_NOT_OK / ASSIGN_OR_RETURN).

#define LSHC_CONCAT_IMPL(x, y) x##y
#define LSHC_CONCAT(x, y) LSHC_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Status; returns it from the enclosing
/// function if it is an error.
#define LSHC_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::lshclust::Status _st = (expr);         \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Evaluates an expression returning Result<T>; on success assigns the value
/// to `lhs` (which may be a declaration), on error returns the status from
/// the enclosing function.
#define LSHC_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).ValueUnsafe()

#define LSHC_ASSIGN_OR_RETURN(lhs, rexpr) \
  LSHC_ASSIGN_OR_RETURN_IMPL(LSHC_CONCAT(_lshc_result_, __COUNTER__), lhs, rexpr)

/// Marks intentionally unused values (e.g. must-check results in tests).
#define LSHC_UNUSED(x) (void)(x)
