#pragma once

/// \file status.h
/// \brief Arrow-style Status object used as the error-reporting channel of
/// the whole library. Library code never throws; fallible operations return
/// `Status` (or `Result<T>`, see result.h) instead.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace lshclust {

/// \brief Machine-readable category of an error.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kKeyError = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kAlreadyExists = 6,
  kUnknownError = 7,
  kCancelled = 8,
};

/// \brief Returns a human-readable name for a status code, e.g.
/// "Invalid argument" for StatusCode::kInvalidArgument.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: either OK or a coded error with a
/// message.
///
/// The OK state carries no allocation; error states allocate a small state
/// block. Copying an error Status deep-copies the message so a Status is
/// safe to store and move across threads.
///
/// The class is [[nodiscard]]: any call whose returned Status is ignored
/// is a compile warning (error in CI), whatever the function — the
/// per-declaration annotations the determinism lint enforces make the
/// contract visible at each signature, this makes it unskippable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with an explicit code and message. Prefer the named
  /// factories (Status::InvalidArgument etc.) in application code.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Returns an OK status.
  [[nodiscard]] static Status OK() { return Status(); }

  /// Returns an error carrying StatusCode::kInvalidArgument.
  [[nodiscard]] static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns an error carrying StatusCode::kIOError.
  [[nodiscard]] static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  /// Returns an error carrying StatusCode::kKeyError.
  [[nodiscard]] static Status KeyError(std::string message) {
    return Status(StatusCode::kKeyError, std::move(message));
  }
  /// Returns an error carrying StatusCode::kOutOfRange.
  [[nodiscard]] static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns an error carrying StatusCode::kNotImplemented.
  [[nodiscard]] static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  /// Returns an error carrying StatusCode::kAlreadyExists.
  [[nodiscard]] static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  /// Returns an error carrying StatusCode::kUnknownError.
  [[nodiscard]] static Status UnknownError(std::string message) {
    return Status(StatusCode::kUnknownError, std::move(message));
  }
  /// Returns an error carrying StatusCode::kCancelled (a run stopped by a
  /// caller-installed cancellation hook, not a failure).
  [[nodiscard]] static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const noexcept { return state_ == nullptr; }

  /// The status code; kOk when ok().
  StatusCode code() const noexcept {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty when ok().
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// True iff the status carries the given error code.
  bool Is(StatusCode code) const noexcept { return this->code() == code; }
  bool IsInvalidArgument() const noexcept {
    return Is(StatusCode::kInvalidArgument);
  }
  bool IsIOError() const noexcept { return Is(StatusCode::kIOError); }
  bool IsKeyError() const noexcept { return Is(StatusCode::kKeyError); }
  bool IsOutOfRange() const noexcept { return Is(StatusCode::kOutOfRange); }
  bool IsNotImplemented() const noexcept {
    return Is(StatusCode::kNotImplemented);
  }
  bool IsAlreadyExists() const noexcept {
    return Is(StatusCode::kAlreadyExists);
  }
  bool IsCancelled() const noexcept { return Is(StatusCode::kCancelled); }

  /// Renders "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// used to annotate errors as they propagate up a call chain. OK statuses
  /// are returned unchanged.
  [[nodiscard]] Status WithContext(std::string_view context) const;

  /// Aborts the process with the status message if not OK. Intended for
  /// examples and tooling where an error is unrecoverable.
  void Abort(std::string_view context = {}) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; this keeps the success path allocation-free.
  std::unique_ptr<State> state_;
};

}  // namespace lshclust
