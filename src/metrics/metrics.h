#pragma once

/// \file metrics.h
/// \brief External clustering quality measures against ground-truth labels.
///
/// The paper evaluates quality with *cluster purity* (Figs. 8, 9e):
/// purity = (1/N) Σ_clusters max_class |cluster ∩ class|. NMI and ARI are
/// provided additionally because purity alone is insensitive to
/// over-splitting (it trivially reaches 1.0 at k = n).

#include <cstdint>
#include <span>
#include <vector>

#include "util/result.h"

namespace lshclust {

/// \brief Sparse contingency table between a clustering and ground-truth
/// labels, the common substrate of all three measures.
class ContingencyTable {
 public:
  /// Builds the table; `clusters` and `labels` must be equal-length and
  /// non-empty.
  static Result<ContingencyTable> Build(std::span<const uint32_t> clusters,
                                        std::span<const uint32_t> labels);

  /// Total items N.
  uint64_t total() const { return total_; }
  /// Number of distinct cluster ids observed.
  uint32_t num_clusters() const {
    return static_cast<uint32_t>(cluster_sizes_.size());
  }
  /// Number of distinct label ids observed.
  uint32_t num_labels() const {
    return static_cast<uint32_t>(label_sizes_.size());
  }

  /// Items per cluster (indexed by dense cluster id).
  const std::vector<uint64_t>& cluster_sizes() const { return cluster_sizes_; }
  /// Items per label (indexed by dense label id).
  const std::vector<uint64_t>& label_sizes() const { return label_sizes_; }

  /// Non-zero cells as (cluster, label, count) triples.
  struct Cell {
    uint32_t cluster;
    uint32_t label;
    uint64_t count;
  };
  const std::vector<Cell>& cells() const { return cells_; }

 private:
  uint64_t total_ = 0;
  std::vector<uint64_t> cluster_sizes_;
  std::vector<uint64_t> label_sizes_;
  std::vector<Cell> cells_;
};

/// Cluster purity in [0, 1]: the fraction of items that belong to the
/// majority class of their cluster.
double Purity(const ContingencyTable& table);

/// Normalized mutual information in [0, 1] (arithmetic-mean normalisation,
/// NMI = 2 I(C;L) / (H(C) + H(L))). Returns 1.0 when both partitions are
/// single-cluster (degenerate but identical).
double NormalizedMutualInformation(const ContingencyTable& table);

/// Adjusted Rand index in (-1, 1]; 0 is chance level, 1 is identical
/// partitions.
double AdjustedRandIndex(const ContingencyTable& table);

/// Convenience: builds the table and computes purity.
Result<double> ComputePurity(std::span<const uint32_t> clusters,
                             std::span<const uint32_t> labels);

}  // namespace lshclust
