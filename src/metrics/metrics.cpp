#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "lsh/flat_hash_table.h"
#include "util/macros.h"

namespace lshclust {

namespace {

/// Remaps arbitrary ids to dense 0..c-1 ids, preserving first-seen order.
std::vector<uint32_t> Densify(std::span<const uint32_t> ids,
                              uint32_t* num_distinct) {
  std::unordered_map<uint32_t, uint32_t> remap;
  std::vector<uint32_t> dense(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto [it, inserted] =
        remap.emplace(ids[i], static_cast<uint32_t>(remap.size()));
    dense[i] = it->second;
  }
  *num_distinct = static_cast<uint32_t>(remap.size());
  return dense;
}

double Entropy(const std::vector<uint64_t>& sizes, uint64_t total) {
  double h = 0;
  for (const uint64_t size : sizes) {
    if (size == 0) continue;
    const double p = static_cast<double>(size) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

/// n choose 2 as a double (n can exceed 2^32).
double Choose2(uint64_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

}  // namespace

Result<ContingencyTable> ContingencyTable::Build(
    std::span<const uint32_t> clusters, std::span<const uint32_t> labels) {
  if (clusters.empty()) {
    return Status::InvalidArgument("clustering is empty");
  }
  if (clusters.size() != labels.size()) {
    return Status::InvalidArgument(
        "clusters and labels must have equal length; got " +
        std::to_string(clusters.size()) + " vs " +
        std::to_string(labels.size()));
  }

  ContingencyTable table;
  table.total_ = clusters.size();

  uint32_t num_clusters = 0, num_labels = 0;
  const std::vector<uint32_t> dense_clusters = Densify(clusters, &num_clusters);
  const std::vector<uint32_t> dense_labels = Densify(labels, &num_labels);

  table.cluster_sizes_.assign(num_clusters, 0);
  table.label_sizes_.assign(num_labels, 0);

  // Sparse (cluster, label) -> cell index.
  FlatHashMap64 cell_index(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    const uint32_t c = dense_clusters[i];
    const uint32_t l = dense_labels[i];
    ++table.cluster_sizes_[c];
    ++table.label_sizes_[l];
    const uint64_t key = (static_cast<uint64_t>(c) << 32) | l;
    uint32_t* slot = cell_index.FindOrInsert(
        key, static_cast<uint32_t>(table.cells_.size()));
    if (*slot == table.cells_.size()) {
      table.cells_.push_back(Cell{c, l, 0});
    }
    ++table.cells_[*slot].count;
  }
  return table;
}

double Purity(const ContingencyTable& table) {
  // max count per cluster, then sum.
  std::vector<uint64_t> best(table.num_clusters(), 0);
  for (const auto& cell : table.cells()) {
    best[cell.cluster] = std::max(best[cell.cluster], cell.count);
  }
  uint64_t correct = 0;
  for (const uint64_t count : best) correct += count;
  return static_cast<double>(correct) / static_cast<double>(table.total());
}

double NormalizedMutualInformation(const ContingencyTable& table) {
  const double n = static_cast<double>(table.total());
  double mutual_information = 0;
  for (const auto& cell : table.cells()) {
    const double joint = static_cast<double>(cell.count) / n;
    const double p_cluster =
        static_cast<double>(table.cluster_sizes()[cell.cluster]) / n;
    const double p_label =
        static_cast<double>(table.label_sizes()[cell.label]) / n;
    mutual_information += joint * std::log(joint / (p_cluster * p_label));
  }
  const double h_cluster = Entropy(table.cluster_sizes(), table.total());
  const double h_label = Entropy(table.label_sizes(), table.total());
  if (h_cluster + h_label == 0.0) {
    return 1.0;  // both partitions are a single block: identical
  }
  const double nmi = 2.0 * mutual_information / (h_cluster + h_label);
  // Clamp tiny negative values from floating-point noise.
  return std::clamp(nmi, 0.0, 1.0);
}

double AdjustedRandIndex(const ContingencyTable& table) {
  double sum_cells = 0;
  for (const auto& cell : table.cells()) sum_cells += Choose2(cell.count);
  double sum_clusters = 0;
  for (const uint64_t size : table.cluster_sizes()) {
    sum_clusters += Choose2(size);
  }
  double sum_labels = 0;
  for (const uint64_t size : table.label_sizes()) sum_labels += Choose2(size);

  const double total_pairs = Choose2(table.total());
  if (total_pairs == 0) return 1.0;  // single item: identical partitions
  const double expected = sum_clusters * sum_labels / total_pairs;
  const double maximum = 0.5 * (sum_clusters + sum_labels);
  if (maximum == expected) {
    return 1.0;  // degenerate: both partitions all-singletons or all-one
  }
  return (sum_cells - expected) / (maximum - expected);
}

Result<double> ComputePurity(std::span<const uint32_t> clusters,
                             std::span<const uint32_t> labels) {
  LSHC_ASSIGN_OR_RETURN(const ContingencyTable table,
                        ContingencyTable::Build(clusters, labels));
  return Purity(table);
}

}  // namespace lshclust
