#pragma once

/// \file routing.h
/// \brief The shared routed-query kernel: sign query -> probe buckets ->
/// sketch-screen -> exact distance over the shortlist, exhaustive
/// fallback on an empty probe.
///
/// This is the per-item body of the facade's PredictRouted factored into
/// one place so the serving layer's FrozenModel::Route executes *the same
/// code* against its snapshotted state — routed results from a snapshot
/// are bit-identical to PredictRouted on the live Clusterer by
/// construction, not by parallel maintenance of two loops.
///
/// The kernel is pure per item and reads only immutable state through
/// RoutedStateView, so any number of threads may route concurrently as
/// long as each owns its RoutedScratch.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "clustering/engine.h"
#include "core/shortlist_provider.h"
#include "lsh/banded_index.h"
#include "lsh/bit_sketch.h"

namespace lshclust::serving {

/// \brief Per-worker scratch of a routed-query pass: epoch-stamped cluster
/// dedup, the query-signature buffer, and family-specific signing scratch
/// (token list for MinHash, centered vector for the mixed family) — one
/// per worker, so the hot loop never allocates.
struct RoutedScratch {
  ClusterDedupScratch dedup;
  std::vector<uint64_t> signature;
  std::vector<uint64_t> query_sketch;
  std::vector<uint32_t> shortlist;
  std::vector<uint32_t> tokens;
  std::vector<double> centered;
};

/// A scratch sized for `num_clusters` clusters, a `signature_width`-wide
/// signature and (when the sketch screen is on) `sketch_words` packed
/// sketch words. The shortlist/token buffers grow lazily on first use and
/// keep their capacity, so steady-state routing through a warmed scratch
/// performs no allocation.
inline RoutedScratch MakeRoutedScratch(uint32_t num_clusters,
                                       uint32_t signature_width,
                                       uint32_t sketch_words) {
  RoutedScratch scratch;
  scratch.dedup = MakeClusterDedupScratch(num_clusters);
  scratch.signature.resize(signature_width);
  scratch.query_sketch.resize(sketch_words);
  return scratch;
}

/// \brief Read-only view of the routed-query state: the banded buckets
/// over the fitted items' signatures, the fitted assignment as the
/// cluster-reference store, and the optional bit-sketch screen. Built by
/// the facade over its retained provider and by FrozenModel over its
/// snapshot copies — both views route identically over identical state.
struct RoutedStateView {
  const BandedIndex* index = nullptr;
  std::span<const uint32_t> fit_assignment;
  const BitSketchTable* sketches = nullptr;  ///< may be empty
  bool sketch_on = false;
  uint64_t sketch_max_hamming = 0;
};

/// Routes one already-signed query (scratch.signature holds the query's
/// signature) through `view`: probe the fit-time buckets, dereference
/// candidate clusters through the fitted assignment (screening candidate
/// peers' packed sketches against the query's when the view carries a
/// sketch table), and return the nearest candidate — with the engine's
/// exhaustive argmin kernel as the fallback for an empty probe, so no
/// query goes unanswered. Candidates are scanned in ascending cluster-id
/// order with strict improvement, which is the exhaustive scan's
/// lowest-id tie-breaking: a probe containing the true argmin yields
/// exactly Predict's answer.
template <typename Traits>
uint32_t RouteSignedQuery(const typename Traits::Dataset& dataset,
                          const typename Traits::Centroids& model,
                          const typename Traits::Options& options,
                          const RoutedStateView& view, uint32_t item,
                          RoutedScratch& scratch) {
  const uint32_t k = options.num_clusters;
  if (view.sketch_on) {
    PackSketchBits(scratch.signature.data(), view.index->signature_width(),
                   scratch.query_sketch.data());
  }
  scratch.shortlist.clear();
  BumpDedupEpoch(scratch.dedup);
  view.index->VisitCandidatesOfSignature(
      scratch.signature, [&](uint32_t other) {
        const uint32_t cluster = view.fit_assignment[other];
        if (scratch.dedup.cluster_stamp[cluster] == scratch.dedup.epoch) {
          return;
        }
        if (view.sketch_on &&
            view.sketches->HammingTo(scratch.query_sketch.data(), other) >
                view.sketch_max_hamming) {
          return;
        }
        scratch.dedup.cluster_stamp[cluster] = scratch.dedup.epoch;
        scratch.shortlist.push_back(cluster);
      });
  if (scratch.shortlist.empty()) {
    // External queries, unlike fitted items, share no bucket with
    // themselves, so an empty probe is possible: fall back to the
    // exhaustive kernel Predict uses, same seed, same tie-breaking.
    return BestClusterExhaustive<Traits, /*EarlyExit=*/true>(
        dataset, model, options, item, /*seed_cluster=*/0, k);
  }
  std::sort(scratch.shortlist.begin(), scratch.shortlist.end());
  uint32_t best_cluster = scratch.shortlist.front();
  typename Traits::DistanceType best_distance =
      Traits::template ComputeDistance<false>(dataset, model, options, item,
                                              best_cluster,
                                              Traits::kInfiniteDistance);
  for (size_t i = 1; i < scratch.shortlist.size(); ++i) {
    const uint32_t cluster = scratch.shortlist[i];
    const typename Traits::DistanceType distance =
        Traits::template ComputeDistance<true>(dataset, model, options, item,
                                               cluster, best_distance);
    if (distance < best_distance) {
      best_distance = distance;
      best_cluster = cluster;
    }
  }
  return best_cluster;
}

}  // namespace lshclust::serving
