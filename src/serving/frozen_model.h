#pragma once

/// \file frozen_model.h
/// \brief Immutable model snapshots for the lock-free serving layer.
///
/// A `FrozenModel` is a self-contained, deep-copied snapshot of a fitted
/// clustering model: the centroid/mode table, the LSH family's hashers
/// (seeds and hyperplanes included), the banded index's CSR arrays, the
/// bit-sketch prefilter table, and the fit-time assignment. Nothing in it
/// aliases live `Clusterer` state, so the source may be refit, restarted
/// or destroyed while the snapshot keeps serving — the deliberate
/// opposite of `IndexHandle`, which is a *view* that a refit invalidates
/// (see api/index_handle.h for that contract).
///
/// Snapshots are immutable after construction: `Route` / `RouteInto` are
/// const, touch no shared mutable state, and are safe to call from any
/// number of threads concurrently. Per-thread mutable state lives in a
/// caller-owned `RouteScratch` (one per reader thread), so the hot path
/// allocates nothing once the scratch is warm. Routing follows the exact
/// `PredictRouted` path — sign query, probe buckets, sketch-screen,
/// exact-distance the shortlist, exhaustive fallback on an empty probe —
/// through the same shared kernel (serving/routing.h), so routed results
/// from a snapshot are bit-identical to `PredictRouted` on the fitted
/// state it was taken from.
///
/// Memory cost of a snapshot is dominated by the copied CSR arrays plus
/// the sketch table: `memory_bytes()` reports the total,
/// `sketch_memory_bytes()` the sketch share.
///
/// Obtain snapshots from `Clusterer::Snapshot()` (any fitted modality;
/// models fitted with `retain_index = false` or the exhaustive
/// accelerator snapshot too, routing as a plain exhaustive Predict) or
/// from `StreamingSession::Snapshot()` (live MinHash k-modes state).
/// Publish them to readers through a `ModelServer` (model_server.h).

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/categorical_dataset.h"
#include "data/mixed_dataset.h"
#include "util/result.h"

namespace lshclust::serving {

class ModelServer;

/// Immutable snapshot of a fitted model; see the file comment.
class FrozenModel {
 public:
  /// Opaque per-thread routing scratch. Create one per reader thread with
  /// `MakeScratch()` and pass it to every `RouteInto` call on that thread.
  /// A scratch may be reused across successive snapshots (it re-sizes
  /// itself to the model on first use), which is how readers survive
  /// `ModelServer` swaps without reallocating.
  class RouteScratch {
   public:
    virtual ~RouteScratch();
    RouteScratch(const RouteScratch&) = delete;
    RouteScratch& operator=(const RouteScratch&) = delete;

   protected:
    RouteScratch() = default;
  };

  virtual ~FrozenModel();
  FrozenModel(const FrozenModel&) = delete;
  FrozenModel& operator=(const FrozenModel&) = delete;

  /// A routing scratch sized for this model.
  virtual std::unique_ptr<RouteScratch> MakeScratch() const = 0;

  /// Routes every query item to its cluster, writing cluster ids into
  /// `out` (`out.size()` must equal `queries.num_items()`). Zero locks and
  /// — once `scratch` is warm — zero allocation. The overload matching the
  /// snapshot's modality routes; the others return kInvalidArgument.
  [[nodiscard]] virtual Status RouteInto(const CategoricalDataset& queries,
                           RouteScratch& scratch,
                           std::span<uint32_t> out) const;
  [[nodiscard]] virtual Status RouteInto(const NumericDataset& queries,
                           RouteScratch& scratch,
                           std::span<uint32_t> out) const;
  [[nodiscard]] virtual Status RouteInto(const MixedDataset& queries, RouteScratch& scratch,
                           std::span<uint32_t> out) const;

  /// Convenience wrappers: allocate a fresh scratch and result vector.
  /// Benchmarks and multi-threaded readers should hold their own scratch
  /// and call RouteInto instead.
  Result<std::vector<uint32_t>> Route(const CategoricalDataset& queries) const;
  Result<std::vector<uint32_t>> Route(const NumericDataset& queries) const;
  Result<std::vector<uint32_t>> Route(const MixedDataset& queries) const;

  /// Version stamped by the `ModelServer` that published this snapshot
  /// (versions start at 1 and increase monotonically per server);
  /// 0 for a snapshot that has not been published.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Number of clusters the model routes into.
  virtual uint32_t num_clusters() const = 0;

  /// True when the snapshot carries a banded index (routed path); false
  /// for exhaustive snapshots, whose Route equals a plain Predict.
  virtual bool has_index() const = 0;

  /// Total bytes held by the snapshot's copied state (CSR arrays,
  /// sketches, hashers, centroids, fit assignment).
  virtual uint64_t memory_bytes() const = 0;

  /// The bit-sketch table's share of `memory_bytes()`.
  virtual uint64_t sketch_memory_bytes() const = 0;

 protected:
  FrozenModel() = default;

 private:
  friend class ModelServer;
  /// Written once by ModelServer::Publish (release) before the snapshot
  /// becomes visible to readers; mutable so servers can stamp
  /// `shared_ptr<const FrozenModel>` snapshots.
  mutable std::atomic<uint64_t> version_{0};
};

}  // namespace lshclust::serving
