#pragma once

/// \file model_server.h
/// \brief Snapshot publication: writers Publish, readers route lock-free
/// through a per-thread `ModelServer::Reader`.
///
/// A `ModelServer` holds the current `FrozenModel` snapshot. `Publish`
/// (writer side) stamps the snapshot with the next monotone version and
/// swaps it in; readers share ownership of whatever snapshot they picked
/// up, so old versions are freed when the last reader drops them, never
/// under a reader's feet.
///
/// Locking contract: the *query path* takes no locks. Each reader thread
/// holds a `Reader`, whose `Current()` is a single atomic version load
/// while the published version is unchanged — the steady state between
/// swaps — returning the thread's cached `shared_ptr` untouched. Only
/// when a swap actually happened does `Current()` refresh the cache under
/// the slot mutex, i.e. exactly once per reader per publish, off the
/// per-query path. Writers serialize among themselves on the same mutex
/// (writers are rare: one per ingest epoch or refit) and hold it only for
/// a version stamp and two pointer writes, so a reader refreshing during
/// a swap waits nanoseconds, and a reader that keeps routing against its
/// current snapshot is entirely untouched.
///
/// (Deliberately not `std::atomic<std::shared_ptr>`: libstdc++'s
/// `_Sp_atomic` guards the raw pointer with an embedded spin-bit whose
/// reader unlock is relaxed — a spinlock on every Acquire, a formal data
/// race under ThreadSanitizer, and strictly worse steady-state behavior
/// than not touching the control block at all.)
///
/// Typical serving loop:
/// ```
///   lshclust::serving::ModelServer server;
///   server.Publish(clusterer.Snapshot().ValueOrDie());     // writer
///
///   // each reader thread:
///   lshclust::serving::ModelServer::Reader reader(server);
///   auto scratch = reader.Current()->MakeScratch();
///   for (;;) {
///     const auto& model = reader.Current();   // lock-free while unchanged
///     LSHC_CHECK_OK(model->RouteInto(queries, *scratch, out));
///   }
/// ```

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serving/frozen_model.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace lshclust::serving {

/// Snapshot slot with lock-free steady-state readers; see the file
/// comment.
class ModelServer {
 public:
  ModelServer() = default;
  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Stamps `model` with the next version (monotone per server, starting
  /// at 1) and makes it the snapshot subsequent `Acquire` / `Current`
  /// calls return. Returns the stamped version. `model` must be non-null.
  /// Thread-safe against concurrent Publish and readers.
  uint64_t Publish(std::shared_ptr<const FrozenModel> model)
      LSHC_LOCKS_EXCLUDED(mutex_);

  /// Loads a model file (persist/model_io.h) and publishes it, returning
  /// the stamped version — the warm-start path of a serving process:
  /// point the server at a file saved by an earlier fit and start routing
  /// without re-clustering. On any load error the current snapshot is
  /// left untouched. Defined in persist/model_io.cpp.
  Result<uint64_t> PublishFromFile(const std::string& path);

  /// The current snapshot (shared ownership), or nullptr before the first
  /// Publish. Takes the slot mutex briefly; reader threads in a routing
  /// loop should go through a `Reader`, which only pays this on an actual
  /// version change.
  std::shared_ptr<const FrozenModel> Acquire() const
      LSHC_LOCKS_EXCLUDED(mutex_) {
    MutexLock lock(mutex_);
    return slot_;
  }

  /// Version of the most recently published snapshot (0 before the first
  /// Publish). One atomic load; this is the gate `Reader` polls.
  uint64_t version() const {
    return published_version_.load(std::memory_order_acquire);
  }

  /// Per-reader-thread cached view of the server's snapshot — the
  /// lock-free query-path pattern. Not thread-safe itself: one Reader per
  /// thread. The reference returned by `Current()` is borrowed; it stays
  /// valid until the next `Current()` call on this Reader.
  class Reader {
   public:
    explicit Reader(const ModelServer& server) : server_(&server) {}

    /// The latest published snapshot (nullptr before the first Publish).
    /// While the server's version is unchanged since the last call this
    /// is one atomic load and no control-block traffic; on a version
    /// change it refreshes the cache via `Acquire` (amortized once per
    /// publish).
    const std::shared_ptr<const FrozenModel>& Current() {
      if (server_->version() != cached_version_) {
        cached_ = server_->Acquire();
        cached_version_ = cached_ == nullptr ? 0 : cached_->version();
      }
      return cached_;
    }

   private:
    const ModelServer* server_;
    std::shared_ptr<const FrozenModel> cached_;
    uint64_t cached_version_ = 0;
  };

 private:
  /// Guards slot_ (readers refresh rarely; writers swap rarely). The
  /// per-query path never takes it — see Reader.
  mutable Mutex mutex_;
  std::shared_ptr<const FrozenModel> slot_ LSHC_GUARDED_BY(mutex_);
  std::atomic<uint64_t> published_version_{0};
};

}  // namespace lshclust::serving
