#pragma once

/// \file frozen_model_impl.h
/// \brief Internal: the templated FrozenModel implementation.
///
/// `FrozenModelImpl<Traits, Family>` owns deep copies of everything a
/// routed query touches — engine options (progress/cancel hooks cleared,
/// a snapshot must not call back into the fit's lifetime), the
/// centroid/mode table, the signing family (its hashers cloned seeds and
/// all), the banded index's CSR arrays, the bit sketches, and the
/// fit-time assignment. `Family = internal::NoFamily` is the exhaustive
/// specialization: no index, Route degenerates to the exhaustive argmin
/// (exactly Predict).
///
/// This header is internal plumbing for api/clusterer.cpp — applications
/// program against serving/frozen_model.h and never name these types.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "clustering/engine.h"
#include "data/categorical_dataset.h"
#include "data/mixed_dataset.h"
#include "lsh/banded_index.h"
#include "lsh/bit_sketch.h"
#include "serving/frozen_model.h"
#include "serving/routing.h"
#include "util/macros.h"
#include "util/status.h"

namespace lshclust::serving::internal {

/// Family tag for exhaustive snapshots (no index, no signing).
struct NoFamily {};

/// The one concrete RouteScratch type every FrozenModelImpl hands out and
/// accepts. Sharing a single type (rather than one per Traits/Family) is
/// what lets a reader keep its warmed scratch across ModelServer swaps:
/// RouteInto re-validates the sizes against its own model and only
/// reallocates when the model's shape actually changed.
class ScratchHolder final : public FrozenModel::RouteScratch {
 public:
  RoutedScratch scratch;
};

[[nodiscard]] inline Status CheckQueryShape(const CategoricalDataset& queries,
                              uint32_t primary, uint32_t /*secondary*/) {
  if (queries.num_attributes() != primary) {
    return Status::InvalidArgument(
        "query dataset has " + std::to_string(queries.num_attributes()) +
        " attributes but the snapshot was taken from a model over " +
        std::to_string(primary));
  }
  return Status::OK();
}

[[nodiscard]] inline Status CheckQueryShape(const NumericDataset& queries, uint32_t primary,
                              uint32_t /*secondary*/) {
  if (queries.dimensions() != primary) {
    return Status::InvalidArgument(
        "query dataset has " + std::to_string(queries.dimensions()) +
        " dimensions but the snapshot was taken from a model over " +
        std::to_string(primary));
  }
  return Status::OK();
}

[[nodiscard]] inline Status CheckQueryShape(const MixedDataset& queries, uint32_t primary,
                              uint32_t secondary) {
  if (queries.num_categorical() != primary ||
      queries.num_numeric() != secondary) {
    return Status::InvalidArgument(
        "query dataset has " + std::to_string(queries.num_categorical()) +
        " categorical + " + std::to_string(queries.num_numeric()) +
        " numeric attributes but the snapshot was taken from a model over " +
        std::to_string(primary) + " + " + std::to_string(secondary));
  }
  return Status::OK();
}

/// Deep-copied snapshot for one (Traits, Family) pair; see file comment.
template <typename Traits, typename Family = NoFamily>
class FrozenModelImpl final : public FrozenModel {
 public:
  static constexpr bool kRouted = !std::is_same_v<Family, NoFamily>;

  /// Takes ownership of already-copied state. `index` may be null only
  /// when `Family` is NoFamily; `family` must be engaged iff routed.
  /// `shape_primary`/`shape_secondary` are the modality's shape
  /// (attributes / dimensions / categorical+numeric).
  FrozenModelImpl(typename Traits::Options options,
                  typename Traits::Centroids model,
                  std::optional<Family> family,
                  std::unique_ptr<const BandedIndex> index,
                  BitSketchTable sketches, uint64_t sketch_max_hamming,
                  std::vector<uint32_t> fit_assignment, uint32_t shape_primary,
                  uint32_t shape_secondary)
      : options_(std::move(options)),
        model_(std::move(model)),
        family_(std::move(family)),
        index_(std::move(index)),
        sketches_(std::move(sketches)),
        sketch_max_hamming_(sketch_max_hamming),
        fit_assignment_(std::move(fit_assignment)),
        shape_primary_(shape_primary),
        shape_secondary_(shape_secondary) {
    // A snapshot outlives the Fit call whose hooks these were; routing
    // must never call back into them.
    options_.progress = nullptr;
    options_.cancel = nullptr;
    sketch_memory_bytes_ = sketches_.MemoryUsageBytes();
    memory_bytes_ = sketch_memory_bytes_ +
                    (index_ != nullptr ? index_->MemoryUsageBytes() : 0) +
                    fit_assignment_.size() * sizeof(uint32_t);
  }

  std::unique_ptr<RouteScratch> MakeScratch() const override {
    auto holder = std::make_unique<ScratchHolder>();
    holder->scratch = MakeRoutedScratch(
        options_.num_clusters,
        index_ != nullptr ? index_->signature_width() : 0,
        sketches_.empty() ? 0 : sketches_.words());
    return holder;
  }

  [[nodiscard]] Status RouteInto(const typename Traits::Dataset& queries,
                   RouteScratch& scratch,
                   std::span<uint32_t> out) const override {
    LSHC_RETURN_NOT_OK(
        CheckQueryShape(queries, shape_primary_, shape_secondary_));
    if (out.size() != queries.num_items()) {
      return Status::InvalidArgument(
          "output span holds " + std::to_string(out.size()) +
          " slots for " + std::to_string(queries.num_items()) + " queries");
    }
    auto* holder = dynamic_cast<ScratchHolder*>(&scratch);
    if (holder == nullptr) {
      return Status::InvalidArgument(
          "scratch was not created by FrozenModel::MakeScratch");
    }
    RoutedScratch& s = holder->scratch;
    const uint32_t n = queries.num_items();
    const uint32_t k = options_.num_clusters;
    if constexpr (!kRouted) {
      for (uint32_t item = 0; item < n; ++item) {
        out[item] = BestClusterExhaustive<Traits, /*EarlyExit=*/true>(
            queries, model_, options_, item, /*seed_cluster=*/0, k);
      }
      return Status::OK();
    } else {
      // Re-fit the scratch to this model; every branch is a no-op once
      // the scratch is warm, preserving the zero-allocation hot path.
      // Stale stamp contents from a previous model are harmless: the
      // stamps are epoch-compared, and the epoch wrap clears them.
      if (s.dedup.cluster_stamp.size() < k) {
        s.dedup = MakeClusterDedupScratch(k);
      }
      if (s.signature.size() != index_->signature_width()) {
        s.signature.resize(index_->signature_width());
      }
      const bool sketch_on = !sketches_.empty();
      if (sketch_on && s.query_sketch.size() != sketches_.words()) {
        s.query_sketch.resize(sketches_.words());
      }
      RoutedStateView view;
      view.index = index_.get();
      view.fit_assignment = fit_assignment_;
      view.sketches = &sketches_;
      view.sketch_on = sketch_on;
      view.sketch_max_hamming = sketch_max_hamming_;
      for (uint32_t item = 0; item < n; ++item) {
        SignQuery(queries, item, s);
        out[item] =
            RouteSignedQuery<Traits>(queries, model_, options_, view, item, s);
      }
      return Status::OK();
    }
  }

  uint32_t num_clusters() const override { return options_.num_clusters; }
  bool has_index() const override { return index_ != nullptr; }
  uint64_t memory_bytes() const override { return memory_bytes_; }
  uint64_t sketch_memory_bytes() const override {
    return sketch_memory_bytes_;
  }

  // Read-only views of the frozen members, for the model-file encoder
  // (persist/model_io.cpp), which dynamic_casts a FrozenModel down to the
  // concrete instantiation and dumps exactly what the snapshot holds.
  const typename Traits::Options& options() const { return options_; }
  const typename Traits::Centroids& centroids() const { return model_; }
  const std::optional<Family>& family() const { return family_; }
  const BandedIndex* index() const { return index_.get(); }
  const BitSketchTable& sketches() const { return sketches_; }
  uint64_t sketch_max_hamming() const { return sketch_max_hamming_; }
  std::span<const uint32_t> fit_assignment() const { return fit_assignment_; }
  uint32_t shape_primary() const { return shape_primary_; }
  uint32_t shape_secondary() const { return shape_secondary_; }

 private:
  void SignQuery(const typename Traits::Dataset& queries, uint32_t item,
                 RoutedScratch& s) const {
    if constexpr (kRouted) {
      if constexpr (std::is_same_v<typename Traits::Dataset,
                                   CategoricalDataset>) {
        queries.PresentTokens(item, &s.tokens);
        family_->ComputeQuerySignature(s.tokens, s.signature.data());
      } else if constexpr (std::is_same_v<typename Traits::Dataset,
                                          NumericDataset>) {
        family_->ComputeQuerySignature(queries.Row(item), s.signature.data());
      } else {
        queries.categorical().PresentTokens(item, &s.tokens);
        family_->ComputeQuerySignature(s.tokens, queries.numeric().Row(item),
                                       &s.centered, s.signature.data());
      }
    }
  }

  typename Traits::Options options_;
  typename Traits::Centroids model_;
  std::optional<Family> family_;
  std::unique_ptr<const BandedIndex> index_;
  BitSketchTable sketches_;
  uint64_t sketch_max_hamming_ = 0;
  std::vector<uint32_t> fit_assignment_;
  uint32_t shape_primary_ = 0;
  uint32_t shape_secondary_ = 0;
  uint64_t memory_bytes_ = 0;
  uint64_t sketch_memory_bytes_ = 0;
};

}  // namespace lshclust::serving::internal
