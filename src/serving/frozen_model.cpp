#include "serving/frozen_model.h"

#include <utility>

#include "serving/model_server.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/status.h"

namespace lshclust::serving {

FrozenModel::RouteScratch::~RouteScratch() = default;
FrozenModel::~FrozenModel() = default;

namespace {

Status WrongModality(const char* got) {
  return Status::InvalidArgument(
      std::string("this snapshot does not route ") + got +
      " queries; its source model was fitted on a different modality");
}

template <typename Dataset>
Result<std::vector<uint32_t>> RouteFresh(const FrozenModel& model,
                                         const Dataset& queries) {
  std::vector<uint32_t> assignment(queries.num_items());
  std::unique_ptr<FrozenModel::RouteScratch> scratch = model.MakeScratch();
  LSHC_RETURN_NOT_OK(model.RouteInto(queries, *scratch, assignment));
  return assignment;
}

}  // namespace

Status FrozenModel::RouteInto(const CategoricalDataset&, RouteScratch&,
                              std::span<uint32_t>) const {
  return WrongModality("categorical");
}

Status FrozenModel::RouteInto(const NumericDataset&, RouteScratch&,
                              std::span<uint32_t>) const {
  return WrongModality("numeric");
}

Status FrozenModel::RouteInto(const MixedDataset&, RouteScratch&,
                              std::span<uint32_t>) const {
  return WrongModality("mixed");
}

Result<std::vector<uint32_t>> FrozenModel::Route(
    const CategoricalDataset& queries) const {
  return RouteFresh(*this, queries);
}

Result<std::vector<uint32_t>> FrozenModel::Route(
    const NumericDataset& queries) const {
  return RouteFresh(*this, queries);
}

Result<std::vector<uint32_t>> FrozenModel::Route(
    const MixedDataset& queries) const {
  return RouteFresh(*this, queries);
}

uint64_t ModelServer::Publish(std::shared_ptr<const FrozenModel> model) {
  LSHC_CHECK(model != nullptr) << "ModelServer::Publish: null snapshot";
  // The mutex serializes writers (so versions are stamped and published in
  // one monotone order) and guards the slot against refreshing readers.
  // The version stamp must land before the version-gate store below: a
  // reader that sees the new version and refreshes must find a snapshot
  // already carrying it.
  MutexLock lock(mutex_);
  const uint64_t version =
      published_version_.load(std::memory_order_relaxed) + 1;
  model->version_.store(version, std::memory_order_release);
  slot_ = std::move(model);
  published_version_.store(version, std::memory_order_release);
  return version;
}

}  // namespace lshclust::serving
