// google-benchmark ablations for the design choices DESIGN.md calls out:
//  * early-exit bounded distance vs exact distance in the assignment step;
//  * classic MinHash (double hashing / independent) vs one-permutation
//    MinHash for index construction;
//  * presence filtering (Alg. 2 lines 2-4) on vs off for sparse binary
//    data — fewer tokens means faster signatures AND meaningful Jaccard;
//  * end-to-end MH-K-Modes vs exhaustive K-Modes at several (b, r);
//  * the historical noinline-block mismatch kernel vs the runtime-
//    dispatched SIMD kernel that replaced it.

#include <benchmark/benchmark.h>

#include "clustering/dissimilarity.h"
#include "clustering/kmodes.h"
#include "core/mh_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/yahoo_like_corpus.h"
#include "text/binarizer.h"
#include "text/tfidf.h"
#include "util/rng.h"

namespace {

using namespace lshclust;

CategoricalDataset AblationDataset() {
  ConjunctiveDataOptions options;
  options.num_items = 3000;
  options.num_attributes = 100;
  options.num_clusters = 300;
  options.domain_size = 40000;
  options.seed = 11;
  static const CategoricalDataset dataset =
      GenerateConjunctiveRuleData(options).ValueOrDie();
  return dataset;
}

// ----------------------------------------------------- early exit on/off --

void BM_KModes_EarlyExit(benchmark::State& state) {
  const auto dataset = AblationDataset();
  EngineOptions options;
  options.num_clusters = 300;
  options.max_iterations = 3;
  options.seed = 7;
  options.compute_cost = false;
  options.early_exit = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKModes(dataset, options).ok());
  }
}
BENCHMARK(BM_KModes_EarlyExit)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// ------------------------------------------- signature algorithm choice --

void BM_IndexPrepare_SignatureAlgorithm(benchmark::State& state) {
  const auto dataset = AblationDataset();
  ShortlistIndexOptions options;
  options.banding = {20, 5};
  switch (state.range(0)) {
    case 0:
      options.algorithm = SignatureAlgorithm::kClassicMinHash;
      options.minhash_mode = MinHashMode::kDoubleHashing;
      break;
    case 1:
      options.algorithm = SignatureAlgorithm::kClassicMinHash;
      options.minhash_mode = MinHashMode::kIndependent;
      break;
    default:
      options.algorithm = SignatureAlgorithm::kOnePermutation;
      break;
  }
  for (auto _ : state) {
    ClusterShortlistProvider provider(options, 300);
    benchmark::DoNotOptimize(provider.Prepare(dataset).ok());
  }
  state.SetLabel(state.range(0) == 0   ? "classic/double-hashing"
                 : state.range(0) == 1 ? "classic/independent"
                                       : "one-permutation");
}
BENCHMARK(BM_IndexPrepare_SignatureAlgorithm)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------ presence filtering --

CategoricalDataset SparseBinaryDataset() {
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = 100;
  corpus_options.questions_per_topic = 30;
  corpus_options.seed = 13;
  const auto corpus = GenerateYahooLikeCorpus(corpus_options);
  const auto model = TopicTfIdf::Compute(corpus).ValueOrDie();
  TfIdfOptions tfidf;
  tfidf.threshold = 0.4;
  const auto vocabulary = model.SelectVocabulary(tfidf);
  return BinarizeCorpus(corpus, vocabulary).ValueOrDie();
}

void BM_Signatures_PresenceFiltering(benchmark::State& state) {
  const bool filter = state.range(0) != 0;
  static const CategoricalDataset dataset = SparseBinaryDataset();
  const MinHasher hasher(100, 17);
  std::vector<uint64_t> signature(100);
  std::vector<uint32_t> tokens;
  for (auto _ : state) {
    for (uint32_t item = 0; item < dataset.num_items(); ++item) {
      if (filter) {
        dataset.PresentTokens(item, &tokens);  // Alg. 2 lines 2-4
      } else {
        const auto row = dataset.Row(item);
        tokens.assign(row.begin(), row.end());  // ablation: sign everything
      }
      hasher.ComputeSignature(tokens, signature.data());
      benchmark::DoNotOptimize(signature.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * dataset.num_items());
  state.SetLabel(filter ? "present-only tokens" : "all tokens");
}
BENCHMARK(BM_Signatures_PresenceFiltering)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------- end-to-end banding settings --

void BM_EndToEnd_Banding(benchmark::State& state) {
  const auto dataset = AblationDataset();
  const uint32_t bands = static_cast<uint32_t>(state.range(0));
  const uint32_t rows = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    if (bands == 0) {  // sentinel: exhaustive baseline
      EngineOptions options;
      options.num_clusters = 300;
      options.max_iterations = 8;
      options.seed = 19;
      options.compute_cost = false;
      benchmark::DoNotOptimize(RunKModes(dataset, options).ok());
    } else {
      MHKModesOptions options;
      options.engine.num_clusters = 300;
      options.engine.max_iterations = 8;
      options.engine.seed = 19;
      options.engine.compute_cost = false;
      options.index.banding = {bands, rows};
      benchmark::DoNotOptimize(RunMHKModes(dataset, options).ok());
    }
  }
  state.SetLabel(bands == 0 ? "K-Modes (exhaustive)"
                            : std::to_string(bands) + "b" +
                                  std::to_string(rows) + "r");
}
BENCHMARK(BM_EndToEnd_Banding)
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({20, 2})
    ->Args({20, 5})
    ->Args({50, 5})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// --------------------- mismatch kernel: historical shape vs dispatched --

// The pre-dispatch hand-tuned kernel (clustering/dissimilarity.h before
// the src/simd/ subsystem): a [[gnu::noinline]] fixed 32-element block the
// compiler auto-vectorizes at the build's baseline ISA, plus a scalar
// tail. Replicated here verbatim so the ablation keeps recording the
// historical shape against the runtime-dispatched kernel that replaced it.
[[gnu::noinline]] uint32_t HistoricalMismatchBlock32(const uint32_t* a,
                                                     const uint32_t* b) {
  uint32_t mismatches = 0;
  for (uint32_t j = 0; j < 32; ++j) {
    mismatches += a[j] != b[j] ? 1u : 0u;
  }
  return mismatches;
}

uint32_t HistoricalMismatchDistance(const uint32_t* a, const uint32_t* b,
                                    uint32_t m) {
  uint32_t mismatches = 0;
  uint32_t j = 0;
  for (; j + 32 <= m; j += 32) {
    mismatches += HistoricalMismatchBlock32(a + j, b + j);
  }
  for (; j < m; ++j) mismatches += a[j] != b[j] ? 1u : 0u;
  return mismatches;
}

void BM_MismatchKernel_HistoricalVsDispatched(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const bool dispatched = state.range(1) != 0;
  Rng rng(23);
  std::vector<uint32_t> a(m), b(m);
  for (uint32_t j = 0; j < m; ++j) {
    a[j] = static_cast<uint32_t>(rng.Below(1u << 30));
    b[j] = (j % 2 == 0) ? a[j] : a[j] ^ 1u;  // 50% mismatches
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dispatched ? MismatchDistance(a, b)
                   : HistoricalMismatchDistance(a.data(), b.data(), m));
  }
  state.SetItemsProcessed(state.iterations() * m);
  state.SetLabel(dispatched ? "dispatched (src/simd)"
                            : "historical noinline block");
}
BENCHMARK(BM_MismatchKernel_HistoricalVsDispatched)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({2000, 0})
    ->Args({2000, 1});

}  // namespace

BENCHMARK_MAIN();
