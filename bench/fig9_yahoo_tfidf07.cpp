// Reproduces Figure 9: the Yahoo! Answers experiment with TF-IDF threshold
// 0.7 (paper: 81036 questions, 2916 topics, 382 attributes). Methods:
// MH-K-Modes 1b1r vs K-Modes. Panels: (a) time per iteration, (b) average
// shortlist size, (c) moves, (d) total time, (e) purity.
//
// Shape to reproduce: MH-K-Modes takes ~60% of the baseline's iteration
// time, converges one iteration earlier, halves the total time, and
// matches the baseline's purity almost exactly.

#include "bench/yahoo_common.h"

int main(int argc, char** argv) {
  using namespace lshclust;
  using namespace lshclust::bench;

  FlagSet flags("fig9_yahoo_tfidf07");
  DriverOptions driver;
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  uint32_t num_topics = 0;
  const CategoricalDataset dataset = MakeYahooDataset(
      driver, /*tfidf_threshold=*/0.7, /*questions_per_topic=*/28,
      &num_topics);

  ComparisonOptions options;
  options.num_clusters = num_topics;  // the paper clusters into the topics
  options.max_iterations = driver.max_iterations > 0
                               ? static_cast<uint32_t>(driver.max_iterations)
                               : 15;
  options.seed = static_cast<uint64_t>(driver.seed);

  auto runs = RunComparison(dataset, options,
                            {MHKModesSpec(1, 1), KModesSpec()});
  LSHC_CHECK_OK(runs.status());
  PrintIterationSeries(std::cout, "Figure 9 (Yahoo!, TF-IDF 0.7)", *runs,
                       IterationField::kSeconds);
  PrintIterationSeries(std::cout, "Figure 9 (Yahoo!, TF-IDF 0.7)", *runs,
                       IterationField::kShortlist);
  PrintIterationSeries(std::cout, "Figure 9 (Yahoo!, TF-IDF 0.7)", *runs,
                       IterationField::kMoves);
  PrintSummaryTable(std::cout, "Figure 9 (Yahoo!, TF-IDF 0.7)", *runs);
  return 0;
}
