// Reproduces Table I: probability of finding a candidate pair at a given
// Jaccard similarity and band count with r = 1, plus the MH-K-Modes
// shortlist-hit probability assuming >= 10 similar items per cluster.
// Prints the analytic values of the paper's formula 1-(1-s^r)^b AND
// Monte-Carlo estimates from the real MinHash + banding implementation.
//
// Erratum note: the paper's printed rows (100, 0.001) and (100, 0.01)
// contradict its own formula (0.009/0.30 printed vs 0.095/0.634 computed);
// all other rows match once the MH column is derived from the rounded pair
// column. This binary prints the formula's values.

#include <cstdio>
#include <iostream>

#include "core/error_bound.h"
#include "core/reporters.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("table1_collision_probability");
  int64_t trials = 400;
  int64_t set_size = 64;
  int64_t seed = 7;
  bool monte_carlo = true;
  flags.AddInt64("trials", &trials, "Monte-Carlo trials per row");
  flags.AddInt64("set-size", &set_size, "token-set size per trial");
  flags.AddInt64("seed", &seed, "Monte-Carlo RNG seed");
  flags.AddBool("monte-carlo", &monte_carlo,
                "validate analytic values against the implementation");
  const Status status = flags.Parse(argc, argv);
  if (status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(status);

  const auto rows = MakePaperTable1();
  std::vector<MonteCarloEstimate> estimates;
  if (monte_carlo) {
    std::printf("running %lld Monte-Carlo trials per row...\n",
                static_cast<long long>(trials));
    estimates.reserve(rows.size());
    for (const auto& row : rows) {
      // Tiny similarities need larger token sets to be realisable; keep
      // the cost bounded by scaling trials down accordingly.
      const uint32_t row_set_size = RecommendedSetSize(
          row.jaccard, static_cast<uint32_t>(set_size));
      const uint32_t row_trials = std::max<uint32_t>(
          30, static_cast<uint32_t>(trials * set_size / row_set_size));
      estimates.push_back(EstimateCollisionProbability(
          row.jaccard, BandingParams{row.bands, 1}, /*cluster_items=*/10,
          row_set_size, row_trials, static_cast<uint64_t>(seed)));
    }
  }
  PrintCollisionTable(std::cout,
                      "Table I: candidate-pair probability, 10 similar "
                      "items per cluster",
                      /*minhash_rows=*/1, rows, estimates);
  std::printf(
      "\nNote: paper rows (100, 0.001) and (100, 0.01) print 0.009/0.30;\n"
      "the paper's own formula 1-(1-s^r)^b gives 0.095/0.634 (see "
      "EXPERIMENTS.md).\n");
  return 0;
}
