// Reproduces Figure 8: cluster purity on each of the five synthetic
// datasets for every method of the corresponding Figure 7 panel. Shape to
// reproduce: MH-K-Modes purity is comparable to K-Modes across all
// parameter settings (the trade made for the speedups).

#include "bench/common.h"
#include "metrics/metrics.h"

namespace {

using namespace lshclust;
using namespace lshclust::bench;

void RunPanel(const std::string& title, const ConjunctiveDataOptions& data,
              const std::vector<MethodSpec>& methods,
              const DriverOptions& driver) {
  auto dataset = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(dataset.status());
  ComparisonOptions options;
  options.num_clusters = data.num_clusters;
  options.max_iterations = driver.max_iterations > 0
                               ? static_cast<uint32_t>(driver.max_iterations)
                               : 15;
  options.seed = static_cast<uint64_t>(driver.seed);
  options.compute_cost = false;
  auto runs = RunComparison(*dataset, options, methods);
  LSHC_CHECK_OK(runs.status());

  std::printf("\n== %s: %u items, %u attributes, %u clusters ==\n",
              title.c_str(), data.num_items, data.num_attributes,
              data.num_clusters);
  std::printf("%-22s  %8s  %8s  %8s\n", "method", "purity", "NMI", "ARI");
  for (const MethodRun& run : *runs) {
    const auto table =
        ContingencyTable::Build(run.result.assignment, dataset->labels())
            .ValueOrDie();
    std::printf("%-22s  %8.4f  %8.4f  %8.4f\n", run.spec.label.c_str(),
                Purity(table), NormalizedMutualInformation(table),
                AdjustedRandIndex(table));
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("fig8_purity");
  DriverOptions driver;
  driver.scale = 0.05;  // five panels, each a full comparison
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  RunPanel("Figure 8a", driver.ScaledData(90000, 100, 20000),
           {MHKModesSpec(20, 2), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
            KModesSpec()},
           driver);
  RunPanel("Figure 8b", driver.ScaledData(90000, 200, 20000),
           {MHKModesSpec(20, 5), MHKModesSpec(50, 5), KModesSpec()}, driver);
  RunPanel("Figure 8c", driver.ScaledData(90000, 400, 20000),
           {MHKModesSpec(1, 1), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
            KModesSpec()},
           driver);
  RunPanel("Figure 8d", driver.ScaledData(90000, 100, 40000),
           {MHKModesSpec(20, 2), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
            KModesSpec()},
           driver);
  RunPanel("Figure 8e", driver.ScaledData(250000, 100, 20000),
           {MHKModesSpec(1, 1), MHKModesSpec(20, 5), KModesSpec()}, driver);
  return 0;
}
