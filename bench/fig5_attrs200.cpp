// Reproduces Figure 5: 90000 items, 200 attributes, 20000 clusters —
// doubling the dimensionality. Each mismatch comparison costs twice as
// much, so the shortlist saves more absolute time per item (§IV-A3).
// Panels: (a) time per iteration, (b) average shortlist size.

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace lshclust;
  using namespace lshclust::bench;

  FlagSet flags("fig5_attrs200");
  DriverOptions driver;
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  const auto data = driver.ScaledData(90000, 200, 20000);
  RunSyntheticFigure(
      "Figure 5 (200-attribute dataset)", data,
      {MHKModesSpec(20, 5), MHKModesSpec(50, 5), KModesSpec()}, driver,
      /*default_max_iterations=*/20,
      {IterationField::kSeconds, IterationField::kShortlist});
  return 0;
}
