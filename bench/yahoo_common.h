#pragma once

/// \file yahoo_common.h
/// \brief Shared pipeline for the Yahoo! Answers figures (9 and 10):
/// synthetic Q&A corpus -> per-topic TF-IDF vocabulary -> binary
/// word-presence dataset -> K-Modes vs MH-K-Modes comparison.
///
/// The real Webscope L6 dataset is license-gated; DESIGN.md §6 documents
/// the substitution. Paper shape: 2916 topics; TF-IDF 0.7 gave 382
/// attributes over 81036 questions (Fig. 9), TF-IDF 0.3 gave 2881
/// attributes over 157602 questions (Fig. 10).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "datagen/yahoo_like_corpus.h"
#include "text/binarizer.h"
#include "text/tfidf.h"

namespace lshclust::bench {

/// \brief Builds the scaled corpus and binarized dataset for one Yahoo
/// figure. Topics scale linearly with --scale (the paper's 2916 becomes
/// ~292 at 0.1); questions per topic stay at the paper's density.
inline CategoricalDataset MakeYahooDataset(const DriverOptions& driver,
                                           double tfidf_threshold,
                                           uint32_t questions_per_topic,
                                           uint32_t* num_topics_out) {
  YahooCorpusOptions corpus_options;
  corpus_options.num_topics = std::max<uint32_t>(
      24, static_cast<uint32_t>(2916 * driver.scale));
  corpus_options.questions_per_topic = questions_per_topic;
  corpus_options.background_vocabulary = std::max<uint32_t>(
      1000, static_cast<uint32_t>(40000 * driver.scale));
  corpus_options.keywords_per_topic = 8;
  corpus_options.keyword_overlap = 0.25;
  corpus_options.keyword_probability = 0.4;
  corpus_options.seed = static_cast<uint64_t>(driver.seed) ^ 0x59A800ULL;
  *num_topics_out = corpus_options.num_topics;

  std::printf("generating corpus: %u topics x %u questions...\n",
              corpus_options.num_topics, corpus_options.questions_per_topic);
  const TokenizedCorpus corpus = GenerateYahooLikeCorpus(corpus_options);

  auto model = TopicTfIdf::Compute(corpus);
  LSHC_CHECK_OK(model.status());
  TfIdfOptions tfidf;
  tfidf.threshold = tfidf_threshold;
  tfidf.max_words_per_topic = 10000;  // the paper's cap
  const auto vocabulary = model->SelectVocabulary(tfidf);
  LSHC_CHECK(!vocabulary.empty())
      << "TF-IDF threshold " << tfidf_threshold << " selected no words";
  std::printf("TF-IDF threshold %.2f selected %zu attributes\n",
              tfidf_threshold, vocabulary.size());

  auto dataset = BinarizeCorpus(corpus, vocabulary);
  LSHC_CHECK_OK(dataset.status());
  std::printf("binarized dataset: %u items x %u attributes\n",
              dataset->num_items(), dataset->num_attributes());
  return std::move(dataset).ValueOrDie();
}

}  // namespace lshclust::bench
