// Reproduces Figure 6: how total clustering time scales along the paper's
// three axes — (a) items 90k -> 250k, (b) clusters 20k -> 40k at 250k
// items, (c) attributes 100 -> 200 -> 400 — for MH-K-Modes 20b5r vs
// K-Modes. The shape to reproduce: both grow with each axis, but
// MH-K-Modes grows at a visibly slower rate (the paper: +8 h vs +72 h
// when doubling 200 -> 400 attributes).

#include "bench/common.h"

namespace {

using namespace lshclust;
using namespace lshclust::bench;

struct ScalePoint {
  std::string label;
  ConjunctiveDataOptions data;
};

void RunAxis(const std::string& title, const std::vector<ScalePoint>& points,
             const DriverOptions& driver) {
  std::printf("\n== Figure 6 %s — total time to cluster ==\n", title.c_str());
  std::printf("%-28s  %16s  %16s  %9s\n", "configuration",
              "MH-K-Modes 20b5r", "K-Modes", "speedup");
  for (const ScalePoint& point : points) {
    auto dataset = GenerateConjunctiveRuleData(point.data);
    LSHC_CHECK_OK(dataset.status());
    ComparisonOptions options;
    options.num_clusters = point.data.num_clusters;
    options.max_iterations = driver.max_iterations > 0
                                 ? static_cast<uint32_t>(driver.max_iterations)
                                 : 15;
    options.seed = static_cast<uint64_t>(driver.seed);
    options.compute_cost = false;  // pure timing along the scaling axes
    auto runs = RunComparison(*dataset, options,
                              {MHKModesSpec(20, 5), KModesSpec()});
    LSHC_CHECK_OK(runs.status());
    const double mh = (*runs)[0].result.total_seconds;
    const double baseline = (*runs)[1].result.total_seconds;
    std::printf("%-28s  %15.2fs  %15.2fs  %8.2fx\n", point.label.c_str(), mh,
                baseline, baseline / mh);
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("fig6_scaling");
  DriverOptions driver;
  driver.scale = 0.05;  // this driver runs 7 full comparisons
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  // (a) Scaling items: 90k and 250k at 100 attributes, 20k clusters.
  RunAxis("(a) scaling items",
          {{"90000 items (scaled)", driver.ScaledData(90000, 100, 20000)},
           {"250000 items (scaled)", driver.ScaledData(250000, 100, 20000)}},
          driver);

  // (b) Scaling clusters: 20k and 40k at 250k items.
  RunAxis("(b) scaling clusters",
          {{"20000 clusters (scaled)", driver.ScaledData(250000, 100, 20000)},
           {"40000 clusters (scaled)", driver.ScaledData(250000, 100, 40000)}},
          driver);

  // (c) Scaling attributes: 100 / 200 / 400 at 90k items, 20k clusters.
  RunAxis("(c) scaling attributes",
          {{"100 attributes (scaled)", driver.ScaledData(90000, 100, 20000)},
           {"200 attributes (scaled)", driver.ScaledData(90000, 200, 20000)},
           {"400 attributes (scaled)", driver.ScaledData(90000, 400, 20000)}},
          driver);
  return 0;
}
