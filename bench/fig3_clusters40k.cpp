// Reproduces Figure 3: 90000 items, 100 attributes, 40000 clusters —
// doubling k widens MH-K-Modes' advantage (the paper: ~480 minutes saved
// per iteration at 40k clusters vs ~160 at 20k). Panels: (a) time per
// iteration (b, sans baseline), (c) average shortlist size, (d) moves.

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace lshclust;
  using namespace lshclust::bench;

  FlagSet flags("fig3_clusters40k");
  DriverOptions driver;
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  const auto data = driver.ScaledData(90000, 100, 40000);
  RunSyntheticFigure(
      "Figure 3 (40k-cluster dataset)", data,
      {MHKModesSpec(20, 2), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
       KModesSpec()},
      driver, /*default_max_iterations=*/20,
      {IterationField::kSeconds, IterationField::kShortlist,
       IterationField::kMoves});
  return 0;
}
