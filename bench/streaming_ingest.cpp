// Streaming-ingest throughput across worker-thread counts, plus the
// parallel signature/index-build (Prepare) split — the two paths PR 2
// routed through the thread pool. IngestBatch results are bit-identical
// to a sequential Ingest loop at every (shard x thread) combination
// (asserted in tests/streaming_test.cpp), so the only thing that changes
// here is the wall time. Machine-readable records land in --json
// (BENCH_streaming.json by default; see bench/common.h).
//
// Flags: --warmup, --stream, --attrs, --clusters, --batch, --seed,
//        --threads (comma list, default 1,2,4,8),
//        --shards (ingest shards, default 1),
//        --ingest-chunk (items per work unit, default 64),
//        --json (output path, empty = off)

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_shortlist_index.h"
#include "core/streaming.h"
#include "data/slicing.h"
#include "datagen/conjunctive_generator.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using namespace lshclust;

bool ParseThreadList(const std::string& spec,
                     std::vector<uint32_t>* threads) {
  threads->clear();
  for (const auto& field : Split(spec, ',')) {
    if (field.empty()) continue;
    size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(field, &consumed);
    } catch (const std::exception&) {
      return false;
    }
    if (consumed != field.size() || value == 0 || value > 1024) return false;
    threads->push_back(static_cast<uint32_t>(value));
  }
  return !threads->empty();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t warmup_items = 20000;
  int64_t stream_items = 40000;
  int64_t attrs = 32;
  int64_t clusters = 200;
  int64_t batch = 1024;
  int64_t seed = 42;
  int64_t shards = 1;
  int64_t ingest_chunk = 64;
  std::string threads_spec = "1,2,4,8";
  std::string json_path = "BENCH_streaming.json";

  FlagSet flags("streaming_ingest");
  flags.AddInt64("warmup", &warmup_items, "items in the warm-up batch");
  flags.AddInt64("stream", &stream_items, "items arriving afterwards");
  flags.AddInt64("attrs", &attrs, "categorical attributes");
  flags.AddInt64("clusters", &clusters, "clusters k");
  flags.AddInt64("batch", &batch, "micro-batch size for IngestBatch");
  flags.AddInt64("seed", &seed, "RNG seed");
  flags.AddInt64("shards", &shards,
                 "item-space shards of IngestBatch's parallel phase");
  flags.AddInt64("ingest-chunk", &ingest_chunk,
                 "items per work unit within an ingest shard");
  flags.AddString("threads", &threads_spec,
                  "comma-separated worker-thread counts");
  flags.AddString("json", &json_path,
                  "machine-readable output path (empty = off)");
  const Status flag_status = flags.Parse(argc, argv);
  if (flag_status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(flag_status);

  if (batch < 1) {
    std::fprintf(stderr, "error: --batch must be >= 1, got %lld\n",
                 static_cast<long long>(batch));
    return 1;
  }
  if (shards < 1 || shards > UINT32_MAX || ingest_chunk < 1 ||
      ingest_chunk > UINT32_MAX) {
    std::fprintf(stderr,
                 "error: --shards and --ingest-chunk must be in "
                 "[1, 2^32-1]\n");
    return 1;
  }
  std::vector<uint32_t> thread_counts;
  if (!ParseThreadList(threads_spec, &thread_counts)) {
    std::fprintf(stderr,
                 "error: --threads wants a comma list of counts in "
                 "[1, 1024], got \"%s\"\n",
                 threads_spec.c_str());
    return 1;
  }

  ConjunctiveDataOptions data;
  data.num_items = static_cast<uint32_t>(warmup_items + stream_items);
  data.num_attributes = static_cast<uint32_t>(attrs);
  data.num_clusters = static_cast<uint32_t>(clusters);
  data.domain_size = 4 * static_cast<uint32_t>(clusters);
  data.seed = static_cast<uint64_t>(seed);
  const auto all = GenerateConjunctiveRuleData(data).ValueOrDie();
  const auto warmup =
      SliceDataset(all, 0, static_cast<uint32_t>(warmup_items)).ValueOrDie();
  const uint32_t m = all.num_attributes();

  std::printf("== warmup %lld + stream %lld items x %lld attrs, k=%lld, "
              "banding 20b 5r, batch=%lld ==\n",
              static_cast<long long>(warmup_items),
              static_cast<long long>(stream_items),
              static_cast<long long>(attrs),
              static_cast<long long>(clusters),
              static_cast<long long>(batch));

  bench::JsonBenchWriter writer;

  // --- Prepare (signature + index build) scaling over the full dataset.
  std::printf("\n-- ShortlistProvider::Prepare --\n");
  double prepare_baseline = 0;
  for (const uint32_t threads : thread_counts) {
    ShortlistIndexOptions index_options;
    index_options.banding = {20, 5};
    ClusterShortlistProvider provider(index_options,
                                      static_cast<uint32_t>(clusters));
    std::optional<ThreadPool> pool;
    if (threads > 1) pool.emplace(threads);
    Stopwatch watch;
    LSHC_CHECK_OK(provider.Prepare(all, pool ? &*pool : nullptr));
    const double seconds = watch.ElapsedSeconds();
    if (threads == thread_counts.front()) prepare_baseline = seconds;
    std::printf("prepare           threads=%u  total=%7.3fs  "
                "(sign=%7.3fs, index=%7.3fs)  speedup=%.2fx\n",
                threads, seconds, provider.signature_seconds(),
                provider.index_seconds(),
                seconds > 0 ? prepare_baseline / seconds : 0.0);
    writer.BeginRecord();
    writer.Add("bench", "streaming_prepare");
    writer.Add("threads", threads);
    writer.Add("items", static_cast<uint64_t>(all.num_items()));
    writer.Add("total_seconds", seconds);
    writer.Add("sign_seconds", provider.signature_seconds());
    writer.Add("index_seconds", provider.index_seconds());
  }

  // --- IngestBatch throughput.
  std::printf("\n-- StreamingMHKModes::IngestBatch --\n");
  double ingest_baseline = 0;
  for (const uint32_t threads : thread_counts) {
    StreamingMHKModesOptions options;
    options.bootstrap.engine.num_clusters = static_cast<uint32_t>(clusters);
    options.bootstrap.engine.seed = static_cast<uint64_t>(seed);
    options.bootstrap.engine.num_threads = threads;
    options.bootstrap.index.banding = {20, 5};
    options.ingest_threads = threads;
    options.ingest_shards = static_cast<uint32_t>(shards);
    options.ingest_chunk_size = static_cast<uint32_t>(ingest_chunk);
    auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();

    Stopwatch watch;
    uint32_t item = static_cast<uint32_t>(warmup_items);
    while (item < all.num_items()) {
      const uint32_t take = std::min(static_cast<uint32_t>(batch),
                                     all.num_items() - item);
      const std::span<const uint32_t> rows(
          all.codes().data() + static_cast<size_t>(item) * m,
          static_cast<size_t>(take) * m);
      LSHC_CHECK_OK(stream.IngestBatch(rows).status());
      item += take;
    }
    const double seconds = watch.ElapsedSeconds();
    if (threads == thread_counts.front()) ingest_baseline = seconds;
    const auto& stats = stream.stats();
    std::printf("ingest            threads=%u  time=%7.3fs  "
                "throughput=%9.0f items/s  speedup=%.2fx  "
                "(mean shortlist=%.2f, fallbacks=%" PRIu64
                ", revalidated=%" PRIu64 ", rewalked=%" PRIu64 ")\n",
                threads, seconds,
                seconds > 0 ? stream_items / seconds : 0.0,
                seconds > 0 ? ingest_baseline / seconds : 0.0,
                stats.mean_shortlist(), stats.exhaustive_fallbacks,
                stats.revalidated, stats.rewalked);
    writer.BeginRecord();
    writer.Add("bench", "streaming_ingest");
    writer.Add("threads", threads);
    writer.Add("shards", static_cast<int64_t>(shards));
    writer.Add("ingest_chunk_size", static_cast<int64_t>(ingest_chunk));
    writer.Add("batch", static_cast<int64_t>(batch));
    writer.Add("stream_items", static_cast<int64_t>(stream_items));
    writer.Add("seconds", seconds);
    writer.Add("items_per_second",
               seconds > 0 ? stream_items / seconds : 0.0);
    writer.Add("mean_shortlist", stats.mean_shortlist());
    writer.Add("exhaustive_fallbacks", stats.exhaustive_fallbacks);
    writer.Add("revalidated", stats.revalidated);
    writer.Add("rewalked", stats.rewalked);
  }

  if (!json_path.empty() && writer.WriteFile(json_path)) {
    std::printf("wrote %zu records to %s\n", writer.num_records(),
                json_path.c_str());
  }
  return 0;
}
