// Benchmarks for the paper's §VI future-work directions, implemented in
// this repository beyond the paper's own evaluation:
//   (1) numeric data      — LSH-K-Means (SimHash) vs Lloyd;
//   (2) mixed data        — LSH-K-Prototypes (MinHash + SimHash) vs
//                           K-Prototypes;
//   (3) streaming         — incremental ingestion vs batch re-clustering.
// Each section prints a comparison table in the style of the figure
// drivers.

#include <cstdio>

#include "core/lsh_kmeans.h"
#include "core/lsh_kprototypes.h"
#include "core/streaming.h"
#include "data/slicing.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"
#include "metrics/metrics.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

using namespace lshclust;

void PrintRow(const char* method, double seconds, double purity,
              size_t iterations, double shortlist) {
  std::printf("%-26s %10.3f %10.4f %8zu %12.1f\n", method, seconds, purity,
              iterations, shortlist);
}

double MeanShortlist(const ClusteringResult& result) {
  if (result.iterations.empty()) return 0;
  double total = 0;
  for (const auto& it : result.iterations) total += it.mean_shortlist;
  return total / static_cast<double>(result.iterations.size());
}

void NumericSection(double scale, uint64_t seed) {
  GaussianMixtureOptions data;
  data.num_items = static_cast<uint32_t>(200000 * scale);
  data.dimensions = 32;
  data.num_clusters = static_cast<uint32_t>(10000 * scale);
  data.center_box = 20.0;
  data.stddev = 1.0;
  data.seed = seed;
  const auto dataset = GenerateGaussianMixture(data).ValueOrDie();
  std::printf("\n== future work (1): numeric data — %u points, %u dims, "
              "%u clusters ==\n",
              dataset.num_items(), dataset.dimensions(), data.num_clusters);
  std::printf("%-26s %10s %10s %8s %12s\n", "method", "total (s)", "purity",
              "iters", "shortlist");

  KMeansOptions kmeans;
  kmeans.num_clusters = data.num_clusters;
  kmeans.seed = seed;
  kmeans.max_iterations = 20;
  const auto lloyd = RunKMeans(dataset, kmeans).ValueOrDie();
  PrintRow("K-Means (Lloyd)", lloyd.total_seconds,
           ComputePurity(lloyd.assignment, dataset.labels()).ValueOrDie(),
           lloyd.iterations.size(), MeanShortlist(lloyd));

  LshKMeansOptions lsh;
  lsh.kmeans = kmeans;
  lsh.banding = {12, 10};
  const auto accelerated = RunLshKMeans(dataset, lsh).ValueOrDie();
  PrintRow("LSH-K-Means 12b10r", accelerated.total_seconds,
           ComputePurity(accelerated.assignment, dataset.labels())
               .ValueOrDie(),
           accelerated.iterations.size(), MeanShortlist(accelerated));
}

void MixedSection(double scale, uint64_t seed) {
  MixedDataOptions data;
  data.categorical.num_items = static_cast<uint32_t>(150000 * scale);
  data.categorical.num_attributes = 24;
  data.categorical.num_clusters = static_cast<uint32_t>(10000 * scale);
  data.categorical.domain_size = 5000;
  data.categorical.seed = seed;
  data.numeric_dimensions = 12;
  data.center_box = 15.0;
  const auto dataset = GenerateMixedData(data).ValueOrDie();
  std::printf("\n== future work (2): mixed data — %u items, %u + %u "
              "attributes, %u clusters ==\n",
              dataset.num_items(), dataset.num_categorical(),
              dataset.num_numeric(), data.categorical.num_clusters);
  std::printf("%-26s %10s %10s %8s %12s\n", "method", "total (s)", "purity",
              "iters", "shortlist");

  KPrototypesOptions base;
  base.num_clusters = data.categorical.num_clusters;
  base.gamma = 0.5;
  base.seed = seed;
  base.max_iterations = 15;
  const auto baseline = RunKPrototypes(dataset, base).ValueOrDie();
  PrintRow("K-Prototypes", baseline.total_seconds,
           ComputePurity(baseline.assignment, dataset.labels()).ValueOrDie(),
           baseline.iterations.size(), MeanShortlist(baseline));

  LshKPrototypesOptions lsh;
  lsh.kprototypes = base;
  const auto accelerated = RunLshKPrototypes(dataset, lsh).ValueOrDie();
  PrintRow("LSH-K-Prototypes", accelerated.total_seconds,
           ComputePurity(accelerated.assignment, dataset.labels())
               .ValueOrDie(),
           accelerated.iterations.size(), MeanShortlist(accelerated));
}

void StreamingSection(double scale, uint64_t seed) {
  ConjunctiveDataOptions data;
  data.num_items = static_cast<uint32_t>(200000 * scale);
  data.num_attributes = 50;
  data.num_clusters = static_cast<uint32_t>(15000 * scale);
  data.domain_size = 20000;
  data.seed = seed;
  const auto all = GenerateConjunctiveRuleData(data).ValueOrDie();
  const uint32_t warmup_count = all.num_items() * 6 / 10;
  const auto warmup = SliceDataset(all, 0, warmup_count).ValueOrDie();
  std::printf("\n== future work (3): streaming — %u warm-up + %u arriving "
              "items, %u clusters ==\n",
              warmup_count, all.num_items() - warmup_count,
              data.num_clusters);

  StreamingMHKModesOptions options;
  options.bootstrap.engine.num_clusters = data.num_clusters;
  options.bootstrap.engine.seed = seed;
  // Streaming favours recall over shortlist size: a missed shortlist costs
  // a full exhaustive fallback scan, so band with 2 rows (threshold
  // (1/20)^(1/2) ~ 0.22) instead of the batch default 20b5r.
  options.bootstrap.index.banding = {20, 2};

  Stopwatch watch;
  auto stream = StreamingMHKModes::Bootstrap(warmup, options).ValueOrDie();
  const double bootstrap_seconds = watch.ElapsedSeconds();

  watch.Restart();
  for (uint32_t item = warmup_count; item < all.num_items(); ++item) {
    LSHC_CHECK_OK(stream.Ingest(all.Row(item)).status());
  }
  const double ingest_seconds = watch.ElapsedSeconds();
  const double streaming_purity =
      ComputePurity(stream.assignment(), all.labels()).ValueOrDie();

  watch.Restart();
  const auto batch = RunMHKModes(all, options.bootstrap).ValueOrDie();
  const double batch_seconds = watch.ElapsedSeconds();
  const double batch_purity =
      ComputePurity(batch.result.assignment, all.labels()).ValueOrDie();

  std::printf("%-34s %10s %10s\n", "strategy", "time (s)", "purity");
  std::printf("%-34s %10.3f %10s\n", "bootstrap (60% of items, batch)",
              bootstrap_seconds, "-");
  std::printf("%-34s %10.3f %10.4f\n", "  + streaming ingest (40%)",
              ingest_seconds, streaming_purity);
  std::printf("%-34s %10.3f %10.4f\n", "batch re-clustering (100%)",
              batch_seconds, batch_purity);
  std::printf("ingest throughput: %.0f items/s; fallbacks: %llu of %llu\n",
              (all.num_items() - warmup_count) / ingest_seconds,
              static_cast<unsigned long long>(
                  stream.stats().exhaustive_fallbacks),
              static_cast<unsigned long long>(stream.stats().ingested));
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("ext_future_work");
  double scale = 0.1;
  int64_t seed = 42;
  flags.AddDouble("scale", &scale, "linear scale on items and clusters");
  flags.AddInt64("seed", &seed, "master RNG seed");
  const Status status = flags.Parse(argc, argv);
  if (status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(status);

  NumericSection(scale, static_cast<uint64_t>(seed));
  MixedSection(scale, static_cast<uint64_t>(seed));
  StreamingSection(scale, static_cast<uint64_t>(seed));
  return 0;
}
