#pragma once

/// \file common.h
/// \brief Shared machinery for the per-figure bench drivers.
///
/// Every driver accepts:
///   --scale=<f>   linear scale on items and clusters (default 0.1: the
///                 paper's 90000x20000 becomes 9000x2000 so the whole
///                 suite runs in minutes)
///   --paper       run the paper-scale configuration (hours, like the
///                 original; implies --scale=1)
///   --seed=<n>    master seed (data generation + shared initial centroids)
///   --max-iters   refinement iteration cap (0 = the paper's setting)
///
/// Output is the tabular form of the corresponding figure panels: the same
/// series (time/iteration, avg shortlist, moves, totals, purity) the paper
/// plots, printed by core/reporters.h.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/reporters.h"
#include "datagen/conjunctive_generator.h"
#include "util/flags.h"
#include "util/logging.h"

namespace lshclust::bench {

/// \brief Flags common to every figure driver.
struct DriverOptions {
  double scale = 0.1;
  bool paper = false;
  int64_t seed = 42;
  int64_t max_iterations = 0;

  /// Registers the shared flags on `flags`.
  void Register(FlagSet* flags) {
    flags->AddDouble("scale", &scale,
                     "linear scale on items and clusters vs the paper");
    flags->AddBool("paper", &paper,
                   "run the full paper-scale configuration (slow)");
    flags->AddInt64("seed", &seed, "master RNG seed");
    flags->AddInt64("max-iters", &max_iterations,
                    "refinement iteration cap (0 = figure default)");
  }

  /// Parses argv; returns false when the program should exit (e.g. --help
  /// printed). Dies on malformed flags.
  bool Parse(FlagSet* flags, int argc, char** argv) {
    const Status status = flags->Parse(argc, argv);
    if (status.IsAlreadyExists()) return false;  // --help
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(2);
    }
    if (paper) scale = 1.0;
    LSHC_CHECK(scale > 0.0 && scale <= 1.0)
        << "--scale must be in (0, 1]";
    return true;
  }

  /// Applies the scale to a paper-size dataset shape: items and clusters
  /// shrink linearly, attributes and domain stay (they set the geometry of
  /// the similarity space, not the amount of work per the paper's axes).
  ConjunctiveDataOptions ScaledData(uint32_t paper_items,
                                    uint32_t paper_attributes,
                                    uint32_t paper_clusters) const {
    ConjunctiveDataOptions data;
    data.num_items =
        std::max<uint32_t>(64, static_cast<uint32_t>(paper_items * scale));
    data.num_attributes = paper_attributes;
    data.num_clusters =
        std::max<uint32_t>(8, static_cast<uint32_t>(paper_clusters * scale));
    data.domain_size = 40000;  // the paper's domain (§IV-A)
    data.seed = static_cast<uint64_t>(seed);
    return data;
  }
};

/// \brief Generates a synthetic dataset, runs the comparison, and prints
/// the requested figure panels. Shared by the fig2/3/4/5 drivers.
inline std::vector<MethodRun> RunSyntheticFigure(
    const std::string& figure_name, const ConjunctiveDataOptions& data,
    const std::vector<MethodSpec>& methods, const DriverOptions& driver,
    uint32_t default_max_iterations,
    const std::vector<IterationField>& panels) {
  PrintExperimentHeader(std::cout, figure_name, data.num_items,
                        data.num_attributes, data.num_clusters);
  std::printf("generating dataset (domain %u, seed %llu)...\n",
              data.domain_size,
              static_cast<unsigned long long>(data.seed));
  auto dataset_result = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(dataset_result.status());
  const CategoricalDataset& dataset = *dataset_result;

  ComparisonOptions options;
  options.num_clusters = data.num_clusters;
  options.max_iterations =
      driver.max_iterations > 0
          ? static_cast<uint32_t>(driver.max_iterations)
          : default_max_iterations;
  options.seed = static_cast<uint64_t>(driver.seed);

  auto runs_result = RunComparison(dataset, options, methods);
  LSHC_CHECK_OK(runs_result.status());
  std::vector<MethodRun> runs = std::move(runs_result).ValueOrDie();

  for (const IterationField field : panels) {
    PrintIterationSeries(std::cout, figure_name, runs, field);
  }
  PrintSummaryTable(std::cout, figure_name, runs);
  return runs;
}

}  // namespace lshclust::bench
