#pragma once

/// \file common.h
/// \brief Shared machinery for the per-figure bench drivers.
///
/// Every driver accepts:
///   --scale=<f>   linear scale on items and clusters (default 0.1: the
///                 paper's 90000x20000 becomes 9000x2000 so the whole
///                 suite runs in minutes)
///   --paper       run the paper-scale configuration (hours, like the
///                 original; implies --scale=1)
///   --seed=<n>    master seed (data generation + shared initial centroids)
///   --max-iters   refinement iteration cap (0 = the paper's setting)
///   --json=<path> additionally write machine-readable records (a JSON
///                 array of flat objects) to <path>; empty disables
///
/// Output is the tabular form of the corresponding figure panels: the same
/// series (time/iteration, avg shortlist, moves, totals, purity) the paper
/// plots, printed by core/reporters.h.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/reporters.h"
#include "datagen/conjunctive_generator.h"
#include "simd/dispatch.h"
#include "util/flags.h"
#include "util/logging.h"

namespace lshclust::bench {

/// \brief The `q`-quantile (q in [0, 1]) of `values`, by linear
/// interpolation between closest ranks — the definition numpy calls
/// "linear", so p50 of {1,2,3,4} is 2.5, not either neighbour. The input
/// need not be sorted (a sorted copy is made; this is bench-path code).
/// Returns 0.0 for an empty span; q is clamped to [0, 1].
inline double Percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

/// \brief Collects flat key/value records and writes them as a JSON array
/// of objects — the machine-readable twin of the printed tables, so perf
/// trajectories can be scraped without parsing stdout. No external JSON
/// dependency: records are flat and values are numbers or short strings.
class JsonBenchWriter {
 public:
  /// Starts a record. Records are written in Begin order. Every record is
  /// stamped with the SIMD dispatch tier active at Begin time plus the
  /// detected CPU features, so perf records from different machines (or
  /// forced-tier runs) stay comparable after the fact.
  void BeginRecord() {
    records_.emplace_back();
    first_field_ = true;
    Add("simd_tier", simd::TierName(simd::ActiveTier()));
    Add("cpu_features", simd::CpuFeatureString());
  }

  void Add(const char* key, const std::string& value) {
    AddRaw(key, "\"" + Escaped(value) + "\"");
  }
  void Add(const char* key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const char* key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    AddRaw(key, buffer);
  }
  void Add(const char* key, uint64_t value) {
    AddRaw(key, std::to_string(value));
  }
  void Add(const char* key, int64_t value) {
    AddRaw(key, std::to_string(value));
  }
  void Add(const char* key, uint32_t value) {
    Add(key, static_cast<uint64_t>(value));
  }

  size_t num_records() const { return records_.size(); }

  /// Writes `[ {..}, {..} ]` to `path`. Returns false (with a message on
  /// stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write JSON output to %s\n",
                   path.c_str());
      return false;
    }
    out << "[\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << "  {" << records_[i] << "}";
      if (i + 1 < records_.size()) out << ",";
      out << "\n";
    }
    out << "]\n";
    return out.good();
  }

 private:
  static std::string Escaped(const std::string& value) {
    std::string escaped;
    escaped.reserve(value.size());
    for (const char c : value) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\t': escaped += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
            escaped += buffer;
          } else {
            escaped += c;
          }
      }
    }
    return escaped;
  }

  void AddRaw(const char* key, const std::string& value) {
    LSHC_CHECK(!records_.empty()) << "BeginRecord() before Add()";
    std::string& record = records_.back();
    if (!first_field_) record += ", ";
    first_field_ = false;
    record += "\"";
    record += Escaped(key);
    record += "\": ";
    record += value;
  }

  std::vector<std::string> records_;
  bool first_field_ = true;
};

/// \brief Flags common to every figure driver.
struct DriverOptions {
  double scale = 0.1;
  bool paper = false;
  int64_t seed = 42;
  int64_t max_iterations = 0;
  std::string json;

  /// Registers the shared flags on `flags`.
  void Register(FlagSet* flags) {
    flags->AddDouble("scale", &scale,
                     "linear scale on items and clusters vs the paper");
    flags->AddBool("paper", &paper,
                   "run the full paper-scale configuration (slow)");
    flags->AddInt64("seed", &seed, "master RNG seed");
    flags->AddInt64("max-iters", &max_iterations,
                    "refinement iteration cap (0 = figure default)");
    flags->AddString("json", &json,
                     "write machine-readable records to this path "
                     "(empty = off)");
  }

  /// Parses argv; returns false when the program should exit (e.g. --help
  /// printed). Dies on malformed flags.
  bool Parse(FlagSet* flags, int argc, char** argv) {
    const Status status = flags->Parse(argc, argv);
    if (status.IsAlreadyExists()) return false;  // --help
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(2);
    }
    if (paper) scale = 1.0;
    LSHC_CHECK(scale > 0.0 && scale <= 1.0)
        << "--scale must be in (0, 1]";
    return true;
  }

  /// Applies the scale to a paper-size dataset shape: items and clusters
  /// shrink linearly, attributes and domain stay (they set the geometry of
  /// the similarity space, not the amount of work per the paper's axes).
  ConjunctiveDataOptions ScaledData(uint32_t paper_items,
                                    uint32_t paper_attributes,
                                    uint32_t paper_clusters) const {
    ConjunctiveDataOptions data;
    data.num_items =
        std::max<uint32_t>(64, static_cast<uint32_t>(paper_items * scale));
    data.num_attributes = paper_attributes;
    data.num_clusters =
        std::max<uint32_t>(8, static_cast<uint32_t>(paper_clusters * scale));
    data.domain_size = 40000;  // the paper's domain (§IV-A)
    data.seed = static_cast<uint64_t>(seed);
    return data;
  }
};

/// \brief Generates a synthetic dataset, runs the comparison, and prints
/// the requested figure panels. Shared by the fig2/3/4/5 drivers.
inline std::vector<MethodRun> RunSyntheticFigure(
    const std::string& figure_name, const ConjunctiveDataOptions& data,
    const std::vector<MethodSpec>& methods, const DriverOptions& driver,
    uint32_t default_max_iterations,
    const std::vector<IterationField>& panels) {
  PrintExperimentHeader(std::cout, figure_name, data.num_items,
                        data.num_attributes, data.num_clusters);
  std::printf("generating dataset (domain %u, seed %llu)...\n",
              data.domain_size,
              static_cast<unsigned long long>(data.seed));
  auto dataset_result = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(dataset_result.status());
  const CategoricalDataset& dataset = *dataset_result;

  ComparisonOptions options;
  options.num_clusters = data.num_clusters;
  options.max_iterations =
      driver.max_iterations > 0
          ? static_cast<uint32_t>(driver.max_iterations)
          : default_max_iterations;
  options.seed = static_cast<uint64_t>(driver.seed);

  auto runs_result = RunComparison(dataset, options, methods);
  LSHC_CHECK_OK(runs_result.status());
  std::vector<MethodRun> runs = std::move(runs_result).ValueOrDie();

  for (const IterationField field : panels) {
    PrintIterationSeries(std::cout, figure_name, runs, field);
  }
  PrintSummaryTable(std::cout, figure_name, runs);

  if (!driver.json.empty()) {
    JsonBenchWriter writer;
    for (const MethodRun& run : runs) {
      writer.BeginRecord();
      writer.Add("figure", figure_name);
      writer.Add("method", run.spec.label);
      writer.Add("items", data.num_items);
      writer.Add("clusters", data.num_clusters);
      writer.Add("iterations",
                 static_cast<uint64_t>(run.result.iterations.size()));
      writer.Add("converged", static_cast<uint64_t>(run.result.converged));
      writer.Add("total_seconds", run.result.total_seconds);
      writer.Add("refine_seconds", run.result.RefinementSeconds());
      writer.Add("index_build_seconds", run.result.index_build_seconds);
      writer.Add("final_cost", run.result.final_cost);
      writer.Add("moves", run.result.TotalMoves());
      writer.Add("purity", run.purity);
    }
    writer.WriteFile(driver.json);
  }
  return runs;
}

}  // namespace lshclust::bench
