/// \file serving_qps.cpp
/// \brief Multi-threaded routed-Predict throughput of the serving layer.
///
/// N reader threads hammer FrozenModel::RouteInto against a ModelServer
/// while a writer keeps ingesting rows into a live StreamingSession and
/// re-publishing fresh snapshots — the serving layer's intended
/// deployment shape. Per reader count the driver reports total QPS,
/// per-query latency percentiles (p50/p95/p99, measured per routed batch
/// and divided by the batch size), and the writer's snapshot+publish
/// stall distribution; `--json` (default BENCH_serving.json) writes the
/// records through JsonBenchWriter, tier-stamped like every other bench.
///
///   --readers=<csv>  reader-thread counts to sweep (default "1,2,4")
///   --seconds=<s>    measurement window per reader count (default 2)
///   --batch=<n>      queries per RouteInto call (default 64; Acquire is
///                    amortized once per batch — the steady-state pattern)
///   --publish-rows=<n>  writer re-publishes after this many ingested rows
///   --smoke          CI mode: 2 readers x 1 second, nothing else

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/clusterer.h"
#include "bench/common.h"
#include "datagen/conjunctive_generator.h"
#include "serving/frozen_model.h"
#include "serving/model_server.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace lshclust::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ReaderStats {
  uint64_t queries = 0;
  uint64_t swaps_observed = 0;  // version changes seen by this reader
  std::vector<double> batch_micros;
};

int Run(int argc, char** argv) {
  DriverOptions driver;
  driver.json = "BENCH_serving.json";
  std::string readers_csv = "1,2,4";
  double seconds = 2.0;
  int64_t batch = 64;
  int64_t publish_rows = 2000;
  bool smoke = false;

  FlagSet flags("serving_qps");
  driver.Register(&flags);
  flags.AddString("readers", &readers_csv,
                  "comma-separated reader-thread counts to sweep");
  flags.AddDouble("seconds", &seconds,
                  "measurement window per reader count");
  flags.AddInt64("batch", &batch, "queries per RouteInto call");
  flags.AddInt64("publish-rows", &publish_rows,
                 "writer re-publishes after this many ingested rows");
  flags.AddBool("smoke", &smoke, "CI smoke mode: 2 readers x 1 second");
  if (!driver.Parse(&flags, argc, argv)) return 0;
  LSHC_CHECK(seconds > 0.0) << "--seconds must be positive";
  LSHC_CHECK(batch > 0) << "--batch must be positive";
  LSHC_CHECK(publish_rows > 0) << "--publish-rows must be positive";

  std::vector<uint32_t> reader_counts;
  if (smoke) {
    seconds = 1.0;
    reader_counts = {2};
  } else {
    for (const std::string& token : Split(readers_csv, ',')) {
      reader_counts.push_back(
          static_cast<uint32_t>(std::strtoul(token.c_str(), nullptr, 10)));
      LSHC_CHECK(reader_counts.back() > 0)
          << "--readers entries must be positive, got '" << token << "'";
    }
  }

  // The paper's synthetic shape at driver scale: warmup bootstraps the
  // session, the rest is the writer's endless ingest pool, and a slice is
  // the readers' query batch.
  const ConjunctiveDataOptions data = driver.ScaledData(90000, 10, 200);
  std::printf("serving_qps: generating %u items x %u attrs (%u clusters)\n",
              data.num_items, data.num_attributes, data.num_clusters);
  const CategoricalDataset all =
      GenerateConjunctiveRuleData(data).ValueOrDie();
  const uint32_t m = all.num_attributes();
  const uint32_t warmup_items = all.num_items() / 2;
  const uint32_t batch_items = static_cast<uint32_t>(batch);
  LSHC_CHECK(warmup_items > batch_items) << "dataset too small for --batch";

  auto warmup =
      CategoricalDataset::FromCodes(
          warmup_items, m, all.num_codes(),
          {all.codes().begin(),
           all.codes().begin() + static_cast<size_t>(warmup_items) * m})
          .ValueOrDie();
  auto queries =
      CategoricalDataset::FromCodes(
          batch_items, m, all.num_codes(),
          {all.codes().begin(),
           all.codes().begin() + static_cast<size_t>(batch_items) * m})
          .ValueOrDie();

  JsonBenchWriter writer;
  for (const uint32_t num_readers : reader_counts) {
    // A fresh session and server per sweep point so every reader count
    // sees the same starting state.
    ClustererSpec spec;
    spec.modality = Modality::kCategorical;
    spec.accelerator = Accelerator::kMinHash;
    spec.engine.num_clusters = data.num_clusters;
    spec.engine.max_iterations = 3;
    spec.engine.seed = static_cast<uint64_t>(driver.seed);
    spec.minhash.banding = {8, 2};
    auto clusterer = Clusterer::Create(spec);
    LSHC_CHECK_OK(clusterer.status());

    serving::ModelServer server;
    StreamingSessionOptions session_options;
    auto session = clusterer->MakeStreamingSession(warmup, session_options);
    LSHC_CHECK_OK(session.status());
    // Initial publish so readers never see an empty server; subsequent
    // publishes are timed by the writer loop below.
    server.Publish(*session->Snapshot());

    std::atomic<bool> stop{false};
    std::vector<ReaderStats> stats(num_readers);
    std::vector<std::thread> readers;
    readers.reserve(num_readers);
    for (uint32_t r = 0; r < num_readers; ++r) {
      readers.emplace_back([&, r] {
        ReaderStats& local = stats[r];
        serving::ModelServer::Reader reader(server);
        std::unique_ptr<serving::FrozenModel::RouteScratch> scratch;
        std::vector<uint32_t> out(queries.num_items());
        uint64_t last_version = 0;
        while (!stop.load(std::memory_order_acquire)) {
          // The steady-state reader pattern: Reader::Current is one atomic
          // version load per batch (it refreshes under the slot mutex only
          // when a swap landed), the scratch is reusable, and RouteInto
          // takes zero locks and does zero allocation.
          const std::shared_ptr<const serving::FrozenModel>& model =
              reader.Current();
          if (scratch == nullptr) scratch = model->MakeScratch();
          const uint64_t version = model->version();
          if (version != last_version) {
            ++local.swaps_observed;
            last_version = version;
          }
          const Clock::time_point begin = Clock::now();
          LSHC_CHECK_OK(model->RouteInto(queries, *scratch, out));
          local.batch_micros.push_back(SecondsSince(begin) * 1e6);
          local.queries += out.size();
        }
      });
    }

    // Writer: live ingest in chunks, re-snapshot + publish every
    // `publish_rows` rows, timing each snapshot+publish stall.
    uint64_t ingested = 0;
    uint64_t publishes = 0;
    std::vector<double> publish_millis;
    const uint32_t chunk_rows = 256;
    uint32_t cursor = warmup_items;
    uint64_t rows_since_publish = 0;
    const Clock::time_point start = Clock::now();
    while (SecondsSince(start) < seconds) {
      if (cursor + chunk_rows > all.num_items()) cursor = warmup_items;
      const std::span<const uint32_t> rows(
          all.codes().data() + static_cast<size_t>(cursor) * m,
          static_cast<size_t>(chunk_rows) * m);
      LSHC_CHECK_OK(session->IngestBatch(rows).status());
      cursor += chunk_rows;
      ingested += chunk_rows;
      rows_since_publish += chunk_rows;
      if (rows_since_publish >= static_cast<uint64_t>(publish_rows)) {
        rows_since_publish = 0;
        const Clock::time_point begin = Clock::now();
        auto snapshot = session->Snapshot();
        LSHC_CHECK_OK(snapshot.status());
        server.Publish(*std::move(snapshot));
        publish_millis.push_back(SecondsSince(begin) * 1e3);
        ++publishes;
      }
    }
    const double elapsed = SecondsSince(start);
    stop.store(true, std::memory_order_release);
    for (std::thread& reader : readers) reader.join();

    uint64_t total_queries = 0;
    uint64_t total_swaps = 0;
    std::vector<double> per_query_micros;
    for (const ReaderStats& local : stats) {
      total_queries += local.queries;
      total_swaps += local.swaps_observed;
      for (const double micros : local.batch_micros) {
        per_query_micros.push_back(micros /
                                   static_cast<double>(batch_items));
      }
    }
    const double qps = static_cast<double>(total_queries) / elapsed;
    const double p50 = Percentile(per_query_micros, 0.50);
    const double p95 = Percentile(per_query_micros, 0.95);
    const double p99 = Percentile(per_query_micros, 0.99);
    std::printf(
        "readers=%u  qps=%.0f  p50=%.2fus  p95=%.2fus  p99=%.2fus  "
        "ingested=%llu  publishes=%llu  publish_p50=%.2fms  "
        "publish_max=%.2fms  swaps_seen=%llu\n",
        num_readers, qps, p50, p95, p99,
        static_cast<unsigned long long>(ingested),
        static_cast<unsigned long long>(publishes),
        Percentile(publish_millis, 0.50), Percentile(publish_millis, 1.0),
        static_cast<unsigned long long>(total_swaps));

    writer.BeginRecord();
    writer.Add("bench", "serving_qps");
    writer.Add("readers", num_readers);
    writer.Add("seconds", elapsed);
    writer.Add("batch", static_cast<uint64_t>(batch_items));
    writer.Add("items", data.num_items);
    writer.Add("clusters", data.num_clusters);
    writer.Add("total_queries", total_queries);
    writer.Add("qps", qps);
    writer.Add("route_p50_us", p50);
    writer.Add("route_p95_us", p95);
    writer.Add("route_p99_us", p99);
    writer.Add("ingested_rows", ingested);
    writer.Add("publishes", publishes);
    writer.Add("publish_p50_ms", Percentile(publish_millis, 0.50));
    writer.Add("publish_p95_ms", Percentile(publish_millis, 0.95));
    writer.Add("publish_max_ms", Percentile(publish_millis, 1.0));
    writer.Add("swaps_observed", total_swaps);
  }

  if (!driver.json.empty()) writer.WriteFile(driver.json);
  return 0;
}

}  // namespace
}  // namespace lshclust::bench

int main(int argc, char** argv) {
  return lshclust::bench::Run(argc, argv);
}
