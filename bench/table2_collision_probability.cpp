// Reproduces Table II: candidate-pair and MH-K-Modes shortlist-hit
// probabilities with r = 5 rows per band (the stricter banding that trades
// false positives for false negatives, §III-D), validated by Monte Carlo
// against the real MinHash + banding implementation.

#include <cstdio>
#include <iostream>

#include "core/error_bound.h"
#include "core/reporters.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace lshclust;

  FlagSet flags("table2_collision_probability");
  int64_t trials = 400;
  int64_t set_size = 64;
  int64_t seed = 7;
  bool monte_carlo = true;
  flags.AddInt64("trials", &trials, "Monte-Carlo trials per row");
  flags.AddInt64("set-size", &set_size, "token-set size per trial");
  flags.AddInt64("seed", &seed, "Monte-Carlo RNG seed");
  flags.AddBool("monte-carlo", &monte_carlo,
                "validate analytic values against the implementation");
  const Status status = flags.Parse(argc, argv);
  if (status.IsAlreadyExists()) return 0;
  LSHC_CHECK_OK(status);

  const auto rows = MakePaperTable2();
  std::vector<MonteCarloEstimate> estimates;
  if (monte_carlo) {
    std::printf("running %lld Monte-Carlo trials per row...\n",
                static_cast<long long>(trials));
    estimates.reserve(rows.size());
    for (const auto& row : rows) {
      const uint32_t row_set_size = RecommendedSetSize(
          row.jaccard, static_cast<uint32_t>(set_size));
      const uint32_t row_trials = std::max<uint32_t>(
          30, static_cast<uint32_t>(trials * set_size / row_set_size));
      estimates.push_back(EstimateCollisionProbability(
          row.jaccard, BandingParams{row.bands, 5}, /*cluster_items=*/10,
          row_set_size, row_trials, static_cast<uint64_t>(seed)));
    }
  }
  PrintCollisionTable(std::cout,
                      "Table II: candidate-pair probability, 10 similar "
                      "items per cluster",
                      /*minhash_rows=*/5, rows, estimates);
  return 0;
}
