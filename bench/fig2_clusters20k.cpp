// Reproduces Figure 2: 90000 items, 100 attributes, 20000 clusters.
// Panels: (a) time per iteration, (b) average shortlist size ("Avg.
// Clusters Returned"), (c) moves per iteration, (d/e) are zoomed views of
// the same series. Methods: MH-K-Modes 20b2r / 20b5r / 50b5r vs K-Modes.
//
// The paper's observations this must reproduce in shape:
//  * all MH variants take less time per iteration than K-Modes;
//  * MH shortlists are orders of magnitude below k (~1.01-1.04 at 20b5r);
//  * MH converges in fewer iterations (5 vs 12 at paper scale).

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace lshclust;
  using namespace lshclust::bench;

  FlagSet flags("fig2_clusters20k");
  DriverOptions driver;
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  const auto data = driver.ScaledData(90000, 100, 20000);
  RunSyntheticFigure(
      "Figure 2 (20k-cluster dataset)", data,
      {MHKModesSpec(20, 2), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
       KModesSpec()},
      driver, /*default_max_iterations=*/20,
      {IterationField::kSeconds, IterationField::kShortlist,
       IterationField::kMoves});
  return 0;
}
