/// \file model_io.cpp
/// \brief Model persistence cost vs warm-start payoff.
///
/// Fits an MH-K-Modes model at driver scale, saves it with
/// serving::SaveFrozenModel, then times the three ways of getting a
/// routing-ready model back: refitting from the raw data, LoadFrozenModel
/// (a serving snapshot), and Clusterer::FromSnapshot (a full facade).
/// Reports the model file size, save/load seconds, and the load-vs-refit
/// speedup — the number that justifies persisting at all. Each load's
/// routed assignment is checked bit-identical against the fitted
/// clusterer's PredictRouted before its timing is trusted. `--json`
/// (default BENCH_model_io.json) writes the records through
/// JsonBenchWriter, tier-stamped like every other bench.
///
///   --reps=<n>   save/load repetitions, best-of (default 3)
///   --smoke      CI mode: tiny scale, 1 rep

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/clusterer.h"
#include "bench/common.h"
#include "datagen/conjunctive_generator.h"
#include "persist/model_io.h"
#include "serving/frozen_model.h"
#include "util/flags.h"
#include "util/logging.h"

namespace lshclust::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int Run(int argc, char** argv) {
  DriverOptions driver;
  driver.json = "BENCH_model_io.json";
  int64_t reps = 3;
  bool smoke = false;

  FlagSet flags("model_io");
  driver.Register(&flags);
  flags.AddInt64("reps", &reps, "save/load repetitions (best-of)");
  flags.AddBool("smoke", &smoke, "CI smoke mode: tiny scale, 1 rep");
  if (!driver.Parse(&flags, argc, argv)) return 0;
  LSHC_CHECK(reps > 0) << "--reps must be positive";
  if (smoke) {
    driver.scale = 0.02;
    reps = 1;
  }

  const ConjunctiveDataOptions data = driver.ScaledData(90000, 10, 2000);
  std::printf("model_io: generating %u items x %u attrs (%u clusters)\n",
              data.num_items, data.num_attributes, data.num_clusters);
  const CategoricalDataset dataset =
      GenerateConjunctiveRuleData(data).ValueOrDie();

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine.num_clusters = data.num_clusters;
  spec.engine.max_iterations =
      driver.max_iterations > 0
          ? static_cast<uint32_t>(driver.max_iterations)
          : 10;
  spec.engine.seed = static_cast<uint64_t>(driver.seed);
  auto clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(clusterer.status());

  // The refit baseline: what a process without a model file pays to get
  // routing-ready again.
  const Clock::time_point fit_begin = Clock::now();
  LSHC_CHECK_OK(clusterer->Fit(dataset).status());
  const double refit_seconds = SecondsSince(fit_begin);
  std::printf("fit: %.3fs\n", refit_seconds);

  auto snapshot = clusterer->Snapshot();
  LSHC_CHECK_OK(snapshot.status());
  const std::vector<uint32_t> expected =
      clusterer->PredictRouted(dataset).ValueOrDie();

  const std::string path = "/tmp/bench_model_io.lshm";
  double save_seconds = 1e300;
  for (int64_t rep = 0; rep < reps; ++rep) {
    const Clock::time_point begin = Clock::now();
    LSHC_CHECK_OK(serving::SaveFrozenModel(**snapshot, path));
    save_seconds = std::min(save_seconds, SecondsSince(begin));
  }

  double load_model_seconds = 1e300;
  for (int64_t rep = 0; rep < reps; ++rep) {
    const Clock::time_point begin = Clock::now();
    auto loaded = serving::LoadFrozenModel(path);
    LSHC_CHECK_OK(loaded.status());
    load_model_seconds = std::min(load_model_seconds, SecondsSince(begin));
    if (rep == 0) {
      auto scratch = (*loaded)->MakeScratch();
      std::vector<uint32_t> routed(dataset.num_items());
      LSHC_CHECK_OK((*loaded)->RouteInto(dataset, *scratch, routed));
      LSHC_CHECK(routed == expected)
          << "LoadFrozenModel routing diverged from the fitted clusterer";
    }
  }

  double from_snapshot_seconds = 1e300;
  for (int64_t rep = 0; rep < reps; ++rep) {
    const Clock::time_point begin = Clock::now();
    auto warm = Clusterer::FromSnapshot(path);
    LSHC_CHECK_OK(warm.status());
    from_snapshot_seconds =
        std::min(from_snapshot_seconds, SecondsSince(begin));
    if (rep == 0) {
      const std::vector<uint32_t> routed =
          warm->PredictRouted(dataset).ValueOrDie();
      LSHC_CHECK(routed == expected)
          << "FromSnapshot routing diverged from the fitted clusterer";
    }
  }

  uint64_t file_bytes = 0;
  {
    auto info = persist::InspectModelFile(path);
    LSHC_CHECK_OK(info.status());
    file_bytes = info->file_size;
  }
  const double speedup = refit_seconds / from_snapshot_seconds;
  std::printf(
      "file=%llu bytes  save=%.4fs  load_model=%.4fs  from_snapshot=%.4fs  "
      "load_vs_refit_speedup=%.1fx\n",
      static_cast<unsigned long long>(file_bytes), save_seconds,
      load_model_seconds, from_snapshot_seconds, speedup);

  JsonBenchWriter writer;
  writer.BeginRecord();
  writer.Add("bench", "model_io");
  writer.Add("items", data.num_items);
  writer.Add("attributes", data.num_attributes);
  writer.Add("clusters", data.num_clusters);
  writer.Add("reps", static_cast<uint64_t>(reps));
  writer.Add("file_bytes", file_bytes);
  writer.Add("refit_seconds", refit_seconds);
  writer.Add("save_seconds", save_seconds);
  writer.Add("load_model_seconds", load_model_seconds);
  writer.Add("from_snapshot_seconds", from_snapshot_seconds);
  writer.Add("load_vs_refit_speedup", speedup);
  if (!driver.json.empty()) writer.WriteFile(driver.json);
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace lshclust::bench

int main(int argc, char** argv) {
  return lshclust::bench::Run(argc, argv);
}
