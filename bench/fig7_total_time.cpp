// Reproduces Figure 7: total time taken to cluster each of the five
// synthetic datasets (a: 90k/100/20k, b: 90k/200/20k, c: 90k/400/20k,
// d: 90k/100/40k, e: 250k/100/20k), with the method set the paper used in
// each panel. Shape to reproduce: every MH variant beats K-Modes, by
// factors between 2x and 6x.

#include "bench/common.h"

namespace {

using namespace lshclust;
using namespace lshclust::bench;

void RunPanel(const std::string& title, const ConjunctiveDataOptions& data,
              const std::vector<MethodSpec>& methods,
              const DriverOptions& driver) {
  PrintExperimentHeader(std::cout, title, data.num_items, data.num_attributes,
                        data.num_clusters);
  auto dataset = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(dataset.status());
  ComparisonOptions options;
  options.num_clusters = data.num_clusters;
  options.max_iterations = driver.max_iterations > 0
                               ? static_cast<uint32_t>(driver.max_iterations)
                               : 15;
  options.seed = static_cast<uint64_t>(driver.seed);
  options.compute_cost = false;
  auto runs = RunComparison(*dataset, options, methods);
  LSHC_CHECK_OK(runs.status());
  PrintSummaryTable(std::cout, title, *runs);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("fig7_total_time");
  DriverOptions driver;
  driver.scale = 0.05;  // five panels, each a full comparison
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  RunPanel("Figure 7a", driver.ScaledData(90000, 100, 20000),
           {MHKModesSpec(20, 2), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
            KModesSpec()},
           driver);
  RunPanel("Figure 7b", driver.ScaledData(90000, 200, 20000),
           {MHKModesSpec(20, 5), MHKModesSpec(50, 5), KModesSpec()}, driver);
  RunPanel("Figure 7c", driver.ScaledData(90000, 400, 20000),
           {MHKModesSpec(20, 5), MHKModesSpec(50, 5), KModesSpec()}, driver);
  RunPanel("Figure 7d", driver.ScaledData(90000, 100, 40000),
           {MHKModesSpec(20, 2), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
            KModesSpec()},
           driver);
  RunPanel("Figure 7e", driver.ScaledData(250000, 100, 20000),
           {MHKModesSpec(1, 1), MHKModesSpec(20, 5), KModesSpec()}, driver);
  return 0;
}
