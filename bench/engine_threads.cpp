// Thread-scaling baseline for the batch-parallel assignment step of the
// unified clustering engine: one synthetic workload per dataset family,
// run at 1/2/4/8 worker threads, reporting refinement (assignment-phase)
// wall time and throughput. Results are bit-identical across thread
// counts, shard counts and chunk sizes by construction (see
// clustering/engine.h), so the only thing that may change with those
// knobs is the numbers printed here — future PRs can use this as the
// scaling baseline. Machine-readable records land in --json
// (BENCH_engine.json by default; see bench/common.h).
//
// Flags: --items, --clusters, --attrs, --dims, --iters, --seed,
//        --threads (comma list, default 1,2,4,8),
//        --shards (item-space shards, default 1),
//        --chunk (items per work unit, default 1024),
//        --json (output path, empty = off)

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "clustering/kmodes.h"
#include "clustering/kprototypes.h"
#include "core/lsh_kmeans.h"
#include "core/lsh_kprototypes.h"
#include "core/mh_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using namespace lshclust;

struct BenchFlags {
  int64_t items = 20000;
  int64_t clusters = 200;
  int64_t attrs = 24;
  int64_t dims = 16;
  int64_t iters = 5;
  int64_t seed = 42;
  int64_t shards = 1;
  int64_t chunk = 1024;
  std::string threads = "1,2,4,8";
  std::string json = "BENCH_engine.json";
};

bool ParseThreadList(const std::string& spec,
                     std::vector<uint32_t>* threads) {
  threads->clear();
  for (const auto& field : Split(spec, ',')) {
    if (field.empty()) continue;
    size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(field, &consumed);
    } catch (const std::exception&) {
      return false;
    }
    if (consumed != field.size() || value == 0 || value > 1024) return false;
    threads->push_back(static_cast<uint32_t>(value));
  }
  return !threads->empty();
}

void Report(bench::JsonBenchWriter* writer, const char* family,
            const char* name, const EngineOptions& engine, int64_t items,
            const ClusteringResult& result) {
  const double refine_seconds = result.RefinementSeconds();
  const double items_per_second =
      refine_seconds > 0
          ? static_cast<double>(items) * result.iterations.size() /
                refine_seconds
          : 0.0;
  std::printf(
      "%-18s threads=%u  iters=%zu  refine=%8.3fs  assign-throughput=%12.0f "
      "items/s  moves=%" PRIu64 "\n",
      name, engine.num_threads, result.iterations.size(), refine_seconds,
      items_per_second, result.TotalMoves());
  writer->BeginRecord();
  writer->Add("bench", "engine_threads");
  writer->Add("family", family);
  writer->Add("method", name);
  writer->Add("threads", engine.num_threads);
  writer->Add("shards", engine.num_shards);
  writer->Add("chunk_size", engine.chunk_size);
  writer->Add("items", static_cast<int64_t>(items));
  writer->Add("iterations", static_cast<uint64_t>(result.iterations.size()));
  writer->Add("refine_seconds", refine_seconds);
  writer->Add("assign_items_per_second", items_per_second);
  writer->Add("moves", result.TotalMoves());
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  FlagSet flag_set("engine_threads");
  flag_set.AddInt64("items", &flags.items, "items per dataset");
  flag_set.AddInt64("clusters", &flags.clusters, "clusters k");
  flag_set.AddInt64("attrs", &flags.attrs, "categorical attributes");
  flag_set.AddInt64("dims", &flags.dims, "numeric dimensions");
  flag_set.AddInt64("iters", &flags.iters, "refinement iteration cap");
  flag_set.AddInt64("seed", &flags.seed, "master RNG seed");
  flag_set.AddInt64("shards", &flags.shards,
                    "item-space shards of the assignment decomposition");
  flag_set.AddInt64("chunk", &flags.chunk,
                    "items per work unit within a shard");
  flag_set.AddString("threads", &flags.threads,
                     "comma-separated worker-thread counts");
  flag_set.AddString("json", &flags.json,
                     "machine-readable output path (empty = off)");
  if (auto status = flag_set.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.shards < 1 || flags.shards > UINT32_MAX || flags.chunk < 1 ||
      flags.chunk > UINT32_MAX) {
    std::fprintf(stderr,
                 "error: --shards and --chunk must be in [1, 2^32-1]\n");
    return 1;
  }
  std::vector<uint32_t> thread_counts;
  if (!ParseThreadList(flags.threads, &thread_counts)) {
    std::fprintf(stderr,
                 "error: --threads wants a comma list of counts in "
                 "[1, 1024], got \"%s\"\n",
                 flags.threads.c_str());
    return 1;
  }

  const auto n = static_cast<uint32_t>(flags.items);
  const auto k = static_cast<uint32_t>(flags.clusters);
  bench::JsonBenchWriter writer;

  // --- categorical: K-Modes and MH-K-Modes -------------------------------
  ConjunctiveDataOptions categorical;
  categorical.num_items = n;
  categorical.num_attributes = static_cast<uint32_t>(flags.attrs);
  categorical.num_clusters = k;
  categorical.domain_size = 4 * k;
  categorical.seed = static_cast<uint64_t>(flags.seed);
  const auto categorical_data =
      GenerateConjunctiveRuleData(categorical).ValueOrDie();

  std::printf("== categorical: %u items x %u attrs, k=%u ==\n", n,
              categorical.num_attributes, k);
  for (const uint32_t threads : thread_counts) {
    EngineOptions options;
    options.num_clusters = k;
    options.max_iterations = static_cast<uint32_t>(flags.iters);
    options.seed = static_cast<uint64_t>(flags.seed);
    options.compute_cost = false;  // pure assignment timing
    options.num_threads = threads;
    options.num_shards = static_cast<uint32_t>(flags.shards);
    options.chunk_size = static_cast<uint32_t>(flags.chunk);
    Report(&writer, "categorical", "kmodes", options, flags.items,
           RunKModes(categorical_data, options).ValueOrDie());

    MHKModesOptions mh;
    mh.engine = options;
    mh.index.banding = {20, 5};
    Report(&writer, "categorical", "mh-kmodes", mh.engine, flags.items,
           RunMHKModes(categorical_data, mh).ValueOrDie().result);
  }

  // --- numeric: K-Means and LSH-K-Means ----------------------------------
  GaussianMixtureOptions numeric;
  numeric.num_items = n;
  numeric.dimensions = static_cast<uint32_t>(flags.dims);
  numeric.num_clusters = k;
  numeric.seed = static_cast<uint64_t>(flags.seed) + 1;
  const auto numeric_data = GenerateGaussianMixture(numeric).ValueOrDie();

  std::printf("== numeric: %u items x %u dims, k=%u ==\n", n,
              numeric.dimensions, k);
  for (const uint32_t threads : thread_counts) {
    KMeansOptions options;
    options.num_clusters = k;
    options.max_iterations = static_cast<uint32_t>(flags.iters);
    options.seed = static_cast<uint64_t>(flags.seed);
    options.compute_cost = false;
    options.num_threads = threads;
    options.num_shards = static_cast<uint32_t>(flags.shards);
    options.chunk_size = static_cast<uint32_t>(flags.chunk);
    Report(&writer, "numeric", "kmeans", options, flags.items,
           RunKMeans(numeric_data, options).ValueOrDie());

    LshKMeansOptions lsh;
    lsh.kmeans = options;
    lsh.banding = {16, 4};
    Report(&writer, "numeric", "lsh-kmeans", lsh.kmeans, flags.items,
           RunLshKMeans(numeric_data, lsh).ValueOrDie());
  }

  // --- mixed: K-Prototypes and LSH-K-Prototypes --------------------------
  MixedDataOptions mixed;
  mixed.categorical.num_items = n;
  mixed.categorical.num_attributes = static_cast<uint32_t>(flags.attrs);
  mixed.categorical.num_clusters = k;
  mixed.categorical.domain_size = 4 * k;
  mixed.categorical.seed = static_cast<uint64_t>(flags.seed) + 2;
  mixed.numeric_dimensions = static_cast<uint32_t>(flags.dims);
  const auto mixed_data = GenerateMixedData(mixed).ValueOrDie();

  std::printf("== mixed: %u items, %u attrs + %u dims, k=%u ==\n", n,
              mixed.categorical.num_attributes, mixed.numeric_dimensions, k);
  for (const uint32_t threads : thread_counts) {
    KPrototypesOptions options;
    options.num_clusters = k;
    options.max_iterations = static_cast<uint32_t>(flags.iters);
    options.seed = static_cast<uint64_t>(flags.seed);
    options.gamma = 0.5;
    options.compute_cost = false;
    options.num_threads = threads;
    options.num_shards = static_cast<uint32_t>(flags.shards);
    options.chunk_size = static_cast<uint32_t>(flags.chunk);
    Report(&writer, "mixed", "kprototypes", options, flags.items,
           RunKPrototypes(mixed_data, options).ValueOrDie());

    LshKPrototypesOptions lsh;
    lsh.kprototypes = options;
    Report(&writer, "mixed", "lsh-kprototypes", lsh.kprototypes, flags.items,
           RunLshKPrototypes(mixed_data, lsh).ValueOrDie());
  }

  if (!flags.json.empty() && writer.WriteFile(flags.json)) {
    std::printf("wrote %zu records to %s\n", writer.num_records(),
                flags.json.c_str());
  }
  return 0;
}
