// Thread-scaling baseline for the batch-parallel assignment step of the
// unified clustering engine: one synthetic workload per dataset family,
// run at 1/2/4/8 worker threads, reporting refinement (assignment-phase)
// wall time and throughput. Results are bit-identical across thread
// counts, shard counts and chunk sizes by construction (see
// clustering/engine.h), so the only thing that may change with those
// knobs is the numbers printed here — future PRs can use this as the
// scaling baseline. Machine-readable records land in --json
// (BENCH_engine.json by default; see bench/common.h).
//
// Every workload additionally runs through the lshclust::Clusterer front
// door (api/clusterer.h): the facade record carries via="facade" and a
// `facade_overhead` field (facade refine time / direct engine refine
// time). The type-erasure boundary is one virtual call per Fit — the hot
// loops are the same templated code — so the overhead must stay within
// timing noise; the bench asserts the results are bit-identical and
// flags overheads above 10%.
//
// Each LSH cell additionally runs a routed-predict throughput workload:
// the fitted Clusterer retains its index (spec.retain_index), every item
// is then routed out-of-sample through PredictRouted (sign -> probe the
// fit-time buckets -> nearest-of-shortlist) and through the exhaustive
// Predict, and the record carries both timings plus their ratio
// (method="routed-predict"). The fitted dataset is hard-asserted to be
// signed exactly once (IndexHandle::dataset_sign_passes).
//
// Flags: --items, --clusters, --attrs, --dims, --iters, --seed,
//        --threads (comma list, default 1,2,4,8),
//        --shards (item-space shards, default 1),
//        --chunk (items per work unit, default 1024),
//        --json (output path, empty = off)

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "api/clusterer.h"
#include "bench/common.h"
#include "util/stopwatch.h"
#include "clustering/kmodes.h"
#include "clustering/kprototypes.h"
#include "core/lsh_kmeans.h"
#include "core/lsh_kprototypes.h"
#include "core/mh_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using namespace lshclust;

struct BenchFlags {
  int64_t items = 20000;
  int64_t clusters = 200;
  int64_t attrs = 24;
  int64_t dims = 16;
  int64_t iters = 5;
  int64_t seed = 42;
  int64_t shards = 1;
  int64_t chunk = 1024;
  std::string threads = "1,2,4,8";
  std::string json = "BENCH_engine.json";
};

bool ParseThreadList(const std::string& spec,
                     std::vector<uint32_t>* threads) {
  threads->clear();
  for (const auto& field : Split(spec, ',')) {
    if (field.empty()) continue;
    size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(field, &consumed);
    } catch (const std::exception&) {
      return false;
    }
    if (consumed != field.size() || value == 0 || value > 1024) return false;
    threads->push_back(static_cast<uint32_t>(value));
  }
  return !threads->empty();
}

void Report(bench::JsonBenchWriter* writer, const char* family,
            const char* name, const EngineOptions& engine, int64_t items,
            const ClusteringResult& result) {
  const double refine_seconds = result.RefinementSeconds();
  const double items_per_second =
      refine_seconds > 0
          ? static_cast<double>(items) * result.iterations.size() /
                refine_seconds
          : 0.0;
  std::printf(
      "%-18s threads=%u  iters=%zu  refine=%8.3fs  assign-throughput=%12.0f "
      "items/s  moves=%" PRIu64 "\n",
      name, engine.num_threads, result.iterations.size(), refine_seconds,
      items_per_second, result.TotalMoves());
  writer->BeginRecord();
  writer->Add("bench", "engine_threads");
  writer->Add("family", family);
  writer->Add("method", name);
  writer->Add("threads", engine.num_threads);
  writer->Add("shards", engine.num_shards);
  writer->Add("chunk_size", engine.chunk_size);
  writer->Add("items", static_cast<int64_t>(items));
  writer->Add("iterations", static_cast<uint64_t>(result.iterations.size()));
  writer->Add("refine_seconds", refine_seconds);
  writer->Add("assign_items_per_second", items_per_second);
  writer->Add("moves", result.TotalMoves());
}

/// Runs the same workload through the Clusterer facade and records the
/// dispatch overhead against the direct engine run. Bit-identity is a
/// hard assertion; the timing ratio is recorded (and flagged above 10%)
/// rather than asserted — wall-clock noise on a loaded box is not a
/// regression.
template <typename Dataset>
void ReportFacade(bench::JsonBenchWriter* writer, const char* family,
                  const char* name, const ClustererSpec& spec,
                  const Dataset& dataset, int64_t items,
                  const ClusteringResult& direct) {
  auto clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(clusterer.status());
  auto report = clusterer->Fit(dataset);
  LSHC_CHECK_OK(report.status());
  const ClusteringResult& facade = report->result;
  LSHC_CHECK(facade.assignment == direct.assignment)
      << "facade run diverged from the direct engine (" << family << "/"
      << name << ")";
  const double direct_refine = direct.RefinementSeconds();
  const double facade_refine = facade.RefinementSeconds();
  const double overhead =
      direct_refine > 0 ? facade_refine / direct_refine : 1.0;
  std::printf("%-18s threads=%u  facade refine=%8.3fs  overhead=%.3fx%s\n",
              name, spec.engine.num_threads, facade_refine, overhead,
              overhead > 1.10 ? "  [above noise budget]" : "");
  writer->BeginRecord();
  writer->Add("bench", "engine_threads");
  writer->Add("family", family);
  writer->Add("method", name);
  writer->Add("via", "facade");
  writer->Add("threads", spec.engine.num_threads);
  writer->Add("shards", spec.engine.num_shards);
  writer->Add("chunk_size", spec.engine.chunk_size);
  writer->Add("items", static_cast<int64_t>(items));
  writer->Add("refine_seconds", facade_refine);
  writer->Add("direct_refine_seconds", direct_refine);
  writer->Add("facade_overhead", overhead);
}

/// Routed-vs-exhaustive out-of-sample assignment throughput through the
/// retained fit-time index: Fit once (retaining the index), then route
/// every item of `arrivals` via PredictRouted and via the exhaustive
/// Predict. Zero re-signing of the fitted dataset is a hard assertion;
/// the agreement rate is recorded (routing can differ where the probe
/// misses the exhaustive winner — that is the recall/throughput
/// trade-off the record quantifies).
template <typename Dataset>
void ReportRoutedPredict(bench::JsonBenchWriter* writer, const char* family,
                         const ClustererSpec& spec, const Dataset& fit_data,
                         const Dataset& arrivals) {
  auto clusterer = Clusterer::Create(spec);
  LSHC_CHECK_OK(clusterer.status());
  auto report = clusterer->Fit(fit_data);
  LSHC_CHECK_OK(report.status());
  LSHC_CHECK(report->index_retained)
      << "routed-predict workload needs a retained index (" << family
      << ")";

  Stopwatch watch;
  auto routed = clusterer->PredictRouted(arrivals);
  LSHC_CHECK_OK(routed.status());
  const double routed_seconds = watch.ElapsedSeconds();
  watch.Restart();
  auto exhaustive = clusterer->Predict(arrivals);
  LSHC_CHECK_OK(exhaustive.status());
  const double exhaustive_seconds = watch.ElapsedSeconds();

  auto handle = clusterer->index();
  LSHC_CHECK_OK(handle.status());
  LSHC_CHECK(handle->dataset_sign_passes() == 1)
      << "routed predict re-signed the fitted dataset (" << family << ")";

  uint64_t agree = 0;
  for (size_t i = 0; i < routed->size(); ++i) {
    agree += (*routed)[i] == (*exhaustive)[i] ? 1 : 0;
  }
  const uint32_t n = arrivals.num_items();
  const double items_per_second =
      routed_seconds > 0 ? static_cast<double>(n) / routed_seconds : 0.0;
  const double speedup =
      routed_seconds > 0 ? exhaustive_seconds / routed_seconds : 0.0;
  std::printf("%-18s threads=%u  routed=%8.3fs  exhaustive=%8.3fs  "
              "(%.1fx)  agreement=%.1f%%\n",
              "routed-predict", spec.engine.num_threads, routed_seconds,
              exhaustive_seconds, speedup,
              100.0 * static_cast<double>(agree) / n);
  writer->BeginRecord();
  writer->Add("bench", "engine_threads");
  writer->Add("family", family);
  writer->Add("method", "routed-predict");
  writer->Add("threads", spec.engine.num_threads);
  writer->Add("shards", spec.engine.num_shards);
  writer->Add("chunk_size", spec.engine.chunk_size);
  writer->Add("items", static_cast<int64_t>(n));
  writer->Add("routed_seconds", routed_seconds);
  writer->Add("exhaustive_predict_seconds", exhaustive_seconds);
  writer->Add("routed_speedup", speedup);
  writer->Add("routed_items_per_second", items_per_second);
  writer->Add("agreement",
              static_cast<double>(agree) / static_cast<double>(n));
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  FlagSet flag_set("engine_threads");
  flag_set.AddInt64("items", &flags.items, "items per dataset");
  flag_set.AddInt64("clusters", &flags.clusters, "clusters k");
  flag_set.AddInt64("attrs", &flags.attrs, "categorical attributes");
  flag_set.AddInt64("dims", &flags.dims, "numeric dimensions");
  flag_set.AddInt64("iters", &flags.iters, "refinement iteration cap");
  flag_set.AddInt64("seed", &flags.seed, "master RNG seed");
  flag_set.AddInt64("shards", &flags.shards,
                    "item-space shards of the assignment decomposition");
  flag_set.AddInt64("chunk", &flags.chunk,
                    "items per work unit within a shard");
  flag_set.AddString("threads", &flags.threads,
                     "comma-separated worker-thread counts");
  flag_set.AddString("json", &flags.json,
                     "machine-readable output path (empty = off)");
  if (auto status = flag_set.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.shards < 1 || flags.shards > UINT32_MAX || flags.chunk < 1 ||
      flags.chunk > UINT32_MAX) {
    std::fprintf(stderr,
                 "error: --shards and --chunk must be in [1, 2^32-1]\n");
    return 1;
  }
  std::vector<uint32_t> thread_counts;
  if (!ParseThreadList(flags.threads, &thread_counts)) {
    std::fprintf(stderr,
                 "error: --threads wants a comma list of counts in "
                 "[1, 1024], got \"%s\"\n",
                 flags.threads.c_str());
    return 1;
  }

  const auto n = static_cast<uint32_t>(flags.items);
  const auto k = static_cast<uint32_t>(flags.clusters);
  bench::JsonBenchWriter writer;

  // --- categorical: K-Modes and MH-K-Modes -------------------------------
  ConjunctiveDataOptions categorical;
  categorical.num_items = n;
  categorical.num_attributes = static_cast<uint32_t>(flags.attrs);
  categorical.num_clusters = k;
  categorical.domain_size = 4 * k;
  categorical.seed = static_cast<uint64_t>(flags.seed);
  const auto categorical_data =
      GenerateConjunctiveRuleData(categorical).ValueOrDie();

  std::printf("== categorical: %u items x %u attrs, k=%u ==\n", n,
              categorical.num_attributes, k);
  for (const uint32_t threads : thread_counts) {
    EngineOptions options;
    options.num_clusters = k;
    options.max_iterations = static_cast<uint32_t>(flags.iters);
    options.seed = static_cast<uint64_t>(flags.seed);
    options.compute_cost = false;  // pure assignment timing
    options.num_threads = threads;
    options.num_shards = static_cast<uint32_t>(flags.shards);
    options.chunk_size = static_cast<uint32_t>(flags.chunk);
    const auto kmodes = RunKModes(categorical_data, options).ValueOrDie();
    Report(&writer, "categorical", "kmodes", options, flags.items, kmodes);
    ClustererSpec spec;
    spec.modality = Modality::kCategorical;
    spec.accelerator = Accelerator::kExhaustive;
    spec.engine = options;
    ReportFacade(&writer, "categorical", "kmodes", spec, categorical_data,
                 flags.items, kmodes);

    // Direct engine instantiation — the legacy RunMHKModes entry point is
    // itself a facade shim now, so the baseline of the overhead
    // comparison constructs the provider by hand.
    ShortlistIndexOptions index;
    index.banding = {20, 5};
    ClusterShortlistProvider provider(index, options.num_clusters);
    const auto mh =
        RunEngine(categorical_data, options, provider).ValueOrDie();
    Report(&writer, "categorical", "mh-kmodes", options, flags.items, mh);
    spec.accelerator = Accelerator::kMinHash;
    spec.minhash = index;
    ReportFacade(&writer, "categorical", "mh-kmodes", spec, categorical_data,
                 flags.items, mh);
    ReportRoutedPredict(&writer, "categorical", spec, categorical_data,
                        categorical_data);
  }

  // --- numeric: K-Means and LSH-K-Means ----------------------------------
  GaussianMixtureOptions numeric;
  numeric.num_items = n;
  numeric.dimensions = static_cast<uint32_t>(flags.dims);
  numeric.num_clusters = k;
  numeric.seed = static_cast<uint64_t>(flags.seed) + 1;
  const auto numeric_data = GenerateGaussianMixture(numeric).ValueOrDie();

  std::printf("== numeric: %u items x %u dims, k=%u ==\n", n,
              numeric.dimensions, k);
  for (const uint32_t threads : thread_counts) {
    KMeansOptions options;
    options.num_clusters = k;
    options.max_iterations = static_cast<uint32_t>(flags.iters);
    options.seed = static_cast<uint64_t>(flags.seed);
    options.compute_cost = false;
    options.num_threads = threads;
    options.num_shards = static_cast<uint32_t>(flags.shards);
    options.chunk_size = static_cast<uint32_t>(flags.chunk);
    const auto kmeans = RunKMeans(numeric_data, options).ValueOrDie();
    Report(&writer, "numeric", "kmeans", options, flags.items, kmeans);
    ClustererSpec spec;
    spec.modality = Modality::kNumeric;
    spec.accelerator = Accelerator::kExhaustive;
    spec.engine = options;
    ReportFacade(&writer, "numeric", "kmeans", spec, numeric_data,
                 flags.items, kmeans);

    SimHashIndexOptions index;
    index.banding = {16, 4};
    SimHashShortlistProvider provider(index, options.num_clusters);
    const auto lsh =
        RunKMeansEngine(numeric_data, options, provider).ValueOrDie();
    Report(&writer, "numeric", "lsh-kmeans", options, flags.items, lsh);
    spec.accelerator = Accelerator::kSimHash;
    spec.simhash = index;
    ReportFacade(&writer, "numeric", "lsh-kmeans", spec, numeric_data,
                 flags.items, lsh);
    ReportRoutedPredict(&writer, "numeric", spec, numeric_data,
                        numeric_data);
  }

  // --- mixed: K-Prototypes and LSH-K-Prototypes --------------------------
  MixedDataOptions mixed;
  mixed.categorical.num_items = n;
  mixed.categorical.num_attributes = static_cast<uint32_t>(flags.attrs);
  mixed.categorical.num_clusters = k;
  mixed.categorical.domain_size = 4 * k;
  mixed.categorical.seed = static_cast<uint64_t>(flags.seed) + 2;
  mixed.numeric_dimensions = static_cast<uint32_t>(flags.dims);
  const auto mixed_data = GenerateMixedData(mixed).ValueOrDie();

  std::printf("== mixed: %u items, %u attrs + %u dims, k=%u ==\n", n,
              mixed.categorical.num_attributes, mixed.numeric_dimensions, k);
  for (const uint32_t threads : thread_counts) {
    KPrototypesOptions options;
    options.num_clusters = k;
    options.max_iterations = static_cast<uint32_t>(flags.iters);
    options.seed = static_cast<uint64_t>(flags.seed);
    options.gamma = 0.5;
    options.compute_cost = false;
    options.num_threads = threads;
    options.num_shards = static_cast<uint32_t>(flags.shards);
    options.chunk_size = static_cast<uint32_t>(flags.chunk);
    const auto kprototypes = RunKPrototypes(mixed_data, options).ValueOrDie();
    Report(&writer, "mixed", "kprototypes", options, flags.items,
           kprototypes);
    ClustererSpec spec;
    spec.modality = Modality::kMixed;
    spec.accelerator = Accelerator::kExhaustive;
    spec.engine = options;
    spec.gamma = options.gamma;
    ReportFacade(&writer, "mixed", "kprototypes", spec, mixed_data,
                 flags.items, kprototypes);

    MixedIndexOptions index;
    MixedShortlistProvider provider(index, options.num_clusters);
    const auto lsh =
        RunKPrototypesEngine(mixed_data, options, provider).ValueOrDie();
    Report(&writer, "mixed", "lsh-kprototypes", options, flags.items, lsh);
    spec.accelerator = Accelerator::kMixedConcat;
    spec.mixed_index = index;
    ReportFacade(&writer, "mixed", "lsh-kprototypes", spec, mixed_data,
                 flags.items, lsh);
    ReportRoutedPredict(&writer, "mixed", spec, mixed_data, mixed_data);
  }

  if (!flags.json.empty() && writer.WriteFile(flags.json)) {
    std::printf("wrote %zu records to %s\n", writer.num_records(),
                flags.json.c_str());
  }
  return 0;
}
