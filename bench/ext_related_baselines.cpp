// Head-to-head comparison of search-space-reduction strategies for
// K-Modes, pitting the paper's MinHash shortlists against the related-work
// alternative it discusses:
//   * K-Modes (exhaustive)              — the paper's baseline;
//   * MH-K-Modes 20b5r / 1b1r           — the paper's contribution;
//   * Canopy-K-Modes (McCallum et al.)  — the paper's ref [15]: cheap-
//     distance canopies instead of LSH buckets.
// All methods run the identical engine from identical initial centroids.

#include "bench/common.h"
#include "core/canopy_kmodes.h"
#include "metrics/metrics.h"
#include "util/stopwatch.h"

namespace {

using namespace lshclust;
using namespace lshclust::bench;

void Report(const char* label, const ClusteringResult& result, double purity,
            double baseline_total) {
  double mean_shortlist = 0;
  for (const auto& it : result.iterations) {
    mean_shortlist += it.mean_shortlist;
  }
  if (!result.iterations.empty()) {
    mean_shortlist /= static_cast<double>(result.iterations.size());
  }
  std::printf("%-24s %10.3f %8.2fx %8zu %12.1f %9.4f\n", label,
              result.total_seconds,
              baseline_total / result.total_seconds,
              result.iterations.size(), mean_shortlist, purity);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("ext_related_baselines");
  DriverOptions driver;
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  const auto data = driver.ScaledData(90000, 100, 20000);
  PrintExperimentHeader(std::cout, "Search-space reduction strategies",
                        data.num_items, data.num_attributes,
                        data.num_clusters);
  auto dataset = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(dataset.status());

  // One shared draw of initial centroids for every method.
  Rng seed_rng(static_cast<uint64_t>(driver.seed));
  auto seeds = SelectRandomSeeds(*dataset, data.num_clusters, seed_rng);
  LSHC_CHECK_OK(seeds.status());

  EngineOptions engine;
  engine.num_clusters = data.num_clusters;
  engine.max_iterations = driver.max_iterations > 0
                              ? static_cast<uint32_t>(driver.max_iterations)
                              : 20;
  engine.seed = static_cast<uint64_t>(driver.seed);
  engine.initial_seeds = *seeds;

  auto purity_of = [&](const ClusteringResult& result) {
    return ComputePurity(result.assignment, dataset->labels()).ValueOrDie();
  };

  std::printf("%-24s %10s %9s %8s %12s %9s\n", "method", "total (s)",
              "speedup", "iters", "shortlist", "purity");

  const auto baseline = RunKModes(*dataset, engine).ValueOrDie();
  Report("K-Modes (exhaustive)", baseline, purity_of(baseline),
         baseline.total_seconds);

  for (const auto& [bands, rows] :
       {std::pair<uint32_t, uint32_t>{20, 5}, {1, 1}}) {
    MHKModesOptions options;
    options.engine = engine;
    options.index.banding = {bands, rows};
    const auto run = RunMHKModes(*dataset, options).ValueOrDie();
    const std::string label = "MH-K-Modes " + std::to_string(bands) + "b" +
                              std::to_string(rows) + "r";
    Report(label.c_str(), run.result, purity_of(run.result),
           baseline.total_seconds);
  }

  {
    CanopyKModesOptions options;
    options.engine = engine;
    options.canopy.seed = static_cast<uint64_t>(driver.seed) ^ 0xCA;
    const auto run = RunCanopyKModes(*dataset, options).ValueOrDie();
    Report("Canopy-K-Modes", run, purity_of(run), baseline.total_seconds);
  }
  return 0;
}
