// Reproduces Figure 10: the Yahoo! Answers experiment with TF-IDF
// threshold lowered to 0.3 (paper: 157602 questions, 2881 attributes,
// iterations capped at 10). Methods: MH-K-Modes 1b1r / 20b5r / 50b5r vs
// K-Modes. Panels: (a) time per iteration, (b) total time, (c) average
// shortlist size, (d) moves.
//
// Shape to reproduce: all MH variants take much less time per iteration;
// 1b1r is the most efficient end-to-end (~2x over K-Modes at the
// iteration cap).

#include "bench/yahoo_common.h"

int main(int argc, char** argv) {
  using namespace lshclust;
  using namespace lshclust::bench;

  FlagSet flags("fig10_yahoo_tfidf03");
  DriverOptions driver;
  driver.scale = 0.05;  // twice the items and ~8x the attributes of Fig. 9
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  uint32_t num_topics = 0;
  const CategoricalDataset dataset = MakeYahooDataset(
      driver, /*tfidf_threshold=*/0.3, /*questions_per_topic=*/54,
      &num_topics);

  ComparisonOptions options;
  options.num_clusters = num_topics;
  // "Due to time constraints we set the maximum iterations to 10" (§IV-B).
  options.max_iterations = driver.max_iterations > 0
                               ? static_cast<uint32_t>(driver.max_iterations)
                               : 10;
  options.seed = static_cast<uint64_t>(driver.seed);

  auto runs = RunComparison(
      dataset, options,
      {MHKModesSpec(1, 1), MHKModesSpec(20, 5), MHKModesSpec(50, 5),
       KModesSpec()});
  LSHC_CHECK_OK(runs.status());
  PrintIterationSeries(std::cout, "Figure 10 (Yahoo!, TF-IDF 0.3)", *runs,
                       IterationField::kSeconds);
  PrintIterationSeries(std::cout, "Figure 10 (Yahoo!, TF-IDF 0.3)", *runs,
                       IterationField::kShortlist);
  PrintIterationSeries(std::cout, "Figure 10 (Yahoo!, TF-IDF 0.3)", *runs,
                       IterationField::kMoves);
  PrintSummaryTable(std::cout, "Figure 10 (Yahoo!, TF-IDF 0.3)", *runs);
  return 0;
}
