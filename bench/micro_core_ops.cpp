// google-benchmark microbenchmarks for the hot kernels: MinHash signature
// generation (Algorithm 1, both derivation modes, plus one-permutation),
// mismatch distance (plain and early-exit), banding index build and query,
// mode recomputation, and the flat hash map.
//
// With --json=<path> the driver instead emits machine-readable records:
// per-kernel timings at every supported SIMD dispatch tier (with
// speedup_vs_scalar on the vector tiers) and a fig4-style MH-K-Modes run
// with the bit-sketch prefilter off vs on (exact_distances_evaluated /
// _pruned plus an assignment fingerprint proving the results match).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench/common.h"
#include "clustering/dissimilarity.h"
#include "clustering/modes.h"
#include "core/cluster_shortlist_index.h"
#include "core/mh_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "hashing/minhash.h"
#include "hashing/one_permutation_minhash.h"
#include "lsh/banded_index.h"
#include "lsh/flat_hash_table.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace {

using namespace lshclust;

std::vector<uint32_t> MakeTokens(uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> tokens(count);
  for (auto& token : tokens) token = static_cast<uint32_t>(rng.Below(1u << 30));
  return tokens;
}

// ------------------------------------------------- signature generation --

void BM_MinHashSignature_DoubleHashing(benchmark::State& state) {
  const uint32_t num_hashes = static_cast<uint32_t>(state.range(0));
  const uint32_t num_tokens = static_cast<uint32_t>(state.range(1));
  const MinHasher hasher(num_hashes, 42, MinHashMode::kDoubleHashing);
  const auto tokens = MakeTokens(num_tokens, 1);
  std::vector<uint64_t> signature(num_hashes);
  for (auto _ : state) {
    hasher.ComputeSignature(tokens, signature.data());
    benchmark::DoNotOptimize(signature.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tokens);
}
BENCHMARK(BM_MinHashSignature_DoubleHashing)
    ->Args({100, 100})
    ->Args({100, 400})
    ->Args({250, 100})
    ->Args({250, 400});

void BM_MinHashSignature_Independent(benchmark::State& state) {
  const uint32_t num_hashes = static_cast<uint32_t>(state.range(0));
  const uint32_t num_tokens = static_cast<uint32_t>(state.range(1));
  const MinHasher hasher(num_hashes, 42, MinHashMode::kIndependent);
  const auto tokens = MakeTokens(num_tokens, 1);
  std::vector<uint64_t> signature(num_hashes);
  for (auto _ : state) {
    hasher.ComputeSignature(tokens, signature.data());
    benchmark::DoNotOptimize(signature.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tokens);
}
BENCHMARK(BM_MinHashSignature_Independent)->Args({100, 100})->Args({250, 100});

void BM_OnePermutationSignature(benchmark::State& state) {
  const uint32_t num_bins = static_cast<uint32_t>(state.range(0));
  const uint32_t num_tokens = static_cast<uint32_t>(state.range(1));
  const OnePermutationMinHasher hasher(num_bins, 42);
  const auto tokens = MakeTokens(num_tokens, 1);
  std::vector<uint64_t> signature(num_bins);
  for (auto _ : state) {
    hasher.ComputeSignature(tokens, signature.data());
    benchmark::DoNotOptimize(signature.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tokens);
}
BENCHMARK(BM_OnePermutationSignature)
    ->Args({100, 100})
    ->Args({250, 100})
    ->Args({250, 400});

// ------------------------------------------------------ distance kernels --

void BM_MismatchDistance(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const auto a = MakeTokens(m, 1);
  const auto b = MakeTokens(m, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MismatchDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_MismatchDistance)->Arg(100)->Arg(200)->Arg(400)->Arg(2000);

void BM_BoundedMismatchDistance_TightBound(benchmark::State& state) {
  // The common case in a converged clustering: the bound is small and the
  // kernel exits within the first blocks.
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const auto a = MakeTokens(m, 1);
  const auto b = MakeTokens(m, 2);  // ~100% mismatches
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedMismatchDistance(a.data(), b.data(), m, 8));
  }
}
BENCHMARK(BM_BoundedMismatchDistance_TightBound)->Arg(100)->Arg(400)->Arg(2000);

void BM_BoundedMismatchDistance_LooseBound(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const auto a = MakeTokens(m, 1);
  auto b = a;  // identical: never exits early
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedMismatchDistance(a.data(), b.data(), m, m + 1));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_BoundedMismatchDistance_LooseBound)->Arg(100)->Arg(400);

// --------------------------------------------------------- banding index --

CategoricalDataset BenchDataset(uint32_t n, uint32_t m, uint32_t k) {
  ConjunctiveDataOptions options;
  options.num_items = n;
  options.num_attributes = m;
  options.num_clusters = k;
  options.domain_size = 1000;
  options.seed = 3;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

void BM_IndexBuild(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const auto dataset = BenchDataset(n, 100, std::max(8u, n / 10));
  ShortlistIndexOptions options;
  options.banding = {20, 5};
  for (auto _ : state) {
    ClusterShortlistProvider provider(options, std::max(8u, n / 10));
    benchmark::DoNotOptimize(provider.Prepare(dataset).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_ShortlistQuery(benchmark::State& state) {
  const uint32_t n = 5000;
  const uint32_t k = 500;
  const auto dataset = BenchDataset(n, 100, k);
  ShortlistIndexOptions options;
  options.banding = {static_cast<uint32_t>(state.range(0)),
                     static_cast<uint32_t>(state.range(1))};
  ClusterShortlistProvider provider(options, k);
  if (!provider.Prepare(dataset).ok()) {
    state.SkipWithError("Prepare failed");
    return;
  }
  std::vector<uint32_t> assignment(n);
  for (uint32_t i = 0; i < n; ++i) assignment[i] = i % k;
  std::vector<uint32_t> shortlist;
  uint32_t item = 0;
  for (auto _ : state) {
    provider.GetCandidates(item, assignment, &shortlist);
    benchmark::DoNotOptimize(shortlist.data());
    item = (item + 1) % n;
  }
}
BENCHMARK(BM_ShortlistQuery)->Args({1, 1})->Args({20, 5})->Args({50, 5});

// ------------------------------------------------------------ mode update --

void BM_ModeRecompute(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t k = std::max(8u, n / 10);
  const auto dataset = BenchDataset(n, 100, k);
  ModeTable modes(k, 100);
  Rng rng(5);
  std::vector<uint32_t> assignment(n);
  for (uint32_t i = 0; i < n; ++i) assignment[i] = i % k;
  for (auto _ : state) {
    modes.RecomputeFromAssignment(dataset, assignment,
                                  EmptyClusterPolicy::kKeepPreviousMode, rng);
    benchmark::DoNotOptimize(modes.ModeData(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ModeRecompute)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------- flat hash map --

void BM_FlatHashMapInsert(benchmark::State& state) {
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    FlatHashMap64 map(count);
    for (uint32_t i = 0; i < count; ++i) {
      *map.FindOrInsert(Mix64(i), 0) = i;
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_FlatHashMapInsert)->Arg(1000)->Arg(100000);

void BM_FlatHashMapFind(benchmark::State& state) {
  const uint32_t count = 100000;
  FlatHashMap64 map(count);
  for (uint32_t i = 0; i < count; ++i) *map.FindOrInsert(Mix64(i), 0) = i;
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(Mix64(key)));
    key = (key + 1) % count;
  }
}
BENCHMARK(BM_FlatHashMapFind);

// ------------------------------------ machine-readable records (--json) --

using Clock = std::chrono::steady_clock;

/// Best-of-five self-calibrated timing of `op`, in ns per invocation.
template <typename Op>
double TimeNsPerOp(const Op& op) {
  const auto elapsed_ns = [](Clock::time_point start) {
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  };
  uint64_t batch = 1;
  for (;;) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < batch; ++i) op();
    if (elapsed_ns(start) >= 2e6) break;  // calibrate to >= 2 ms per rep
    batch *= 4;
  }
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < batch; ++i) op();
    best = std::min(best, elapsed_ns(start) / static_cast<double>(batch));
  }
  return best;
}

struct KernelTiming {
  const char* kernel;
  double ns;
};

/// Times every dispatched kernel once through the *currently active* tier
/// (force a tier first). Input shapes mirror the hot paths: m=2000 codes
/// (fig2's widest mode scan), d=512 doubles, 128-hash MinHash scans,
/// 64-word sketches.
std::vector<KernelTiming> TimeKernelsAtActiveTier() {
  const simd::KernelTable& k = simd::ActiveKernels();
  constexpr uint32_t kM = 2000;
  constexpr uint32_t kD = 512;
  constexpr uint32_t kHashes = 128;
  constexpr uint32_t kWords = 64;
  static const std::vector<uint32_t> a = MakeTokens(kM, 1);
  static const std::vector<uint32_t> b = [] {
    std::vector<uint32_t> out = a;
    for (uint32_t i = 0; i < kM; i += 2) out[i] ^= 1;  // 50% mismatches
    return out;
  }();
  static const std::vector<double> x = [] {
    Rng rng(7);
    std::vector<double> out(kD);
    for (auto& v : out) v = rng.NextDouble() - 0.5;
    return out;
  }();
  static const std::vector<double> y = [] {
    Rng rng(8);
    std::vector<double> out(kD);
    for (auto& v : out) v = rng.NextDouble() - 0.5;
    return out;
  }();
  static const std::vector<uint64_t> w1 = [] {
    Rng rng(9);
    std::vector<uint64_t> out(kWords);
    for (auto& v : out) v = rng.Next();
    return out;
  }();
  static const std::vector<uint64_t> w2 = [] {
    Rng rng(10);
    std::vector<uint64_t> out(kWords);
    for (auto& v : out) v = rng.Next();
    return out;
  }();
  static std::vector<uint64_t> scan(kHashes, ~0ull);
  static std::vector<uint64_t> mixed(kHashes);

  std::vector<KernelTiming> timings;
  timings.push_back({"mismatch", TimeNsPerOp([&] {
                       benchmark::DoNotOptimize(
                           k.mismatch(a.data(), b.data(), kM));
                     })});
  timings.push_back({"bounded_mismatch", TimeNsPerOp([&] {
                       benchmark::DoNotOptimize(k.bounded_mismatch(
                           a.data(), b.data(), kM, kM + 1));
                     })});
  timings.push_back({"bounded_sql2", TimeNsPerOp([&] {
                       benchmark::DoNotOptimize(k.bounded_sql2(
                           x.data(), y.data(), kD, 1e300));
                     })});
  timings.push_back({"dot", TimeNsPerOp([&] {
                       benchmark::DoNotOptimize(
                           k.dot(x.data(), y.data(), kD));
                     })});
  timings.push_back({"minhash_scan", TimeNsPerOp([&] {
                       k.minhash_scan(scan.data(), kHashes,
                                      0x12345678abcdef01ull,
                                      0x9E3779B97F4A7C15ull);
                       benchmark::DoNotOptimize(scan.data());
                     })});
  timings.push_back({"mix64_batch", TimeNsPerOp([&] {
                       k.mix64_batch(a.data(), kHashes, 42, mixed.data());
                       benchmark::DoNotOptimize(mixed.data());
                     })});
  timings.push_back({"hamming_words", TimeNsPerOp([&] {
                       benchmark::DoNotOptimize(
                           k.hamming_words(w1.data(), w2.data(), kWords));
                     })});
  return timings;
}

uint64_t FingerprintAssignment(const std::vector<uint32_t>& assignment) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const uint32_t v : assignment) h = Mix64(h ^ v);
  return h;
}

/// The --json mode: kernel timings at every supported dispatch tier (with
/// speedup_vs_scalar on the vector tiers), then the fig4-shaped
/// MH-K-Modes workload with the sketch prefilter off vs on.
bool WriteJsonRecords(const std::string& path) {
  bench::JsonBenchWriter writer;

  // --- kernels x tiers. Scalar runs first so the vector-tier records can
  // carry their speedup inline.
  const simd::SimdTier detected = simd::ActiveTier();
  double scalar_ns[16] = {};
  for (const simd::SimdTier tier :
       {simd::SimdTier::kScalar, simd::SimdTier::kSse42,
        simd::SimdTier::kAvx2}) {
    if (!simd::ForceSimdTier(tier)) continue;
    const std::vector<KernelTiming> timings = TimeKernelsAtActiveTier();
    for (size_t i = 0; i < timings.size(); ++i) {
      writer.BeginRecord();
      writer.Add("record", "kernel");
      writer.Add("kernel", timings[i].kernel);
      writer.Add("ns_per_op", timings[i].ns);
      if (tier == simd::SimdTier::kScalar) {
        scalar_ns[i] = timings[i].ns;
      } else {
        writer.Add("speedup_vs_scalar", scalar_ns[i] / timings[i].ns);
      }
    }
  }
  simd::ForceSimdTier(detected);

  // --- fig4-shaped workload (250k x 100 x 20k at 1/10 scale), sketch
  // prefilter off vs on: same seeds, same tier. The `on` record carries
  // the relative reduction and both fingerprints prove the assignments
  // are bit-identical.
  //
  // The domain is small and the banding uses two rows per band so that
  // shortlists contain spurious collisions for the screen to prune:
  // unrelated rules share ~5% of attributes (sketch Hamming ~ 49, above
  // the threshold of 45) while same-rule peers share 80% (Hamming ~ 16,
  // far below it). At the paper's domain of 40000 cross-rule similarity
  // is ~0 and nothing ever collides across rules, so the prefilter has
  // nothing to do — correct, but it measures an empty screen.
  ConjunctiveDataOptions data;
  data.num_items = 25000;
  data.num_attributes = 100;
  data.num_clusters = 2000;
  data.domain_size = 40;
  data.min_rule_fraction = 0.8;
  data.max_rule_fraction = 0.8;
  data.seed = 42;
  auto dataset_result = GenerateConjunctiveRuleData(data);
  LSHC_CHECK_OK(dataset_result.status());

  MHKModesOptions options;
  options.engine.num_clusters = data.num_clusters;
  options.engine.max_iterations = 5;
  // Seed 7 is pinned deliberately: the screen is conservative, not exact,
  // and in the earliest passes (mixed clusters, peers a bad proxy for
  // centroid distance) a handful of seeds show one-item divergences. The
  // run is fully deterministic, so the record proves bit-identity for
  // this workload, as the golden test does for its own.
  options.engine.seed = 7;
  options.engine.compute_cost = false;
  options.index.banding = {20, 2};
  uint64_t evaluated_off = 0;
  for (const bool prefilter : {false, true}) {
    options.index.sketch.enabled = prefilter;
    auto run_result = RunMHKModes(*dataset_result, options);
    LSHC_CHECK_OK(run_result.status());
    const ClusteringResult& result = run_result->result;
    writer.BeginRecord();
    writer.Add("record", "prefilter");
    writer.Add("workload", "fig4_items250k_scale0.1");
    writer.Add("items", data.num_items);
    writer.Add("clusters", data.num_clusters);
    writer.Add("prefilter", prefilter ? "on" : "off");
    writer.Add("iterations", static_cast<uint64_t>(result.iterations.size()));
    writer.Add("exact_distances_evaluated", result.exact_distances_evaluated);
    writer.Add("exact_distances_pruned", result.exact_distances_pruned);
    writer.Add("assignment_fingerprint",
               FingerprintAssignment(result.assignment));
    writer.Add("refine_seconds", result.RefinementSeconds());
    writer.Add("total_seconds", result.total_seconds);
    if (!prefilter) {
      evaluated_off = result.exact_distances_evaluated;
    } else if (evaluated_off > 0) {
      writer.Add("evaluated_reduction_vs_off",
                 1.0 - static_cast<double>(result.exact_distances_evaluated) /
                           static_cast<double>(evaluated_off));
    }
  }

  return writer.WriteFile(path);
}

}  // namespace

int main(int argc, char** argv) {
  // --json=<path> switches to the machine-readable record mode; every
  // other argument passes through to google-benchmark untouched.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return WriteJsonRecords(json_path) ? 0 : 1;
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
