// google-benchmark microbenchmarks for the hot kernels: MinHash signature
// generation (Algorithm 1, both derivation modes, plus one-permutation),
// mismatch distance (plain and early-exit), banding index build and query,
// mode recomputation, and the flat hash map.

#include <benchmark/benchmark.h>

#include "clustering/dissimilarity.h"
#include "clustering/modes.h"
#include "core/cluster_shortlist_index.h"
#include "datagen/conjunctive_generator.h"
#include "hashing/minhash.h"
#include "hashing/one_permutation_minhash.h"
#include "lsh/banded_index.h"
#include "lsh/flat_hash_table.h"
#include "util/rng.h"

namespace {

using namespace lshclust;

std::vector<uint32_t> MakeTokens(uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> tokens(count);
  for (auto& token : tokens) token = static_cast<uint32_t>(rng.Below(1u << 30));
  return tokens;
}

// ------------------------------------------------- signature generation --

void BM_MinHashSignature_DoubleHashing(benchmark::State& state) {
  const uint32_t num_hashes = static_cast<uint32_t>(state.range(0));
  const uint32_t num_tokens = static_cast<uint32_t>(state.range(1));
  const MinHasher hasher(num_hashes, 42, MinHashMode::kDoubleHashing);
  const auto tokens = MakeTokens(num_tokens, 1);
  std::vector<uint64_t> signature(num_hashes);
  for (auto _ : state) {
    hasher.ComputeSignature(tokens, signature.data());
    benchmark::DoNotOptimize(signature.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tokens);
}
BENCHMARK(BM_MinHashSignature_DoubleHashing)
    ->Args({100, 100})
    ->Args({100, 400})
    ->Args({250, 100})
    ->Args({250, 400});

void BM_MinHashSignature_Independent(benchmark::State& state) {
  const uint32_t num_hashes = static_cast<uint32_t>(state.range(0));
  const uint32_t num_tokens = static_cast<uint32_t>(state.range(1));
  const MinHasher hasher(num_hashes, 42, MinHashMode::kIndependent);
  const auto tokens = MakeTokens(num_tokens, 1);
  std::vector<uint64_t> signature(num_hashes);
  for (auto _ : state) {
    hasher.ComputeSignature(tokens, signature.data());
    benchmark::DoNotOptimize(signature.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tokens);
}
BENCHMARK(BM_MinHashSignature_Independent)->Args({100, 100})->Args({250, 100});

void BM_OnePermutationSignature(benchmark::State& state) {
  const uint32_t num_bins = static_cast<uint32_t>(state.range(0));
  const uint32_t num_tokens = static_cast<uint32_t>(state.range(1));
  const OnePermutationMinHasher hasher(num_bins, 42);
  const auto tokens = MakeTokens(num_tokens, 1);
  std::vector<uint64_t> signature(num_bins);
  for (auto _ : state) {
    hasher.ComputeSignature(tokens, signature.data());
    benchmark::DoNotOptimize(signature.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tokens);
}
BENCHMARK(BM_OnePermutationSignature)
    ->Args({100, 100})
    ->Args({250, 100})
    ->Args({250, 400});

// ------------------------------------------------------ distance kernels --

void BM_MismatchDistance(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const auto a = MakeTokens(m, 1);
  const auto b = MakeTokens(m, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MismatchDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_MismatchDistance)->Arg(100)->Arg(200)->Arg(400)->Arg(2000);

void BM_BoundedMismatchDistance_TightBound(benchmark::State& state) {
  // The common case in a converged clustering: the bound is small and the
  // kernel exits within the first blocks.
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const auto a = MakeTokens(m, 1);
  const auto b = MakeTokens(m, 2);  // ~100% mismatches
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedMismatchDistance(a.data(), b.data(), m, 8));
  }
}
BENCHMARK(BM_BoundedMismatchDistance_TightBound)->Arg(100)->Arg(400)->Arg(2000);

void BM_BoundedMismatchDistance_LooseBound(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  const auto a = MakeTokens(m, 1);
  auto b = a;  // identical: never exits early
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedMismatchDistance(a.data(), b.data(), m, m + 1));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_BoundedMismatchDistance_LooseBound)->Arg(100)->Arg(400);

// --------------------------------------------------------- banding index --

CategoricalDataset BenchDataset(uint32_t n, uint32_t m, uint32_t k) {
  ConjunctiveDataOptions options;
  options.num_items = n;
  options.num_attributes = m;
  options.num_clusters = k;
  options.domain_size = 1000;
  options.seed = 3;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

void BM_IndexBuild(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const auto dataset = BenchDataset(n, 100, std::max(8u, n / 10));
  ShortlistIndexOptions options;
  options.banding = {20, 5};
  for (auto _ : state) {
    ClusterShortlistProvider provider(options, std::max(8u, n / 10));
    benchmark::DoNotOptimize(provider.Prepare(dataset).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_ShortlistQuery(benchmark::State& state) {
  const uint32_t n = 5000;
  const uint32_t k = 500;
  const auto dataset = BenchDataset(n, 100, k);
  ShortlistIndexOptions options;
  options.banding = {static_cast<uint32_t>(state.range(0)),
                     static_cast<uint32_t>(state.range(1))};
  ClusterShortlistProvider provider(options, k);
  if (!provider.Prepare(dataset).ok()) {
    state.SkipWithError("Prepare failed");
    return;
  }
  std::vector<uint32_t> assignment(n);
  for (uint32_t i = 0; i < n; ++i) assignment[i] = i % k;
  std::vector<uint32_t> shortlist;
  uint32_t item = 0;
  for (auto _ : state) {
    provider.GetCandidates(item, assignment, &shortlist);
    benchmark::DoNotOptimize(shortlist.data());
    item = (item + 1) % n;
  }
}
BENCHMARK(BM_ShortlistQuery)->Args({1, 1})->Args({20, 5})->Args({50, 5});

// ------------------------------------------------------------ mode update --

void BM_ModeRecompute(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t k = std::max(8u, n / 10);
  const auto dataset = BenchDataset(n, 100, k);
  ModeTable modes(k, 100);
  Rng rng(5);
  std::vector<uint32_t> assignment(n);
  for (uint32_t i = 0; i < n; ++i) assignment[i] = i % k;
  for (auto _ : state) {
    modes.RecomputeFromAssignment(dataset, assignment,
                                  EmptyClusterPolicy::kKeepPreviousMode, rng);
    benchmark::DoNotOptimize(modes.ModeData(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ModeRecompute)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------- flat hash map --

void BM_FlatHashMapInsert(benchmark::State& state) {
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    FlatHashMap64 map(count);
    for (uint32_t i = 0; i < count; ++i) {
      *map.FindOrInsert(Mix64(i), 0) = i;
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_FlatHashMapInsert)->Arg(1000)->Arg(100000);

void BM_FlatHashMapFind(benchmark::State& state) {
  const uint32_t count = 100000;
  FlatHashMap64 map(count);
  for (uint32_t i = 0; i < count; ++i) *map.FindOrInsert(Mix64(i), 0) = i;
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(Mix64(key)));
    key = (key + 1) % count;
  }
}
BENCHMARK(BM_FlatHashMapFind);

}  // namespace

BENCHMARK_MAIN();
