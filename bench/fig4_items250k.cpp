// Reproduces Figure 4: 250000 items, 100 attributes, 20000 clusters —
// scaling the item count. Methods are the paper's pair for this figure:
// MH-K-Modes 1b1r and 20b5r vs K-Modes. Panels: (a) average shortlist
// size, (b) moves, (c) time per iteration.

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace lshclust;
  using namespace lshclust::bench;

  FlagSet flags("fig4_items250k");
  DriverOptions driver;
  driver.Register(&flags);
  if (!driver.Parse(&flags, argc, argv)) return 0;

  const auto data = driver.ScaledData(250000, 100, 20000);
  RunSyntheticFigure(
      "Figure 4 (250k-item dataset)", data,
      {MHKModesSpec(1, 1), MHKModesSpec(20, 5), KModesSpec()}, driver,
      /*default_max_iterations=*/15,
      {IterationField::kShortlist, IterationField::kMoves,
       IterationField::kSeconds});
  return 0;
}
