// Tests for mixed-data clustering: MixedDataset, the mixed generator,
// K-Prototypes, and LSH-K-Prototypes (the paper's "combinations of both"
// future work).

#include <gtest/gtest.h>

#include "core/lsh_kprototypes.h"
#include "clustering/kprototypes.h"
#include "datagen/mixed_generator.h"
#include "metrics/metrics.h"

namespace lshclust {
namespace {

MixedDataset MakeMixed(uint32_t n, uint32_t k, uint64_t seed,
                       double min_rule = 0.6, double max_rule = 0.9,
                       double center_box = 30.0, double stddev = 1.0) {
  MixedDataOptions options;
  options.categorical.num_items = n;
  options.categorical.num_attributes = 12;
  options.categorical.num_clusters = k;
  options.categorical.domain_size = 500;
  options.categorical.min_rule_fraction = min_rule;
  options.categorical.max_rule_fraction = max_rule;
  options.categorical.seed = seed;
  options.numeric_dimensions = 8;
  options.center_box = center_box;
  options.stddev = stddev;
  return GenerateMixedData(options).ValueOrDie();
}

// ------------------------------------------------------- mixed dataset --

TEST(MixedDatasetTest, CombineValidatesItemCounts) {
  auto categorical = CategoricalDataset::FromCodes(2, 1, 4, {0, 1});
  auto numeric = NumericDataset::FromValues(3, 1, {1.0, 2.0, 3.0});
  ASSERT_TRUE(categorical.ok());
  ASSERT_TRUE(numeric.ok());
  EXPECT_TRUE(MixedDataset::Combine(*categorical, *numeric)
                  .status().IsInvalidArgument());
}

TEST(MixedDatasetTest, GeneratorAlignsModalitiesAndLabels) {
  const auto dataset = MakeMixed(120, 6, 3);
  EXPECT_EQ(dataset.num_items(), 120u);
  EXPECT_EQ(dataset.num_categorical(), 12u);
  EXPECT_EQ(dataset.num_numeric(), 8u);
  ASSERT_TRUE(dataset.has_labels());
  // Both modalities deal items round-robin, so label = item % k.
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    EXPECT_EQ(dataset.labels()[item], item % 6);
  }
}

// -------------------------------------------------------- k-prototypes --

TEST(KPrototypesTest, RecoversSeparatedMixedClusters) {
  const auto dataset = MakeMixed(200, 4, 5, 1.0, 1.0, 100.0, 0.2);
  KPrototypesOptions options;
  options.num_clusters = 4;
  options.gamma = 0.1;
  options.initial_seeds = {0, 1, 2, 3};
  const auto result = RunKPrototypes(dataset, options).ValueOrDie();
  EXPECT_TRUE(result.converged);
  const double purity =
      ComputePurity(result.assignment, dataset.labels()).ValueOrDie();
  EXPECT_DOUBLE_EQ(purity, 1.0);
}

TEST(KPrototypesTest, CostMonotoneNonIncreasing) {
  const auto dataset = MakeMixed(300, 15, 7, 0.4, 0.7, 5.0, 2.0);  // noisy
  KPrototypesOptions options;
  options.num_clusters = 15;
  options.gamma = 0.5;
  options.seed = 9;
  const auto result = RunKPrototypes(dataset, options).ValueOrDie();
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].cost,
              result.iterations[i - 1].cost + 1e-9);
  }
}

TEST(KPrototypesTest, GammaZeroIgnoresNumericSide) {
  // With gamma = 0 the numeric part contributes nothing; items identical
  // categorically but far apart numerically must co-cluster.
  const auto dataset = MakeMixed(100, 5, 11, 1.0, 1.0, 100.0, 0.1);
  KPrototypesOptions options;
  options.num_clusters = 5;
  options.gamma = 0.0;
  options.initial_seeds = {0, 1, 2, 3, 4};
  const auto result = RunKPrototypes(dataset, options).ValueOrDie();
  const double purity =
      ComputePurity(result.assignment, dataset.labels()).ValueOrDie();
  EXPECT_DOUBLE_EQ(purity, 1.0);  // the categorical rules alone separate
}

TEST(KPrototypesTest, LargeGammaFollowsNumericSide) {
  // Categorical part pure noise (rules cover ~nothing... emulate with
  // tiny rule fraction), numeric well separated: large gamma must still
  // recover the blobs.
  MixedDataOptions options;
  options.categorical.num_items = 150;
  options.categorical.num_attributes = 8;
  options.categorical.num_clusters = 3;
  options.categorical.domain_size = 4;  // noisy categorical
  options.categorical.min_rule_fraction = 0.0;
  options.categorical.max_rule_fraction = 0.15;
  options.categorical.seed = 13;
  options.numeric_dimensions = 6;
  options.center_box = 60.0;
  options.stddev = 0.3;
  const auto dataset = GenerateMixedData(options).ValueOrDie();

  KPrototypesOptions clustering;
  clustering.num_clusters = 3;
  clustering.gamma = 100.0;
  clustering.initial_seeds = {0, 1, 2};
  const auto result = RunKPrototypes(dataset, clustering).ValueOrDie();
  const double purity =
      ComputePurity(result.assignment, dataset.labels()).ValueOrDie();
  EXPECT_GT(purity, 0.95);
}

TEST(KPrototypesTest, ValidatesOptions) {
  const auto dataset = MakeMixed(50, 5, 17);
  KPrototypesOptions options;
  options.num_clusters = 0;
  EXPECT_TRUE(RunKPrototypes(dataset, options).status().IsInvalidArgument());
  options.num_clusters = 5;
  options.gamma = -1.0;
  EXPECT_TRUE(RunKPrototypes(dataset, options).status().IsInvalidArgument());
  options.gamma = 1.0;
  options.initial_seeds = {1, 2};
  EXPECT_TRUE(RunKPrototypes(dataset, options).status().IsInvalidArgument());
}

// ---------------------------------------------------- LSH-K-Prototypes --

TEST(LshKPrototypesTest, MatchesBaselineOnSeparatedData) {
  const auto dataset = MakeMixed(240, 6, 19, 1.0, 1.0, 80.0, 0.3);
  KPrototypesOptions base;
  base.num_clusters = 6;
  base.gamma = 0.2;
  base.initial_seeds = {0, 1, 2, 3, 4, 5};

  const auto baseline = RunKPrototypes(dataset, base).ValueOrDie();

  LshKPrototypesOptions options;
  options.kprototypes = base;
  const auto accelerated = RunLshKPrototypes(dataset, options).ValueOrDie();

  EXPECT_EQ(baseline.assignment, accelerated.assignment);
  EXPECT_DOUBLE_EQ(baseline.final_cost, accelerated.final_cost);
}

TEST(LshKPrototypesTest, ShortlistsSmallerThanK) {
  const auto dataset = MakeMixed(600, 60, 23);
  LshKPrototypesOptions options;
  options.kprototypes.num_clusters = 60;
  options.kprototypes.gamma = 0.5;
  options.kprototypes.seed = 25;
  const auto result = RunLshKPrototypes(dataset, options).ValueOrDie();
  ASSERT_FALSE(result.iterations.empty());
  for (const auto& iteration : result.iterations) {
    EXPECT_GE(iteration.mean_shortlist, 1.0);
    EXPECT_LT(iteration.mean_shortlist, 60.0);
  }
}

TEST(LshKPrototypesTest, EitherModalityCanSupplyCandidates) {
  // Two items identical numerically but categorically disjoint must still
  // see each other's clusters (union of modalities).
  auto categorical = CategoricalDataset::FromCodes(
                         2, 2, 40, {1, 2, 21, 22})
                         .ValueOrDie();
  auto numeric =
      NumericDataset::FromValues(2, 3, {1.0, 2.0, 3.0, 1.0, 2.0, 3.0})
          .ValueOrDie();
  const auto dataset =
      MixedDataset::Combine(std::move(categorical), std::move(numeric))
          .ValueOrDie();

  MixedIndexOptions options;
  MixedShortlistProvider provider(options, 2);
  ASSERT_TRUE(provider.Prepare(dataset).ok());
  const std::vector<uint32_t> assignment{0, 1};
  std::vector<uint32_t> shortlist;
  provider.GetCandidates(0, assignment, &shortlist);
  EXPECT_NE(std::find(shortlist.begin(), shortlist.end(), 1u),
            shortlist.end())
      << "numeric similarity failed to contribute candidates";
}

TEST(LshKPrototypesTest, CostMonotoneNonIncreasing) {
  const auto dataset = MakeMixed(400, 20, 29, 0.5, 0.8, 8.0, 1.5);
  LshKPrototypesOptions options;
  options.kprototypes.num_clusters = 20;
  options.kprototypes.gamma = 0.4;
  options.kprototypes.seed = 31;
  const auto result = RunLshKPrototypes(dataset, options).ValueOrDie();
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].cost,
              result.iterations[i - 1].cost + 1e-9);
  }
}

}  // namespace
}  // namespace lshclust
