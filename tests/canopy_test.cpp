// Tests for canopy clustering (clustering/canopy.h) and Canopy-K-Modes
// (core/canopy_kmodes.h) — the related-work accelerator baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clustering/kmodes.h"
#include "core/canopy_kmodes.h"
#include "datagen/conjunctive_generator.h"
#include "metrics/metrics.h"

namespace lshclust {
namespace {

CategoricalDataset MakeData(uint32_t n, uint32_t k, uint64_t seed,
                            double min_rule = 0.6, double max_rule = 0.9) {
  ConjunctiveDataOptions options;
  options.num_items = n;
  options.num_attributes = 20;
  options.num_clusters = k;
  options.domain_size = 1000;
  options.min_rule_fraction = min_rule;
  options.max_rule_fraction = max_rule;
  options.seed = seed;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

TEST(CanopyTest, EveryItemIsCovered) {
  const auto dataset = MakeData(300, 15, 3);
  CanopyOptions options;
  options.seed = 5;
  const auto index = CanopyIndex::Build(dataset, options).ValueOrDie();
  EXPECT_GT(index.num_canopies(), 0u);
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    EXPECT_GE(index.CanopiesOf(item).size(), 1u) << "item " << item;
  }
}

TEST(CanopyTest, MembershipListsAreConsistent) {
  const auto dataset = MakeData(200, 10, 7);
  CanopyOptions options;
  options.seed = 9;
  const auto index = CanopyIndex::Build(dataset, options).ValueOrDie();
  // item -> canopies and canopy -> items must be inverses.
  for (uint32_t canopy = 0; canopy < index.num_canopies(); ++canopy) {
    for (const uint32_t item : index.CanopyMembers(canopy)) {
      const auto canopies = index.CanopiesOf(item);
      EXPECT_NE(std::find(canopies.begin(), canopies.end(), canopy),
                canopies.end());
    }
  }
  for (uint32_t item = 0; item < dataset.num_items(); ++item) {
    for (const uint32_t canopy : index.CanopiesOf(item)) {
      const auto members = index.CanopyMembers(canopy);
      EXPECT_NE(std::find(members.begin(), members.end(), item),
                members.end());
    }
  }
}

TEST(CanopyTest, IdenticalItemsShareACanopy) {
  auto dataset = CategoricalDataset::FromCodes(
                     4, 4, 40,
                     {1, 2, 3, 4,      //
                      1, 2, 3, 4,      // identical to item 0
                      10, 11, 12, 13,  //
                      20, 21, 22, 23})
                     .ValueOrDie();
  CanopyOptions options;
  options.cheap_attributes = 4;
  options.seed = 3;
  const auto index = CanopyIndex::Build(dataset, options).ValueOrDie();
  bool shared = false;
  for (const uint32_t canopy : index.CanopiesOf(0)) {
    const auto members = index.CanopyMembers(canopy);
    if (std::find(members.begin(), members.end(), 1u) != members.end()) {
      shared = true;
    }
  }
  EXPECT_TRUE(shared);
}

TEST(CanopyTest, LooserThresholdGrowsCanopies) {
  const auto dataset = MakeData(300, 15, 11);
  CanopyOptions tight;
  tight.loose_fraction = 0.5;
  tight.tight_fraction = 0.3;
  tight.seed = 13;
  CanopyOptions loose;
  loose.loose_fraction = 1.0;  // everything joins every canopy
  loose.tight_fraction = 0.9;
  loose.seed = 13;
  const auto small = CanopyIndex::Build(dataset, tight).ValueOrDie();
  const auto large = CanopyIndex::Build(dataset, loose).ValueOrDie();
  EXPECT_GE(large.MeanCanopySize(), small.MeanCanopySize());
}

TEST(CanopyTest, ValidatesOptions) {
  const auto dataset = MakeData(50, 5, 17);
  CanopyOptions options;
  options.tight_fraction = 0.9;
  options.loose_fraction = 0.5;  // tight > loose
  EXPECT_TRUE(CanopyIndex::Build(dataset, options)
                  .status().IsInvalidArgument());
  options = CanopyOptions{};
  options.cheap_attributes = 0;
  EXPECT_TRUE(CanopyIndex::Build(dataset, options)
                  .status().IsInvalidArgument());
}

TEST(CanopyTest, DeterministicPerSeed) {
  const auto dataset = MakeData(150, 8, 19);
  CanopyOptions options;
  options.seed = 21;
  const auto a = CanopyIndex::Build(dataset, options).ValueOrDie();
  const auto b = CanopyIndex::Build(dataset, options).ValueOrDie();
  ASSERT_EQ(a.num_canopies(), b.num_canopies());
  for (uint32_t canopy = 0; canopy < a.num_canopies(); ++canopy) {
    const auto ma = a.CanopyMembers(canopy);
    const auto mb = b.CanopyMembers(canopy);
    EXPECT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin(), mb.end()));
  }
}

// --------------------------------------------------- canopy-k-modes --

TEST(CanopyKModesTest, ProducesValidClusteringWithSmallShortlists) {
  const auto dataset = MakeData(600, 60, 23);
  CanopyKModesOptions options;
  options.engine.num_clusters = 60;
  options.engine.seed = 25;
  options.canopy.seed = 27;
  const auto result = RunCanopyKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(result.assignment.size(), dataset.num_items());
  for (const auto& iteration : result.iterations) {
    EXPECT_GE(iteration.mean_shortlist, 1.0);
    EXPECT_LE(iteration.mean_shortlist, 60.0);
  }
}

TEST(CanopyKModesTest, CostMonotoneNonIncreasing) {
  const auto dataset = MakeData(400, 30, 29);
  CanopyKModesOptions options;
  options.engine.num_clusters = 30;
  options.engine.seed = 31;
  const auto result = RunCanopyKModes(dataset, options).ValueOrDie();
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LE(result.iterations[i].cost, result.iterations[i - 1].cost);
  }
}

TEST(CanopyKModesTest, MatchesKModesOnSeparatedData) {
  const auto dataset = MakeData(200, 4, 33, 1.0, 1.0);
  EngineOptions engine;
  engine.num_clusters = 4;
  engine.initial_seeds = {0, 1, 2, 3};
  const auto baseline = RunKModes(dataset, engine).ValueOrDie();

  CanopyKModesOptions options;
  options.engine = engine;
  const auto canopy = RunCanopyKModes(dataset, options).ValueOrDie();
  EXPECT_EQ(baseline.assignment, canopy.assignment);
  EXPECT_EQ(canopy.final_cost, 0.0);
}

TEST(CanopyKModesTest, ComparablePurityToBaseline) {
  const auto dataset = MakeData(500, 25, 35);
  EngineOptions engine;
  engine.num_clusters = 25;
  engine.seed = 37;
  const auto baseline = RunKModes(dataset, engine).ValueOrDie();
  CanopyKModesOptions options;
  options.engine = engine;
  const auto canopy = RunCanopyKModes(dataset, options).ValueOrDie();
  const double purity_baseline =
      ComputePurity(baseline.assignment, dataset.labels()).ValueOrDie();
  const double purity_canopy =
      ComputePurity(canopy.assignment, dataset.labels()).ValueOrDie();
  EXPECT_GE(purity_canopy, purity_baseline - 0.15);
}

}  // namespace
}  // namespace lshclust
