// Compiles the umbrella header and exercises one symbol from each layer,
// guarding against the umbrella drifting out of sync with the tree.

#include "lshclust.h"

#include <gtest/gtest.h>

namespace lshclust {
namespace {

TEST(UmbrellaTest, EveryLayerIsReachable) {
  // util
  EXPECT_TRUE(Status::OK().ok());
  // hashing
  const MinHasher hasher(4, 1);
  EXPECT_EQ(hasher.num_hashes(), 4u);
  // lsh
  EXPECT_GT(CandidatePairProbability(0.5, BandingParams{20, 5}), 0.0);
  // data
  CategoricalDatasetBuilder builder({"a"});
  EXPECT_TRUE(builder.AddRow(std::vector<std::string>{"x"}).ok());
  // datagen
  ConjunctiveDataOptions data;
  data.num_items = 16;
  data.num_attributes = 4;
  data.num_clusters = 2;
  data.domain_size = 8;
  EXPECT_TRUE(GenerateConjunctiveRuleData(data).ok());
  // text
  Tokenizer tokenizer;
  EXPECT_FALSE(tokenizer.TokenizeToStrings("zoologist zoo").empty());
  // clustering
  EXPECT_EQ(MismatchDistance(std::vector<uint32_t>{1, 2},
                             std::vector<uint32_t>{1, 3}),
            1u);
  // metrics
  EXPECT_DOUBLE_EQ(
      ComputePurity(std::vector<uint32_t>{0, 1}, std::vector<uint32_t>{5, 6})
          .ValueOrDie(),
      1.0);
  // core
  MHKModesOptions options;
  EXPECT_EQ(options.index.banding.num_hashes(), 100u);  // 20b x 5r default
}

}  // namespace
}  // namespace lshclust
