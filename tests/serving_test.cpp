// Tests of the lock-free serving layer (src/serving/):
//
//  * Golden routing: FrozenModel::Route is bit-identical to PredictRouted
//    on the fitted state it snapshotted, for every index-carrying
//    accelerator family and at fit threads {1, 4}; exhaustive snapshots
//    equal plain Predict.
//  * Lifetime: a snapshot is a deep copy — it keeps routing identically
//    after the Clusterer refits (while the IndexHandle from the old fit
//    observably invalidates) and after the Clusterer is destroyed.
//  * ModelServer: Publish stamps strictly monotone versions; Acquire
//    returns the latest snapshot; a concurrent reader/writer pileup (the
//    TSan target) sees coherent, per-version bit-identical results with
//    zero locks on the query path.
//  * Streaming: the publish-every-N-ingests hook fires at the documented
//    cadence.
//  * bench::Percentile (bench/common.h), used by bench/serving_qps.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/clusterer.h"
#include "bench/common.h"
#include "datagen/conjunctive_generator.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/mixed_generator.h"
#include "serving/frozen_model.h"
#include "serving/model_server.h"

namespace lshclust {
namespace {

using serving::FrozenModel;
using serving::ModelServer;

// ---------------------------------------------------------- percentile ----

TEST(PercentileTest, EmptyAndSingle) {
  EXPECT_EQ(bench::Percentile({}, 0.5), 0.0);
  const double one[] = {5.0};
  EXPECT_EQ(bench::Percentile(one, 0.0), 5.0);
  EXPECT_EQ(bench::Percentile(one, 0.5), 5.0);
  EXPECT_EQ(bench::Percentile(one, 1.0), 5.0);
}

TEST(PercentileTest, LinearInterpolationBetweenClosestRanks) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(bench::Percentile(values, 0.5), 2.5);
  EXPECT_EQ(bench::Percentile(values, 0.0), 1.0);
  EXPECT_EQ(bench::Percentile(values, 1.0), 4.0);
  // rank = 0.25 * 3 = 0.75: three quarters of the way from 1 to 2.
  EXPECT_EQ(bench::Percentile(values, 0.25), 1.75);

  const double odd[] = {1.0, 2.0, 3.0};
  EXPECT_EQ(bench::Percentile(odd, 0.5), 2.0);
  EXPECT_EQ(bench::Percentile(odd, 0.25), 1.5);
}

TEST(PercentileTest, UnsortedInputAndClampedQuantile) {
  const double values[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(bench::Percentile(values, 0.5), 2.5);
  EXPECT_EQ(bench::Percentile(values, -0.5), 1.0);
  EXPECT_EQ(bench::Percentile(values, 1.5), 4.0);
}

// ------------------------------------------------------------ fixtures ----

CategoricalDataset CategoricalAll() {
  ConjunctiveDataOptions options;
  options.num_items = 360;
  options.num_attributes = 12;
  options.num_clusters = 8;
  options.domain_size = 40;
  options.seed = 17;
  return GenerateConjunctiveRuleData(options).ValueOrDie();
}

CategoricalDataset SliceCategorical(const CategoricalDataset& all,
                                    uint32_t begin, uint32_t count) {
  const uint32_t m = all.num_attributes();
  std::vector<uint32_t> codes(
      all.codes().begin() + static_cast<size_t>(begin) * m,
      all.codes().begin() + static_cast<size_t>(begin + count) * m);
  return CategoricalDataset::FromCodes(count, m, all.num_codes(),
                                       std::move(codes))
      .ValueOrDie();
}

NumericDataset SliceNumeric(const NumericDataset& all, uint32_t begin,
                            uint32_t count) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(count) * all.dimensions());
  for (uint32_t item = begin; item < begin + count; ++item) {
    const auto row = all.Row(item);
    values.insert(values.end(), row.begin(), row.end());
  }
  return NumericDataset::FromValues(count, all.dimensions(), std::move(values))
      .ValueOrDie();
}

EngineOptions BaseEngine(uint32_t k, uint32_t threads) {
  EngineOptions engine;
  engine.num_clusters = k;
  engine.max_iterations = 6;
  engine.seed = 5;
  engine.num_threads = threads;
  engine.chunk_size = 64;
  return engine;
}

/// Fits `spec` on `fit_data`, takes a snapshot, and proves Route is
/// bit-identical to PredictRouted on `arrivals` (and that RouteInto with a
/// caller-held scratch matches the convenience Route).
template <typename Dataset>
void ExpectSnapshotParity(const ClustererSpec& spec, const Dataset& fit_data,
                          const Dataset& arrivals) {
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok()) << clusterer.status().ToString();
  ASSERT_TRUE(clusterer->Fit(fit_data).ok());

  auto routed = clusterer->PredictRouted(arrivals);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();

  auto snapshot = clusterer->Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const FrozenModel& model = **snapshot;
  EXPECT_EQ(model.num_clusters(), spec.engine.num_clusters);
  EXPECT_GT(model.memory_bytes(), 0u);
  EXPECT_LE(model.sketch_memory_bytes(), model.memory_bytes());
  EXPECT_EQ(model.version(), 0u);  // unpublished

  auto via_route = model.Route(arrivals);
  ASSERT_TRUE(via_route.ok()) << via_route.status().ToString();
  EXPECT_EQ(*via_route, *routed);

  // Caller-held scratch, twice in a row (the second call runs fully warm).
  auto scratch = model.MakeScratch();
  std::vector<uint32_t> out(arrivals.num_items());
  ASSERT_TRUE(model.RouteInto(arrivals, *scratch, out).ok());
  EXPECT_EQ(out, *routed);
  ASSERT_TRUE(model.RouteInto(arrivals, *scratch, out).ok());
  EXPECT_EQ(out, *routed);
}

// --------------------------------------------------------- golden route ----

TEST(ServingGoldenTest, CategoricalMinHashRouteMatchesPredictRouted) {
  const auto all = CategoricalAll();
  const auto fit_data = SliceCategorical(all, 0, 300);
  const auto arrivals = SliceCategorical(all, 300, 60);
  for (const uint32_t threads : {1u, 4u}) {
    for (const bool sketch : {false, true}) {
      ClustererSpec spec;
      spec.modality = Modality::kCategorical;
      spec.accelerator = Accelerator::kMinHash;
      spec.engine = BaseEngine(8, threads);
      spec.minhash.banding = {8, 2};
      spec.minhash.sketch.enabled = sketch;
      ExpectSnapshotParity(spec, fit_data, arrivals);
    }
  }
}

TEST(ServingGoldenTest, NumericSimHashRouteMatchesPredictRouted) {
  GaussianMixtureOptions options;
  options.num_items = 300;
  options.dimensions = 6;
  options.num_clusters = 6;
  options.stddev = 0.4;
  options.seed = 31;
  const auto all = GenerateGaussianMixture(options).ValueOrDie();
  const auto fit_data = SliceNumeric(all, 0, 240);
  const auto arrivals = SliceNumeric(all, 240, 60);
  for (const uint32_t threads : {1u, 4u}) {
    ClustererSpec spec;
    spec.modality = Modality::kNumeric;
    spec.accelerator = Accelerator::kSimHash;
    spec.engine = BaseEngine(6, threads);
    spec.simhash.banding = {6, 3};
    ExpectSnapshotParity(spec, fit_data, arrivals);
  }
}

TEST(ServingGoldenTest, MixedConcatRouteMatchesPredictRouted) {
  MixedDataOptions options;
  options.categorical.num_items = 260;
  options.categorical.num_attributes = 8;
  options.categorical.num_clusters = 5;
  options.categorical.domain_size = 25;
  options.categorical.seed = 41;
  options.numeric_dimensions = 4;
  options.stddev = 0.5;
  const auto all = GenerateMixedData(options).ValueOrDie();
  const auto fit_data =
      MixedDataset::Combine(SliceCategorical(all.categorical(), 0, 200),
                            SliceNumeric(all.numeric(), 0, 200))
          .ValueOrDie();
  const auto arrivals =
      MixedDataset::Combine(SliceCategorical(all.categorical(), 200, 60),
                            SliceNumeric(all.numeric(), 200, 60))
          .ValueOrDie();
  for (const uint32_t threads : {1u, 4u}) {
    ClustererSpec spec;
    spec.modality = Modality::kMixed;
    spec.accelerator = Accelerator::kMixedConcat;
    spec.engine = BaseEngine(5, threads);
    spec.gamma = 0.5;
    spec.mixed_index.categorical_banding = {8, 2};
    spec.mixed_index.numeric_banding = {4, 8};
    ExpectSnapshotParity(spec, fit_data, arrivals);
  }
}

TEST(ServingGoldenTest, ExhaustiveSnapshotMatchesPredict) {
  const auto all = CategoricalAll();
  const auto fit_data = SliceCategorical(all, 0, 300);
  const auto arrivals = SliceCategorical(all, 300, 60);
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kExhaustive;
  spec.engine = BaseEngine(8, 1);
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  ASSERT_TRUE(clusterer->Fit(fit_data).ok());
  auto predicted = clusterer->Predict(arrivals);
  ASSERT_TRUE(predicted.ok());

  auto snapshot = clusterer->Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_FALSE((*snapshot)->has_index());
  auto routed = (*snapshot)->Route(arrivals);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(*routed, *predicted);
}

// ------------------------------------------------------------- lifetime ----

TEST(ServingLifetimeTest, SnapshotSurvivesRefitWhileHandleInvalidates) {
  const auto all = CategoricalAll();
  const auto fit_a = SliceCategorical(all, 0, 200);
  const auto fit_b = SliceCategorical(all, 100, 200);
  const auto arrivals = SliceCategorical(all, 300, 60);

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1);
  spec.minhash.banding = {8, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  ASSERT_TRUE(clusterer->Fit(fit_a).ok());

  auto handle = clusterer->index();
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(handle->valid());

  auto snapshot = clusterer->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  auto before = (*snapshot)->Route(arrivals);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, *clusterer->PredictRouted(arrivals));

  // Refit on different data: the view invalidates, the copy keeps serving
  // the old fit's answers.
  ASSERT_TRUE(clusterer->Fit(fit_b).ok());
  EXPECT_FALSE(handle->valid());
  auto after = (*snapshot)->Route(arrivals);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);

  // A rejected fit (k > n) must invalidate nothing.
  auto fresh = clusterer->index();
  ASSERT_TRUE(fresh.ok());
  const auto tiny = SliceCategorical(all, 0, 4);
  ASSERT_FALSE(clusterer->Fit(tiny).ok());
  EXPECT_TRUE(fresh->valid());
}

TEST(ServingLifetimeTest, SnapshotOutlivesItsClusterer) {
  const auto all = CategoricalAll();
  const auto fit_data = SliceCategorical(all, 0, 300);
  const auto arrivals = SliceCategorical(all, 300, 60);
  std::shared_ptr<const FrozenModel> snapshot;
  std::vector<uint32_t> expected;
  {
    ClustererSpec spec;
    spec.modality = Modality::kCategorical;
    spec.accelerator = Accelerator::kMinHash;
    spec.engine = BaseEngine(8, 1);
    spec.minhash.banding = {8, 2};
    auto clusterer = Clusterer::Create(spec);
    ASSERT_TRUE(clusterer.ok());
    ASSERT_TRUE(clusterer->Fit(fit_data).ok());
    expected = *clusterer->PredictRouted(arrivals);
    snapshot = *clusterer->Snapshot();
  }  // Clusterer destroyed; the snapshot aliases none of its state.
  auto routed = snapshot->Route(arrivals);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(*routed, expected);
}

TEST(ServingLifetimeTest, SnapshotRequiresFit) {
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.engine.num_clusters = 4;
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  EXPECT_EQ(clusterer->Snapshot().status().code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- errors ----

TEST(ServingErrorsTest, WrongModalityAndShapeAreRejected) {
  const auto all = CategoricalAll();
  const auto fit_data = SliceCategorical(all, 0, 300);
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1);
  spec.minhash.banding = {8, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  ASSERT_TRUE(clusterer->Fit(fit_data).ok());
  auto snapshot = clusterer->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const FrozenModel& model = **snapshot;

  // Wrong modality: a categorical snapshot cannot route numeric queries.
  GaussianMixtureOptions numeric;
  numeric.num_items = 8;
  numeric.dimensions = 3;
  numeric.num_clusters = 2;
  const auto wrong = GenerateGaussianMixture(numeric).ValueOrDie();
  EXPECT_EQ(model.Route(wrong).status().code(), StatusCode::kInvalidArgument);

  // Wrong width.
  const auto skinny =
      CategoricalDataset::FromCodes(2, 2, 40, {0, 1, 2, 3}).ValueOrDie();
  EXPECT_EQ(model.Route(skinny).status().code(), StatusCode::kInvalidArgument);

  // Mis-sized output span.
  const auto arrivals = SliceCategorical(all, 300, 60);
  auto scratch = model.MakeScratch();
  std::vector<uint32_t> short_out(10);
  EXPECT_EQ(model.RouteInto(arrivals, *scratch, short_out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServingErrorsTest, ScratchIsReusableAcrossModels) {
  const auto all = CategoricalAll();
  const auto arrivals = SliceCategorical(all, 300, 60);

  // Two snapshots from different fits (different data, different banding):
  // one reader scratch serves both, resizing itself on first use — the
  // property that lets a reader survive a ModelServer swap allocation-free.
  auto make_snapshot = [&](uint32_t begin, uint32_t bands, uint32_t rows) {
    ClustererSpec spec;
    spec.modality = Modality::kCategorical;
    spec.accelerator = Accelerator::kMinHash;
    spec.engine = BaseEngine(8, 1);
    spec.minhash.banding = {bands, rows};
    auto clusterer = Clusterer::Create(spec);
    EXPECT_TRUE(clusterer.ok());
    EXPECT_TRUE(clusterer->Fit(SliceCategorical(all, begin, 200)).ok());
    return *clusterer->Snapshot();
  };
  const auto model_a = make_snapshot(0, 8, 2);
  const auto model_b = make_snapshot(100, 4, 3);

  auto scratch = model_a->MakeScratch();
  std::vector<uint32_t> out(arrivals.num_items());
  ASSERT_TRUE(model_a->RouteInto(arrivals, *scratch, out).ok());
  EXPECT_EQ(out, *model_a->Route(arrivals));
  ASSERT_TRUE(model_b->RouteInto(arrivals, *scratch, out).ok());
  EXPECT_EQ(out, *model_b->Route(arrivals));
  ASSERT_TRUE(model_a->RouteInto(arrivals, *scratch, out).ok());
  EXPECT_EQ(out, *model_a->Route(arrivals));
}

// ---------------------------------------------------------- model server ----

TEST(ModelServerTest, PublishStampsMonotoneVersionsAndAcquireSeesLatest) {
  const auto all = CategoricalAll();
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1);
  spec.minhash.banding = {8, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());

  ModelServer server;
  EXPECT_EQ(server.version(), 0u);
  EXPECT_EQ(server.Acquire(), nullptr);

  ASSERT_TRUE(clusterer->Fit(SliceCategorical(all, 0, 200)).ok());
  auto first = *clusterer->Snapshot();
  EXPECT_EQ(server.Publish(first), 1u);
  EXPECT_EQ(first->version(), 1u);
  EXPECT_EQ(server.version(), 1u);
  EXPECT_EQ(server.Acquire().get(), first.get());

  ASSERT_TRUE(clusterer->Fit(SliceCategorical(all, 100, 200)).ok());
  auto second = *clusterer->Snapshot();
  EXPECT_EQ(server.Publish(second), 2u);
  EXPECT_EQ(second->version(), 2u);
  EXPECT_EQ(server.Acquire().get(), second.get());
  // The replaced snapshot keeps its stamp and keeps working.
  EXPECT_EQ(first->version(), 1u);
}

// The TSan target: M readers route batches through their per-thread
// ModelServer::Reader + scratch while a writer publishes K snapshots.
// The query path takes no locks (Reader::Current is one atomic version
// load while the version is unchanged); every routed batch must be
// bit-identical to the pre-computed expectation of the exact snapshot
// version it acquired, and versions must be monotone per reader.
TEST(ModelServerTest, ConcurrentReadersSeeCoherentBitIdenticalVersions) {
  const auto all = CategoricalAll();
  const auto arrivals = SliceCategorical(all, 300, 60);

  constexpr int kSnapshots = 6;
  std::vector<std::shared_ptr<const FrozenModel>> snapshots;
  std::vector<std::vector<uint32_t>> expected;
  for (int i = 0; i < kSnapshots; ++i) {
    ClustererSpec spec;
    spec.modality = Modality::kCategorical;
    spec.accelerator = Accelerator::kMinHash;
    spec.engine = BaseEngine(8, 1);
    spec.engine.seed = 5 + static_cast<uint64_t>(i);
    spec.minhash.banding = {8, 2};
    auto clusterer = Clusterer::Create(spec);
    ASSERT_TRUE(clusterer.ok());
    ASSERT_TRUE(
        clusterer->Fit(SliceCategorical(all, 10u * static_cast<uint32_t>(i),
                                        250))
            .ok());
    snapshots.push_back(*clusterer->Snapshot());
    expected.push_back(*snapshots.back()->Route(arrivals));
  }

  ModelServer server;
  server.Publish(snapshots[0]);

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> version_regressions{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      ModelServer::Reader reader(server);
      std::unique_ptr<FrozenModel::RouteScratch> scratch;
      std::vector<uint32_t> out(arrivals.num_items());
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const FrozenModel>& model = reader.Current();
        const uint64_t version = model->version();
        if (version < last_version) version_regressions.fetch_add(1);
        last_version = version;
        if (scratch == nullptr) scratch = model->MakeScratch();
        if (!model->RouteInto(arrivals, *scratch, out).ok() ||
            out != expected[version - 1]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }

  // Writer: publish the remaining snapshots, yielding between swaps so
  // readers interleave with several distinct versions.
  for (int i = 1; i < kSnapshots; ++i) {
    std::this_thread::yield();
    EXPECT_EQ(server.Publish(snapshots[i]), static_cast<uint64_t>(i + 1));
  }
  // Let readers route against the final version too.
  std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(version_regressions.load(), 0);
}

// ------------------------------------------------------------ streaming ----

TEST(ServingStreamingTest, PublishEveryNIngestsFiresAtDocumentedCadence) {
  const auto all = CategoricalAll();
  const auto warmup = SliceCategorical(all, 0, 200);
  const uint32_t m = all.num_attributes();

  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1);
  spec.minhash.banding = {8, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());

  ModelServer server;
  StreamingSessionOptions session_options;
  session_options.publish_to = &server;
  session_options.publish_every = 3;
  auto session = clusterer->MakeStreamingSession(warmup, session_options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(server.version(), 0u);  // no publish before the first ingest

  // Ten single-row ingests at publish_every=3: publishes after rows 3, 6
  // and 9 (the counter restarts from zero each publish).
  for (uint32_t row = 0; row < 10; ++row) {
    const std::span<const uint32_t> codes(
        all.codes().data() + static_cast<size_t>(200 + row) * m, m);
    ASSERT_TRUE(session->Ingest(codes).ok());
  }
  EXPECT_EQ(server.version(), 3u);

  // A micro-batch counts all its rows at once: 1 carried + 7 more crosses
  // the threshold exactly once, not twice.
  const std::span<const uint32_t> batch(
      all.codes().data() + static_cast<size_t>(210) * m,
      static_cast<size_t>(7) * m);
  ASSERT_TRUE(session->IngestBatch(batch).ok());
  EXPECT_EQ(server.version(), 4u);

  // The published snapshot is the session's current state: it routes the
  // warmup items and agrees with an explicit Snapshot() taken now.
  const std::shared_ptr<const FrozenModel> published = server.Acquire();
  ASSERT_NE(published, nullptr);
  EXPECT_TRUE(published->has_index());
  auto manual = session->Snapshot();
  ASSERT_TRUE(manual.ok());
  auto from_published = published->Route(warmup);
  auto from_manual = (*manual)->Route(warmup);
  ASSERT_TRUE(from_published.ok());
  ASSERT_TRUE(from_manual.ok());
  EXPECT_EQ(*from_published, *from_manual);
}

TEST(ServingStreamingTest, NoServerMeansNoPublishes) {
  const auto all = CategoricalAll();
  const auto warmup = SliceCategorical(all, 0, 200);
  ClustererSpec spec;
  spec.modality = Modality::kCategorical;
  spec.accelerator = Accelerator::kMinHash;
  spec.engine = BaseEngine(8, 1);
  spec.minhash.banding = {8, 2};
  auto clusterer = Clusterer::Create(spec);
  ASSERT_TRUE(clusterer.ok());
  // publish_every set but no server: the hook stays dormant (and vice
  // versa a server with publish_every=0 never fires).
  StreamingSessionOptions session_options;
  session_options.publish_every = 1;
  auto session = clusterer->MakeStreamingSession(warmup, session_options);
  ASSERT_TRUE(session.ok());
  const uint32_t m = all.num_attributes();
  const std::span<const uint32_t> row(
      all.codes().data() + static_cast<size_t>(200) * m, m);
  EXPECT_TRUE(session->Ingest(row).ok());
}

}  // namespace
}  // namespace lshclust
