// Fuzz harness for the model-file decoder (persist/model_io.h).
//
// The decoder is the one place in the library that parses attacker-shaped
// bytes: a serving process warm-starts from whatever file it is pointed
// at, so `DecodeModelBytes` must reject arbitrary corruption with a typed
// Status — never crash, never over-read, never construct a half-valid
// model. This harness feeds it raw bytes and, whenever a mutated image
// still decodes, pushes the result through the downstream reconstruction
// paths (mode/centroid tables, per-family routing rebuild) which must
// likewise fail closed.
//
// Two build modes (CMake: LSHCLUST_FUZZER_ENGINE):
//  * libFuzzer (clang, -fsanitize=fuzzer): CI's static-analysis job runs
//    a guarded 30-60s smoke, seeded with saved-model corpus files.
//  * standalone (LSHCLUST_FUZZ_STANDALONE): a plain binary that replays
//    corpus files given as argv, and with --mutate=N additionally runs N
//    deterministic byte-level mutations (seeded LCG — reproducible) of
//    each input through the decoder. This mode runs under any compiler
//    and is wired into ctest as fuzz_smoke_test.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "persist/model_io.h"

namespace {

// Exercise one input image end to end. Must be total: any return is fine,
// any crash/sanitizer report is a harness failure.
void DriveDecoder(std::span<const uint8_t> data) {
  lshclust::Result<lshclust::persist::DecodedModel> decoded =
      lshclust::persist::DecodeModelBytes(data);
  if (!decoded.ok()) return;

  // The image decoded: the downstream builders must either succeed or
  // fail closed too (they re-validate cross-section invariants).
  lshclust::persist::DecodedModel model = std::move(decoded).ValueOrDie();
  (void)lshclust::persist::BuildModeTable(model);
  (void)lshclust::persist::BuildCentroidTable(model);
  switch (model.family) {
    case lshclust::persist::ModelFamilyKind::kMinHash:
      (void)lshclust::persist::BuildMinHashRouting(std::move(model));
      break;
    case lshclust::persist::ModelFamilyKind::kSimHash:
      (void)lshclust::persist::BuildSimHashRouting(std::move(model));
      break;
    case lshclust::persist::ModelFamilyKind::kMixedConcat:
      (void)lshclust::persist::BuildMixedRouting(std::move(model));
      break;
    case lshclust::persist::ModelFamilyKind::kNone:
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DriveDecoder(std::span<const uint8_t>(data, size));
  return 0;
}

#ifdef LSHCLUST_FUZZ_STANDALONE

#include <cstring>
#include <fstream>
#include <string>

namespace {

// Deterministic 64-bit LCG (Knuth MMIX constants) so a standalone fuzz
// run is exactly reproducible from the command line — no time seeding;
// the determinism lint would rightly reject that.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }

 private:
  uint64_t state_;
};

void MutateAndDrive(const std::vector<uint8_t>& original, uint64_t rounds,
                    uint64_t seed) {
  Lcg rng(seed);
  std::vector<uint8_t> image;
  for (uint64_t round = 0; round < rounds; ++round) {
    image = original;
    // 1-8 mutations per round: byte flips, truncations, and 4-byte
    // little-endian splats (hits lengths/counters harder than bit noise).
    const uint64_t edits = 1 + rng.Next() % 8;
    for (uint64_t edit = 0; edit < edits && !image.empty(); ++edit) {
      const uint64_t pos = rng.Next() % image.size();
      switch (rng.Next() % 4) {
        case 0:
          image[pos] = static_cast<uint8_t>(rng.Next());
          break;
        case 1:
          image[pos] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
          break;
        case 2:
          image.resize(pos);  // truncate
          break;
        default: {
          const uint32_t value = static_cast<uint32_t>(rng.Next());
          for (uint64_t i = 0; i < 4 && pos + i < image.size(); ++i) {
            image[pos + i] = static_cast<uint8_t>(value >> (8 * i));
          }
          break;
        }
      }
    }
    DriveDecoder(image);
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t mutate_rounds = 0;
  uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutate=", 0) == 0) {
      mutate_rounds = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutate=N] [--seed=S] corpus-file...\n",
                 argv[0]);
    return 2;
  }
  uint64_t driven = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read corpus file '%s'\n", path.c_str());
      return 1;
    }
    std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    DriveDecoder(data);
    ++driven;
    if (mutate_rounds > 0) {
      MutateAndDrive(data, mutate_rounds, seed + driven);
      driven += mutate_rounds;
    }
  }
  std::printf("model_io_fuzz: %llu inputs driven, no crash\n",
              static_cast<unsigned long long>(driven));
  return 0;
}

#endif  // LSHCLUST_FUZZ_STANDALONE
