# Fuzz smoke driver (ctest: fuzz_smoke_test). Generates a small dataset,
# fits + saves a model (the corpus seed), then replays it through the
# standalone fuzz harness with a deterministic mutation sweep. Any crash
# or sanitizer report fails the test; rejected inputs are the expected
# outcome.

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${LSHCLUST_TOOL} generate --items=400 --attributes=8
    --clusters=10 --domain=20 --seed=11 --output=${WORK_DIR}/ds.lshc
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corpus dataset generation failed (${rc})")
endif()

execute_process(
  COMMAND ${LSHCLUST_TOOL} cluster --input=${WORK_DIR}/ds.lshc --k=10
    --save-model=${WORK_DIR}/corpus.lshm --output=${WORK_DIR}/fit.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corpus model save failed (${rc})")
endif()

execute_process(
  COMMAND ${FUZZER} --mutate=3000 --seed=20260808 ${WORK_DIR}/corpus.lshm
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "model_io_fuzz crashed or rejected the run (${rc})")
endif()
